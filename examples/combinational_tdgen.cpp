// Scenario: robust delay-fault tests for a purely combinational block
// (the classic c17), using TDgen directly — what the paper's §3 local
// test generator does on its own. Shows the eight-valued stimulus sets a
// test consists of and verifies one by injection simulation.
#include <cstdio>

#include "algebra/frame_sim.hpp"
#include "circuits/embedded.hpp"
#include "netlist/fanout.hpp"
#include "tdgen/tdgen.hpp"

int main() {
  using namespace gdf;

  const net::Netlist circuit =
      net::expand_fanout_branches(circuits::make_c17());
  const alg::AtpgModel model(circuit);
  const alg::DelayAlgebra& algebra = alg::robust_algebra();

  int found = 0, untestable = 0;
  for (const tdgen::DelayFault& fault : tdgen::enumerate_faults(circuit)) {
    tdgen::TdgenSearch search(model, algebra, fault);
    tdgen::LocalTest test;
    if (search.next(&test) != tdgen::TdgenStatus::TestFound) {
      ++untestable;
      continue;
    }
    ++found;
    if (found == 1) {
      std::printf("test for %s:\n  PI value sets (V1->V2 waveforms): ",
                  tdgen::fault_name(circuit, fault).c_str());
      for (const alg::VSet s : test.pi_sets) {
        std::printf("%s ", alg::vset_to_string(s).c_str());
      }
      const auto v1 = tdgen::initial_frame_pis(test);
      const auto v2 = tdgen::test_frame_pis(test);
      std::printf("\n  V1 = ");
      for (const int b : v1) {
        std::printf("%c", b < 0 ? 'X' : static_cast<char>('0' + b));
      }
      std::printf("   V2 = ");
      for (const int b : v2) {
        std::printf("%c", b < 0 ? 'X' : static_cast<char>('0' + b));
      }

      // Independent check: inject the fault, simulate both frames, and
      // confirm a carrier-only value at an output for every X fill.
      const alg::TwoFrameSim sim(model, algebra);
      alg::TwoFrameStimulus stimulus{test.pi_sets, test.ppi_sets};
      const alg::FaultSpec spec{model.head_of(fault.line),
                                fault.slow_to_rise};
      std::printf("\n  verified robust: %s\n\n",
                  sim.guaranteed_observation(stimulus, spec, nullptr)
                      ? "yes"
                      : "NO (bug!)");
    }
  }
  std::printf("c17: %d of %d delay faults robustly testable "
              "(combinational TDgen)\n",
              found, found + untestable);
  return 0;
}
