// Scenario: bring your own netlist. Reads an ISCAS'89-style .bench file
// (or builds a small controller programmatically when no path is given),
// validates it, and runs the full delay-fault flow with custom limits.
//
//   ./build/examples/custom_bench_flow [path/to/circuit.bench]
#include <cstdio>

#include "base/error.hpp"
#include "core/delay_atpg.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"
#include "netlist/stats.hpp"
#include "netlist/validate.hpp"

namespace {

gdf::net::Netlist demo_controller() {
  using gdf::net::GateType;
  gdf::net::NetlistBuilder b("demo_ctrl");
  b.input("reset").input("go").input("sense");
  b.output("grant");
  b.dff("armed", "armed_next");
  b.dff("busy", "busy_next");
  b.gate("nreset", GateType::Not, {"reset"});
  b.gate("arm", GateType::And, {"go", "nreset"});
  b.gate("armed_next", GateType::Or, {"arm", "hold"});
  b.gate("hold", GateType::And, {"armed", "nbusy"});
  b.gate("nbusy", GateType::Not, {"busy"});
  b.gate("busy_next", GateType::And, {"armed", "sense"});
  b.gate("grant", GateType::And, {"busy", "armed"});
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const gdf::net::Netlist circuit =
        argc > 1 ? gdf::net::read_bench_file(argv[1]) : demo_controller();
    gdf::net::validate_or_throw(circuit);
    std::printf("%s\n",
                gdf::net::format_stats(gdf::net::compute_stats(circuit))
                    .c_str());

    gdf::core::AtpgOptions options;
    options.local.backtrack_limit = 500;       // more patient than the
    options.sequential.backtrack_limit = 500;  // paper's 100/100 default
    const gdf::core::FogbusterResult result =
        gdf::core::run_delay_atpg(circuit, options);

    std::printf("%s\n%s\n\n", gdf::core::table3_header().c_str(),
                gdf::core::format_table3_row(
                    gdf::core::make_table3_row(circuit.name(), result))
                    .c_str());
    std::printf("%s\n", gdf::core::format_stage_stats(result.stages).c_str());
    return 0;
  } catch (const gdf::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
