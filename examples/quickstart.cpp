// Quickstart: run robust gate delay fault ATPG on the s27 benchmark and
// print the resulting test set, exactly as a new user of the library
// would. Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "circuits/embedded.hpp"
#include "core/delay_atpg.hpp"

int main() {
  // 1. Get a circuit. s27 ships verbatim; load_circuit() also knows the
  //    synthetic ISCAS'89-like substitutes, and read_bench_file() parses
  //    your own .bench netlists.
  const gdf::net::Netlist circuit = gdf::circuits::make_s27();

  // 2. Run the combined TDgen + SEMILET flow with the paper's defaults
  //    (robust fault model, 100/100 backtrack limits, fault dropping).
  const gdf::core::FogbusterResult result =
      gdf::core::run_delay_atpg(circuit);

  // 3. Summarize — the same columns as Table 3 of the paper.
  std::printf("%s\n%s\n\n", gdf::core::table3_header().c_str(),
              gdf::core::format_table3_row(
                  gdf::core::make_table3_row(circuit.name(), result))
                  .c_str());

  // 4. Inspect one generated test sequence.
  if (!result.tests.empty()) {
    const gdf::core::TestSequence& t = result.tests.front();
    // Fault line ids refer to the fanout-expanded netlist the flow works
    // on (expansion is deterministic).
    const gdf::core::Fogbuster flow(circuit);
    const gdf::net::Netlist& expanded = flow.working_netlist();
    std::printf("first explicit test targets %s:\n",
                gdf::tdgen::fault_name(expanded, t.target).c_str());
    const auto frames = t.all_frames();
    const auto clocks = t.clocks();
    for (std::size_t k = 0; k < frames.size(); ++k) {
      std::printf("  %s clock, PIs = ",
                  clocks[k] == gdf::core::ClockKind::Fast ? "FAST" : "slow");
      for (const gdf::sim::Lv v : frames[k]) {
        std::printf("%s", std::string(gdf::sim::lv_name(v)).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
