// Scenario: SEMILET standing alone — sequential stuck-at ATPG for a
// non-scan circuit, the "static fault model" side of the paper's coupled
// system. Generates tests from the unknown power-up state and replays
// them against the faulty machine.
#include <cstdio>

#include "circuits/embedded.hpp"
#include "semilet/semilet.hpp"

int main() {
  using namespace gdf;
  using sim::Lv;

  const net::Netlist circuit = circuits::make_s27();
  semilet::StuckAtAtpg atpg(circuit);

  int found = 0, untestable = 0, aborted = 0;
  semilet::StuckAtTest example;
  net::GateId example_line = net::kNoGate;
  for (net::GateId line = 0; line < circuit.size(); ++line) {
    for (const bool sa1 : {false, true}) {
      semilet::StuckAtTest test;
      switch (atpg.generate({line, sa1}, &test)) {
        case semilet::StuckAtStatus::TestFound:
          ++found;
          if (example.frames.empty()) {
            example = test;
            example_line = line;
          }
          break;
        case semilet::StuckAtStatus::Untestable:
          ++untestable;
          break;
        case semilet::StuckAtStatus::Aborted:
          ++aborted;
          break;
      }
    }
  }
  std::printf("s27 stuck-at faults: %d tested, %d untestable, %d aborted\n",
              found, untestable, aborted);

  if (!example.frames.empty()) {
    std::printf("\nexample sequence for %s stuck-at-0 (%zu frames from "
                "power-up):\n",
                circuit.gate(example_line).name.c_str(),
                example.frames.size());
    for (const sim::InputVec& pis : example.frames) {
      std::printf("  PIs = ");
      for (const Lv v : pis) {
        std::printf("%s", std::string(sim::lv_name(v)).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
