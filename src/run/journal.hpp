// Crash-safe sweep journal (--journal FILE / --resume).
//
// An append-only record of completed sweep cells: one fsync'd line per
// emitted row holding the cell's canonical index, an FNV-1a digest of the
// emitted text, and the text itself. A killed catalog run restarts with
// --resume: the journal's valid prefix is replayed verbatim (digest-
// verified) and only the remaining cells run, so the concatenated output
// is byte-identical to the uninterrupted run (given --no-seconds; the
// wall-time column is nondeterministic with or without a journal).
//
// Format, line-oriented:
//   # gdf-journal v1 spec=<16-hex fingerprint>
//   R <index> <16-hex digest> <row text>
//
// The spec fingerprint hashes everything that determines the canonical
// job list and the row layout; --resume against a journal written by a
// different sweep configuration is an Input error. A torn tail — the
// process died mid-write — is tolerated: reading stops at the first
// malformed or digest-mismatched line and the file is truncated back to
// the end of the valid prefix before appends resume.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "run/sweep.hpp"

namespace gdf::run {

/// FNV-1a over the bytes of `text` (the row digest and the fingerprint
/// accumulator).
std::uint64_t fnv1a64(std::string_view text);

/// Fingerprint of everything that fixes the journal's replay contract:
/// the expanded job list (circuit, mode, order, seed, limits, dropping,
/// sites), the scalar generation knobs, and the row layout (`csv_layout`
/// = CSV rows vs the text table).
std::uint64_t sweep_fingerprint(const SweepSpec& spec, bool csv_layout);

class SweepJournal {
 public:
  SweepJournal() = default;
  ~SweepJournal();
  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Opens `path` for journaling. With `resume` set, an existing file is
  /// loaded first: the header's fingerprint must equal `fingerprint`
  /// (Input error otherwise), completed() is populated from the valid
  /// prefix, and the file is truncated to that prefix. Without `resume`
  /// (or when the file does not exist) the journal starts fresh. Open and
  /// write failures are Resource errors.
  void open(const std::string& path, std::uint64_t fingerprint, bool resume);

  bool active() const { return fd_ >= 0; }

  /// Rows recovered by open(..., resume=true): (canonical index, emitted
  /// text), in file order.
  const std::vector<std::pair<std::size_t, std::string>>& completed() const {
    return completed_;
  }

  /// Appends one completed row and fsyncs. `row` must be newline-free
  /// (one emitted line). No-op when the journal is not active.
  void record(std::size_t index, std::string_view row);

  /// Closes the descriptor early (idempotent; the destructor also closes).
  void close();

 private:
  int fd_ = -1;
  std::string path_;
  std::vector<std::pair<std::size_t, std::string>> completed_;
};

}  // namespace gdf::run
