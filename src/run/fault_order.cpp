#include "run/fault_order.hpp"

#include <algorithm>
#include <numeric>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "core/fogbuster.hpp"
#include "fausim/fausim.hpp"
#include "tdsim/tdsim.hpp"

namespace gdf::run {

namespace {

// Accidental-detection sampling frames: sequences are short enough that a
// pass costs about as much as one fault-dropping round of the real flow.
// The sequence count (options.adi_sequences, default 8) is the sampling
// budget: few enough by default that the whole ordering pass stays a small
// fraction of generation time (bench/run_benchmarks.sh records the
// coverage/runtime trade-off of varying it).
constexpr std::size_t kAdiFrames = 6;

std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

/// Counts, over a fixed budget of random binary sequences, how many
/// (sequence, fast-frame position) pairs detect each fault.
std::vector<long> accidental_detection_counts(
    const core::CircuitContext& ctx, const core::AtpgOptions& options) {
  const net::Netlist& nl = ctx.netlist();
  const alg::DelayAlgebra& algebra = ctx.algebra(options.mode);
  fausim::Fausim fausim(ctx.flat(), options.lanes);
  const tdsim::Tdsim tdsim(
      ctx.model(), algebra,
      sim::packed_stem_lanes(sim::resolve_lane_count(options.lanes)));
  // Decorrelated from the X-fill stream of the actual runs, but still a
  // pure function of the user's seed.
  Rng rng(options.fill_seed ^ 0xAD1AD1AD1AD1AD1AULL);

  std::vector<long> counts(ctx.faults().size(), 0);
  for (int s = 0; s < options.adi_sequences; ++s) {
    std::vector<sim::InputVec> frames(
        kAdiFrames, sim::InputVec(nl.inputs().size(), sim::Lv::X));
    // simulate_good fills every X bit from the RNG, so all-X frames become
    // one uniformly random binary sequence.
    const fausim::Fausim::GoodTrace trace = fausim.simulate_good(frames, rng);
    // Every interior frame can serve as the fast frame, with the remaining
    // frames as the propagation phase.
    for (std::size_t fast = 1; fast + 1 < kAdiFrames; ++fast) {
      const tdsim::TdsimRequest request =
          core::make_tdsim_request(nl, fausim, trace, fast, {});
      const std::vector<bool> detected =
          options.tdsim_engine == core::TdsimEngine::Exact
              ? tdsim.detect_exact(request, ctx.faults())
              : tdsim.detect_cpt(request, ctx.faults());
      for (std::size_t j = 0; j < detected.size(); ++j) {
        counts[j] += detected[j] ? 1 : 0;
      }
    }
  }
  return counts;
}

}  // namespace

std::string_view fault_order_name(FaultOrder order) {
  switch (order) {
    case FaultOrder::Static:
      return "static";
    case FaultOrder::Random:
      return "random";
    case FaultOrder::Adi:
      return "adi";
  }
  return "?";
}

FaultOrder parse_fault_order(std::string_view text) {
  if (text == "static") {
    return FaultOrder::Static;
  }
  if (text == "random") {
    return FaultOrder::Random;
  }
  if (text == "adi") {
    return FaultOrder::Adi;
  }
  throw Error("--fault-order expects 'static', 'random' or 'adi', got '" +
              std::string(text) + "'");
}

std::vector<std::size_t> make_fault_order(const core::CircuitContext& ctx,
                                          FaultOrder order,
                                          const core::AtpgOptions& options) {
  std::vector<std::size_t> result = identity_order(ctx.faults().size());
  switch (order) {
    case FaultOrder::Static:
      break;
    case FaultOrder::Random: {
      Rng rng(options.fill_seed ^ 0x5EEDFACE5EEDFACEULL);
      for (std::size_t i = result.size(); i > 1; --i) {
        std::swap(result[i - 1], result[rng.next_below(i)]);
      }
      break;
    }
    case FaultOrder::Adi: {
      const std::vector<long> counts =
          accidental_detection_counts(ctx, options);
      // Rarely accidentally detected (hard) faults first; stable so equal
      // counts keep the canonical order and the result is deterministic.
      std::stable_sort(result.begin(), result.end(),
                       [&](std::size_t a, std::size_t b) {
                         return counts[a] < counts[b];
                       });
      break;
    }
  }
  return result;
}

}  // namespace gdf::run
