#include "run/session.hpp"

#include <utility>

namespace gdf::run {

AtpgSession::AtpgSession(std::shared_ptr<const core::CircuitContext> context,
                         core::AtpgOptions options, FaultOrder order)
    : ctx_(std::move(context)),
      options_(options),
      order_(order),
      flow_(ctx_, options) {}

AtpgSession::AtpgSession(const net::Netlist& circuit,
                         core::AtpgOptions options, FaultOrder order)
    : AtpgSession(core::CircuitContext::build(circuit, options), options,
                  order) {}

core::FogbusterResult AtpgSession::run() {
  if (!order_ready_) {
    target_order_ = make_fault_order(*ctx_, order_, options_);
    order_ready_ = true;
  }
  return flow_.run(target_order_);
}

core::FogbusterResult AtpgSession::run(ThreadPool& pool,
                                       const ShardConfig& shard) {
  if (!order_ready_) {
    target_order_ = make_fault_order(*ctx_, order_, options_);
    order_ready_ = true;
  }
  const unsigned workers = shard_workers(
      shard, pool, ctx_->faults().size(), options_.per_fault_seconds);
  if (workers <= 1) {
    return flow_.run(target_order_);
  }
  return run_sharded(flow_, target_order_, pool,
                     shard_epoch_size(shard, workers));
}

void AtpgSession::set_untestable_memo(
    std::shared_ptr<const std::vector<bool>> memo) {
  flow_.set_untestable_memo(std::move(memo));
}

}  // namespace gdf::run
