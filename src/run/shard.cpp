#include "run/shard.hpp"

#include <atomic>
#include <charconv>
#include <exception>
#include <utility>
#include <vector>

#include "base/error.hpp"
#include "base/logger.hpp"
#include "base/timer.hpp"

namespace gdf::run {

ShardConfig parse_shard_faults(std::string_view text) {
  ShardConfig config;
  if (text == "off") {
    config.policy = ShardConfig::Policy::Off;
    return config;
  }
  if (text == "auto") {
    config.policy = ShardConfig::Policy::Auto;
    return config;
  }
  unsigned workers = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, workers);
  check(ec == std::errc() && ptr == last && workers > 0,
        "--shard-faults expects 'auto', 'off', or a positive worker "
        "count, got '" + std::string(text) + "'");
  config.policy = ShardConfig::Policy::Forced;
  config.workers = workers;
  return config;
}

std::string shard_faults_name(const ShardConfig& config) {
  switch (config.policy) {
    case ShardConfig::Policy::Off:
      return "off";
    case ShardConfig::Policy::Auto:
      return "auto";
    case ShardConfig::Policy::Forced:
      return std::to_string(config.workers);
  }
  return "off";
}

unsigned shard_workers(const ShardConfig& config, const ThreadPool& pool,
                       std::size_t fault_count, double per_fault_seconds) {
  switch (config.policy) {
    case ShardConfig::Policy::Off:
      return 0;
    case ShardConfig::Policy::Forced:
      // A forced width of 1 degenerates to the sequential loop plus the
      // epoch/barrier machinery — same bytes, pure overhead. Run the
      // plain loop instead.
      if (config.workers <= 1) {
        return 0;
      }
      return config.workers;
    case ShardConfig::Policy::Auto:
      // Sharding never changes the bytes, but with a per-fault wall-clock
      // cap the verdicts are timing-dependent either way — don't let the
      // default policy add scheduling noise to such runs. Small circuits
      // pay more in barriers than they gain; a one-thread pool gains
      // nothing at all. (--fault-budget deliberately does NOT gate here:
      // its abort point is a pure function of the fault, so budgeted runs
      // keep sharding.)
      if (per_fault_seconds > 0.0) {
        if (fault_count >= config.min_faults && pool.thread_count() > 1) {
          // The cap silently costs the parallelism the run would have
          // had; say so once, and name the deterministic alternative.
          static std::atomic<bool> warned{false};
          if (!warned.exchange(true)) {
            GDF_WARN << "--per-fault-seconds disables automatic fault "
                        "sharding (wall-clock verdicts are timing-"
                        "dependent); use the deterministic --fault-budget "
                        "to cap per-fault work and keep sharding";
          }
        }
        return 0;
      }
      if (fault_count < config.min_faults || pool.thread_count() <= 1) {
        return 0;
      }
      return pool.thread_count();
  }
  return 0;
}

std::size_t shard_epoch_size(const ShardConfig& config, unsigned workers) {
  if (config.epoch_size > 0) {
    return config.epoch_size;
  }
  // A few generation slices per worker amortize the barrier without
  // over-speculating past the next dropping passes.
  return std::max<std::size_t>(std::size_t{4} * workers, 16);
}

core::FogbusterResult run_sharded(core::Fogbuster& flow,
                                  std::span<const std::size_t> target_order,
                                  ThreadPool& pool, std::size_t epoch_size) {
  using core::FaultStatus;
  check(epoch_size > 0, "run_sharded: epoch size must be at least 1");

  const Stopwatch watch;
  core::FogbusterResult result = flow.make_empty_result();
  const std::size_t n = result.faults.size();
  check(target_order.empty() || target_order.size() == n,
        "run_sharded: target order size does not match the fault list");
  flow.reset_run_state();
  const std::vector<bool>* memo = flow.untestable_memo();

  /// One epoch entry: a speculatively generated verdict for fault
  /// `index`, merged (or discarded, when an epoch-mate's test dropped the
  /// fault first) at the barrier.
  struct Slice {
    std::size_t index = 0;
    bool memoized = false;
    FaultStatus status = FaultStatus::Untested;
    core::TestSequence sequence;
    core::StageStats stages;
    std::exception_ptr error;
  };

  std::vector<Slice> epoch;
  epoch.reserve(epoch_size);
  std::size_t pos = 0;  // targeting positions < pos are fully classified
  while (pos < n) {
    // Between epochs is the natural cancellation point: the barrier has
    // merged everything generated so far, so unwinding here loses no
    // completed work. (Mid-epoch, the searches themselves poll the token
    // and throw; the merge below rethrows the first such slice.)
    if (pool.cancel_requested()) {
      throw_cancelled();
    }
    // Select the next still-untested faults in targeting order. Memoized
    // faults join the epoch (their classification must happen in order at
    // the merge) but skip speculative generation.
    epoch.clear();
    while (pos < n && epoch.size() < epoch_size) {
      const std::size_t i = target_order.empty() ? pos : target_order[pos];
      ++pos;
      if (result.status[i] != FaultStatus::Untested) {
        continue;
      }
      Slice slice;
      slice.index = i;
      slice.memoized = memo != nullptr && (*memo)[i];
      epoch.push_back(std::move(slice));
    }
    if (epoch.empty()) {
      break;
    }

    // Fan the epoch's generations out; the pool's workers and this thread
    // (helping inside wait) each run slices against the shared immutable
    // context. Exceptions are parked per slice — a throwing task would
    // wedge the group accounting.
    ThreadPool::Group group;
    for (Slice& slice : epoch) {
      if (slice.memoized) {
        continue;
      }
      pool.submit(group, [&flow, &slice] {
        try {
          slice.status = flow.generate_for_fault(
              flow.context()->faults()[slice.index], &slice.sequence,
              &slice.stages);
        } catch (...) {
          slice.error = std::current_exception();
        }
      });
    }
    pool.wait(group);

    // Barrier merge, in targeting order: exactly the sequential loop,
    // with the generation verdicts precomputed (merge_targeted is the
    // code path Fogbuster::run itself steps through). Faults dropped by
    // an earlier epoch-mate's test are skipped — their speculative work
    // is the sharding's only waste.
    for (Slice& slice : epoch) {
      if (result.status[slice.index] != FaultStatus::Untested) {
        continue;
      }
      if (slice.error) {
        std::rethrow_exception(slice.error);
      }
      flow.merge_targeted(slice.index, slice.memoized, slice.status,
                          slice.sequence, slice.stages, &result);
    }
  }
  result.seconds = watch.seconds();
  result.stages.clause_store_bytes = flow.shared_clause_bytes();
  return result;
}

}  // namespace gdf::run
