// Declarative parameter sweeps over the ATPG engine.
//
// A SweepSpec names the circuits to run and, per knob, the list of values
// to fan out (mode × fault order × seed × backtrack limit × dropping ×
// fault sites — empty axis = "just the base option"). expand() turns that
// into the canonical job list: circuit-major, then the axes in the order
// above, each cell a fully resolved AtpgOptions. Every Table-3 row and
// every bench/ ablation in the repo is one such spec.
//
// run_sweep() executes the jobs on a work-stealing pool (--jobs N) and
// hands finished rows to the caller **in canonical order** no matter when
// they complete: workers publish into an indexed channel and the calling
// thread emits row i only after rows 0..i-1. Per-job results depend only
// on that job's options (each job is one AtpgSession with its own RNG and
// engines; contexts are shared read-only), so the emitted bytes are
// identical for any worker count — the determinism ctest asserts jobs=1
// versus jobs=4.
//
// Three scheduling layers keep the wall time down without touching the
// bytes:
//  * Longest-job-first submission: cells run in descending size-based
//    cost order (the canonical emission channel hides the reordering), so
//    the s1196/s1238-class tails start first instead of capping the sweep.
//  * Intra-circuit fault sharding (spec.shard): a cell whose circuit
//    qualifies fans its fault list into generation epochs on the same
//    pool instead of occupying one worker (see run/shard.hpp).
//  * The untestable-fault memo: cells differing only in seed, targeting
//    order, or dropping re-derive identical untestability verdicts; the
//    first such cell (in canonical order) runs alone and publishes its
//    verdict set at cell completion, and only then are its sibling cells
//    submitted, each reusing the memo. Publish-after-cell plus
//    producer-before-consumer scheduling keeps hit counts and bytes
//    deterministic under any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "base/cancel.hpp"
#include "base/error.hpp"
#include "core/options.hpp"
#include "core/report.hpp"
#include "run/fault_order.hpp"
#include "run/shard.hpp"

namespace gdf::run {

/// What run_sweep does when a cell fails (--on-error). Abort reproduces
/// the pre-policy behavior: the first failure is rethrown at its canonical
/// position and the sweep stops. Skip emits a deterministic `# error:`
/// row at the failing cell's canonical position and continues — no other
/// row's bytes change. Retry is Skip plus up to `retries` re-runs with
/// bounded backoff, attempted only for Resource-kind (transient I/O)
/// failures; Input/Internal failures are deterministic and go straight to
/// the error row. Cancellation is never an error row: the sweep drains
/// its canonical frontier and reports a partial run.
struct ErrorPolicy {
  enum class Mode : std::uint8_t { Abort, Skip, Retry };
  Mode mode = Mode::Abort;
  int retries = 0;  ///< re-runs per cell (Retry only)

  bool operator==(const ErrorPolicy&) const = default;
};

/// Parses an --on-error value: "abort" | "skip" | "retry:N" (N >= 1).
ErrorPolicy parse_on_error(std::string_view text);
std::string on_error_name(const ErrorPolicy& policy);

/// One circuit to sweep: either a catalog name (honoring the file-backed
/// bench_dir) or an explicit .bench file from disk.
struct CircuitSource {
  std::string label;       ///< CSV "circuit" column
  std::string name;        ///< catalog name; empty when file-backed
  std::string bench_path;  ///< .bench path; empty when from the catalog

  static CircuitSource catalog(std::string catalog_name);
  static CircuitSource file(std::string path);
};

/// Catalog sources from a harness's argv tail (argv[1..]), or `defaults`
/// when no names were passed — the shared front door of the bench/
/// ablation harnesses.
std::vector<CircuitSource> catalog_sources(
    int argc, const char* const* argv,
    const std::vector<std::string>& defaults);

struct SweepSpec {
  std::vector<CircuitSource> circuits;
  /// Base configuration; axes below override per cell. Knobs without an
  /// axis (e.g. tdsim engine, per-fault cap) apply to every cell.
  core::AtpgOptions base;
  /// Root of genuine ISCAS'89 .bench files overriding the generated
  /// catalog ("" = generated substitutes only). See circuits::
  /// resolve_bench_dir for the GDF_BENCH_DIR fallback.
  std::string bench_dir;

  // Matrix axes; an empty axis means one cell with the base value.
  std::vector<alg::Mode> modes;
  std::vector<FaultOrder> orders;
  std::vector<std::uint64_t> seeds;
  /// Applied to both the local and the sequential limit, like the paper's
  /// symmetric 100/100 policy.
  std::vector<int> backtrack_limits;
  std::vector<bool> fault_dropping;
  /// true = gate outputs + fanout branches (paper), false = stems only.
  std::vector<bool> full_sites;

  unsigned jobs = 0;            ///< worker threads; 0 = hardware concurrency
  bool include_seconds = true;  ///< emit the wall-time column
  /// Intra-circuit fault sharding policy (--shard-faults); Off reproduces
  /// the cell-granular behavior. Never changes the emitted bytes.
  ShardConfig shard;

  /// Failure containment (--on-error); see ErrorPolicy.
  ErrorPolicy on_error;
  /// Cooperative cancellation: when wired (and also set on base.cancel so
  /// in-flight searches observe it), a fired token makes run_sweep stop
  /// emitting at the first incomplete canonical position and return with
  /// SweepStats::interrupted set. nullptr = not cancellable.
  const CancelToken* cancel = nullptr;
  /// Canonical indices replayed from a journal (--resume): these cells
  /// are not executed; their rows come back with SweepRow::replayed set
  /// and only job/index meaningful — the caller re-emits its journaled
  /// text. Non-empty lists disable the untestable memo (a replayed
  /// producer has no verdicts to publish).
  std::vector<std::size_t> resume_done;
  /// Disables untestable-memo groups outright (journaled runs: replay
  /// must not depend on memo trailer state).
  bool disable_memo = false;

  /// Cells per circuit (product of the axis sizes).
  std::size_t cells_per_circuit() const;
  /// True when more than one cell per circuit (CSV grows config columns).
  bool has_matrix() const { return cells_per_circuit() > 1; }
};

/// One fully resolved unit of work.
struct SweepJob {
  std::size_t index = 0;  ///< canonical position
  CircuitSource circuit;
  core::AtpgOptions options;
  FaultOrder order = FaultOrder::Static;
};

/// The canonical job list: circuit-major, axes in declaration order.
std::vector<SweepJob> expand(const SweepSpec& spec);

struct SweepRow {
  SweepJob job;
  core::Table3Row table;
  core::StageStats stages;
  /// Faults this cell classified via the shared untestable memo.
  long memo_hits = 0;
  /// Nonempty = the cell failed under --on-error skip/retry; the table
  /// and stage fields are empty and the row renders as a deterministic
  /// `# error:` line (see format_sweep_error_row).
  std::string error;
  ErrorKind error_kind = ErrorKind::Internal;
  /// Times the cell ran (> 1 only under --on-error retry:N).
  int attempts = 1;
  /// Replayed from a journal: only `job` is meaningful; the caller
  /// re-emits the journaled text instead of formatting this row.
  bool replayed = false;
};

/// Whole-sweep outcome counters (deterministic for a given spec).
struct SweepStats {
  long memo_hits = 0;          ///< untestable verdicts reused, summed
  long memo_reused_cells = 0;  ///< cells with at least one memo hit
  long total_cells = 0;        ///< canonical job count of the spec
  long emitted = 0;            ///< rows handed to emit (incl. error rows)
  long error_cells = 0;        ///< cells that emitted `# error:` rows
  long retries = 0;            ///< extra attempts spent under retry:N
  long replayed_cells = 0;     ///< rows replayed from resume_done
  /// The cancel token fired: emission stopped at the first incomplete
  /// canonical position; rows 0..emitted-1 are complete and final.
  bool interrupted = false;
};

/// CSV rendering. Without a matrix this is exactly the legacy layout
/// ("circuit,tested,untestable,aborted,patterns,seconds"); with one, the
/// configuration columns (mode, order, seed, backtracks, dropping, sites)
/// are inserted after the circuit. include_seconds=false drops the
/// nondeterministic wall-time column — what the byte-identity tests
/// compare.
std::string sweep_csv_header(const SweepSpec& spec);
std::string format_sweep_csv_row(const SweepSpec& spec, const SweepRow& row);

/// The deterministic `# error:` line a failed cell occupies at its
/// canonical position (identical bytes in CSV and table layouts):
///   # error: circuit=<label> cell=<index> kind=<kind>: <message>
std::string format_sweep_error_row(const SweepRow& row);

/// Runs the whole spec; `emit` is invoked on the calling thread, once per
/// job, in canonical order, as soon as each next row is available. Under
/// the default ErrorPolicy (abort) a worker exception is rethrown on the
/// calling thread at its job's canonical position (later jobs are
/// abandoned); under skip/retry the failing cell becomes an `# error:`
/// row and the sweep continues. `on_ready`, if given, runs after every
/// circuit has loaded and validated but before any job — the place to
/// print a header, so a bad circuit name aborts cleanly without partial
/// output (under skip/retry a failed circuit load instead yields error
/// rows for that circuit's cells). The returned stats summarize memo
/// reuse, error containment and interruption.
SweepStats run_sweep(const SweepSpec& spec,
                     const std::function<void(const SweepRow&)>& emit,
                     const std::function<void()>& on_ready = {});

}  // namespace gdf::run
