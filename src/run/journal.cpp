#include "run/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <charconv>
#include <fstream>
#include <sstream>

#include "base/error.hpp"
#include "base/fault_injection.hpp"
#include "run/fault_order.hpp"

namespace gdf::run {

namespace {

constexpr std::string_view kHeaderPrefix = "# gdf-journal v1 spec=";

std::string hex16(std::uint64_t value) {
  char buffer[17];
  for (int i = 15; i >= 0; --i) {
    buffer[i] = "0123456789abcdef"[value & 0xf];
    value >>= 4;
  }
  buffer[16] = '\0';
  return buffer;
}

bool parse_hex16(std::string_view text, std::uint64_t* value) {
  if (text.size() != 16) {
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *value, 16);
  return ec == std::errc() && ptr == text.data() + text.size();
}

}  // namespace

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t sweep_fingerprint(const SweepSpec& spec, bool csv_layout) {
  // Everything that fixes the canonical job list and the emitted row
  // layout, one line per job. Lane width is deliberately absent (it never
  // changes the bytes); the wall-time column is part of the layout.
  std::ostringstream os;
  os << "layout=" << (csv_layout ? "csv" : "table")
     << " seconds=" << (spec.include_seconds ? 1 : 0)
     << " bench_dir=" << spec.bench_dir << '\n';
  for (const SweepJob& job : expand(spec)) {
    const core::AtpgOptions& o = job.options;
    os << job.circuit.label << '|' << job.circuit.bench_path << '|'
       << (o.mode == alg::Mode::Robust ? "robust" : "nonrobust") << '|'
       << fault_order_name(job.order) << '|' << o.fill_seed << '|'
       << o.local.backtrack_limit << '/' << o.sequential.backtrack_limit
       << '|' << o.local.decision_limit << '/' << o.sequential.decision_limit
       << '|' << o.sequential.max_propagation_frames << '/'
       << o.sequential.max_sync_frames << '|'
       << (o.fault_dropping ? "drop" : "nodrop") << '|'
       << (o.fault_sites.include_branches ? "full" : "stems") << '|'
       << static_cast<int>(o.learn) << '|' << o.learned_limit << '|'
       << static_cast<int>(o.local.restarts) << '|' << o.local.restart_base
       << '|' << o.per_fault_seconds << '|' << o.fault_budget << '|'
       << static_cast<int>(o.tdsim_engine) << '|' << o.adi_sequences << '\n';
  }
  return fnv1a64(os.str());
}

SweepJournal::~SweepJournal() { close(); }

void SweepJournal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void SweepJournal::open(const std::string& path, std::uint64_t fingerprint,
                        bool resume) {
  check(fd_ < 0, "journal already open");
  completed_.clear();
  path_ = path;

  // Load the valid prefix of an existing journal (resume only): header
  // first, then records until the file ends or a line stops parsing —
  // the latter is a torn tail from a mid-write kill, everything after it
  // is discarded by the truncate below.
  std::size_t valid_bytes = 0;
  bool have_header = false;
  if (resume) {
    std::ifstream in(path, std::ios::binary);
    if (in.good()) {
      std::string line;
      while (std::getline(in, line)) {
        if (in.eof() && !in.bad()) {
          // getline without a trailing newline: a torn last line.
          break;
        }
        if (!have_header) {
          if (line.size() <= kHeaderPrefix.size() ||
              std::string_view(line).substr(0, kHeaderPrefix.size()) !=
                  kHeaderPrefix) {
            throw Error("journal '" + path + "' has no valid header");
          }
          std::uint64_t spec = 0;
          check(parse_hex16(std::string_view(line).substr(
                                kHeaderPrefix.size()),
                            &spec),
                "journal '" + path + "' has a malformed spec fingerprint");
          check(spec == fingerprint,
                "journal '" + path +
                    "' was written by a different sweep configuration; "
                    "refusing to resume");
          have_header = true;
          valid_bytes += line.size() + 1;
          continue;
        }
        // R <index> <digest> <row>
        std::string_view rest(line);
        if (rest.size() < 2 || rest[0] != 'R' || rest[1] != ' ') {
          break;
        }
        rest.remove_prefix(2);
        const std::size_t sp1 = rest.find(' ');
        if (sp1 == std::string_view::npos) {
          break;
        }
        std::size_t index = 0;
        {
          const auto [ptr, ec] =
              std::from_chars(rest.data(), rest.data() + sp1, index);
          if (ec != std::errc() || ptr != rest.data() + sp1) {
            break;
          }
        }
        rest.remove_prefix(sp1 + 1);
        const std::size_t sp2 = rest.find(' ');
        if (sp2 == std::string_view::npos) {
          break;
        }
        std::uint64_t digest = 0;
        if (!parse_hex16(rest.substr(0, sp2), &digest)) {
          break;
        }
        const std::string_view row = rest.substr(sp2 + 1);
        if (fnv1a64(row) != digest) {
          break;  // torn or corrupted record — stop at the valid prefix
        }
        completed_.emplace_back(index, std::string(row));
        valid_bytes += line.size() + 1;
      }
    }
  }

  if (have_header) {
    // Drop the torn tail (if any) so appends continue a well-formed file.
    check_resource(::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) ==
                       0,
                   "cannot truncate journal '" + path + "'");
    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    check_resource(fd_ >= 0, "cannot open journal '" + path + "'");
    return;
  }

  // Fresh journal (no resume, or nothing readable to resume from).
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  check_resource(fd_ >= 0, "cannot create journal '" + path + "'");
  const std::string header =
      std::string(kHeaderPrefix) + hex16(fingerprint) + "\n";
  check_resource(
      ::write(fd_, header.data(), header.size()) ==
          static_cast<ssize_t>(header.size()),
      "cannot write journal header to '" + path + "'");
  check_resource(::fsync(fd_) == 0, "cannot fsync journal '" + path + "'");
}

void SweepJournal::record(std::size_t index, std::string_view row) {
  if (fd_ < 0) {
    return;
  }
  GDF_ASSERT(row.find('\n') == std::string_view::npos,
             "journal rows must be single lines");
  std::string line = "R " + std::to_string(index) + " " +
                     hex16(fnv1a64(row)) + " " + std::string(row) + "\n";
  if (fi::fire_journal_truncate()) {
    // Injected torn tail: half the record, no newline — what a kill
    // mid-write leaves behind. The next open(resume) must discard it.
    line = line.substr(0, line.size() / 2);
  }
  check_resource(::write(fd_, line.data(), line.size()) ==
                     static_cast<ssize_t>(line.size()),
                 "cannot append to journal '" + path_ + "'");
  check_resource(::fsync(fd_) == 0,
                 "cannot fsync journal '" + path_ + "'");
}

}  // namespace gdf::run
