#include "run/sweep.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "base/error.hpp"
#include "base/fault_injection.hpp"
#include "circuits/catalog.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/validate.hpp"
#include "run/session.hpp"
#include "run/thread_pool.hpp"

namespace gdf::run {

namespace {

/// Extracts kind + message from a parked worker exception (message may be
/// null when only the kind is wanted).
void classify_error(const std::exception_ptr& error, ErrorKind* kind,
                    std::string* message) {
  try {
    std::rethrow_exception(error);
  } catch (const Error& e) {
    *kind = e.kind();
    if (message != nullptr) {
      *message = e.what();
    }
  } catch (const std::exception& e) {
    *kind = ErrorKind::Internal;
    if (message != nullptr) {
      *message = e.what();
    }
  } catch (...) {
    *kind = ErrorKind::Internal;
    if (message != nullptr) {
      *message = "unknown exception";
    }
  }
}

/// Bounded backoff before retry attempt `attempt` (1-based): 10 ms
/// doubling, capped at 200 ms — enough for transient I/O, never enough to
/// wedge a worker.
void retry_backoff(int attempt) {
  const long ms = std::min<long>(200, 10L << std::min(attempt - 1, 10));
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

template <typename T>
std::vector<T> axis_or(const std::vector<T>& axis, T base_value) {
  return axis.empty() ? std::vector<T>{base_value} : axis;
}

/// The structural slice of AtpgOptions — cells sharing it share one
/// CircuitContext (same fields CircuitContext::structurally_compatible
/// compares, via FaultListOptions::operator==).
struct StructuralKey {
  bool expand_branches;
  tdgen::FaultListOptions sites;

  explicit StructuralKey(const core::AtpgOptions& options)
      : expand_branches(options.expand_branches),
        sites(options.fault_sites) {}

  bool operator==(const StructuralKey&) const = default;
};

/// One circuit's shared immutable state plus the lazily built contexts,
/// one per structural key reached by the matrix.
struct CircuitSlot {
  net::Netlist nl;
  /// Set when the circuit failed to load under --on-error skip/retry:
  /// every cell of the slot rethrows it and becomes an error row.
  std::exception_ptr load_error;
  std::mutex mutex;
  std::vector<std::pair<StructuralKey, std::shared_ptr<const core::CircuitContext>>>
      contexts;

  std::shared_ptr<const core::CircuitContext> context_for(
      const core::AtpgOptions& options) {
    const StructuralKey key(options);
    const std::lock_guard<std::mutex> lock(mutex);
    for (const auto& [k, ctx] : contexts) {
      if (k == key) {
        return ctx;
      }
    }
    contexts.emplace_back(key, core::CircuitContext::build(nl, options));
    return contexts.back().second;
  }
};

const char* mode_name(alg::Mode mode) {
  return mode == alg::Mode::Robust ? "robust" : "nonrobust";
}

/// The slice of AtpgOptions the per-fault generation verdicts depend on.
/// Cells of one circuit sharing this key classify every fault
/// identically whatever their seed, targeting order, or dropping setting
/// — an untestability verdict proven by one is ground truth for all.
struct GenerationKey {
  StructuralKey structure;
  alg::Mode mode;
  int local_backtracks;
  long local_decisions;
  int seq_backtracks;
  int seq_prop_frames;
  int seq_sync_frames;
  long seq_decisions;
  double per_fault_seconds;
  long fault_budget;
  // Learning changes which faults abort (and under --learn shared even
  // the verdict bytes), so cells with different learn settings must not
  // share an untestable memo.
  core::LearnMode learn;
  int learned_limit;
  tdgen::RestartPolicy restarts;
  int restart_base;

  explicit GenerationKey(const core::AtpgOptions& o)
      : structure(o),
        mode(o.mode),
        local_backtracks(o.local.backtrack_limit),
        local_decisions(o.local.decision_limit),
        seq_backtracks(o.sequential.backtrack_limit),
        seq_prop_frames(o.sequential.max_propagation_frames),
        seq_sync_frames(o.sequential.max_sync_frames),
        seq_decisions(o.sequential.decision_limit),
        per_fault_seconds(o.per_fault_seconds),
        fault_budget(o.fault_budget),
        learn(o.learn),
        learned_limit(o.learned_limit),
        restarts(o.local.restarts),
        restart_base(o.local.restart_base) {}

  bool operator==(const GenerationKey&) const = default;
};

/// Cells of one circuit sharing a GenerationKey. The canonically first
/// cell (the producer) runs without a memo and publishes its untestable
/// set at completion; the consumers are only submitted after that, so
/// their memo view — and with it every byte they emit — is independent
/// of worker timing.
struct MemoGroup {
  std::vector<std::size_t> members;  ///< canonical job indices, ascending
  std::shared_ptr<const std::vector<bool>> verdicts;  ///< set by producer

  std::size_t producer() const { return members.front(); }
};

}  // namespace

CircuitSource CircuitSource::catalog(std::string catalog_name) {
  CircuitSource source;
  source.label = catalog_name;
  source.name = std::move(catalog_name);
  return source;
}

CircuitSource CircuitSource::file(std::string path) {
  CircuitSource source;
  // Same label the .bench reader derives (path stem), so --bench rows
  // keep their pre-sweep circuit names.
  source.label = std::filesystem::path(path).stem().string();
  source.bench_path = std::move(path);
  return source;
}

std::vector<CircuitSource> catalog_sources(
    int argc, const char* const* argv,
    const std::vector<std::string>& defaults) {
  std::vector<CircuitSource> sources;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      sources.push_back(CircuitSource::catalog(argv[i]));
    }
  } else {
    for (const std::string& name : defaults) {
      sources.push_back(CircuitSource::catalog(name));
    }
  }
  return sources;
}

std::size_t SweepSpec::cells_per_circuit() const {
  return axis_or(modes, base.mode).size() *
         axis_or(orders, FaultOrder::Static).size() *
         axis_or(seeds, base.fill_seed).size() *
         axis_or(backtrack_limits, base.local.backtrack_limit).size() *
         axis_or(fault_dropping, base.fault_dropping).size() *
         axis_or(full_sites, base.fault_sites.include_branches).size();
}

std::vector<SweepJob> expand(const SweepSpec& spec) {
  const std::vector<alg::Mode> modes = axis_or(spec.modes, spec.base.mode);
  const std::vector<FaultOrder> orders =
      axis_or(spec.orders, FaultOrder::Static);
  const std::vector<std::uint64_t> seeds =
      axis_or(spec.seeds, spec.base.fill_seed);
  const std::vector<int> backtracks =
      axis_or(spec.backtrack_limits, spec.base.local.backtrack_limit);
  const std::vector<bool> droppings =
      axis_or(spec.fault_dropping, spec.base.fault_dropping);
  const std::vector<bool> sites =
      axis_or(spec.full_sites, spec.base.fault_sites.include_branches);

  std::vector<SweepJob> jobs;
  jobs.reserve(spec.circuits.size() * spec.cells_per_circuit());
  for (const CircuitSource& circuit : spec.circuits) {
    for (const alg::Mode mode : modes) {
      for (const FaultOrder order : orders) {
        for (const std::uint64_t seed : seeds) {
          for (const int backtrack : backtracks) {
            for (const bool dropping : droppings) {
              for (const bool full : sites) {
                SweepJob job;
                job.index = jobs.size();
                job.circuit = circuit;
                job.order = order;
                job.options = spec.base;
                job.options.mode = mode;
                job.options.fill_seed = seed;
                job.options.local.backtrack_limit = backtrack;
                job.options.sequential.backtrack_limit = backtrack;
                job.options.fault_dropping = dropping;
                // Mirrors --no-branch-faults: a 'full' cell expands the
                // fanout branches and enumerates faults on them, a
                // 'stems' cell does neither — the two site models really
                // are two different fault populations, whatever the base
                // configuration says.
                job.options.fault_sites.include_branches = full;
                job.options.expand_branches = full;
                jobs.push_back(std::move(job));
              }
            }
          }
        }
      }
    }
  }
  return jobs;
}

std::string sweep_csv_header(const SweepSpec& spec) {
  std::string header = "circuit";
  if (spec.has_matrix()) {
    header += ",mode,order,seed,backtracks,dropping,sites";
  }
  header += ",tested,untestable,aborted,patterns";
  if (spec.include_seconds) {
    header += ",seconds";
  }
  return header;
}

std::string format_sweep_csv_row(const SweepSpec& spec,
                                 const SweepRow& row) {
  std::ostringstream os;
  os << row.table.circuit;
  if (spec.has_matrix()) {
    const core::AtpgOptions& o = row.job.options;
    os << ',' << mode_name(o.mode) << ',' << fault_order_name(row.job.order)
       << ',' << o.fill_seed << ',' << o.local.backtrack_limit << '/'
       << o.sequential.backtrack_limit << ','
       << (o.fault_dropping ? "on" : "off") << ','
       << (o.fault_sites.include_branches ? "full" : "stems");
  }
  os << ',' << row.table.tested << ',' << row.table.untestable << ','
     << row.table.aborted << ',' << row.table.patterns;
  if (spec.include_seconds) {
    os << ',' << row.table.seconds;
  }
  return os.str();
}

ErrorPolicy parse_on_error(std::string_view text) {
  ErrorPolicy policy;
  if (text == "abort") {
    return policy;
  }
  if (text == "skip") {
    policy.mode = ErrorPolicy::Mode::Skip;
    return policy;
  }
  if (text.substr(0, 6) == "retry:") {
    const std::string_view count = text.substr(6);
    int retries = 0;
    const auto [ptr, ec] =
        std::from_chars(count.data(), count.data() + count.size(), retries);
    check(ec == std::errc() && ptr == count.data() + count.size() &&
              retries >= 1,
          "--on-error retry:N expects a positive retry count, got '" +
              std::string(text) + "'");
    policy.mode = ErrorPolicy::Mode::Retry;
    policy.retries = retries;
    return policy;
  }
  throw Error("--on-error expects 'abort', 'skip', or 'retry:N', got '" +
              std::string(text) + "'");
}

std::string on_error_name(const ErrorPolicy& policy) {
  switch (policy.mode) {
    case ErrorPolicy::Mode::Abort:
      return "abort";
    case ErrorPolicy::Mode::Skip:
      return "skip";
    case ErrorPolicy::Mode::Retry:
      return "retry:" + std::to_string(policy.retries);
  }
  return "abort";
}

std::string format_sweep_error_row(const SweepRow& row) {
  // Deterministic bytes: label, canonical index, structured kind, and the
  // exception's message — nothing timing- or attempt-dependent.
  return "# error: circuit=" + row.job.circuit.label +
         " cell=" + std::to_string(row.job.index) +
         " kind=" + error_kind_name(row.error_kind) + ": " + row.error;
}

SweepStats run_sweep(const SweepSpec& spec,
                     const std::function<void(const SweepRow&)>& emit,
                     const std::function<void()>& on_ready) {
  // Load and validate every circuit up front, serially: a typo or a
  // malformed .bench file fails before any ATPG time is spent, and the
  // workers then only ever read the slots. Under --on-error skip/retry a
  // load failure is contained instead: the slot records it and every cell
  // of that circuit becomes a deterministic error row (Resource failures
  // get their bounded-backoff retries here, where the transient I/O is).
  const std::string bench_dir = circuits::resolve_bench_dir(spec.bench_dir);
  std::vector<std::unique_ptr<CircuitSlot>> slots;
  slots.reserve(spec.circuits.size());
  for (const CircuitSource& source : spec.circuits) {
    auto slot = std::make_unique<CircuitSlot>();
    for (int attempt = 1;; ++attempt) {
      try {
        if (!source.bench_path.empty()) {
          slot->nl = net::read_bench_file(source.bench_path);
          net::validate_or_throw(slot->nl);
        } else {
          slot->nl = circuits::load_circuit(source.name, bench_dir);
        }
        break;
      } catch (const Error& e) {
        if (spec.on_error.mode == ErrorPolicy::Mode::Retry &&
            e.kind() == ErrorKind::Resource &&
            attempt <= spec.on_error.retries &&
            !cancel_requested(spec.cancel)) {
          retry_backoff(attempt);
          continue;
        }
        if (spec.on_error.mode == ErrorPolicy::Mode::Abort ||
            e.kind() == ErrorKind::Cancelled) {
          throw;
        }
        slot->load_error = std::current_exception();
        break;
      }
    }
    slots.push_back(std::move(slot));
  }

  if (on_ready) {
    on_ready();
  }

  const std::vector<SweepJob> jobs = expand(spec);
  const std::size_t cells = spec.cells_per_circuit();

  // Untestable-memo groups: per circuit, cells sharing a GenerationKey
  // classify every fault identically, so all but the first redo pure
  // re-derivation. Group them; the producer (canonically first member)
  // publishes its untestable set after its cell completes, the consumers
  // start only then. A per-fault wall-clock cap makes verdicts
  // timing-dependent — no groups form for such specs. Journaled/resumed
  // runs disable groups too (spec.disable_memo / resume_done): a replayed
  // producer has no verdict set to publish, and replayed bytes must not
  // depend on memo state.
  std::vector<std::unique_ptr<MemoGroup>> groups;
  std::vector<MemoGroup*> group_of(jobs.size(), nullptr);
  if (spec.base.per_fault_seconds <= 0.0 && !spec.disable_memo &&
      spec.resume_done.empty()) {
    std::vector<std::pair<GenerationKey, MemoGroup*>> keyed;
    for (std::size_t slot = 0; slot < slots.size(); ++slot) {
      keyed.clear();
      for (std::size_t c = 0; c < cells; ++c) {
        const std::size_t ji = slot * cells + c;
        const GenerationKey key(jobs[ji].options);
        MemoGroup* group = nullptr;
        for (auto& [k, g] : keyed) {
          if (k == key) {
            group = g;
            break;
          }
        }
        if (group == nullptr) {
          groups.push_back(std::make_unique<MemoGroup>());
          group = groups.back().get();
          keyed.emplace_back(key, group);
        }
        group->members.push_back(ji);
        group_of[ji] = group;
      }
    }
    // Singleton groups have nobody to share with — drop them so plain
    // (non-matrix) sweeps never touch the memo machinery.
    for (MemoGroup*& group : group_of) {
      if (group != nullptr && group->members.size() < 2) {
        group = nullptr;
      }
    }
  }

  // Indexed result channel: workers publish at their canonical position,
  // the caller drains in order. A slot is either a row, an exception, or
  // (after cancellation) deliberately empty — the emission loop reads an
  // empty ready cell as "the frontier ends here".
  struct Cell {
    std::unique_ptr<SweepRow> row;
    std::exception_ptr error;
    int attempts = 1;
    bool ready = false;
  };
  std::vector<Cell> channel(jobs.size());
  std::mutex mutex;
  std::condition_variable published;
  bool cancelled = false;

  // Replay (--resume): journaled cells are pre-published as ready rows —
  // never submitted, never recomputed — and the caller re-emits their
  // journaled text.
  for (const std::size_t ji : spec.resume_done) {
    check(ji < jobs.size(),
          "resume index " + std::to_string(ji) +
              " is out of range for this sweep (" +
              std::to_string(jobs.size()) + " cells)");
    Cell& cell = channel[ji];
    cell.row = std::make_unique<SweepRow>();
    cell.row->job = jobs[ji];
    cell.row->replayed = true;
    cell.ready = true;
  }

  // Longest-job-first submission: descending size-based cost estimate,
  // canonical index as the deterministic tie-break. Without it the
  // biggest circuits land on workers last and their runtime caps the
  // sweep; the canonical emission channel makes the reordering invisible.
  std::vector<std::size_t> submission(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    submission[i] = i;
  }
  std::stable_sort(submission.begin(), submission.end(),
                   [&](std::size_t a, std::size_t b) {
                     return slots[a / cells]->nl.size() >
                            slots[b / cells]->nl.size();
                   });

  SweepStats stats;
  stats.total_cells = static_cast<long>(jobs.size());
  {
    // No point spawning more workers than there are jobs (a default
    // --jobs 0 single-circuit run on a many-core host would otherwise
    // create a pile of threads that never pop a task) — unless some cell
    // can fan its faults out, in which case the spare workers pick up
    // generation epochs and the full width stays. "Can shard" is judged
    // from the unexpanded netlist size with a generous fault-count proxy
    // (8x covers branch expansion): over-admitting parks a few idle
    // threads, under-admitting would forfeit the sharding speedup.
    bool shardable = false;
    if (spec.shard.policy == ShardConfig::Policy::Forced) {
      shardable = spec.shard.workers > 1;
    } else if (spec.shard.policy == ShardConfig::Policy::Auto &&
               spec.base.per_fault_seconds <= 0.0) {
      for (const auto& slot : slots) {
        if (8 * slot->nl.size() >= spec.shard.min_faults) {
          shardable = true;
          break;
        }
      }
    }
    unsigned width = ThreadPool::resolve_jobs(spec.jobs);
    if (!shardable) {
      width = std::min<unsigned>(
          width,
          static_cast<unsigned>(std::max<std::size_t>(1, jobs.size())));
    }
    // One cell of work. Defined recursively via std::function because a
    // producer submits its consumers from inside its own task. Declared
    // before the pool so it is still alive while the pool's destructor
    // joins workers whose producer tails call it.
    std::function<void(std::size_t)> submit_job;
    ThreadPool pool(width);
    pool.set_cancel_token(spec.cancel);

    submit_job = [&](std::size_t ji) {
      pool.submit([&, ji] {
        const SweepJob& job = jobs[ji];
        CircuitSlot* slot = slots[ji / cells].get();
        MemoGroup* group = group_of[ji];
        Cell cell;
        ErrorKind error_kind = ErrorKind::Internal;
        {
          const std::lock_guard<std::mutex> lock(mutex);
          if (cancelled || cancel_requested(spec.cancel)) {
            cell.ready = true;  // publish an empty cell so nobody waits
          }
        }
        if (!cell.ready && slot->load_error) {
          // The circuit never loaded (skip/retry already spent its
          // retries up front): every cell of the slot carries that error.
          cell.error = slot->load_error;
          classify_error(cell.error, &error_kind, nullptr);
          cell.ready = true;
        }
        if (!cell.ready) {
          for (int attempt = 1;; ++attempt) {
            cell.attempts = attempt;
            try {
              if (cancel_requested(spec.cancel)) {
                throw_cancelled();
              }
              fi::fire_stall(job.circuit.label, spec.cancel);
              fi::fire_cell_throw(job.circuit.label);
              AtpgSession session(slot->context_for(job.options),
                                  job.options, job.order);
              if (group != nullptr && ji != group->producer() &&
                  group->verdicts != nullptr) {
                session.set_untestable_memo(group->verdicts);
              }
              const core::FogbusterResult result = session.run(pool,
                                                               spec.shard);
              cell.row = std::make_unique<SweepRow>();
              cell.row->job = job;
              cell.row->table =
                  core::make_table3_row(job.circuit.label, result);
              cell.row->stages = result.stages;
              cell.row->memo_hits = result.memo_hits;
              if (group != nullptr && ji == group->producer()) {
                // Publish-after-cell: the verdict set becomes visible
                // only as a completed whole, and only then do the
                // consumers enter the pool (the submission lock orders
                // the write).
                auto verdicts = std::make_shared<std::vector<bool>>(
                    result.status.size(), false);
                for (std::size_t f = 0; f < result.status.size(); ++f) {
                  (*verdicts)[f] =
                      result.status[f] == core::FaultStatus::Untestable;
                }
                group->verdicts = std::move(verdicts);
              }
            } catch (const Error& e) {
              // Only Resource failures (transient I/O) are worth
              // re-running: Input/Internal are deterministic and
              // Cancelled is a request to stop, not a fault.
              if (spec.on_error.mode == ErrorPolicy::Mode::Retry &&
                  e.kind() == ErrorKind::Resource &&
                  attempt <= spec.on_error.retries &&
                  !cancel_requested(spec.cancel)) {
                retry_backoff(attempt);
                continue;
              }
              cell.error = std::current_exception();
              error_kind = e.kind();
            } catch (...) {
              cell.error = std::current_exception();
            }
            break;
          }
          cell.ready = true;
        }
        const bool cell_failed = cell.error != nullptr;
        {
          const std::lock_guard<std::mutex> lock(mutex);
          channel[ji] = std::move(cell);
        }
        published.notify_all();
        // A failed producer under skip/retry still submits its consumers
        // (memo-less): their rows are wanted past the producer's error
        // row, and nobody else will start them. Under abort — or on
        // cancellation — emission stops at the producer's earlier
        // canonical index and never waits on the consumers.
        const bool unblock_consumers =
            cell_failed && spec.on_error.mode != ErrorPolicy::Mode::Abort &&
            error_kind != ErrorKind::Cancelled;
        if (group != nullptr && ji == group->producer() &&
            (group->verdicts != nullptr || unblock_consumers)) {
          for (const std::size_t consumer : group->members) {
            if (consumer != ji) {
              submit_job(consumer);
            }
          }
        }
      });
    };

    for (const std::size_t ji : submission) {
      // Replayed cells are already published; consumers wait for their
      // producer's published memo; everyone else starts now.
      const MemoGroup* group = group_of[ji];
      if (channel[ji].ready) {
        continue;
      }
      if (group == nullptr || ji == group->producer()) {
        submit_job(ji);
      }
    }

    // Deterministic emission: row i is handed out only after rows 0..i-1,
    // whatever order the workers finish in. Cancellation truncates the
    // canonical frontier here — rows already emitted stay final, nothing
    // past the first incomplete position is handed out.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      std::unique_lock<std::mutex> lock(mutex);
      published.wait(lock, [&] { return channel[i].ready; });
      Cell cell;
      cell.row = std::move(channel[i].row);
      cell.error = channel[i].error;
      cell.attempts = channel[i].attempts;
      if (cell.error) {
        ErrorKind kind = ErrorKind::Internal;
        std::string message;
        classify_error(cell.error, &kind, &message);
        if (kind == ErrorKind::Cancelled) {
          cancelled = true;
          stats.interrupted = true;
          break;
        }
        if (spec.on_error.mode == ErrorPolicy::Mode::Abort) {
          cancelled = true;  // remaining workers fast-forward
          lock.unlock();
          std::rethrow_exception(cell.error);
        }
        lock.unlock();
        SweepRow row;
        row.job = jobs[i];
        row.error = std::move(message);
        row.error_kind = kind;
        row.attempts = cell.attempts;
        emit(row);
        ++stats.emitted;
        ++stats.error_cells;
        stats.retries += cell.attempts - 1;
        continue;
      }
      if (!cell.row) {
        // An empty published cell: a worker fast-forwarded after the
        // cancel token fired. The frontier ends here.
        cancelled = true;
        stats.interrupted = true;
        break;
      }
      lock.unlock();
      cell.row->attempts = cell.attempts;
      emit(*cell.row);
      ++stats.emitted;
      stats.retries += cell.attempts - 1;
      if (cell.row->replayed) {
        ++stats.replayed_cells;
      }
      if (cell.row->memo_hits > 0) {
        stats.memo_hits += cell.row->memo_hits;
        ++stats.memo_reused_cells;
      }
    }
  }  // joins the pool before the channel goes out of scope
  return stats;
}

}  // namespace gdf::run
