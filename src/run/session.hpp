// AtpgSession — one self-contained, thread-safe unit of ATPG work.
//
// A session owns every piece of mutable state a run needs (the Fogbuster
// flow with its TDgen searches, SEMILET engines, FAUSIM/TDsim simulators
// and the X-fill RNG) and shares only the immutable CircuitContext.
// Sessions built on one context never touch each other: run any number of
// them from different threads concurrently.
//
// run() is reentrant — the per-run state is reset on entry, so calling it
// twice on one session gives bit-identical results, equal to two fresh
// sessions (and to two fresh processes). Tests assert this.
#pragma once

#include <memory>
#include <vector>

#include "core/context.hpp"
#include "core/fogbuster.hpp"
#include "core/options.hpp"
#include "run/fault_order.hpp"
#include "run/shard.hpp"

namespace gdf::run {

class AtpgSession {
 public:
  /// Builds a session over a shared context. Throws gdf::Error when the
  /// context is structurally incompatible with `options`.
  AtpgSession(std::shared_ptr<const core::CircuitContext> context,
              core::AtpgOptions options = {},
              FaultOrder order = FaultOrder::Static);

  /// Convenience: builds a private context from the raw circuit.
  explicit AtpgSession(const net::Netlist& circuit,
                       core::AtpgOptions options = {},
                       FaultOrder order = FaultOrder::Static);

  const core::CircuitContext& context() const { return *ctx_; }
  const core::AtpgOptions& options() const { return options_; }
  FaultOrder fault_order() const { return order_; }

  /// One complete ATPG run. Reentrant and deterministic.
  core::FogbusterResult run();

  /// Like run(), but when `shard` applies (policy, circuit size, pool
  /// width — see shard_workers), generation is epoch-sharded across
  /// `pool`. Byte-identical to run() in every case; the calling thread
  /// helps with its own epochs, so this is safe from inside pool tasks.
  core::FogbusterResult run(ThreadPool& pool, const ShardConfig& shard);

  /// Shares untestability verdicts proven by an earlier run over the same
  /// context + generation configuration (see Fogbuster::
  /// set_untestable_memo; run/sweep publishes these per cell group).
  void set_untestable_memo(std::shared_ptr<const std::vector<bool>> memo);

 private:
  std::shared_ptr<const core::CircuitContext> ctx_;
  core::AtpgOptions options_;
  FaultOrder order_;
  /// Targeting permutation, computed once on first run() (it is a pure
  /// function of context + options, so reuse is sound).
  std::vector<std::size_t> target_order_;
  bool order_ready_ = false;
  core::Fogbuster flow_;
};

}  // namespace gdf::run
