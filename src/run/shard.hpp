// Epoch-based intra-circuit fault sharding (--shard-faults).
//
// The paper's flow is inherently sequential: faults are targeted one by
// one, and after every success the generated sequence is fault-simulated
// so accidentally detected faults are dropped — which faults get targeted
// at all therefore depends on every earlier dropping decision, and the
// X-fill RNG stream threads through the dropping passes in order.
//
// The epoch engine parallelizes the expensive half (test generation)
// while replaying the order-sensitive half (dropping) sequentially:
//
//   1. Select the next E still-untested faults in targeting order (an
//      epoch). Generation for one fault reads only the immutable
//      CircuitContext + options, so the epoch's faults generate
//      concurrently on the shared run/ThreadPool (fork-join group; the
//      orchestrating thread helps).
//   2. Barrier. Replay the epoch in targeting order: skip faults a
//      previous epoch-mate's test already dropped, adopt each remaining
//      fault's precomputed verdict, and push every accepted test through
//      the batched FAUSIM/TDsim dropping pass — in canonical order, on
//      one thread, consuming the X-fill stream exactly like the
//      sequential run.
//
// Dropping can only *remove* later targets, never add them, so the
// sequential run's targets are always a subset of the epochs' — the
// replay reproduces the sequential run's dropping decisions, pattern
// sets, stage counters and CSV row byte-for-byte, for any worker count
// and any epoch size. The only cost is wasted speculative generation for
// faults dropped by an epoch-mate (bounded by the epoch size; untestable
// and aborted verdicts are never wasted — those faults are never
// dropped). The determinism ctests assert the equality end to end.
//
// One caveat: a per-fault wall-clock cap (--per-fault-seconds) makes
// verdicts timing-dependent, sequentially and sharded alike; Auto
// declines to shard such runs so the default configurations stay
// byte-stable.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "core/fogbuster.hpp"
#include "run/thread_pool.hpp"

namespace gdf::run {

/// When and how wide a single ATPG run shards its fault list.
struct ShardConfig {
  enum class Policy : std::uint8_t {
    Off,     ///< sequential per-cell runs (the pre-sharding behavior)
    Auto,    ///< shard large circuits when the pool has spare workers
    Forced,  ///< always shard, with `workers` generation slices
  };

  Policy policy = Policy::Off;
  /// Generation parallelism for Forced (Auto derives it from the pool).
  unsigned workers = 0;
  /// Faults generated per epoch; 0 = scale with the worker count.
  std::size_t epoch_size = 0;
  /// Auto only shards circuits with at least this many faults — below
  /// it the per-epoch barrier costs more than the parallelism returns.
  std::size_t min_faults = 1500;

  bool operator==(const ShardConfig&) const = default;
};

/// Parses a --shard-faults value: "off" | "auto" | a positive worker
/// count. Throws gdf::Error otherwise.
ShardConfig parse_shard_faults(std::string_view text);
std::string shard_faults_name(const ShardConfig& config);

/// Generation parallelism the config yields for a run with `fault_count`
/// faults on `pool`: 0 = do not shard (run sequentially).
unsigned shard_workers(const ShardConfig& config, const ThreadPool& pool,
                       std::size_t fault_count, double per_fault_seconds);

/// The epoch size actually used (config override or the worker-scaled
/// default).
std::size_t shard_epoch_size(const ShardConfig& config, unsigned workers);

/// One complete ATPG run with epoch-sharded generation, byte-identical
/// to flow.run(target_order). `epoch_size` must be at least 1.
core::FogbusterResult run_sharded(core::Fogbuster& flow,
                                  std::span<const std::size_t> target_order,
                                  ThreadPool& pool, std::size_t epoch_size);

}  // namespace gdf::run
