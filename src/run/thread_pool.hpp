// A small work-stealing thread pool for whole-ATPG-run granularity, plus
// fork-join task groups for intra-run fault sharding.
//
// Each worker owns a deque: it pops its own work FIFO (submission order is
// the scheduler's priority order — see run/sweep's longest-job-first
// pass) and steals FIFO from the other workers when its deque runs dry,
// so a skewed submission still keeps every worker busy. Tasks here are
// entire ATPG runs or epoch-generation slices — micro- to multi-second
// each — so all queues share one mutex; the queue operations are
// nanoseconds against that grain and a single lock keeps the pool
// trivially race-free.
//
// A Group is a fork-join region inside one task: submit(group, ...) fans
// work out, wait(group) joins. The waiting thread *helps* — it executes
// the group's own tasks while it waits — so a worker running a sharded
// ATPG cell can fan its epochs out on the same pool without ever
// deadlocking (even a single-threaded pool makes progress: the waiter
// drains its own group). Idle workers pick group tasks up too, which is
// what lets one big circuit spread over every core.
//
// The pool never touches the results: tasks communicate through whatever
// channel the caller closes over (see run_sweep, which restores
// deterministic ordering on the consumer side; wait(group) establishes
// the happens-before edge for the epoch barrier).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "base/cancel.hpp"

namespace gdf::run {

class ThreadPool {
 public:
  /// A fork-join region: tasks submitted against a group are counted, and
  /// wait() returns only when every one of them has finished. A Group is
  /// owned by the caller, must outlive its tasks, and is reusable after a
  /// completed wait(). Not copyable or movable (workers hold pointers).
  class Group {
   public:
    Group() = default;
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

   private:
    friend class ThreadPool;
    std::deque<std::function<void()>> tasks;  ///< guarded by pool mutex
    std::size_t pending = 0;  ///< submitted, not yet finished
    bool queued = false;      ///< registered in groups_ (tasks nonempty)
    // Completion is signalled on the *pool's* group_done_ CV, not a
    // per-group one: a waiter may destroy its Group the instant pending
    // hits zero, and the signalling thread must not touch freed memory.
  };

  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(unsigned threads);

  /// Signals shutdown and joins. Tasks still queued when the destructor
  /// runs are dropped, not executed — drain your channel (and wait() your
  /// groups) first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task (round-robin across worker deques). Thread-safe.
  void submit(std::function<void()> task);

  /// Enqueues a task against `group`. Thread-safe; callable from inside
  /// pool tasks (that is the sharding pattern).
  void submit(Group& group, std::function<void()> task);

  /// Blocks until every task submitted against `group` has finished,
  /// executing the group's queued tasks on the calling thread while it
  /// waits. Callable from worker threads and external threads alike. If
  /// a helped task throws, the group is still fully quiesced (remaining
  /// tasks run, accounting intact) before the first exception is
  /// rethrown; group tasks run by pool workers must not throw (like
  /// plain submits, a worker-side throw terminates).
  void wait(Group& group);

  unsigned thread_count() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Wires a cancellation token through the pool: the pool itself keeps
  /// scheduling (tasks must run so channels drain), but cooperative
  /// consumers — the epoch engine between barriers, the flow's decision
  /// loops — poll it via cancel_token()/cancel_requested() and unwind
  /// early. Set before tasks that should observe it are submitted; pass
  /// nullptr to unwire.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }
  const CancelToken* cancel_token() const { return cancel_; }
  bool cancel_requested() const { return gdf::cancel_requested(cancel_); }

  /// Maps a --jobs style request onto a worker count: 0 means "use the
  /// hardware", and the result is always at least 1.
  static unsigned resolve_jobs(unsigned requested);

 private:
  void worker_loop(std::size_t self);
  /// Pops the next task for worker `self` (own front, then a registered
  /// group's front, then steal another deque's front). Caller holds
  /// mutex_.
  bool pop_task(std::size_t self, std::function<void()>* task);
  /// Pops the front task of `group`'s queue, deregistering the group when
  /// that empties it. Caller holds mutex_.
  std::function<void()> pop_group_task(Group& group);
  void finish_group_task(Group& group);

  std::mutex mutex_;
  std::condition_variable wake_;
  /// Signalled whenever any group's pending count reaches zero; waiters
  /// re-check their own group. Pool-owned so it outlives every Group.
  std::condition_variable group_done_;
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<Group*> groups_;  ///< groups with queued tasks, FIFO
  std::size_t next_queue_ = 0;  ///< round-robin submission cursor
  bool stop_ = false;
  const CancelToken* cancel_ = nullptr;  ///< see set_cancel_token
  std::vector<std::thread> threads_;
};

}  // namespace gdf::run
