// A small work-stealing thread pool for whole-ATPG-run granularity.
//
// Each worker owns a deque: it pops its own work LIFO (cache-warm) and
// steals FIFO from the other workers when its deque runs dry, so a skewed
// submission (one circuit far slower than the rest) still keeps every
// worker busy. Tasks here are entire ATPG runs — seconds each — so all
// deques share one mutex; the queue operations are nanoseconds against
// that grain and a single lock keeps the pool trivially race-free.
//
// The pool never touches the results: tasks communicate through whatever
// channel the caller closes over (see SweepOrchestrator, which restores
// deterministic ordering on the consumer side).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gdf::run {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(unsigned threads);

  /// Signals shutdown and joins. Tasks still queued when the destructor
  /// runs are dropped, not executed — drain your channel first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task (round-robin across worker deques). Thread-safe.
  void submit(std::function<void()> task);

  unsigned thread_count() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Maps a --jobs style request onto a worker count: 0 means "use the
  /// hardware", and the result is always at least 1.
  static unsigned resolve_jobs(unsigned requested);

 private:
  void worker_loop(std::size_t self);
  /// Pops the next task for worker `self` (own back first, then steal
  /// another deque's front). Caller holds mutex_.
  bool pop_task(std::size_t self, std::function<void()>* task);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<std::deque<std::function<void()>>> queues_;
  std::size_t next_queue_ = 0;  ///< round-robin submission cursor
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace gdf::run
