// Fault targeting order policies (--fault-order).
//
// The flow targets untested faults one by one; after each success, fault
// simulation drops every accidentally detected fault. Which fault gets
// targeted *next* therefore shapes the final test set: targeting
// hard-to-detect faults first lets their (long, information-rich)
// sequences sweep away the easy faults for free.
//
//  * Static — the canonical enumeration order (line id ascending, StR
//    before StF); the paper's setup and the default.
//  * Random — a seeded Fisher-Yates shuffle; the baseline ordering
//    experiments are measured against.
//  * Adi — accidental detection index (Pomeranz & Reddy): fault-simulate a
//    fixed budget of random sequences with the batched TDsim engine, count
//    how often each fault is detected by chance, and target the rarely-hit
//    faults first.
//
// All three are deterministic in (context, options): the same inputs
// always produce the same permutation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/context.hpp"
#include "core/options.hpp"

namespace gdf::run {

enum class FaultOrder : std::uint8_t { Static, Random, Adi };

std::string_view fault_order_name(FaultOrder order);

/// Parses "static" | "random" | "adi"; throws gdf::Error otherwise.
FaultOrder parse_fault_order(std::string_view text);

/// Produces the targeting permutation of ctx.faults() for the policy.
/// Random and Adi derive their randomness from options.fill_seed.
std::vector<std::size_t> make_fault_order(const core::CircuitContext& ctx,
                                          FaultOrder order,
                                          const core::AtpgOptions& options);

}  // namespace gdf::run
