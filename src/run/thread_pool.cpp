#include "run/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace gdf::run {

ThreadPool::ThreadPool(unsigned threads)
    : queues_(std::max(1u, threads)) {
  threads_.reserve(queues_.size());
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  wake_.notify_one();
}

bool ThreadPool::pop_task(std::size_t self, std::function<void()>* task) {
  if (!queues_[self].empty()) {
    *task = std::move(queues_[self].back());
    queues_[self].pop_back();
    return true;
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    std::deque<std::function<void()>>& victim =
        queues_[(self + k) % queues_.size()];
    if (!victim.empty()) {
      *task = std::move(victim.front());
      victim.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || pop_task(self, &task); });
      if (!task) {
        return;  // stop requested and nothing left to run
      }
    }
    task();
  }
}

unsigned ThreadPool::resolve_jobs(unsigned requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace gdf::run
