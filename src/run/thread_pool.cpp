#include "run/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace gdf::run {

ThreadPool::ThreadPool(unsigned threads)
    : queues_(std::max(1u, threads)) {
  threads_.reserve(queues_.size());
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  wake_.notify_one();
}

void ThreadPool::submit(Group& group, std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // push_back before ++pending: if the push throws, the count must not
    // have drifted (a phantom pending wedges wait() forever).
    group.tasks.push_back(std::move(task));
    ++group.pending;
    if (!group.queued) {
      group.queued = true;
      groups_.push_back(&group);
    }
  }
  wake_.notify_one();
  // A waiter already parked on this group must see the new task too —
  // it may be the only thread left to run it.
  group_done_.notify_all();
}

std::function<void()> ThreadPool::pop_group_task(Group& group) {
  std::function<void()> task = std::move(group.tasks.front());
  group.tasks.pop_front();
  if (group.tasks.empty()) {
    group.queued = false;
    groups_.erase(std::find(groups_.begin(), groups_.end(), &group));
  }
  return task;
}

void ThreadPool::finish_group_task(Group& group) {
  bool last = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    last = --group.pending == 0;
  }
  // After the unlock this thread never touches `group` again — a waiter
  // may already be destroying it. The CV is pool-owned precisely so this
  // notify is on memory that outlives the group.
  if (last) {
    group_done_.notify_all();
  }
}

void ThreadPool::wait(Group& group) {
  // A helped task that throws must not leave the join early: the group's
  // remaining tasks still point at the caller's Group object, so wait()
  // first quiesces the group completely (accounting intact), then
  // rethrows the first exception.
  std::exception_ptr error;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!group.tasks.empty()) {
      // Help: run the group's own next task on this thread. Never steals
      // unrelated work — the waiter's latency is bounded by its group.
      std::function<void()> task = pop_group_task(group);
      lock.unlock();
      try {
        task();
      } catch (...) {
        if (!error) {
          error = std::current_exception();
        }
      }
      finish_group_task(group);
      lock.lock();
      continue;
    }
    if (group.pending == 0) {
      break;
    }
    group_done_.wait(lock);
  }
  lock.unlock();
  if (error) {
    std::rethrow_exception(error);
  }
}

bool ThreadPool::pop_task(std::size_t self, std::function<void()>* task) {
  if (!queues_[self].empty()) {
    *task = std::move(queues_[self].front());
    queues_[self].pop_front();
    return true;
  }
  // Fork-join group tasks next: helping a sharded run already in flight
  // beats starting fresh work for tail latency. The popped closure is
  // wrapped so the group's accounting happens wherever it runs.
  if (!groups_.empty()) {
    Group& group = *groups_.front();
    std::function<void()> inner = pop_group_task(group);
    *task = [this, &group, inner = std::move(inner)] {
      // Accounting must survive a throwing task — a leaked pending count
      // wedges wait() forever. (A throw here still terminates like any
      // throwing pool task; the waiter-helping path in wait() is the one
      // that reports exceptions gracefully.)
      try {
        inner();
      } catch (...) {
        finish_group_task(group);
        throw;
      }
      finish_group_task(group);
    };
    return true;
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    std::deque<std::function<void()>>& victim =
        queues_[(self + k) % queues_.size()];
    if (!victim.empty()) {
      *task = std::move(victim.front());
      victim.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || pop_task(self, &task); });
      if (!task) {
        return;  // stop requested and nothing left to run
      }
    }
    task();
  }
}

unsigned ThreadPool::resolve_jobs(unsigned requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace gdf::run
