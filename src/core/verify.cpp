#include "core/verify.hpp"

#include "base/error.hpp"
#include "sim/seq_sim.hpp"

namespace gdf::core {

using alg::kCarrierSet;
using alg::kEmptySet;
using alg::NodeId;
using alg::V8;
using alg::VSet;
using sim::Lv;

namespace {

int lv_bit(Lv v) {
  if (v == Lv::Zero) {
    return 0;
  }
  if (v == Lv::One) {
    return 1;
  }
  return -1;
}

bool carrier_only(VSet s) {
  return s != kEmptySet && (s & ~kCarrierSet) == 0;
}

}  // namespace

VerifyReport verify_sequence(const alg::AtpgModel& model,
                             const alg::DelayAlgebra& algebra,
                             const TestSequence& sequence) {
  const net::Netlist& nl = model.netlist();
  sim::SeqSimulator simulator(nl);

  // 1. Synchronization replay from the all-X power-up state.
  sim::StateVec s0 = simulator.unknown_state();
  std::vector<Lv> lines;
  for (const sim::InputVec& pis : sequence.init_frames) {
    simulator.eval_frame(pis, s0, lines);
    s0 = simulator.next_state(lines);
  }
  for (std::size_t k = 0; k < sequence.required_s0.size(); ++k) {
    const int need = sequence.required_s0[k];
    if (need >= 0 && lv_bit(s0[k]) != need) {
      return {false, "synchronization fails to establish S0 bit " +
                         std::to_string(k)};
    }
  }

  // 2. The two local frames.
  simulator.eval_frame(sequence.v1, s0, lines);
  const sim::StateVec s1 = simulator.next_state(lines);

  alg::TwoFrameStimulus stimulus;
  stimulus.pi_sets.reserve(nl.inputs().size());
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    stimulus.pi_sets.push_back(alg::vset_primary_from_frames(
        lv_bit(sequence.v1[i]), lv_bit(sequence.v2[i])));
  }
  stimulus.ppi_sets.reserve(nl.dffs().size());
  for (std::size_t k = 0; k < nl.dffs().size(); ++k) {
    stimulus.ppi_sets.push_back(
        alg::vset_primary_from_frames(lv_bit(s0[k]), lv_bit(s1[k])));
  }

  const alg::FaultSpec spec{model.head_of(sequence.target.line),
                            sequence.target.slow_to_rise};
  alg::TwoFrameSim frame_sim(model, algebra);
  std::vector<VSet> injected;
  frame_sim.run(stimulus, &spec, injected);

  for (const NodeId obs : model.observation_points()) {
    if (model.node(obs).is_po && carrier_only(injected[obs])) {
      return {true, {}};
    }
  }

  // 3. The fault effect must sit in the register and reach a PO through
  // the propagation frames. Build the good/faulty captured states: steady
  // clean values are definite, carriers resolve to good-final vs
  // faulty-final, everything else is an unknown capture under the fast
  // clock.
  bool any_effect = false;
  sim::StateVec good(nl.dffs().size(), Lv::X);
  sim::StateVec faulty(nl.dffs().size(), Lv::X);
  for (std::size_t k = 0; k < nl.dffs().size(); ++k) {
    const VSet s = injected[model.ppo_node(k)];
    if (s == alg::vset_of(V8::Zero)) {
      good[k] = faulty[k] = Lv::Zero;
    } else if (s == alg::vset_of(V8::One)) {
      good[k] = faulty[k] = Lv::One;
    } else if (s == alg::vset_of(V8::RiseC)) {
      good[k] = Lv::One;
      faulty[k] = Lv::Zero;
      any_effect = true;
    } else if (s == alg::vset_of(V8::FallC)) {
      good[k] = Lv::Zero;
      faulty[k] = Lv::One;
      any_effect = true;
    }
  }
  if (!any_effect) {
    return {false, "fault effect reaches neither a PO nor a definite PPO"};
  }

  std::vector<Lv> good_lines, faulty_lines;
  for (const sim::InputVec& pis : sequence.prop_frames) {
    simulator.eval_frame(pis, good, good_lines);
    simulator.eval_frame(pis, faulty, faulty_lines);
    for (const net::GateId po : nl.outputs()) {
      if (sim::is_binary(good_lines[po]) &&
          sim::is_binary(faulty_lines[po]) &&
          good_lines[po] != faulty_lines[po]) {
        return {true, {}};
      }
    }
    good = simulator.next_state(good_lines);
    faulty = simulator.next_state(faulty_lines);
  }
  return {false, "captured fault effect never reaches a primary output"};
}

}  // namespace gdf::core
