#include "core/context.hpp"

#include "netlist/fanout.hpp"

namespace gdf::core {

CircuitContext::CircuitContext(const net::Netlist& circuit,
                               const AtpgOptions& options)
    : expand_branches_(options.expand_branches),
      fault_sites_(options.fault_sites),
      nl_(options.expand_branches ? net::expand_fanout_branches(circuit)
                                  : circuit),
      model_(nl_),
      flat_(sim::FlatCircuit::build(nl_)),
      faults_(tdgen::enumerate_faults(nl_, options.fault_sites)) {}

std::shared_ptr<const CircuitContext> CircuitContext::build(
    const net::Netlist& circuit, const AtpgOptions& options) {
  // Not make_shared: the constructor is private and the context must be
  // heap-pinned anyway (model_ points into nl_).
  return std::shared_ptr<const CircuitContext>(
      new CircuitContext(circuit, options));
}

bool CircuitContext::structurally_compatible(
    const AtpgOptions& options) const {
  return options.expand_branches == expand_branches_ &&
         options.fault_sites == fault_sites_;
}

}  // namespace gdf::core
