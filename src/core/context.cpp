#include "core/context.hpp"

#include "netlist/fanout.hpp"
#include "sim/backend.hpp"

namespace gdf::core {

CircuitContext::CircuitContext(const net::Netlist& circuit,
                               const AtpgOptions& options)
    : expand_branches_(options.expand_branches),
      fault_sites_(options.fault_sites),
      nl_(options.expand_branches ? net::expand_fanout_branches(circuit)
                                  : circuit),
      model_(nl_),
      flat_(sim::FlatCircuit::build(nl_)),
      faults_(tdgen::enumerate_faults(nl_, options.fault_sites)) {}

std::shared_ptr<const CircuitContext> CircuitContext::build(
    const net::Netlist& circuit, const AtpgOptions& options) {
  // Not make_shared: the constructor is private and the context must be
  // heap-pinned anyway (model_ points into nl_).
  return std::shared_ptr<const CircuitContext>(
      new CircuitContext(circuit, options));
}

const alg::DelayAlgebra& CircuitContext::algebra(alg::Mode mode) const {
  if (mode == alg::Mode::Robust) {
    std::call_once(robust_once_, [this] {
      robust_algebra_ = alg::shared_algebra(alg::Mode::Robust);
    });
    return *robust_algebra_;
  }
  std::call_once(nonrobust_once_, [this] {
    nonrobust_algebra_ = alg::shared_algebra(alg::Mode::NonRobust);
  });
  return *nonrobust_algebra_;
}

std::unique_ptr<sim::SimBackend> CircuitContext::make_sim_backend(
    sim::LaneSpec spec) const {
  return sim::make_sim_backend(flat_, sim::resolve_lane_count(spec));
}

bool CircuitContext::structurally_compatible(
    const AtpgOptions& options) const {
  return options.expand_branches == expand_branches_ &&
         options.fault_sites == fault_sites_;
}

}  // namespace gdf::core
