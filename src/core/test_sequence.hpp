// A complete gate-delay-fault test for a non-scan circuit — the time frame
// model of the paper's Figure 2: synchronizing frames and the initial
// frame under the slow clock, one fast frame that exposes the fault, and
// propagation frames under the slow clock that carry the captured fault
// effect to a primary output.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/logic.hpp"
#include "sim/seq_sim.hpp"
#include "tdgen/fault.hpp"
#include "tdgen/local_test.hpp"

namespace gdf::core {

enum class ClockKind : std::uint8_t { Slow, Fast };

struct TestSequence {
  tdgen::DelayFault target;

  std::vector<sim::InputVec> init_frames;  ///< synchronization, slow clock
  sim::InputVec v1;                        ///< initial frame, slow clock
  sim::InputVec v2;                        ///< test frame, fast clock
  std::vector<sim::InputVec> prop_frames;  ///< propagation, slow clock

  /// Required state entering v1 (-1 = don't care) — what the
  /// synchronization established.
  std::vector<int> required_s0;
  /// Boundary classification of every PPO after the fast frame.
  std::vector<tdgen::PpoKind> boundary;
  /// Flip-flops whose boundary value the propagation phase relies on.
  std::vector<std::size_t> needed_ppos;
  /// True when the fault is observed directly at a PO of the fast frame.
  bool observed_at_po = false;

  /// Paper's pattern count: initialization + both local frames +
  /// propagation.
  std::size_t pattern_count() const {
    return init_frames.size() + 2 + prop_frames.size();
  }

  /// All vectors in application order.
  std::vector<sim::InputVec> all_frames() const;

  /// Index of the fast-clock vector within all_frames().
  std::size_t fast_index() const { return init_frames.size() + 1; }

  /// Clock annotation per vector of all_frames().
  std::vector<ClockKind> clocks() const;
};

}  // namespace gdf::core
