// Rendering of benchmark results in the layout of the paper's Table 3 and
// of the Figure 4 stage statistics.
#pragma once

#include <string>

#include "core/fogbuster.hpp"

namespace gdf::core {

struct Table3Row {
  std::string circuit;
  int tested = 0;
  int untestable = 0;
  int aborted = 0;
  std::size_t patterns = 0;
  double seconds = 0.0;
};

Table3Row make_table3_row(const std::string& circuit,
                          const FogbusterResult& result);

/// "circuit   tested  untstbl aborted  #pat  time[s]"
std::string table3_header();
std::string format_table3_row(const Table3Row& row);

/// Multi-line rendering of the per-stage outcome counters.
std::string format_stage_stats(const StageStats& stages);

}  // namespace gdf::core
