// Public entry point of the library: robust gate delay fault test
// generation for non-scan synchronous sequential circuits (van Brakel,
// Gläser, Kerkhoff, Vierhaus — DATE 1995).
//
// Quick use:
//   net::Netlist circuit = circuits::load_circuit("s27");
//   core::FogbusterResult r = core::run_delay_atpg(circuit);
//   std::cout << core::format_table3_row(
//       core::make_table3_row(circuit.name(), r));
#pragma once

#include "core/fogbuster.hpp"   // IWYU pragma: export
#include "core/options.hpp"     // IWYU pragma: export
#include "core/report.hpp"      // IWYU pragma: export
#include "core/test_sequence.hpp"  // IWYU pragma: export
#include "core/verify.hpp"      // IWYU pragma: export

namespace gdf::core {

/// Runs the complete flow (fault enumeration, generation per fault with
/// the paper's abort limits, fault dropping) on `circuit`.
FogbusterResult run_delay_atpg(const net::Netlist& circuit,
                               const AtpgOptions& options = {});

}  // namespace gdf::core
