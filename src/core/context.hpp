// CircuitContext — the immutable, shareable half of an ATPG run.
//
// Everything the flow derives from the circuit structure alone lives here:
// the (optionally fanout-expanded) working netlist, the decomposed
// eight-valued model, the flat simulation form, and the canonical fault
// list. None of it changes after build(), so one context can back any
// number of concurrent AtpgSessions/Fogbusters — each of those owns its
// own mutable engines (search state, simulators' scratch, RNG) and shares
// the context via shared_ptr.
//
// Two AtpgOptions produce the same context iff their structural knobs
// (expand_branches, fault_sites) agree; the per-run knobs (algebra mode,
// backtrack limits, seed, fault dropping, TDsim engine) do not enter the
// context. `structurally_compatible` is the exact predicate.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "algebra/model.hpp"
#include "algebra/tables.hpp"
#include "base/clause_arena.hpp"
#include "core/options.hpp"
#include "netlist/netlist.hpp"
#include "sim/flat_circuit.hpp"
#include "tdgen/fault.hpp"

namespace gdf::sim {
class SimBackend;
}  // namespace gdf::sim

namespace gdf::core {

class CircuitContext {
 public:
  /// Builds the shared structure for `circuit` under `options`'s
  /// structural configuration. The netlist is copied (and expanded when
  /// options.expand_branches is set), so the argument need not outlive the
  /// context.
  static std::shared_ptr<const CircuitContext> build(
      const net::Netlist& circuit, const AtpgOptions& options = {});

  /// The working netlist every fault and node id refers to (expanded when
  /// built that way).
  const net::Netlist& netlist() const { return nl_; }
  const alg::AtpgModel& model() const { return model_; }
  const std::shared_ptr<const sim::FlatCircuit>& flat() const {
    return flat_;
  }

  /// Canonical fault list (line id ascending, StR before StF) — the order
  /// every FogbusterResult reports in, whatever the targeting order.
  const std::vector<tdgen::DelayFault>& faults() const { return faults_; }

  /// The memoized set-operator tables, co-owned by the context: built once
  /// per process and shared by every session on this context instead of
  /// being materialized per run. Acquired lazily per mode (thread-safe),
  /// so a robust-only process never builds the non-robust tables.
  const alg::DelayAlgebra& algebra(alg::Mode mode) const;

  /// True when `options` would derive this exact structure. Lane width
  /// (options.lanes) is deliberately not structural: every backend
  /// computes identical results, so contexts are shared across widths.
  bool structurally_compatible(const AtpgOptions& options) const;

  /// Builds a batched simulation backend over the shared flat form at the
  /// spec's resolved lane width — the seam a GPU drop-in reimplements
  /// (see sim/backend.hpp). Each caller owns its backend; the context
  /// stays immutable.
  std::unique_ptr<sim::SimBackend> make_sim_backend(sim::LaneSpec spec) const;

  /// The cross-fault learned-clause store for --learn shared, one per
  /// algebra mode (a clause's validity rests on the mode's implication
  /// tables). Internally synchronized — the structural context stays
  /// logically immutable; this is a cache of derived facts about it.
  base::ClauseStore& learned_clauses(alg::Mode mode) const {
    return mode == alg::Mode::Robust ? robust_clauses_ : nonrobust_clauses_;
  }

  CircuitContext(const CircuitContext&) = delete;
  CircuitContext& operator=(const CircuitContext&) = delete;

 private:
  CircuitContext(const net::Netlist& circuit, const AtpgOptions& options);

  bool expand_branches_;
  tdgen::FaultListOptions fault_sites_;
  mutable std::once_flag robust_once_;
  mutable std::once_flag nonrobust_once_;
  mutable std::shared_ptr<const alg::DelayAlgebra> robust_algebra_;
  mutable std::shared_ptr<const alg::DelayAlgebra> nonrobust_algebra_;
  mutable base::ClauseStore robust_clauses_;
  mutable base::ClauseStore nonrobust_clauses_;
  net::Netlist nl_;
  alg::AtpgModel model_;  ///< holds a pointer to nl_: address-stable here
  std::shared_ptr<const sim::FlatCircuit> flat_;
  std::vector<tdgen::DelayFault> faults_;
};

}  // namespace gdf::core
