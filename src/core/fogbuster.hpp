// The extended FOGBUSTER algorithm (paper Figure 4): the complete flow
// combining TDgen and SEMILET for robust gate delay fault test generation
// in non-scan synchronous sequential circuits.
//
// Per fault:
//   1. local test generation (TDgen, two frames, fault site to PO or PPO);
//   2. if the effect sits at a PPO: forward propagation to a PO (SEMILET);
//   3. propagation justification — reverse time, with requirements on the
//      fast-frame boundary handed back to TDgen as pinned PPOs (re-entry);
//   4. justification of the test frames and synchronization of the
//      required initial state from power-up (SEMILET, reverse time);
//   5. independent end-to-end verification; rejected candidates resume the
//      search (backtracking between the steps makes the approach
//      complete).
// After each success the sequence is fault-simulated (FAUSIM + TDsim) and
// every additionally detected fault is dropped from the target list.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "algebra/model.hpp"
#include "base/rng.hpp"
#include "core/context.hpp"
#include "core/options.hpp"
#include "core/test_sequence.hpp"
#include "fausim/fausim.hpp"
#include "netlist/netlist.hpp"
#include "semilet/options.hpp"
#include "sim/flat_circuit.hpp"
#include "tdgen/fault.hpp"
#include "tdsim/tdsim.hpp"

namespace gdf::core {

enum class FaultStatus : std::uint8_t {
  Untested,
  Tested,
  Untestable,
  Aborted,
};

/// Outcome counters per flow stage (regenerates the Figure 4 view).
struct StageStats {
  long targeted = 0;           ///< faults the generator worked on
  long local_solutions = 0;    ///< local tests produced by TDgen
  long po_observed = 0;        ///< local solutions observing at a PO
  long ppo_observed = 0;       ///< local solutions observing at a PPO only
  long prop_attempts = 0;      ///< forward propagation candidates
  long prop_failures = 0;      ///< propagation exhausted for a local test
  long reentries = 0;          ///< TDgen re-entries with pinned PPOs
  long reentry_failures = 0;
  long sync_attempts = 0;
  long sync_failures = 0;
  long verify_rejections = 0;  ///< candidates rejected by end-to-end check
  long dropped = 0;            ///< faults covered by fault simulation
  long aborted_local = 0;      ///< gave up in the local (TDgen) search
  long aborted_sequential = 0; ///< gave up in propagation/justification/sync
  long aborted_time = 0;       ///< per-fault wall-clock cap hit
};

struct FogbusterResult {
  std::vector<tdgen::DelayFault> faults;
  std::vector<FaultStatus> status;   ///< parallel to `faults`
  std::vector<TestSequence> tests;   ///< one per explicitly targeted success
  std::size_t pattern_count = 0;     ///< paper's #pat column
  double seconds = 0.0;              ///< paper's time column
  StageStats stages;

  int count(FaultStatus s) const;
  int tested() const { return count(FaultStatus::Tested); }
  int untestable() const { return count(FaultStatus::Untestable); }
  int aborted() const { return count(FaultStatus::Aborted); }
};

/// Builds the phase-3 TDsim request for the fast frame of a simulated good
/// trace: the two local frames as applied, plus FAUSIM's phase-2 PPO
/// observability over the remaining (propagation) frames. Shared by the
/// fault-dropping pass of the flow and by the accidental-detection-index
/// ordering pass in run/.
tdsim::TdsimRequest make_tdsim_request(const net::Netlist& nl,
                                       const fausim::Fausim& fausim,
                                       const fausim::Fausim::GoodTrace& trace,
                                       std::size_t fast_index,
                                       std::vector<std::size_t> needed_ppos);

class Fogbuster {
 public:
  /// Takes the raw circuit; fanout branches are expanded internally when
  /// options.expand_branches is set. Builds a private CircuitContext.
  Fogbuster(const net::Netlist& circuit, AtpgOptions options = {});

  /// Shares an already-built context (the reentrant form: any number of
  /// Fogbusters on one context, concurrently or in sequence). Throws
  /// gdf::Error when the context was built under different structural
  /// options (expand_branches / fault_sites).
  Fogbuster(std::shared_ptr<const CircuitContext> context,
            AtpgOptions options = {});

  /// The netlist faults refer to (expanded).
  const net::Netlist& working_netlist() const { return ctx_->netlist(); }
  const alg::AtpgModel& model() const { return ctx_->model(); }
  const std::shared_ptr<const CircuitContext>& context() const {
    return ctx_;
  }

  /// Full run over the fault list with fault dropping. Reentrant: every
  /// call resets the per-run state (X-fill RNG), so repeated runs on one
  /// instance produce identical results.
  FogbusterResult run();

  /// Like run(), but targets faults in the order given by
  /// `target_order` (a permutation of fault-list indices; see
  /// run/fault_order). The result vectors stay in canonical fault order —
  /// only which fault gets explicitly targeted next changes, and with it
  /// the dropping pattern and the test count.
  FogbusterResult run(std::span<const std::size_t> target_order);

  /// Single-fault generation (no dropping); exposed for tests and for the
  /// flow-stage bench.
  FaultStatus generate_for_fault(const tdgen::DelayFault& fault,
                                 TestSequence* out, StageStats* stages);

 private:
  bool try_finalize(const tdgen::DelayFault& fault,
                    const tdgen::LocalTest& local,
                    const std::vector<sim::InputVec>& prop_frames,
                    const std::vector<std::size_t>& needed,
                    semilet::Budget& budget, TestSequence* out,
                    StageStats* stages);

  /// Immutable shared structure (netlist, model, flat form, fault list).
  std::shared_ptr<const CircuitContext> ctx_;
  AtpgOptions options_;
  const alg::DelayAlgebra* algebra_;
  /// Per-run mutable engines, owned by this instance: the X-fill RNG
  /// (reseeded at every run()) and the two fault simulators (const API,
  /// instance-local scratch — never shared across threads).
  Rng fill_rng_;
  fausim::Fausim fausim_;
  tdsim::Tdsim tdsim_;
};

}  // namespace gdf::core
