// The extended FOGBUSTER algorithm (paper Figure 4): the complete flow
// combining TDgen and SEMILET for robust gate delay fault test generation
// in non-scan synchronous sequential circuits.
//
// Per fault:
//   1. local test generation (TDgen, two frames, fault site to PO or PPO);
//   2. if the effect sits at a PPO: forward propagation to a PO (SEMILET);
//   3. propagation justification — reverse time, with requirements on the
//      fast-frame boundary handed back to TDgen as pinned PPOs (re-entry);
//   4. justification of the test frames and synchronization of the
//      required initial state from power-up (SEMILET, reverse time);
//   5. independent end-to-end verification; rejected candidates resume the
//      search (backtracking between the steps makes the approach
//      complete).
// After each success the sequence is fault-simulated (FAUSIM + TDsim) and
// every additionally detected fault is dropped from the target list.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "algebra/model.hpp"
#include "base/rng.hpp"
#include "core/context.hpp"
#include "core/options.hpp"
#include "core/test_sequence.hpp"
#include "fausim/fausim.hpp"
#include "netlist/netlist.hpp"
#include "semilet/options.hpp"
#include "sim/flat_circuit.hpp"
#include "tdgen/fault.hpp"
#include "tdgen/tdgen.hpp"
#include "tdsim/tdsim.hpp"

namespace gdf::core {

enum class FaultStatus : std::uint8_t {
  Untested,
  Tested,
  Untestable,
  Aborted,
};

/// Outcome counters per flow stage (regenerates the Figure 4 view).
struct StageStats {
  long targeted = 0;           ///< faults the generator worked on
  long local_solutions = 0;    ///< local tests produced by TDgen
  long po_observed = 0;        ///< local solutions observing at a PO
  long ppo_observed = 0;       ///< local solutions observing at a PPO only
  long prop_attempts = 0;      ///< forward propagation candidates
  long prop_failures = 0;      ///< propagation exhausted for a local test
  long reentries = 0;          ///< TDgen re-entries with pinned PPOs
  long reentry_failures = 0;
  long sync_attempts = 0;
  long sync_failures = 0;
  long verify_rejections = 0;  ///< candidates rejected by end-to-end check
  long dropped = 0;            ///< faults covered by fault simulation
  long aborted_local = 0;      ///< gave up in the local (TDgen) search
  long aborted_sequential = 0; ///< gave up in propagation/justification/sync
  long aborted_time = 0;       ///< per-fault wall-clock cap hit
  long aborted_budget = 0;     ///< per-fault work budget exhausted

  // Search-core counters: the incremental engine's work, so speedups on
  // the TDgen hot path stay attributable (--stages prints them and
  // bench/run_benchmarks.sh records them). One shared struct with the
  // searches, so new counters flow through every merge site unchanged.
  tdgen::SearchCounters search;

  // Simulation-kernel counters, attributed per backend (scalar phase 1
  // and each WordN rung of the lane ladder), so sweeps can tell which
  // kernel the fault-simulation time went to (--stages prints them).
  sim::KernelCounters sim;

  /// End-of-run payload bytes of the cross-fault clause store (--learn
  /// shared; 0 otherwise). A point-in-time gauge of the shared context,
  /// not a per-fault tally — add() deliberately skips it, and the run
  /// drivers (sequential and sharded) assign it once after the last
  /// fault so both report the identical figure.
  long clause_store_bytes = 0;

  /// Accumulates another run's (or fault's) counters into this one.
  /// Addition is commutative, so merging per-fault slices in any order
  /// gives the totals of a sequential pass. clause_store_bytes is a
  /// gauge, not a counter — it is excluded.
  void add(const StageStats& other);
};

struct FogbusterResult {
  std::vector<tdgen::DelayFault> faults;
  std::vector<FaultStatus> status;   ///< parallel to `faults`
  std::vector<TestSequence> tests;   ///< one per explicitly targeted success
  std::size_t pattern_count = 0;     ///< paper's #pat column
  double seconds = 0.0;              ///< paper's time column
  StageStats stages;
  /// Faults classified straight from a shared untestability memo instead
  /// of a fresh TDgen search (see set_untestable_memo).
  long memo_hits = 0;

  int count(FaultStatus s) const;
  int tested() const { return count(FaultStatus::Tested); }
  int untestable() const { return count(FaultStatus::Untestable); }
  int aborted() const { return count(FaultStatus::Aborted); }
};

/// Builds the phase-3 TDsim request for the fast frame of a simulated good
/// trace: the two local frames as applied, plus FAUSIM's phase-2 PPO
/// observability over the remaining (propagation) frames. Shared by the
/// fault-dropping pass of the flow and by the accidental-detection-index
/// ordering pass in run/.
tdsim::TdsimRequest make_tdsim_request(const net::Netlist& nl,
                                       const fausim::Fausim& fausim,
                                       const fausim::Fausim::GoodTrace& trace,
                                       std::size_t fast_index,
                                       std::vector<std::size_t> needed_ppos);

class Fogbuster {
 public:
  /// Takes the raw circuit; fanout branches are expanded internally when
  /// options.expand_branches is set. Builds a private CircuitContext.
  Fogbuster(const net::Netlist& circuit, AtpgOptions options = {});

  /// Shares an already-built context (the reentrant form: any number of
  /// Fogbusters on one context, concurrently or in sequence). Throws
  /// gdf::Error when the context was built under different structural
  /// options (expand_branches / fault_sites).
  Fogbuster(std::shared_ptr<const CircuitContext> context,
            AtpgOptions options = {});

  /// The netlist faults refer to (expanded).
  const net::Netlist& working_netlist() const { return ctx_->netlist(); }
  const alg::AtpgModel& model() const { return ctx_->model(); }
  const std::shared_ptr<const CircuitContext>& context() const {
    return ctx_;
  }

  /// Full run over the fault list with fault dropping. Reentrant: every
  /// call resets the per-run state (X-fill RNG), so repeated runs on one
  /// instance produce identical results.
  FogbusterResult run();

  /// Like run(), but targets faults in the order given by
  /// `target_order` (a permutation of fault-list indices; see
  /// run/fault_order). The result vectors stay in canonical fault order —
  /// only which fault gets explicitly targeted next changes, and with it
  /// the dropping pattern and the test count.
  FogbusterResult run(std::span<const std::size_t> target_order);

  /// Single-fault generation (no dropping); exposed for tests, the
  /// flow-stage bench, and the epoch sharding engine (run/shard). The call
  /// reads only the immutable context and the options — any number of
  /// threads may generate different faults on one instance concurrently.
  FaultStatus generate_for_fault(const tdgen::DelayFault& fault,
                                 TestSequence* out,
                                 StageStats* stages) const;

  // --- Sharded-run building blocks (used by run/shard's epoch engine;
  // --- run() is exactly the sequential composition of these) -----------

  /// A result skeleton: the canonical fault list, every status Untested.
  FogbusterResult make_empty_result() const;

  /// Resets the per-run mutable state (the X-fill RNG) — the start-of-run
  /// step that makes repeated runs bit-identical.
  void reset_run_state();

  /// Accepts one verified test: appends it to `result`, adds its pattern
  /// count and, when fault dropping is enabled, fault-simulates it against
  /// the still-untested faults and drops every detected one. Consumes the
  /// X-fill RNG stream — calls must happen in targeting order, one thread
  /// at a time (the epoch merge serializes here).
  void apply_test(const TestSequence& sequence, FogbusterResult* result);

  /// The order-sensitive half of one targeting step, shared verbatim by
  /// run() and the epoch merge (run/shard) so the two can never drift:
  /// counts the target, classifies via the memo (`memoized` mirrors
  /// untestable_memo() for fault `i`) or adopts the generated verdict
  /// plus its stage counters, and on success appends the test and runs
  /// the dropping pass. `i` must still be Untested in `result`.
  void merge_targeted(std::size_t i, bool memoized, FaultStatus status,
                      const TestSequence& sequence, const StageStats& stages,
                      FogbusterResult* result);

  /// Shares a set of faults (by canonical index) already proven robustly
  /// untestable for this context + generation configuration. Targeting
  /// such a fault classifies it Untestable without a search; the verdict
  /// is what the search would have produced, so results are unchanged —
  /// only faster. Pass nullptr to clear.
  void set_untestable_memo(std::shared_ptr<const std::vector<bool>> memo);
  const std::vector<bool>* untestable_memo() const { return memo_.get(); }

  /// Current payload bytes of the context's cross-fault clause store for
  /// this configuration — what StageStats::clause_store_bytes reports.
  /// 0 unless --learn shared is active.
  long shared_clause_bytes() const;

 private:
  bool try_finalize(const tdgen::DelayFault& fault,
                    const tdgen::LocalTest& local,
                    const std::vector<sim::InputVec>& prop_frames,
                    const std::vector<std::size_t>& needed,
                    semilet::Budget& budget, TestSequence* out,
                    StageStats* stages) const;

  /// Immutable shared structure (netlist, model, flat form, fault list).
  std::shared_ptr<const CircuitContext> ctx_;
  AtpgOptions options_;
  const alg::DelayAlgebra* algebra_;
  /// Per-run mutable engines, owned by this instance: the X-fill RNG
  /// (reseeded at every run()) and the two fault simulators (const API,
  /// instance-local scratch — never shared across threads).
  Rng fill_rng_;
  fausim::Fausim fausim_;
  tdsim::Tdsim tdsim_;
  /// Optional shared untestability verdicts (see set_untestable_memo).
  std::shared_ptr<const std::vector<bool>> memo_;
};

}  // namespace gdf::core
