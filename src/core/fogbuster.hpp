// The extended FOGBUSTER algorithm (paper Figure 4): the complete flow
// combining TDgen and SEMILET for robust gate delay fault test generation
// in non-scan synchronous sequential circuits.
//
// Per fault:
//   1. local test generation (TDgen, two frames, fault site to PO or PPO);
//   2. if the effect sits at a PPO: forward propagation to a PO (SEMILET);
//   3. propagation justification — reverse time, with requirements on the
//      fast-frame boundary handed back to TDgen as pinned PPOs (re-entry);
//   4. justification of the test frames and synchronization of the
//      required initial state from power-up (SEMILET, reverse time);
//   5. independent end-to-end verification; rejected candidates resume the
//      search (backtracking between the steps makes the approach
//      complete).
// After each success the sequence is fault-simulated (FAUSIM + TDsim) and
// every additionally detected fault is dropped from the target list.
#pragma once

#include <cstdint>
#include <vector>

#include "algebra/model.hpp"
#include "core/options.hpp"
#include "core/test_sequence.hpp"
#include "netlist/netlist.hpp"
#include "semilet/options.hpp"
#include "sim/flat_circuit.hpp"
#include "tdgen/fault.hpp"

namespace gdf::core {

enum class FaultStatus : std::uint8_t {
  Untested,
  Tested,
  Untestable,
  Aborted,
};

/// Outcome counters per flow stage (regenerates the Figure 4 view).
struct StageStats {
  long targeted = 0;           ///< faults the generator worked on
  long local_solutions = 0;    ///< local tests produced by TDgen
  long po_observed = 0;        ///< local solutions observing at a PO
  long ppo_observed = 0;       ///< local solutions observing at a PPO only
  long prop_attempts = 0;      ///< forward propagation candidates
  long prop_failures = 0;      ///< propagation exhausted for a local test
  long reentries = 0;          ///< TDgen re-entries with pinned PPOs
  long reentry_failures = 0;
  long sync_attempts = 0;
  long sync_failures = 0;
  long verify_rejections = 0;  ///< candidates rejected by end-to-end check
  long dropped = 0;            ///< faults covered by fault simulation
  long aborted_local = 0;      ///< gave up in the local (TDgen) search
  long aborted_sequential = 0; ///< gave up in propagation/justification/sync
  long aborted_time = 0;       ///< per-fault wall-clock cap hit
};

struct FogbusterResult {
  std::vector<tdgen::DelayFault> faults;
  std::vector<FaultStatus> status;   ///< parallel to `faults`
  std::vector<TestSequence> tests;   ///< one per explicitly targeted success
  std::size_t pattern_count = 0;     ///< paper's #pat column
  double seconds = 0.0;              ///< paper's time column
  StageStats stages;

  int count(FaultStatus s) const;
  int tested() const { return count(FaultStatus::Tested); }
  int untestable() const { return count(FaultStatus::Untestable); }
  int aborted() const { return count(FaultStatus::Aborted); }
};

class Fogbuster {
 public:
  /// Takes the raw circuit; fanout branches are expanded internally when
  /// options.expand_branches is set.
  Fogbuster(const net::Netlist& circuit, AtpgOptions options = {});

  /// The netlist faults refer to (expanded).
  const net::Netlist& working_netlist() const { return nl_; }
  const alg::AtpgModel& model() const { return model_; }

  /// Full run over the fault list with fault dropping.
  FogbusterResult run();

  /// Single-fault generation (no dropping); exposed for tests and for the
  /// flow-stage bench.
  FaultStatus generate_for_fault(const tdgen::DelayFault& fault,
                                 TestSequence* out, StageStats* stages);

 private:
  bool try_finalize(const tdgen::DelayFault& fault,
                    const tdgen::LocalTest& local,
                    const std::vector<sim::InputVec>& prop_frames,
                    const std::vector<std::size_t>& needed,
                    semilet::Budget& budget, TestSequence* out,
                    StageStats* stages);

  net::Netlist nl_;
  AtpgOptions options_;
  alg::AtpgModel model_;
  const alg::DelayAlgebra* algebra_;
  /// Flat simulation form of nl_, built once and shared by every engine
  /// the flow spawns (propagation, synchronization, fault simulation).
  std::shared_ptr<const sim::FlatCircuit> flat_;
};

}  // namespace gdf::core
