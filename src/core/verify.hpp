// Independent end-to-end validation of a generated test sequence. Used by
// the flow (a candidate is only accepted once it verifies) and by the test
// suite. The checks mirror the paper's assumptions: the good machine meets
// the fast-clock timing, non-steady PPO captures are unknown, and a fault
// effect captured in the register must propagate to a PO through slow
// frames regardless of every remaining X.
#pragma once

#include <string>

#include "algebra/frame_sim.hpp"
#include "algebra/model.hpp"
#include "core/test_sequence.hpp"
#include "netlist/netlist.hpp"

namespace gdf::core {

struct VerifyReport {
  bool ok = false;
  std::string reason;  ///< empty when ok
};

/// Replays the sequence three-valued from power-up and checks:
///  1. the synchronizing prefix establishes every required S0 bit;
///  2. the two local frames force a carrier-only value at a PO, or at a
///     PPO whose captured difference then provably reaches a PO through
///     the propagation frames (twin good/faulty simulation).
VerifyReport verify_sequence(const alg::AtpgModel& model,
                             const alg::DelayAlgebra& algebra,
                             const TestSequence& sequence);

}  // namespace gdf::core
