#include "core/test_sequence.hpp"

namespace gdf::core {

std::vector<sim::InputVec> TestSequence::all_frames() const {
  std::vector<sim::InputVec> frames;
  frames.reserve(pattern_count());
  frames.insert(frames.end(), init_frames.begin(), init_frames.end());
  frames.push_back(v1);
  frames.push_back(v2);
  frames.insert(frames.end(), prop_frames.begin(), prop_frames.end());
  return frames;
}

std::vector<ClockKind> TestSequence::clocks() const {
  std::vector<ClockKind> kinds(pattern_count(), ClockKind::Slow);
  kinds[fast_index()] = ClockKind::Fast;
  return kinds;
}

}  // namespace gdf::core
