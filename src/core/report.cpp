#include "core/report.hpp"

#include <iomanip>
#include <sstream>

#include "base/string_util.hpp"

namespace gdf::core {

Table3Row make_table3_row(const std::string& circuit,
                          const FogbusterResult& result) {
  Table3Row row;
  row.circuit = circuit;
  row.tested = result.tested();
  row.untestable = result.untestable();
  row.aborted = result.aborted();
  row.patterns = result.pattern_count;
  row.seconds = result.seconds;
  return row;
}

std::string table3_header() {
  std::ostringstream os;
  os << pad_right("circuit", 10) << pad_left("tested", 8)
     << pad_left("untstbl", 9) << pad_left("aborted", 9)
     << pad_left("#pat", 7) << pad_left("time[s]", 10);
  return os.str();
}

std::string format_table3_row(const Table3Row& row) {
  std::ostringstream os;
  os << pad_right(row.circuit, 10) << pad_left(std::to_string(row.tested), 8)
     << pad_left(std::to_string(row.untestable), 9)
     << pad_left(std::to_string(row.aborted), 9)
     << pad_left(std::to_string(row.patterns), 7);
  std::ostringstream secs;
  if (row.seconds < 1.0) {
    secs << "<1";
  } else {
    secs << std::fixed << std::setprecision(0) << row.seconds;
  }
  os << pad_left(secs.str(), 10);
  return os.str();
}

std::string format_stage_stats(const StageStats& s) {
  std::ostringstream os;
  os << "  targeted faults        " << s.targeted << "\n"
     << "  local solutions        " << s.local_solutions << " (PO-observed "
     << s.po_observed << ", PPO-observed " << s.ppo_observed << ")\n"
     << "  propagation attempts   " << s.prop_attempts << " (exhausted "
     << s.prop_failures << ")\n"
     << "  TDgen re-entries       " << s.reentries << " (failed "
     << s.reentry_failures << ")\n"
     << "  synchronizations       " << s.sync_attempts << " (failed "
     << s.sync_failures << ")\n"
     << "  verify rejections      " << s.verify_rejections << "\n"
     << "  dropped by fault sim   " << s.dropped << "\n"
     << "  aborts                 local " << s.aborted_local
     << ", sequential " << s.aborted_sequential << ", time "
     << s.aborted_time << ", budget " << s.aborted_budget << "\n"
     << "  search core            implications "
     << s.search.implication_assigns << ", trail pushes "
     << s.search.trail_pushes << ", pops " << s.search.trail_pops << "\n"
     << "  conflict learning      conflicts " << s.search.conflicts
     << ", learned " << s.search.learned << ", clause hits "
     << s.search.clause_hits << ", backjump levels skipped "
     << s.search.backjump_levels_skipped << "\n"
     << "  restart policy         restarts " << s.search.restarts
     << ", clause reductions " << s.search.clause_reductions
     << ", minimized lits " << s.search.minimized_lits << "\n"
     << "  clause tiers           core " << s.search.clause_db_core
     << ", mid " << s.search.clause_db_mid << ", local "
     << s.search.clause_db_local << "; LBD<=2 " << s.search.lbd_le2
     << ", 3-6 " << s.search.lbd_3_6 << ", >6 " << s.search.lbd_gt6 << "\n"
     << "  shared clause store    " << s.clause_store_bytes << " bytes\n"
     << "  verification probes    " << s.search.probe_runs
     << " (cone-scoped " << s.search.probe_cone << ", full "
     << s.search.probe_full << ")\n"
     << "  probe memo             hits " << s.search.probe_memo_hits << "\n"
     << "  sim kernel evals       scalar " << s.sim.scalar_evals
     << ", w64 " << s.sim.lane_evals_64 << ", w256 "
     << s.sim.lane_evals_256 << ", w512 " << s.sim.lane_evals_512;
  return os.str();
}

}  // namespace gdf::core
