// Configuration of the combined TDgen + SEMILET flow.
#pragma once

#include <cstdint>

#include "algebra/tables.hpp"
#include "base/cancel.hpp"
#include "semilet/options.hpp"
#include "sim/lanes.hpp"
#include "tdgen/fault.hpp"
#include "tdgen/tdgen.hpp"

namespace gdf::core {

/// Phase-3 delay fault simulation engine (see tdsim/tdsim.hpp).
enum class TdsimEngine : std::uint8_t { Cpt, Exact };

/// Conflict-driven learning in the two-frame search (--learn).
///
/// On (default) keeps every learned clause private to its fault, which
/// preserves byte-determinism at any worker count: each per-fault search
/// stays a pure function of (context, fault, options). Shared additionally
/// consumes fault-independent clauses published by other faults through
/// the CircuitContext — faster on abort-heavy circuits, but the snapshot a
/// fault sees depends on scheduling, so rows may legitimately differ
/// across --jobs/--shard-faults (same caveat as --per-fault-seconds).
enum class LearnMode : std::uint8_t { Off, On, Shared };

struct AtpgOptions {
  /// Robust (paper) or non-robust (§7 outlook / ablation) algebra.
  alg::Mode mode = alg::Mode::Robust;

  /// Local (two-frame) search limits; the paper aborts after 100 local
  /// backtracks.
  tdgen::TdgenOptions local;

  /// Sequential limits shared by propagation, justification and
  /// synchronization; the paper aborts after 100 sequential backtracks.
  semilet::SemiletOptions sequential;

  /// Which lines carry faults (paper: every gate output and every fanout
  /// branch).
  tdgen::FaultListOptions fault_sites;

  /// Insert explicit fanout branches before fault enumeration.
  bool expand_branches = true;

  /// Fault-simulate after each successful generation and drop the
  /// additionally detected faults (paper §5/§6).
  bool fault_dropping = true;

  /// Which TDsim engine phase 3 uses: critical path tracing (fast, the
  /// default) or exact per-fault injection (the reference). The two agree
  /// exactly; exposing the choice makes that checkable from the CLI.
  TdsimEngine tdsim_engine = TdsimEngine::Cpt;

  /// Lane-width cap for the batched simulation backends (--lanes). A pure
  /// per-run knob: every width computes bit-identical results, so it never
  /// enters the structural compatibility predicate or the sweep memo keys.
  sim::LaneSpec lanes;

  /// Random-sequence budget of the accidental-detection-index fault
  /// ordering pass (--fault-order adi): how many sampling sequences the
  /// batched TDsim simulates to rank the faults. More sequences sharpen
  /// the ranking at a linear cost in ordering time.
  int adi_sequences = 8;

  /// Conflict-driven learning mode for the two-frame search. Off
  /// reproduces the pre-learning search byte-for-byte (chronological
  /// backtracking, no clause database, no probe memo); On and Shared are
  /// documented on LearnMode. Enters the sweep memo keys: different learn
  /// settings never share untestable-fault memo groups.
  LearnMode learn = LearnMode::On;

  /// Cap on learned clauses per fault search (--learned-limit).
  int learned_limit = 512;

  /// Seed for the random X-fill performed before fault simulation.
  std::uint64_t fill_seed = 1995;

  /// Optional wall-clock cap per targeted fault in seconds (0 = none);
  /// counts toward the aborted column when hit. Verdicts become
  /// timing-dependent, so auto fault sharding and the sweep's untestable
  /// memo decline to engage — prefer fault_budget for deterministic caps.
  double per_fault_seconds = 0.0;

  /// Deterministic per-fault work budget (--fault-budget, 0 = none),
  /// counted in implication-engine assignments and shared by the local
  /// search and its re-entries (see tdgen::WorkBudget). Unlike
  /// per_fault_seconds the abort point is a pure function of the fault,
  /// so rows stay byte-identical across --jobs and --shard-faults and
  /// sharding stays enabled. Exceeding it counts toward the aborted
  /// column (StageStats::aborted_budget attributes it).
  long fault_budget = 0;

  /// Cooperative cancellation (not a configuration knob): when wired, the
  /// flow and its searches poll the token and unwind with an Error of
  /// kind Cancelled. Never part of memo or compatibility keys.
  const CancelToken* cancel = nullptr;
};

}  // namespace gdf::core
