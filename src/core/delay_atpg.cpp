#include "core/delay_atpg.hpp"

namespace gdf::core {

FogbusterResult run_delay_atpg(const net::Netlist& circuit,
                               const AtpgOptions& options) {
  Fogbuster flow(circuit, options);
  return flow.run();
}

}  // namespace gdf::core
