#include "core/fogbuster.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "base/timer.hpp"
#include "core/verify.hpp"
#include "fausim/fausim.hpp"
#include "semilet/propagate.hpp"
#include "semilet/synchronize.hpp"
#include "tdgen/local_test.hpp"
#include "tdgen/tdgen.hpp"
#include "tdsim/tdsim.hpp"

namespace gdf::core {

using sim::Lv;
using tdgen::DelayFault;
using tdgen::LocalTest;
using tdgen::PpoKind;

namespace {

Lv lv_from_bit(int bit) {
  if (bit == 0) {
    return Lv::Zero;
  }
  if (bit == 1) {
    return Lv::One;
  }
  return Lv::X;
}

sim::InputVec lv_vector(const std::vector<int>& bits) {
  sim::InputVec out;
  out.reserve(bits.size());
  for (const int b : bits) {
    out.push_back(lv_from_bit(b));
  }
  return out;
}

int lv_bit(Lv v) {
  if (v == Lv::Zero) {
    return 0;
  }
  if (v == Lv::One) {
    return 1;
  }
  return -1;
}

}  // namespace

int FogbusterResult::count(FaultStatus s) const {
  return static_cast<int>(std::count(status.begin(), status.end(), s));
}

void StageStats::add(const StageStats& other) {
  targeted += other.targeted;
  local_solutions += other.local_solutions;
  po_observed += other.po_observed;
  ppo_observed += other.ppo_observed;
  prop_attempts += other.prop_attempts;
  prop_failures += other.prop_failures;
  reentries += other.reentries;
  reentry_failures += other.reentry_failures;
  sync_attempts += other.sync_attempts;
  sync_failures += other.sync_failures;
  verify_rejections += other.verify_rejections;
  dropped += other.dropped;
  aborted_local += other.aborted_local;
  aborted_sequential += other.aborted_sequential;
  aborted_time += other.aborted_time;
  aborted_budget += other.aborted_budget;
  search.add(other.search);
  sim.add(other.sim);
}

namespace {

/// Twin good/faulty replay of the propagation frames with only the given
/// state bits defined: true when a PO still definitely differs, i.e. the
/// propagation does not rely on any other (Known) boundary bit. Used to
/// keep the TDgen re-entry pins minimal.
bool propagation_works_without_known(
    const sim::SeqSimulator& simulator, const sim::StateVec& boundary,
    const std::vector<std::pair<std::size_t, Lv>>& requirements,
    const std::vector<sim::InputVec>& frames) {
  const net::Netlist& nl = simulator.netlist();
  sim::StateVec good(boundary.size(), Lv::X);
  sim::StateVec faulty(boundary.size(), Lv::X);
  for (std::size_t k = 0; k < boundary.size(); ++k) {
    if (boundary[k] == Lv::D) {
      good[k] = Lv::One;
      faulty[k] = Lv::Zero;
    } else if (boundary[k] == Lv::Dbar) {
      good[k] = Lv::Zero;
      faulty[k] = Lv::One;
    }
  }
  for (const auto& [ff, v] : requirements) {
    good[ff] = v;
    faulty[ff] = v;
  }
  std::vector<Lv> lg, lf;
  for (const sim::InputVec& pis : frames) {
    simulator.eval_frame(pis, good, lg);
    simulator.eval_frame(pis, faulty, lf);
    for (const net::GateId po : nl.outputs()) {
      if (sim::is_binary(lg[po]) && sim::is_binary(lf[po]) &&
          lg[po] != lf[po]) {
        return true;
      }
    }
    good = simulator.next_state(lg);
    faulty = simulator.next_state(lf);
  }
  return false;
}

}  // namespace

namespace {

std::shared_ptr<const CircuitContext> require_context(
    std::shared_ptr<const CircuitContext> ctx) {
  check(ctx != nullptr, "Fogbuster: null circuit context");
  return ctx;
}

}  // namespace

Fogbuster::Fogbuster(const net::Netlist& circuit, AtpgOptions options)
    : Fogbuster(CircuitContext::build(circuit, options), options) {}

Fogbuster::Fogbuster(std::shared_ptr<const CircuitContext> context,
                     AtpgOptions options)
    : ctx_(require_context(std::move(context))),
      options_(options),
      algebra_(&ctx_->algebra(options.mode)),
      fill_rng_(options.fill_seed),
      fausim_(ctx_->flat(), options.lanes),
      tdsim_(ctx_->model(), *algebra_,
             sim::packed_stem_lanes(sim::resolve_lane_count(options.lanes))) {
  check(ctx_->structurally_compatible(options_),
        "Fogbuster: context was built under different structural options "
        "(expand_branches / fault_sites)");
}

bool Fogbuster::try_finalize(const DelayFault& fault, const LocalTest& local,
                             const std::vector<sim::InputVec>& prop_frames,
                             const std::vector<std::size_t>& needed,
                             semilet::Budget& budget, TestSequence* out,
                             StageStats* stages) const {
  ++stages->sync_attempts;
  const std::vector<int> s0 = tdgen::required_initial_state(local);
  std::vector<std::pair<std::size_t, Lv>> requirements;
  for (std::size_t k = 0; k < s0.size(); ++k) {
    if (s0[k] >= 0) {
      requirements.emplace_back(k, lv_from_bit(s0[k]));
    }
  }
  semilet::Synchronizer synchronizer(ctx_->flat(), budget);
  semilet::SyncResult sync;
  const semilet::SeqStatus status =
      synchronizer.synchronize(std::move(requirements), &sync);
  if (status != semilet::SeqStatus::Success) {
    ++stages->sync_failures;
    return false;
  }

  TestSequence sequence;
  sequence.target = fault;
  sequence.init_frames = std::move(sync.frames);
  sequence.v1 = lv_vector(tdgen::initial_frame_pis(local));
  sequence.v2 = lv_vector(tdgen::test_frame_pis(local));
  sequence.prop_frames = prop_frames;
  sequence.required_s0 = s0;
  sequence.boundary.reserve(local.ppo_sets.size());
  for (const alg::VSet s : local.ppo_sets) {
    sequence.boundary.push_back(tdgen::classify_ppo(s));
  }
  sequence.needed_ppos = needed;
  sequence.observed_at_po = local.observed_at_po;

  const VerifyReport report =
      verify_sequence(ctx_->model(), *algebra_, sequence);
  if (!report.ok) {
    ++stages->verify_rejections;
    return false;
  }
  if (out != nullptr) {
    *out = std::move(sequence);
  }
  return true;
}

FaultStatus Fogbuster::generate_for_fault(const DelayFault& fault,
                                          TestSequence* out,
                                          StageStats* stages) const {
  const Stopwatch watch;
  const auto check_cancel = [&] {
    if (cancel_requested(options_.cancel)) {
      throw_cancelled();
    }
  };
  const auto out_of_time = [&] {
    return options_.per_fault_seconds > 0.0 &&
           watch.seconds() > options_.per_fault_seconds;
  };
  const auto abort_time = [&] {
    ++stages->aborted_time;
    return FaultStatus::Aborted;
  };
  const auto abort_sequential = [&] {
    ++stages->aborted_sequential;
    return FaultStatus::Aborted;
  };

  // The deterministic work budget (--fault-budget): fresh per fault,
  // charged by the local search and every re-entry, never reset — the
  // abort point is a pure function of this fault, so it lands on the
  // same verdict at any --jobs/--shard-faults. A TDgen abort with the
  // budget exhausted is attributed to it; otherwise to the backtrack/
  // decision limits as before.
  tdgen::WorkBudget work_budget(options_.fault_budget);
  const auto abort_local = [&] {
    if (options_.fault_budget > 0 && work_budget.exhausted()) {
      ++stages->aborted_budget;
    } else {
      ++stages->aborted_local;
    }
    return FaultStatus::Aborted;
  };

  // Folds the searches' counters into the per-fault stage stats whichever
  // way this function returns (the searches add to the tally on
  // destruction, which runs before this scope's).
  struct TallyScope {
    tdgen::SearchCounters tally;
    StageStats* stages;
    ~TallyScope() { stages->search.add(tally); }
  } tally_scope{{}, stages};

  semilet::Budget budget(options_.sequential);
  tdgen::TdgenOptions local_options = options_.local;
  local_options.tally = &tally_scope.tally;
  local_options.learn = options_.learn != LearnMode::Off;
  local_options.learned_limit = options_.learned_limit;
  local_options.work_budget =
      options_.fault_budget > 0 ? &work_budget : nullptr;
  local_options.cancel = options_.cancel;
  if (options_.learn == LearnMode::Shared) {
    // Cross-fault clause exchange through the shared context (opt-in:
    // which snapshot a fault sees depends on scheduling), and
    // cheapest-cone-first don't-care lifting (opt-in: the reorder drifts
    // the emitted patterns).
    base::ClauseStore& store = ctx_->learned_clauses(options_.mode);
    local_options.shared_consume = &store;
    local_options.shared_publish = &store;
    local_options.reorder_lifts = true;
  }
  tdgen::TdgenSearch local_search(ctx_->model(), *algebra_, fault,
                                  local_options);
  LocalTest local;

  for (;;) {
    check_cancel();
    if (out_of_time()) {
      return abort_time();
    }
    switch (local_search.next(&local)) {
      case tdgen::TdgenStatus::Untestable:
        return FaultStatus::Untestable;
      case tdgen::TdgenStatus::Aborted:
        return abort_local();
      case tdgen::TdgenStatus::TestFound:
        break;
    }
    ++stages->local_solutions;

    if (local.observed_at_po) {
      // Fault visible at a PO of the fast frame: no propagation phase.
      ++stages->po_observed;
      if (try_finalize(fault, local, {}, {}, budget, out, stages)) {
        return FaultStatus::Tested;
      }
      if (budget.exhausted()) {
        return abort_sequential();
      }
      continue;
    }
    ++stages->ppo_observed;

    // Boundary after the fast frame: the handoff of paper §6 — steady
    // clean values are known, carriers are the fault effect, everything
    // else is fixed-but-unknown (assignable only via TDgen re-entry).
    const std::size_t n_ff = ctx_->netlist().dffs().size();
    sim::StateVec boundary(n_ff, Lv::X);
    std::vector<bool> assignable(n_ff, false);
    std::vector<std::size_t> needed;
    for (std::size_t k = 0; k < n_ff; ++k) {
      switch (tdgen::classify_ppo(local.ppo_sets[k])) {
        case PpoKind::Known0:
          boundary[k] = Lv::Zero;
          needed.push_back(k);
          break;
        case PpoKind::Known1:
          boundary[k] = Lv::One;
          needed.push_back(k);
          break;
        case PpoKind::FaultD:
          boundary[k] = Lv::D;
          break;
        case PpoKind::FaultDbar:
          boundary[k] = Lv::Dbar;
          break;
        case PpoKind::Unknown:
          assignable[k] = true;
          break;
      }
    }

    semilet::Propagator propagator(ctx_->flat(), budget);
    propagator.start(boundary, assignable);
    semilet::PropagationOutcome outcome;
    for (;;) {
      check_cancel();
      if (out_of_time()) {
        return abort_time();
      }
      ++stages->prop_attempts;
      const semilet::SeqStatus pstatus = propagator.next(&outcome);
      if (pstatus == semilet::SeqStatus::Aborted) {
        return abort_sequential();
      }
      if (pstatus == semilet::SeqStatus::Exhausted) {
        ++stages->prop_failures;
        break;  // enumerate the next local solution
      }

      // Propagation justification at the fast-frame boundary: TDgen
      // re-entry with every relied-on PPO pinned. Pinning is kept minimal:
      // if a twin replay shows the propagation works from the fault effect
      // and the required bits alone, the Known bits are not pinned (and
      // not part of the invalidation set either).
      const LocalTest* effective = &local;
      LocalTest reentered;
      std::vector<std::size_t> relied = needed;
      if (!outcome.boundary_requirements.empty()) {
        ++stages->reentries;
        const sim::SeqSimulator twin_sim(ctx_->flat());
        const bool known_needed = !propagation_works_without_known(
            twin_sim, boundary, outcome.boundary_requirements,
            outcome.frames);
        if (!known_needed) {
          relied.clear();
        }
        // Re-entries share the first search's sorted cone and post-init
        // engine snapshot and report into the same tally. The base
        // search's clauses would stay valid under the pins (they only
        // narrow the level-0 state), but importing them measures as a net
        // cost — re-entry trees are short and rarely revisit the base
        // search's conflicts — so re-entries learn from scratch. They
        // never publish to the shared store: their conflicts are
        // conditioned on the pins.
        tdgen::TdgenOptions reentry_options = local_options;
        reentry_options.shared_cone = &local_search.sorted_cone();
        reentry_options.init_donor = &local_search.engine();
        reentry_options.shared_publish = nullptr;
        tdgen::TdgenSearch reentry(ctx_->model(), *algebra_, fault,
                                   reentry_options);
        for (std::size_t k = 0; k < n_ff; ++k) {
          switch (tdgen::classify_ppo(local.ppo_sets[k])) {
            case PpoKind::Known0:
              if (known_needed) {
                reentry.pin_ppo(k, alg::vset_of(alg::V8::Zero));
              }
              break;
            case PpoKind::Known1:
              if (known_needed) {
                reentry.pin_ppo(k, alg::vset_of(alg::V8::One));
              }
              break;
            case PpoKind::FaultD:
              reentry.pin_ppo(k, alg::vset_of(alg::V8::RiseC));
              break;
            case PpoKind::FaultDbar:
              reentry.pin_ppo(k, alg::vset_of(alg::V8::FallC));
              break;
            case PpoKind::Unknown:
              break;
          }
        }
        for (const auto& [ff, v] : outcome.boundary_requirements) {
          reentry.pin_ppo(ff, alg::vset_of(v == Lv::One ? alg::V8::One
                                                        : alg::V8::Zero));
          relied.push_back(ff);
        }
        switch (reentry.next(&reentered)) {
          case tdgen::TdgenStatus::Aborted:
            return abort_local();
          case tdgen::TdgenStatus::Untestable:
            ++stages->reentry_failures;
            continue;  // next propagation candidate
          case tdgen::TdgenStatus::TestFound:
            effective = &reentered;
            break;
        }
      }

      if (try_finalize(fault, *effective, outcome.frames, relied, budget,
                       out, stages)) {
        return FaultStatus::Tested;
      }
      if (budget.exhausted()) {
        return abort_sequential();
      }
    }
    if (budget.exhausted()) {
      return abort_sequential();
    }
  }
}

tdsim::TdsimRequest make_tdsim_request(const net::Netlist& nl,
                                       const fausim::Fausim& fausim,
                                       const fausim::Fausim::GoodTrace& trace,
                                       std::size_t fast_index,
                                       std::vector<std::size_t> needed_ppos) {
  const std::size_t fast = fast_index;
  tdsim::TdsimRequest request;
  request.stimulus.pi_sets.reserve(nl.inputs().size());
  for (std::size_t p = 0; p < nl.inputs().size(); ++p) {
    request.stimulus.pi_sets.push_back(alg::vset_primary_from_frames(
        lv_bit(trace.filled[fast - 1][p]), lv_bit(trace.filled[fast][p])));
  }
  request.stimulus.ppi_sets.reserve(nl.dffs().size());
  for (std::size_t k = 0; k < nl.dffs().size(); ++k) {
    request.stimulus.ppi_sets.push_back(alg::vset_primary_from_frames(
        lv_bit(trace.states[fast - 1][k]), lv_bit(trace.states[fast][k])));
  }
  request.observable_ppo = fausim.ppo_observability(
      trace.states[fast + 1],
      std::span<const sim::InputVec>(trace.filled).subspan(fast + 1));
  request.needed_ppos = std::move(needed_ppos);
  return request;
}

FogbusterResult Fogbuster::run() { return run({}); }

FogbusterResult Fogbuster::make_empty_result() const {
  FogbusterResult result;
  result.faults = ctx_->faults();
  result.status.assign(result.faults.size(), FaultStatus::Untested);
  return result;
}

void Fogbuster::reset_run_state() {
  // Reentrancy: every run starts from the same X-fill stream, so repeated
  // runs on one instance are bit-identical.
  fill_rng_ = Rng(options_.fill_seed);
}

void Fogbuster::set_untestable_memo(
    std::shared_ptr<const std::vector<bool>> memo) {
  check(memo == nullptr || memo->size() == ctx_->faults().size(),
        "Fogbuster: untestable memo size does not match the fault list");
  memo_ = std::move(memo);
}

void Fogbuster::apply_test(const TestSequence& sequence,
                           FogbusterResult* result) {
  result->tests.push_back(sequence);
  result->pattern_count += sequence.pattern_count();

  if (!options_.fault_dropping) {
    return;
  }
  // Fault simulation (paper §5): random X fill, good-machine pass,
  // PPO observability over the propagation frames, then the fast-frame
  // delay fault simulation by critical path tracing. Only the still
  // untested faults are simulated — detected ones are already dropped.
  const net::Netlist& nl = ctx_->netlist();
  const std::vector<sim::InputVec> frames = sequence.all_frames();
  const fausim::Fausim::GoodTrace trace =
      fausim_.simulate_good(frames, fill_rng_);
  const tdsim::TdsimRequest request = make_tdsim_request(
      nl, fausim_, trace, sequence.fast_index(), sequence.needed_ppos);
  std::vector<std::size_t> untested;
  std::vector<tdgen::DelayFault> targets;
  for (std::size_t j = 0; j < result->faults.size(); ++j) {
    if (result->status[j] == FaultStatus::Untested) {
      untested.push_back(j);
      targets.push_back(result->faults[j]);
    }
  }
  const std::vector<bool> detected =
      options_.tdsim_engine == TdsimEngine::Exact
          ? tdsim_.detect_exact(request, targets)
          : tdsim_.detect_cpt(request, targets);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    if (detected[t]) {
      result->status[untested[t]] = FaultStatus::Tested;
      ++result->stages.dropped;
    }
  }
  // Attribute the dropping pass's kernel work while apply_test is still
  // the serialized step, so sequential and sharded runs accumulate the
  // same per-backend counters in the same order.
  result->stages.sim.add(fausim_.take_kernel_counters());
}

void Fogbuster::merge_targeted(std::size_t i, bool memoized,
                               FaultStatus status,
                               const TestSequence& sequence,
                               const StageStats& stages,
                               FogbusterResult* result) {
  ++result->stages.targeted;
  if (memoized) {
    result->status[i] = FaultStatus::Untestable;
    ++result->memo_hits;
    return;
  }
  result->stages.add(stages);
  result->status[i] = status;
  if (status == FaultStatus::Tested) {
    apply_test(sequence, result);
  }
}

FogbusterResult Fogbuster::run(std::span<const std::size_t> target_order) {
  const Stopwatch watch;
  FogbusterResult result = make_empty_result();
  check(target_order.empty() || target_order.size() == result.faults.size(),
        "Fogbuster::run: target order size does not match the fault list");
  reset_run_state();

  // The degenerate (epoch size 1, inline generation) form of the epoch
  // loop in run/shard: every step below it goes through merge_targeted.
  for (std::size_t pos = 0; pos < result.faults.size(); ++pos) {
    const std::size_t i = target_order.empty() ? pos : target_order[pos];
    if (result.status[i] != FaultStatus::Untested) {
      continue;
    }
    const bool memoized = memo_ != nullptr && (*memo_)[i];
    TestSequence sequence;
    StageStats stages;
    FaultStatus status = FaultStatus::Untested;
    if (!memoized) {
      status = generate_for_fault(result.faults[i], &sequence, &stages);
    }
    merge_targeted(i, memoized, status, sequence, stages, &result);
  }
  result.seconds = watch.seconds();
  result.stages.clause_store_bytes = shared_clause_bytes();
  return result;
}

long Fogbuster::shared_clause_bytes() const {
  if (options_.learn != LearnMode::Shared) {
    return 0;
  }
  return static_cast<long>(ctx_->learned_clauses(options_.mode).bytes());
}

}  // namespace gdf::core
