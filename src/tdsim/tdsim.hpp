// TDsim — the delay fault simulator integrated in TDgen (paper §5,
// phase 3): given the two local frames of an applied test, determine every
// StR/StF fault the pattern detects robustly.
//
// Observation points are the primary outputs plus the PPOs that FAUSIM
// found observable through the propagation sequence. A fault observed only
// through a PPO is credited only if its effect cannot, as a side effect,
// invalidate a state bit the propagation phase relies on — the paper's
// separate invalidation trace.
//
// Two interchangeable engines:
//  * detect_exact — per fault: inject the carrier at the site and re-run
//    the two-frame set simulation (the reference implementation);
//  * detect_cpt — critical path tracing: polarity-aware robust-propagation
//    marks composed backward through single-reader chains, with exact cone
//    re-simulation at fanout stems (the classic CPT stem correction).
// The two agree exactly; tests assert it.
#pragma once

#include <span>
#include <vector>

#include "algebra/frame_sim.hpp"
#include "algebra/model.hpp"
#include "tdgen/fault.hpp"

namespace gdf::tdsim {

struct TdsimRequest {
  /// The two local frames as applied (concrete bits; X allowed — detection
  /// is only credited when it holds for every X completion).
  alg::TwoFrameStimulus stimulus;
  /// Per flip-flop: FAUSIM phase-2 observability of the PPO.
  std::vector<bool> observable_ppo;
  /// Flip-flops whose post-fast-frame value the propagation phase relies
  /// on; a credited fault must leave these exactly as the good machine.
  std::vector<std::size_t> needed_ppos;
};

class Tdsim {
 public:
  /// `stem_lanes` caps the packed byte-lane count of one CPT stem sweep
  /// (two lanes per stem — one per polarity). The default keeps the
  /// classic one-word batches of four stems; callers on a wider WordN
  /// backend ladder pass sim::packed_stem_lanes(lanes) through so a sweep
  /// corrects up to 32 stems at once. The batch size never changes the
  /// verdicts — lanes are independent scenarios and the descending fill
  /// order resolves dominators first at any capacity.
  explicit Tdsim(const alg::AtpgModel& model,
                 const alg::DelayAlgebra& algebra, unsigned stem_lanes = 8)
      : model_(&model),
        algebra_(&algebra),
        sim_(model, algebra, stem_lanes) {}

  /// Reference engine: exact injection per fault.
  std::vector<bool> detect_exact(
      const TdsimRequest& request,
      std::span<const tdgen::DelayFault> faults) const;

  /// Critical path tracing engine.
  std::vector<bool> detect_cpt(
      const TdsimRequest& request,
      std::span<const tdgen::DelayFault> faults) const;

 private:
  bool detect_one(const TdsimRequest& request,
                  std::span<const alg::VSet> fault_free,
                  const tdgen::DelayFault& fault) const;
  bool credited(const TdsimRequest& request,
                std::span<const alg::VSet> fault_free,
                std::span<const alg::VSet> injected) const;

  const alg::AtpgModel* model_;
  const alg::DelayAlgebra* algebra_;
  alg::TwoFrameSim sim_;
};

}  // namespace gdf::tdsim
