#include "tdsim/tdsim.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace gdf::tdsim {

using alg::kCarrierSet;
using alg::kEmptySet;
using alg::Node;
using alg::NodeId;
using alg::V8;
using alg::VSet;

namespace {

/// Robust activation of the fault requires a guaranteed clean transition
/// of the right polarity at the site.
bool activated(VSet fault_free_site, bool slow_to_rise) {
  return fault_free_site ==
         alg::vset_of(slow_to_rise ? V8::Rise : V8::Fall);
}

bool carrier_only(VSet s) {
  return s != kEmptySet && (s & ~kCarrierSet) == 0;
}

}  // namespace

bool Tdsim::credited(const TdsimRequest& request,
                     std::span<const alg::VSet> fault_free,
                     std::span<const alg::VSet> injected) const {
  for (const NodeId obs : model_->observation_points()) {
    if (model_->node(obs).is_po && carrier_only(injected[obs])) {
      return true;
    }
  }
  for (std::size_t k = 0; k < model_->ppis().size(); ++k) {
    if (k >= request.observable_ppo.size() || !request.observable_ppo[k]) {
      continue;
    }
    const NodeId ppo = model_->ppo_node(k);
    if (!carrier_only(injected[ppo])) {
      continue;
    }
    // The paper's invalidation trace: the fault must leave every state bit
    // the propagation phase relies on exactly as in the good machine.
    bool invalidates = false;
    for (const std::size_t q : request.needed_ppos) {
      if (q == k) {
        continue;
      }
      const NodeId needed = model_->ppo_node(q);
      if (injected[needed] != fault_free[needed]) {
        invalidates = true;
        break;
      }
    }
    if (!invalidates) {
      return true;
    }
  }
  return false;
}

bool Tdsim::detect_one(const TdsimRequest& request,
                       std::span<const alg::VSet> fault_free,
                       const tdgen::DelayFault& fault) const {
  const NodeId site = model_->head_of(fault.line);
  if (!activated(fault_free[site], fault.slow_to_rise)) {
    return false;
  }
  const alg::FaultSpec spec{site, fault.slow_to_rise};
  std::vector<VSet> injected;
  sim_.run_injected(fault_free, spec, injected);
  return credited(request, fault_free, injected);
}

std::vector<bool> Tdsim::detect_exact(
    const TdsimRequest& request,
    std::span<const tdgen::DelayFault> faults) const {
  std::vector<VSet> fault_free;
  sim_.run(request.stimulus, nullptr, fault_free);
  std::vector<bool> detected(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    detected[i] = detect_one(request, fault_free, faults[i]);
  }
  return detected;
}

std::vector<bool> Tdsim::detect_cpt(
    const TdsimRequest& request,
    std::span<const tdgen::DelayFault> faults) const {
  std::vector<VSet> fault_free;
  sim_.run(request.stimulus, nullptr, fault_free);

  // Polarity-aware marks: mark_rc[n] (mark_fc[n]) is true when replacing
  // n's value by {Rc} ({Fc}) guarantees a carrier-only value at some PO.
  // Composed backward through single-reader chains; fanout stems fall back
  // to exact cone re-simulation — the classic CPT stem correction, made
  // dominator-aware: a stem's sweep is truncated at its immediate
  // dominator toward the observation sinks (every PO path passes it, so
  // the value arriving there together with the dominator's own marks
  // decides the stem — see the ForcedLane::stop contract) and stems that
  // cannot reach a PO at all skip their sweep outright.
  const std::size_t n_nodes = model_->node_count();
  std::vector<bool> mark_rc(n_nodes, false), mark_fc(n_nodes, false);

  const auto compose = [&](NodeId n, V8 polarity) -> bool {
    const std::span<const NodeId> readers = model_->fanout(n);
    const NodeId r = readers[0];
    const Node& rn = model_->node(r);
    VSet out;
    const VSet mine = alg::vset_of(polarity);
    switch (rn.kind) {
      case alg::NodeKind::Buf:
        out = mine;
        break;
      case alg::NodeKind::Not:
        out = algebra_->set_not(mine);
        break;
      default: {
        const alg::Op2 op = rn.kind == alg::NodeKind::And2
                                ? alg::Op2::And
                                : (rn.kind == alg::NodeKind::Or2
                                       ? alg::Op2::Or
                                       : alg::Op2::Xor);
        const VSet other =
            rn.in0 == n ? fault_free[rn.in1] : fault_free[rn.in0];
        out = algebra_->set_fwd(op, mine, other);
        break;
      }
    }
    if (!carrier_only(out)) {
      return false;
    }
    if (alg::vset_contains(out, V8::RiseC) &&
        alg::vset_contains(out, V8::FallC)) {
      // Mixed-polarity carrier sets are outside what polarity marks model
      // exactly; the caller falls back to exact injection for such faults.
      return false;
    }
    return alg::vset_contains(out, V8::RiseC) ? mark_rc[r] : mark_fc[r];
  };

  // A stem's truncated lane resolves from the value its wave leaves at the
  // dominator: a surviving non-carrier member kills the mark (non-carrier
  // members propagate to every downstream set), a single-polarity carrier
  // composes with the dominator's mark, and the rare mixed carrier is
  // decided exactly by one untruncated single-lane sweep from the
  // dominator.
  const auto resolve_stop = [&](VSet at_dom, NodeId dom) -> bool {
    if (at_dom == kEmptySet || (at_dom & ~kCarrierSet) != 0) {
      return false;
    }
    const bool has_rc = alg::vset_contains(at_dom, V8::RiseC);
    const bool has_fc = alg::vset_contains(at_dom, V8::FallC);
    if (has_rc && has_fc) {
      const alg::TwoFrameSim::ForcedLane lane{dom, at_dom, alg::kNoNode};
      return (sim_.forced_sweep(fault_free, {&lane, 1}, {}) & 1u) != 0;
    }
    return has_rc ? mark_rc[dom] : mark_fc[dom];
  };

  // One descending pass interleaves the chain composition with the stem
  // corrections: both only ever read marks of higher-id nodes. Stems batch
  // into one packed sweep (two polarities each, so half the packed lane
  // capacity in stems per sweep); a batch flushes early whenever a mark it
  // would feed is needed.
  const std::size_t stems_per_sweep = sim_.packed_lane_capacity() / 2;
  struct PendingStem {
    NodeId stem;
    NodeId dom;
  };
  std::vector<PendingStem> pending;
  std::vector<alg::TwoFrameSim::ForcedLane> lanes;
  std::vector<VSet> stop_values;
  std::vector<bool> stem_pending(n_nodes, false);
  const auto flush = [&]() {
    if (pending.empty()) {
      return;
    }
    lanes.clear();
    for (const PendingStem& p : pending) {
      lanes.push_back({p.stem, alg::vset_of(V8::RiseC), p.dom});
      lanes.push_back({p.stem, alg::vset_of(V8::FallC), p.dom});
    }
    stop_values.assign(lanes.size(), kEmptySet);
    const std::uint64_t mask =
        sim_.forced_sweep(fault_free, lanes, stop_values);
    // Fill order is descending, so a dominator that is itself a pending
    // stem (always of higher id, hence added earlier) resolves before any
    // stem it dominates reads its marks.
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const PendingStem& p = pending[i];
      if (p.dom == alg::kNoNode) {
        mark_rc[p.stem] = (mask >> (2 * i) & 1u) != 0;
        mark_fc[p.stem] = (mask >> (2 * i + 1) & 1u) != 0;
      } else {
        mark_rc[p.stem] = resolve_stop(stop_values[2 * i], p.dom);
        mark_fc[p.stem] = resolve_stop(stop_values[2 * i + 1], p.dom);
      }
      stem_pending[p.stem] = false;
    }
    pending.clear();
  };

  for (NodeId id = static_cast<NodeId>(n_nodes); id-- > 0;) {
    if (model_->node(id).is_po) {
      mark_rc[id] = true;
      mark_fc[id] = true;
      continue;
    }
    const std::span<const NodeId> readers = model_->fanout(id);
    if (readers.empty()) {
      continue;  // dead end stays false
    }
    if (readers.size() > 1) {
      if (!model_->po_reachable(id)) {
        continue;  // the sweep could only come back empty
      }
      // A dominator that is itself pending needs no early flush: fill
      // order is descending, so flush() resolves it before the stems it
      // dominates.
      pending.push_back({id, model_->idom(id)});
      stem_pending[id] = true;
      if (pending.size() == stems_per_sweep) {
        flush();
      }
      continue;
    }
    if (stem_pending[readers[0]]) {
      flush();
    }
    mark_rc[id] = compose(id, V8::RiseC);
    mark_fc[id] = compose(id, V8::FallC);
  }
  flush();

  std::vector<bool> detected(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const tdgen::DelayFault& f = faults[i];
    const NodeId site = model_->head_of(f.line);
    if (!activated(fault_free[site], f.slow_to_rise)) {
      continue;
    }
    if (f.slow_to_rise ? mark_rc[site] : mark_fc[site]) {
      detected[i] = true;
      continue;
    }
    // Not provable at a PO by tracing: the PPO paths (and their
    // invalidation rule) need the full injected picture.
    detected[i] = detect_one(request, fault_free, f);
  }
  return detected;
}

}  // namespace gdf::tdsim
