// Standalone sequential stuck-at ATPG — SEMILET's native job ("a
// sequential test pattern generator for several static fault models"),
// exposed so the substrate is usable on its own.
//
// Flow per fault: a frame PODEM activates the fault (site driven to the
// non-stuck value; the injected fault turns the divergence into D/D') and
// either observes it at a PO directly or leaves it in the state register,
// where the forward-time Propagator chases it; state requirements of the
// activation frame are synchronized from the all-X power-up state. The
// synchronizing prefix is computed on the good machine and the complete
// sequence is then validated by faulty-machine replay — candidates whose
// initialization the fault invalidates are rejected and the search
// continues (this keeps results sound without a full multi-frame faulty
// justification engine; see DESIGN.md).
#pragma once

#include <vector>

#include "semilet/options.hpp"
#include "semilet/propagate.hpp"
#include "semilet/synchronize.hpp"
#include "sim/seq_sim.hpp"

namespace gdf::semilet {

struct StuckAtFault {
  net::GateId line = net::kNoGate;
  bool stuck_at_one = false;
};

struct StuckAtTest {
  /// Complete PI sequence from power-up; the fault is detectable at a PO
  /// in at least one frame (X PI bits may be applied arbitrarily).
  std::vector<sim::InputVec> frames;
};

enum class StuckAtStatus { TestFound, Untestable, Aborted };

class StuckAtAtpg {
 public:
  explicit StuckAtAtpg(const net::Netlist& nl, SemiletOptions options = {});

  StuckAtStatus generate(const StuckAtFault& fault, StuckAtTest* out);

 private:
  bool validate(const StuckAtFault& fault,
                const std::vector<sim::InputVec>& frames) const;

  const net::Netlist* nl_;
  sim::SeqSimulator sim_;
  SemiletOptions options_;
};

}  // namespace gdf::semilet
