#include "semilet/frame_podem.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace gdf::semilet {

using net::GateId;
using net::GateType;
using sim::Lv;

namespace {

Lv negate_bit(Lv v) {
  GDF_ASSERT(sim::is_binary(v), "negate_bit on non-binary value");
  return v == Lv::Zero ? Lv::One : Lv::Zero;
}

/// Controlling value of the gate body (And/Or families); Xor has none.
bool body_has_controlling(GateType type, Lv* controlling) {
  switch (type) {
    case GateType::And:
    case GateType::Nand:
      *controlling = Lv::Zero;
      return true;
    case GateType::Or:
    case GateType::Nor:
      *controlling = Lv::One;
      return true;
    default:
      return false;
  }
}

}  // namespace

FramePodem::FramePodem(const sim::SeqSimulator& sim, Budget& budget,
                       PodemRequest request)
    : sim_(&sim),
      nl_(&sim.netlist()),
      budget_(&budget),
      request_(std::move(request)) {
  GDF_ASSERT(request_.in_state.size() == nl_->dffs().size(),
             "in_state size mismatch");
  GDF_ASSERT(request_.assignable_ppi.size() == nl_->dffs().size(),
             "assignable mask size mismatch");
  pis_ = request_.base_pis.empty()
             ? sim::InputVec(nl_->inputs().size(), Lv::X)
             : request_.base_pis;
  GDF_ASSERT(pis_.size() == nl_->inputs().size(), "base PI size mismatch");
  state_ = request_.in_state;
}

void FramePodem::simulate() {
  const sim::Injection* injection =
      request_.injection.active() ? &request_.injection : nullptr;
  if (!lines_ready_) {
    sim_->eval_frame(pis_, state_, lines_, injection);
    lines_ready_ = true;
    changed_sources_.clear();
    return;
  }
  if (changed_sources_.empty()) {
    return;  // still settled from the previous iteration
  }
  // Delta resettle: write the changed boundary values (re-applying the
  // injection when it sits on one) and replay only their cones. Exactly
  // equivalent to the full eval_frame above.
  const sim::FlatCircuit& fc = *sim_->flat();
  work_.begin(fc.body_count());
  bool any = false;
  for (const auto& [is_ppi, index] : changed_sources_) {
    const net::GateId line =
        is_ppi ? nl_->dffs()[index] : nl_->inputs()[index];
    Lv v = is_ppi ? state_[index] : pis_[index];
    if (injection != nullptr && injection->line == line) {
      v = sim::combine(sim::good_value(v), injection->faulty);
    }
    if (v == lines_[line]) {
      continue;
    }
    lines_[line] = v;
    for (const std::uint32_t reader : fc.readers(line)) {
      work_.push(reader);
    }
    any = true;
  }
  changed_sources_.clear();
  if (any) {
    sim_->resettle_frame(lines_, work_, injection);
  }
}

bool FramePodem::any_fault_effect() const {
  for (const Lv v : lines_) {
    if (sim::is_fault_effect(v)) {
      return true;
    }
  }
  return false;
}

bool FramePodem::success() const {
  if (request_.mode == PodemMode::JustifyValues) {
    for (const auto& [line, value] : request_.objectives) {
      if (lines_[line] != value) {
        return false;
      }
    }
    return true;
  }
  bool po = false;
  for (const GateId out : nl_->outputs()) {
    if (sim::is_fault_effect(lines_[out])) {
      po = true;
      break;
    }
  }
  if (po) {
    return true;
  }
  if (request_.require_po) {
    return false;
  }
  for (const GateId dff : nl_->dffs()) {
    if (sim::is_fault_effect(lines_[nl_->gate(dff).fanin[0]])) {
      return true;
    }
  }
  return false;
}

bool FramePodem::hopeless() const {
  if (request_.mode == PodemMode::JustifyValues) {
    // An objective simulating to the opposite definite value is dead.
    for (const auto& [line, value] : request_.objectives) {
      const Lv now = lines_[line];
      if (sim::is_binary(now) && now != value) {
        return true;
      }
      if (sim::is_fault_effect(now)) {
        return true;  // justification targets are good-machine values
      }
    }
    return false;
  }
  // ObserveFault: X-path check — some D/D' line must reach an observation
  // point through X-valued lines. Scratch buffers are members and the
  // visited set is epoch-stamped: this runs every search iteration, and
  // re-zeroing the whole vector would cost O(circuit) per call while the
  // walk itself usually touches a handful of lines.
  if (seen_.size() != nl_->size()) {
    seen_.assign(nl_->size(), 0);
    seen_epoch_ = 0;
  }
  if (++seen_epoch_ == 0) {  // wrapped: stale stamps could collide
    std::fill(seen_.begin(), seen_.end(), 0);
    seen_epoch_ = 1;
  }
  bfs_.clear();
  for (GateId id = 0; id < nl_->size(); ++id) {
    if (sim::is_fault_effect(lines_[id])) {
      bfs_.push_back(id);
      seen_[id] = seen_epoch_;
    }
  }
  if (bfs_.empty()) {
    if (request_.activation_line != net::kNoGate &&
        lines_[request_.activation_line] == Lv::X) {
      return false;  // the fault could still be activated in this frame
    }
    return true;  // the fault effect died (or cannot appear) in this frame
  }
  for (std::size_t head = 0; head < bfs_.size(); ++head) {
    const GateId id = bfs_[head];
    if (nl_->is_po(id)) {
      return false;
    }
    if (!request_.require_po && nl_->feeds_dff(id)) {
      return false;
    }
    for (const GateId reader : nl_->gate(id).fanout) {
      if (seen_[reader] == seen_epoch_ ||
          nl_->gate(reader).type == GateType::Dff) {
        continue;
      }
      const Lv v = lines_[reader];
      if (v == Lv::X || sim::is_fault_effect(v)) {
        seen_[reader] = seen_epoch_;
        bfs_.push_back(reader);
      }
    }
  }
  return true;
}

bool FramePodem::choose_objective(GateId* line, Lv* value) const {
  if (request_.mode == PodemMode::JustifyValues) {
    for (const auto& [l, v] : request_.objectives) {
      if (lines_[l] == Lv::X) {
        *line = l;
        *value = v;
        return true;
      }
    }
    return false;
  }
  // No fault effect yet: work on activation first (stuck-at use).
  if (request_.activation_line != net::kNoGate && !any_fault_effect()) {
    if (lines_[request_.activation_line] == Lv::X) {
      *line = request_.activation_line;
      *value = request_.activation_value;
      return true;
    }
    return false;
  }
  // D-frontier: gate with X output and a fault effect on an input; pick the
  // one closest to an observation point, then set one X input to the
  // non-controlling (sensitizing) value.
  const std::span<const int> obs_distance = sim_->flat()->obs_distance();
  GateId best = net::kNoGate;
  for (GateId id = 0; id < nl_->size(); ++id) {
    const net::Gate& g = nl_->gate(id);
    if (g.type == GateType::Input || g.type == GateType::Dff) {
      continue;
    }
    if (lines_[id] != Lv::X) {
      continue;
    }
    bool has_effect = false;
    for (const GateId driver : g.fanin) {
      if (sim::is_fault_effect(lines_[driver])) {
        has_effect = true;
        break;
      }
    }
    if (!has_effect) {
      continue;
    }
    if (best == net::kNoGate || obs_distance[id] < obs_distance[best]) {
      best = id;
    }
  }
  if (best == net::kNoGate) {
    return false;
  }
  const net::Gate& g = nl_->gate(best);
  Lv noncontrolling = Lv::One;
  Lv controlling;
  if (body_has_controlling(g.type, &controlling)) {
    noncontrolling = negate_bit(controlling);
  }
  for (const GateId driver : g.fanin) {
    if (lines_[driver] == Lv::X) {
      *line = driver;
      // XOR bodies have no controlling value; any definite value
      // sensitizes, so One/Zero are both fine — prefer the non-controlling
      // convention for uniformity.
      *value = noncontrolling;
      return true;
    }
  }
  return false;
}

bool FramePodem::backtrace(GateId line, Lv value, Decision* decision) const {
  GDF_ASSERT(sim::is_binary(value), "backtrace value must be binary");
  const sim::FlatCircuit& fc = *sim_->flat();
  const std::span<const int> level = fc.level();
  for (;;) {
    const net::Gate& g = nl_->gate(line);
    if (g.type == GateType::Input) {
      for (std::size_t i = 0; i < nl_->inputs().size(); ++i) {
        if (nl_->inputs()[i] == line) {
          *decision = {false, i, value, false};
          return true;
        }
      }
      GDF_ASSERT(false, "input gate not in inputs list");
    }
    if (g.type == GateType::Dff) {
      for (std::size_t i = 0; i < nl_->dffs().size(); ++i) {
        if (nl_->dffs()[i] == line) {
          if (!request_.assignable_ppi[i] || state_[i] != Lv::X) {
            return false;  // fixed-but-unknown U value: not assignable
          }
          *decision = {true, i, value, false};
          return true;
        }
      }
      GDF_ASSERT(false, "dff gate not in dffs list");
    }
    const Lv body_value = net::is_inverting(g.type) ? negate_bit(value)
                                                    : value;
    // Choose the X input to chase; prefer inputs that can reach a primary
    // input so the walk ends at an assignable source, and among those the
    // shallowest one (a cheap controllability estimate — e.g. a global
    // clear line beats re-justifying a whole carry chain).
    GateId chosen = net::kNoGate;
    for (const GateId driver : g.fanin) {
      if (lines_[driver] != Lv::X) {
        continue;
      }
      if (chosen == net::kNoGate) {
        chosen = driver;
        continue;
      }
      if (fc.pi_reachable(driver) != fc.pi_reachable(chosen)) {
        if (fc.pi_reachable(driver)) {
          chosen = driver;
        }
        continue;
      }
      if (level[driver] < level[chosen]) {
        chosen = driver;
      }
    }
    if (chosen == net::kNoGate) {
      return false;  // definite already; the caller treats it as conflict
    }
    Lv next_value = body_value;
    if (g.type == GateType::Xor || g.type == GateType::Xnor) {
      // target = body_value XOR (definite part of the other inputs);
      // unknown others are assumed 0 — heuristic, corrected by backtrack.
      int parity = body_value == Lv::One ? 1 : 0;
      for (const GateId driver : g.fanin) {
        if (driver != chosen && lines_[driver] == Lv::One) {
          parity ^= 1;
        }
      }
      next_value = parity == 1 ? Lv::One : Lv::Zero;
    } else {
      Lv controlling;
      if (body_has_controlling(g.type, &controlling)) {
        // body 0 for AND: one controlling input suffices; body 1: all
        // inputs non-controlling. Either way the chosen X input gets:
        next_value = body_value == controlling ? controlling
                                               : negate_bit(controlling);
      }
      // Buf/Not handled by body_value already (single input).
    }
    line = chosen;
    value = next_value;
  }
}

bool FramePodem::apply(const Decision& d) {
  if (!budget_->note_decision()) {
    aborted_ = true;
    return false;
  }
  if (d.is_ppi) {
    GDF_ASSERT(state_[d.index] == Lv::X, "PPI already assigned");
    state_[d.index] = d.value;
  } else {
    GDF_ASSERT(pis_[d.index] == Lv::X, "PI already assigned");
    pis_[d.index] = d.value;
  }
  changed_sources_.emplace_back(d.is_ppi, d.index);
  stack_.push_back(d);
  return true;
}

bool FramePodem::backtrack() {
  if (!budget_->note_backtrack()) {
    aborted_ = true;
    return false;
  }
  while (!stack_.empty()) {
    Decision& d = stack_.back();
    if (!d.flipped) {
      d.flipped = true;
      d.value = negate_bit(d.value);
      if (d.is_ppi) {
        state_[d.index] = d.value;
      } else {
        pis_[d.index] = d.value;
      }
      changed_sources_.emplace_back(d.is_ppi, d.index);
      return true;
    }
    if (d.is_ppi) {
      state_[d.index] = Lv::X;
    } else {
      pis_[d.index] = Lv::X;
    }
    changed_sources_.emplace_back(d.is_ppi, d.index);
    stack_.pop_back();
  }
  return false;
}

void FramePodem::fill_solution(FrameSolution* out) const {
  out->pis = pis_;
  out->ppi_assignments.clear();
  for (const Decision& d : stack_) {
    if (d.is_ppi) {
      out->ppi_assignments.emplace_back(d.index, d.value);
    }
  }
  out->line_values = lines_;
  out->po_hit = false;
  out->ppo_hit = false;
  for (const GateId po : nl_->outputs()) {
    if (sim::is_fault_effect(lines_[po])) {
      out->po_hit = true;
    }
  }
  for (const GateId dff : nl_->dffs()) {
    if (sim::is_fault_effect(lines_[nl_->gate(dff).fanin[0]])) {
      out->ppo_hit = true;
    }
  }
}

PodemStatus FramePodem::next(FrameSolution* out) {
  if (aborted_) {
    return PodemStatus::Aborted;
  }
  // After a PPO-only solution the region may still contain a PO-hitting
  // refinement (the D-frontier is not empty); keep deciding instead of
  // backtracking so those are not skipped. Full PO hits and justification
  // solutions have nothing left to refine.
  bool need_progress = false;
  if (started_) {
    if (last_was_refinable_) {
      need_progress = true;
    } else if (!backtrack()) {
      return aborted_ ? PodemStatus::Aborted : PodemStatus::Exhausted;
    }
  }
  started_ = true;
  for (;;) {
    simulate();
    const bool ok = success();
    if (ok && !need_progress) {
      if (out != nullptr) {
        fill_solution(out);
      }
      last_was_refinable_ = request_.mode == PodemMode::ObserveFault &&
                            request_.refine_toward_po && out != nullptr &&
                            !out->po_hit;
      return PodemStatus::Solution;
    }
    if (!ok && hopeless()) {
      if (!backtrack()) {
        return aborted_ ? PodemStatus::Aborted : PodemStatus::Exhausted;
      }
      need_progress = false;
      continue;
    }
    GateId line;
    Lv value;
    if (!choose_objective(&line, &value)) {
      if (!backtrack()) {
        return aborted_ ? PodemStatus::Aborted : PodemStatus::Exhausted;
      }
      need_progress = false;
      continue;
    }
    Decision d;
    if (!backtrace(line, value, &d)) {
      if (!backtrack()) {
        return aborted_ ? PodemStatus::Aborted : PodemStatus::Exhausted;
      }
      need_progress = false;
      continue;
    }
    if (!apply(d)) {
      return PodemStatus::Aborted;
    }
    need_progress = false;
  }
}

}  // namespace gdf::semilet
