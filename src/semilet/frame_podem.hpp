// Single-time-frame PODEM over the five-valued logic — the workhorse of
// SEMILET. One instance searches one time frame for either
//  * ObserveFault: an assignment making a fault effect (D/D') visible at a
//    primary output (or, if allowed, at a pseudo primary output, which the
//    caller then chases into the next frame), or
//  * JustifyValues: an assignment producing required values at given lines
//    (used by reverse-time propagation justification and synchronization).
//
// Decisions are made on this frame's unassigned primary inputs and — where
// the caller permits — on unknown pseudo primary inputs; the latter are
// reported back as requirements on the previous time frame, exactly the
// paper's "values at PPIs [that] are not justified directly".
//
// The search is resumable: next() enumerates distinct solutions so outer
// phases can reject one and ask for another (inter-phase backtracking).
#pragma once

#include <utility>
#include <vector>

#include "semilet/options.hpp"
#include "sim/seq_sim.hpp"

namespace gdf::semilet {

enum class PodemMode { ObserveFault, JustifyValues };

struct PodemRequest {
  PodemMode mode = PodemMode::ObserveFault;
  /// State entering the frame; may contain D/D' (the fault effect) and X.
  sim::StateVec in_state;
  /// Which X bits of in_state the search may assign (unjustifiable U bits
  /// and known bits must be false here).
  std::vector<bool> assignable_ppi;
  /// Pre-assigned PI values (empty means all X).
  sim::InputVec base_pis;
  /// JustifyValues: required line values (binary).
  std::vector<std::pair<net::GateId, sim::Lv>> objectives;
  /// ObserveFault: when true only a PO counts as success.
  bool require_po = false;
  /// ObserveFault: after a PPO-only solution, keep deciding toward a PO
  /// before abandoning the region. Disable for advance-only searches.
  bool refine_toward_po = true;
  /// Static fault forced during this frame (stuck-at use).
  sim::Injection injection;
  /// ObserveFault with injection: while no fault effect exists yet, chase
  /// this activation objective (site line driven to the non-stuck value).
  net::GateId activation_line = net::kNoGate;
  sim::Lv activation_value = sim::Lv::X;
};

struct FrameSolution {
  sim::InputVec pis;                                        ///< 0/1/X per PI
  std::vector<std::pair<std::size_t, sim::Lv>> ppi_assignments;
  std::vector<sim::Lv> line_values;                         ///< settled frame
  bool po_hit = false;
  bool ppo_hit = false;
};

enum class PodemStatus { Solution, Exhausted, Aborted };

class FramePodem {
 public:
  FramePodem(const sim::SeqSimulator& sim, Budget& budget,
             PodemRequest request);

  /// Produces the next distinct solution; Exhausted when the frame's
  /// decision space is used up, Aborted when the shared budget ran out.
  PodemStatus next(FrameSolution* out);

 private:
  struct Decision {
    bool is_ppi = false;
    std::size_t index = 0;
    sim::Lv value = sim::Lv::X;
    bool flipped = false;
  };

  void simulate();
  bool any_fault_effect() const;
  bool success() const;
  bool hopeless() const;
  bool choose_objective(net::GateId* line, sim::Lv* value) const;
  bool backtrace(net::GateId line, sim::Lv value, Decision* decision) const;
  bool apply(const Decision& d);
  bool backtrack();
  void fill_solution(FrameSolution* out) const;

  const sim::SeqSimulator* sim_;
  const net::Netlist* nl_;
  Budget* budget_;
  PodemRequest request_;

  sim::InputVec pis_;
  sim::StateVec state_;
  std::vector<sim::Lv> lines_;
  std::vector<Decision> stack_;
  /// Sources (is_ppi, index) assigned or un-assigned since the last
  /// settle: simulate() replays only their cones instead of re-evaluating
  /// the frame — the frame-PODEM side of the push/pop-deltas discipline.
  std::vector<std::pair<bool, std::size_t>> changed_sources_;
  sim::BitQueue work_;
  bool lines_ready_ = false;
  /// Reused X-path scratch (hopeless() runs every search iteration).
  /// seen_ is epoch-stamped so a call costs O(reached), not O(circuit).
  mutable std::vector<std::uint32_t> seen_;
  mutable std::uint32_t seen_epoch_ = 0;
  mutable std::vector<net::GateId> bfs_;
  bool started_ = false;
  bool aborted_ = false;
  bool last_was_refinable_ = false;
};

}  // namespace gdf::semilet
