#include "semilet/stuckat.hpp"

#include "base/error.hpp"

namespace gdf::semilet {

using sim::Lv;

StuckAtAtpg::StuckAtAtpg(const net::Netlist& nl, SemiletOptions options)
    : nl_(&nl), sim_(nl), options_(options) {}

bool StuckAtAtpg::validate(const StuckAtFault& fault,
                           const std::vector<sim::InputVec>& frames) const {
  const sim::Injection injection{fault.line,
                                 fault.stuck_at_one ? Lv::One : Lv::Zero};
  sim::StateVec state = sim_.unknown_state();
  std::vector<Lv> lines;
  for (const sim::InputVec& pis : frames) {
    sim_.eval_frame(pis, state, lines, &injection);
    for (const net::GateId po : nl_->outputs()) {
      if (sim::is_fault_effect(lines[po])) {
        return true;
      }
    }
    state = sim_.next_state(lines);
  }
  return false;
}

StuckAtStatus StuckAtAtpg::generate(const StuckAtFault& fault,
                                    StuckAtTest* out) {
  GDF_ASSERT(fault.line < nl_->size(), "fault line out of range");
  Budget budget(options_);
  const sim::Injection injection{fault.line,
                                 fault.stuck_at_one ? Lv::One : Lv::Zero};

  // Activation frame: power-up-unknown state, every X bit may become a
  // synchronization requirement.
  PodemRequest request;
  request.mode = PodemMode::ObserveFault;
  request.in_state = sim_.unknown_state();
  request.assignable_ppi.assign(nl_->dffs().size(), true);
  request.injection = injection;
  request.activation_line = fault.line;
  request.activation_value = fault.stuck_at_one ? Lv::Zero : Lv::One;
  FramePodem activation(sim_, budget, std::move(request));

  FrameSolution asol;
  for (;;) {
    const PodemStatus astatus = activation.next(&asol);
    if (astatus == PodemStatus::Aborted) {
      return StuckAtStatus::Aborted;
    }
    if (astatus == PodemStatus::Exhausted) {
      return StuckAtStatus::Untestable;
    }

    // Synchronize the state bits the activation frame leaned on.
    Synchronizer synchronizer(sim_.flat(), budget);
    SyncResult sync;
    const SeqStatus sync_status =
        synchronizer.synchronize(asol.ppi_assignments, &sync);
    if (sync_status == SeqStatus::Aborted) {
      return StuckAtStatus::Aborted;
    }
    if (sync_status == SeqStatus::Exhausted) {
      continue;  // unsynchronizable activation: try another
    }

    if (asol.po_hit) {
      std::vector<sim::InputVec> frames = sync.frames;
      frames.push_back(asol.pis);
      if (validate(fault, frames)) {
        if (out != nullptr) {
          out->frames = std::move(frames);
        }
        return StuckAtStatus::TestFound;
      }
      continue;  // initialization invalidated by the fault: next candidate
    }

    // Effect captured in the register only: chase it forward.
    sim::StateVec boundary = sim_.next_state(asol.line_values);
    std::vector<bool> assignable(boundary.size(), false);
    // X bits of the captured state were produced by X logic in the
    // activation frame and could be justified through it; to keep the
    // facade simple they stay unassignable (documented pessimism).
    Propagator propagator(sim_.flat(), budget, injection);
    propagator.start(std::move(boundary), std::move(assignable));
    PropagationOutcome outcome;
    for (;;) {
      const SeqStatus pstatus = propagator.next(&outcome);
      if (pstatus == SeqStatus::Aborted) {
        return StuckAtStatus::Aborted;
      }
      if (pstatus == SeqStatus::Exhausted) {
        break;  // try the next activation
      }
      GDF_ASSERT(outcome.boundary_requirements.empty(),
                 "unassignable boundary produced requirements");
      std::vector<sim::InputVec> frames = sync.frames;
      frames.push_back(asol.pis);
      frames.insert(frames.end(), outcome.frames.begin(),
                    outcome.frames.end());
      if (validate(fault, frames)) {
        if (out != nullptr) {
          out->frames = std::move(frames);
        }
        return StuckAtStatus::TestFound;
      }
    }
  }
}

}  // namespace gdf::semilet
