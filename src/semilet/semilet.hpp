// Umbrella header for the SEMILET sequential engines: per-frame PODEM,
// forward-time propagation, reverse-time synchronization, and the
// standalone sequential stuck-at ATPG facade.
#pragma once

#include "semilet/frame_podem.hpp"   // IWYU pragma: export
#include "semilet/options.hpp"       // IWYU pragma: export
#include "semilet/propagate.hpp"     // IWYU pragma: export
#include "semilet/stuckat.hpp"       // IWYU pragma: export
#include "semilet/synchronize.hpp"   // IWYU pragma: export
