// Synchronization — the initialization half of FOGBUSTER (paper §4).
//
// Finds an input sequence that drives the machine from the completely
// unknown power-up state into one satisfying the required state bits (the
// S0 that TDgen's initial frame needs). Works by reverse time processing:
// the requirements are justified in a frame whose entering state is all-X;
// requirements that fall back on state bits recurse into an earlier frame,
// until a frame needs no state support at all. Because every frame is
// justified against an all-X state, the resulting sequence initializes the
// required bits from *any* power-up state — a true synchronizing sequence
// under three-valued logic.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "semilet/frame_podem.hpp"
#include "semilet/options.hpp"
#include "semilet/propagate.hpp"
#include "sim/seq_sim.hpp"

namespace gdf::semilet {

struct SyncResult {
  /// Chronological PI vectors; applying them from any state establishes
  /// the requirements at the sequence's end.
  std::vector<sim::InputVec> frames;
};

class Synchronizer {
 public:
  Synchronizer(const net::Netlist& nl, Budget& budget);

  /// Shares an already-built flat circuit form (see sim/flat_circuit).
  Synchronizer(std::shared_ptr<const sim::FlatCircuit> fc, Budget& budget);

  /// Requirements: flip-flop index -> value that must hold in the state
  /// *after* the returned sequence. An empty requirement list succeeds
  /// with an empty sequence.
  SeqStatus synchronize(
      std::vector<std::pair<std::size_t, sim::Lv>> requirements,
      SyncResult* out);

 private:
  struct Layer {
    std::unique_ptr<FramePodem> podem;
    FrameSolution sol;
    std::vector<std::pair<std::size_t, sim::Lv>> requirements;
  };

  bool push_layer(std::vector<std::pair<std::size_t, sim::Lv>> requirements);

  const net::Netlist* nl_;
  sim::SeqSimulator sim_;
  Budget* budget_;
  std::vector<Layer> layers_;
  std::set<std::string> seen_;
};

}  // namespace gdf::semilet
