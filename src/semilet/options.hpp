// Shared search limits of the sequential engines. The paper aborts a fault
// after "100 backtracks for the sequential test pattern generator"; the
// budget object is shared by the propagation, justification and
// synchronization phases of one fault so the limit covers them together.
#pragma once

namespace gdf::semilet {

struct SemiletOptions {
  int backtrack_limit = 100;        ///< paper §6
  int max_propagation_frames = 40;  ///< forward time processing depth
  int max_sync_frames = 40;         ///< reverse time processing depth
  long decision_limit = 200000;     ///< safety net
};

class Budget {
 public:
  explicit Budget(const SemiletOptions& options) : options_(options) {}

  /// Records a backtrack; returns false once the limit is exceeded.
  bool note_backtrack() {
    ++backtracks_;
    return backtracks_ <= options_.backtrack_limit;
  }

  bool note_decision() {
    ++decisions_;
    return decisions_ <= options_.decision_limit;
  }

  bool exhausted() const {
    return backtracks_ > options_.backtrack_limit ||
           decisions_ > options_.decision_limit;
  }

  int backtracks() const { return backtracks_; }
  long decisions() const { return decisions_; }
  const SemiletOptions& options() const { return options_; }

 private:
  SemiletOptions options_;
  int backtracks_ = 0;
  long decisions_ = 0;
};

}  // namespace gdf::semilet
