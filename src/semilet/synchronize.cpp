#include "semilet/synchronize.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace gdf::semilet {

using sim::Lv;

namespace {

std::string requirement_key(
    std::vector<std::pair<std::size_t, Lv>> requirements) {
  std::sort(requirements.begin(), requirements.end());
  std::string key;
  for (const auto& [ff, v] : requirements) {
    key += std::to_string(ff);
    key.push_back(v == Lv::One ? '1' : '0');
    key.push_back(',');
  }
  return key;
}

}  // namespace

Synchronizer::Synchronizer(const net::Netlist& nl, Budget& budget)
    : nl_(&nl), sim_(nl), budget_(&budget) {}

Synchronizer::Synchronizer(std::shared_ptr<const sim::FlatCircuit> fc,
                           Budget& budget)
    : nl_(&fc->netlist()), sim_(std::move(fc)), budget_(&budget) {}

bool Synchronizer::push_layer(
    std::vector<std::pair<std::size_t, Lv>> requirements) {
  if (layers_.size() >=
      static_cast<std::size_t>(budget_->options().max_sync_frames)) {
    return false;
  }
  PodemRequest request;
  request.mode = PodemMode::JustifyValues;
  request.in_state.assign(nl_->dffs().size(), Lv::X);
  request.assignable_ppi.assign(nl_->dffs().size(), true);
  for (const auto& [ff, v] : requirements) {
    request.objectives.emplace_back(nl_->gate(nl_->dffs()[ff]).fanin[0], v);
  }
  Layer layer;
  layer.podem =
      std::make_unique<FramePodem>(sim_, *budget_, std::move(request));
  layer.requirements = std::move(requirements);
  layers_.push_back(std::move(layer));
  return true;
}

SeqStatus Synchronizer::synchronize(
    std::vector<std::pair<std::size_t, Lv>> requirements, SyncResult* out) {
  if (requirements.empty()) {
    if (out != nullptr) {
      out->frames.clear();
    }
    return SeqStatus::Success;
  }
  layers_.clear();
  seen_.clear();
  seen_.insert(requirement_key(requirements));
  push_layer(std::move(requirements));

  while (!layers_.empty()) {
    Layer& top = layers_.back();
    const PodemStatus status = top.podem->next(&top.sol);
    if (status == PodemStatus::Aborted) {
      return SeqStatus::Aborted;
    }
    if (status == PodemStatus::Exhausted) {
      layers_.pop_back();
      continue;
    }
    if (top.sol.ppi_assignments.empty()) {
      // The deepest frame needs no state support: the sequence is
      // complete. Layers were built from latest to earliest, so reverse.
      if (out != nullptr) {
        out->frames.clear();
        for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
          out->frames.push_back(it->sol.pis);
        }
      }
      return SeqStatus::Success;
    }
    // The frame leaned on state bits: they become the requirements of an
    // earlier frame (reverse time processing).
    std::vector<std::pair<std::size_t, Lv>> earlier =
        top.sol.ppi_assignments;
    const std::string key = requirement_key(earlier);
    if (!seen_.insert(key).second) {
      continue;  // a repeating requirement set cannot make progress
    }
    push_layer(std::move(earlier));
  }
  return SeqStatus::Exhausted;
}

}  // namespace gdf::semilet
