// Forward-time fault-effect propagation with reverse-time justification —
// the propagation half of the FOGBUSTER algorithm (paper §4).
//
// Starting from the state left by the fast clock frame (fault effect D/D'
// at one or more flip-flops, steady known bits, and fixed-but-unknown U
// bits), the propagator expands time frames forward under the slow clock
// until the effect reaches a primary output. Per frame a five-valued PODEM
// chooses PI values; X state bits may be assigned where the caller permits,
// and every such assignment becomes a requirement that the reverse-time
// justification pass resolves through the earlier propagation frames. The
// requirements that reach the first boundary are returned to the caller,
// which hands them to TDgen as pinned steady PPO values ("the local test
// generation is called for performing the propagation justification task
// for the fast clock time frame").
#pragma once

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "semilet/frame_podem.hpp"
#include "semilet/options.hpp"
#include "sim/seq_sim.hpp"

namespace gdf::semilet {

enum class SeqStatus { Success, Exhausted, Aborted };

struct PropagationOutcome {
  /// Chronological PI vectors of the propagation frames (justified).
  std::vector<sim::InputVec> frames;
  /// Requirements on the fast-frame boundary: flip-flop index -> value the
  /// PPO must robustly deliver (TDgen pin requests).
  std::vector<std::pair<std::size_t, sim::Lv>> boundary_requirements;
};

class Propagator {
 public:
  /// `injection` (optional) keeps a static fault active in every
  /// propagation frame — used by the stuck-at facade. The gate-delay flow
  /// passes an empty injection: under a slow clock the delay fault does not
  /// occur ("the fault location is not needed to be known by SEMILET").
  Propagator(const net::Netlist& nl, Budget& budget,
             sim::Injection injection = {});

  /// Shares an already-built flat circuit form (see sim/flat_circuit) so
  /// repeated searches over one netlist do not rebuild the structure.
  Propagator(std::shared_ptr<const sim::FlatCircuit> fc, Budget& budget,
             sim::Injection injection = {});

  /// Begins a new enumeration from the boundary state. `assignable`
  /// marks the X bits the search may require values for (TDgen re-entry).
  void start(sim::StateVec boundary_state, std::vector<bool> assignable);

  /// Next distinct propagation candidate with justified requirements.
  SeqStatus next(PropagationOutcome* out);

 private:
  /// Each time frame runs two searches: first a PO-directed one (solutions
  /// are detection candidates), then — once that is exhausted — an
  /// advance-only one whose solutions feed the next frame.
  struct Layer {
    std::unique_ptr<FramePodem> po_podem;
    std::unique_ptr<FramePodem> advance_podem;
    bool advancing = false;
    FrameSolution sol;
    sim::StateVec in_state;
    std::vector<bool> assignable;
  };

  bool push_layer(sim::StateVec in_state, std::vector<bool> assignable);
  bool justify(PropagationOutcome* out);

  const net::Netlist* nl_;
  sim::SeqSimulator sim_;
  Budget* budget_;
  sim::Injection injection_;
  std::vector<Layer> layers_;
  std::set<std::string> seen_;
  bool started_ = false;
};

}  // namespace gdf::semilet
