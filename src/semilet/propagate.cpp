#include "semilet/propagate.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace gdf::semilet {

using sim::Lv;

namespace {

std::string state_key(const sim::StateVec& state) {
  std::string key;
  key.reserve(state.size());
  for (const Lv v : state) {
    key.push_back(static_cast<char>('0' + static_cast<int>(v)));
  }
  return key;
}

bool has_fault_effect(const sim::StateVec& state) {
  return std::any_of(state.begin(), state.end(), sim::is_fault_effect);
}

}  // namespace

Propagator::Propagator(const net::Netlist& nl, Budget& budget,
                       sim::Injection injection)
    : nl_(&nl), sim_(nl), budget_(&budget), injection_(injection) {}

Propagator::Propagator(std::shared_ptr<const sim::FlatCircuit> fc,
                       Budget& budget, sim::Injection injection)
    : nl_(&fc->netlist()),
      sim_(std::move(fc)),
      budget_(&budget),
      injection_(injection) {}

void Propagator::start(sim::StateVec boundary_state,
                       std::vector<bool> assignable) {
  layers_.clear();
  seen_.clear();
  started_ = true;
  if (!has_fault_effect(boundary_state) && !injection_.active()) {
    return;  // nothing to propagate; next() reports Exhausted
  }
  seen_.insert(state_key(boundary_state));
  push_layer(std::move(boundary_state), std::move(assignable));
}

bool Propagator::push_layer(sim::StateVec in_state,
                            std::vector<bool> assignable) {
  if (layers_.size() >=
      static_cast<std::size_t>(
          budget_->options().max_propagation_frames)) {
    return false;
  }
  PodemRequest po_request;
  po_request.mode = PodemMode::ObserveFault;
  po_request.in_state = in_state;
  po_request.assignable_ppi = assignable;
  po_request.injection = injection_;
  po_request.require_po = true;
  PodemRequest advance_request = po_request;
  advance_request.require_po = false;
  advance_request.refine_toward_po = false;
  Layer layer;
  layer.po_podem =
      std::make_unique<FramePodem>(sim_, *budget_, std::move(po_request));
  layer.advance_podem = std::make_unique<FramePodem>(
      sim_, *budget_, std::move(advance_request));
  layer.in_state = std::move(in_state);
  layer.assignable = std::move(assignable);
  layers_.push_back(std::move(layer));
  return true;
}

SeqStatus Propagator::next(PropagationOutcome* out) {
  GDF_ASSERT(started_, "Propagator::next before start");
  while (!layers_.empty()) {
    Layer& top = layers_.back();
    if (!top.advancing) {
      // Phase one: drive the fault effect to a PO inside this frame.
      const PodemStatus status = top.po_podem->next(&top.sol);
      if (status == PodemStatus::Aborted) {
        return SeqStatus::Aborted;
      }
      if (status == PodemStatus::Solution) {
        if (justify(out)) {
          return SeqStatus::Success;
        }
        if (budget_->exhausted()) {
          return SeqStatus::Aborted;
        }
        continue;  // next PO sensitization
      }
      top.advancing = true;
    }
    // Phase two: carry the effect into the next frame.
    const PodemStatus status = top.advance_podem->next(&top.sol);
    if (status == PodemStatus::Aborted) {
      return SeqStatus::Aborted;
    }
    if (status == PodemStatus::Exhausted) {
      layers_.pop_back();
      continue;
    }
    sim::StateVec next_state = sim_.next_state(top.sol.line_values);
    if (!has_fault_effect(next_state)) {
      continue;
    }
    if (!seen_.insert(state_key(next_state)).second) {
      continue;  // an identical sub-search was already explored
    }
    // Bits that are X in the advanced state arose from X logic in this
    // frame, so requiring them is justifiable through it.
    std::vector<bool> assignable(next_state.size());
    for (std::size_t i = 0; i < next_state.size(); ++i) {
      assignable[i] = next_state[i] == Lv::X;
    }
    push_layer(std::move(next_state), std::move(assignable));
  }
  return SeqStatus::Exhausted;
}

bool Propagator::justify(PropagationOutcome* out) {
  // Collect per-boundary requirements: layer t's PPI assignments constrain
  // the state entering frame t.
  std::vector<std::vector<std::pair<std::size_t, Lv>>> reqs(layers_.size());
  for (std::size_t t = 0; t < layers_.size(); ++t) {
    reqs[t] = layers_[t].sol.ppi_assignments;
  }
  std::vector<sim::InputVec> justified_pis(layers_.size());
  for (std::size_t t = 0; t < layers_.size(); ++t) {
    justified_pis[t] = layers_[t].sol.pis;
  }

  // Reverse time processing: resolve boundary-t requirements inside frame
  // t-1, possibly creating boundary-(t-1) requirements.
  for (std::size_t t = layers_.size(); t-- > 1;) {
    if (reqs[t].empty()) {
      continue;
    }
    Layer& below = layers_[t - 1];
    PodemRequest request;
    request.mode = PodemMode::JustifyValues;
    request.in_state = below.in_state;
    for (const auto& [ff, v] : below.sol.ppi_assignments) {
      request.in_state[ff] = v;  // already-required bits are fixed here
    }
    request.assignable_ppi.assign(below.in_state.size(), false);
    for (std::size_t i = 0; i < request.in_state.size(); ++i) {
      request.assignable_ppi[i] =
          request.in_state[i] == Lv::X && below.assignable[i];
    }
    request.base_pis = justified_pis[t - 1];
    request.injection = injection_;
    for (const auto& [ff, v] : reqs[t]) {
      request.objectives.emplace_back(
          nl_->gate(nl_->dffs()[ff]).fanin[0], v);
    }
    FramePodem justifier(sim_, *budget_, std::move(request));
    FrameSolution jsol;
    if (justifier.next(&jsol) != PodemStatus::Solution) {
      return false;
    }
    justified_pis[t - 1] = jsol.pis;
    for (const auto& [ff, v] : jsol.ppi_assignments) {
      // Merge with requirements already present at this boundary.
      bool conflict = false;
      bool present = false;
      for (const auto& [ff2, v2] : reqs[t - 1]) {
        if (ff2 == ff) {
          present = true;
          conflict = v2 != v;
          break;
        }
      }
      if (conflict) {
        return false;
      }
      if (!present) {
        reqs[t - 1].emplace_back(ff, v);
      }
    }
  }

  if (out != nullptr) {
    out->frames = std::move(justified_pis);
    out->boundary_requirements.clear();
    if (!reqs.empty()) {
      out->boundary_requirements = reqs[0];
    }
  }
  return true;
}

}  // namespace gdf::semilet
