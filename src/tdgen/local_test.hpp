// The product of one successful local (two-frame) test generation, and the
// derived quantities handed to the sequential phases:
//  * the required initial state S0 (to be synchronized by SEMILET),
//  * the two PI vectors (initial frame V1, test frame V2),
//  * the boundary classification of every PPO after the fast frame:
//    steady clean 0/1 (usable by the propagation phase), D / D' (the fault
//    effect), or U — fixed but unknown, the unjustifiable don't-care of
//    paper §6 ("SEMILET must assume a fixed, but unknown value is
//    present").
#pragma once

#include <cstdint>
#include <vector>

#include "algebra/model.hpp"
#include "algebra/tables.hpp"
#include "algebra/value_set.hpp"

namespace gdf::tdgen {

struct LocalTest {
  /// Engine value sets at the solution; define the applied vectors.
  std::vector<alg::VSet> pi_sets;   ///< Netlist::inputs() order
  std::vector<alg::VSet> ppi_sets;  ///< Netlist::dffs() order
  /// Forward-simulation value sets at the PPO lines (sound without relying
  /// on internal search decisions).
  std::vector<alg::VSet> ppo_sets;  ///< Netlist::dffs() order
  /// Observation points proven to carry the fault effect (simulation sets
  /// contained in {Rc,Fc}).
  std::vector<alg::NodeId> observed;
  bool observed_at_po = false;
  std::vector<std::size_t> observed_ppos;  ///< dff indices among `observed`
};

/// State-boundary classification of one PPO value set.
enum class PpoKind : std::uint8_t {
  Known0,     ///< steady hazard-free 0 — may be specified to SEMILET
  Known1,     ///< steady hazard-free 1
  Unknown,    ///< transition/hazard/wide: fixed but unknown (U)
  FaultD,     ///< carries the fault effect; good 1 / faulty 0
  FaultDbar,  ///< carries the fault effect; good 0 / faulty 1
};

PpoKind classify_ppo(alg::VSet s);

/// Required S0 per flip-flop: 0, 1, or -1 (don't care).
std::vector<int> required_initial_state(const LocalTest& t);

/// PI bits of the initial frame V1: 0, 1, or -1 (X).
std::vector<int> initial_frame_pis(const LocalTest& t);

/// PI bits of the test frame V2: 0, 1, or -1 (X).
std::vector<int> test_frame_pis(const LocalTest& t);

}  // namespace gdf::tdgen
