#include "tdgen/fault.hpp"

namespace gdf::tdgen {

std::string fault_name(const net::Netlist& nl, const DelayFault& fault) {
  return nl.gate(fault.line).name + (fault.slow_to_rise ? " StR" : " StF");
}

std::vector<DelayFault> enumerate_faults(const net::Netlist& nl,
                                         const FaultListOptions& options) {
  std::vector<DelayFault> faults;
  for (net::GateId id = 0; id < nl.size(); ++id) {
    const net::Gate& g = nl.gate(id);
    if (g.type == net::GateType::Input && !options.include_pi_lines) {
      continue;
    }
    if (g.type == net::GateType::Dff && !options.include_ppi_lines) {
      continue;
    }
    if (g.is_branch && !options.include_branches) {
      continue;
    }
    faults.push_back({id, true});
    faults.push_back({id, false});
  }
  return faults;
}

}  // namespace gdf::tdgen
