#include "tdgen/local_test.hpp"

namespace gdf::tdgen {

using alg::V8;
using alg::VSet;

PpoKind classify_ppo(VSet s) {
  if (s == alg::vset_of(V8::Zero)) {
    return PpoKind::Known0;
  }
  if (s == alg::vset_of(V8::One)) {
    return PpoKind::Known1;
  }
  if (s == alg::vset_of(V8::RiseC)) {
    // Good machine samples the completed rise (1), the faulty one is late
    // (0): D in the D/D' convention (good/faulty).
    return PpoKind::FaultD;
  }
  if (s == alg::vset_of(V8::FallC)) {
    return PpoKind::FaultDbar;
  }
  return PpoKind::Unknown;
}

namespace {

int bit_from_mask(unsigned mask) {
  if (mask == 0b01) {
    return 0;
  }
  if (mask == 0b10) {
    return 1;
  }
  return -1;
}

}  // namespace

std::vector<int> required_initial_state(const LocalTest& t) {
  std::vector<int> s0;
  s0.reserve(t.ppi_sets.size());
  for (const VSet s : t.ppi_sets) {
    s0.push_back(bit_from_mask(alg::vset_initials(s)));
  }
  return s0;
}

std::vector<int> initial_frame_pis(const LocalTest& t) {
  std::vector<int> v1;
  v1.reserve(t.pi_sets.size());
  for (const VSet s : t.pi_sets) {
    v1.push_back(bit_from_mask(alg::vset_initials(s)));
  }
  return v1;
}

std::vector<int> test_frame_pis(const LocalTest& t) {
  std::vector<int> v2;
  v2.reserve(t.pi_sets.size());
  for (const VSet s : t.pi_sets) {
    v2.push_back(bit_from_mask(alg::vset_finals(s)));
  }
  return v2;
}

}  // namespace gdf::tdgen
