#include "tdgen/implication.hpp"

#include <algorithm>
#include <cstdlib>

#include "base/error.hpp"

namespace gdf::tdgen {

using alg::kCarrierSet;
using alg::kCleanSet;
using alg::kEmptySet;
using alg::kFullSet;
using alg::kNoNode;
using alg::kPrimaryDomain;
using alg::Mode;
using alg::Node;
using alg::NodeId;
using alg::NodeKind;
using alg::Op2;
using alg::VSet;

// Both algebra modes keep the initial-frame component exact (the
// non-robust table is restricted to the hazard relaxation for exactly this
// reason — see tables.cpp), so the register constraint can use value
// initials directly in either mode.

bool full_fixpoint_requested() {
  static const bool requested = [] {
    const char* env = std::getenv("GDF_FULL_FIXPOINT");
    return env != nullptr && *env != '\0' && *env != '0';
  }();
  return requested;
}

ImplicationEngine::ImplicationEngine(const alg::AtpgModel& model,
                                     const alg::DelayAlgebra& algebra,
                                     bool full_fixpoint)
    : model_(&model),
      algebra_(&algebra),
      kinds_(model.kinds().data()),
      in0s_(model.in0s().data()),
      in1s_(model.in1s().data()),
      fo_begin_(model.fanout_begin().data()),
      fo_pool_(model.fanout_pool().data()),
      fo_bits_(model.fanout_in_bits().data()),
      full_fixpoint_(full_fixpoint) {
  sets_.assign(model.node_count(), kFullSet);
  pending_.assign(model.node_count(), 0);
  in_cone_.assign(model.node_count(), 0);
  watches_.assign(model.node_count(), {});
  mark_epoch_.assign(model.node_count(), 0);
  activity_.assign(model.node_count(), 0.0);
}

void ImplicationEngine::init(const alg::FaultSpec& fault) {
  fault_ = fault;
  trail_.clear();
  level_marks_.clear();
  clear_queue();
  conflict_ = false;
  conflict_node_ = kNoNode;
  conflict_clause_ = base::ClauseArena::kNone;
  arena_ = {};
  watch_pos_.clear();
  for (auto& w : watches_) {
    w.clear();
  }
  watching_ = false;
  cla_inc_ = 1.0;
  activity_.assign(model_->node_count(), 0.0);
  act_inc_ = 1.0;

  in_cone_.assign(model_->node_count(), 0);
  site_chain_.clear();
  if (fault.site != kNoNode) {
    for (const NodeId id : model_->carrier_cone(fault.site)) {
      in_cone_[id] = 1;
    }
    // The site's dominator chain: every observation path passes each of
    // these, so a carrier-free chain node proves unobservability.
    for (NodeId d = model_->idom(fault.site); d != kNoNode;
         d = model_->idom(d)) {
      site_chain_.push_back(d);
    }
  }
  for (NodeId id = 0; id < model_->node_count(); ++id) {
    const Node& n = model_->node(id);
    VSet s = n.source() ? kPrimaryDomain : kFullSet;
    if (!in_cone_[id]) {
      s &= kCleanSet;
    } else if (id == fault.site) {
      s = alg::DelayAlgebra::site_transform(s, fault.slow_to_rise);
    }
    sets_[id] = s;
    add_pending(id, kAll);
  }
  propagate();
  init_sets_ = sets_;
  init_conflict_ = conflict_;
  init_ready_ = true;
}

bool ImplicationEngine::init_from(const ImplicationEngine& donor,
                                  const alg::FaultSpec& fault) {
  if (!donor.init_ready_ || donor.model_ != model_ ||
      donor.algebra_ != algebra_ || donor.fault_.site != fault.site ||
      donor.fault_.slow_to_rise != fault.slow_to_rise) {
    return false;
  }
  fault_ = fault;
  trail_.clear();
  level_marks_.clear();
  clear_queue();
  sets_ = donor.init_sets_;
  conflict_ = donor.init_conflict_;
  conflict_node_ = kNoNode;
  conflict_clause_ = base::ClauseArena::kNone;
  arena_ = {};
  watch_pos_.clear();
  for (auto& w : watches_) {
    w.clear();
  }
  watching_ = false;
  cla_inc_ = 1.0;
  activity_.assign(model_->node_count(), 0.0);
  act_inc_ = 1.0;
  site_chain_ = donor.site_chain_;
  in_cone_ = donor.in_cone_;
  init_sets_ = donor.init_sets_;
  init_conflict_ = donor.init_conflict_;
  init_ready_ = true;
  return true;
}

bool ImplicationEngine::assign(NodeId n, VSet allowed) {
  ++counters_.assigns;
  if (conflict_) {
    return false;
  }
  // The trail records the assigned constraint (in the reason slot) so
  // conflict analysis can recover the external fact "n ⊆ allowed".
  if (!narrow(n, static_cast<VSet>(sets_[n] & allowed),
              static_cast<NodeId>(allowed), Why::External)) {
    return false;
  }
  return propagate();
}

void ImplicationEngine::clear_queue() {
  // Only entries still pending carry a mask; resetting those is O(queue)
  // instead of O(nodes).
  for (std::size_t i = queue_head_; i < queue_.size(); ++i) {
    pending_[queue_[i]] = 0;
  }
  queue_.clear();
  queue_head_ = 0;
}

void ImplicationEngine::rollback(std::size_t m) {
  GDF_ASSERT(m <= trail_.size(), "rollback past trail head");
  counters_.trail_pops += static_cast<long>(trail_.size() - m);
  while (trail_.size() > m) {
    const TrailEntry& e = trail_.back();
    sets_[e.node] = e.old_set;
    trail_.pop_back();
  }
  clear_queue();
  conflict_ = false;
  conflict_node_ = kNoNode;
  conflict_clause_ = base::ClauseArena::kNone;
}

void ImplicationEngine::backtrack_level() {
  GDF_ASSERT(!level_marks_.empty(), "backtrack_level without a level");
  rollback(level_marks_.back());
}

void ImplicationEngine::pop_level() {
  GDF_ASSERT(!level_marks_.empty(), "pop_level without a level");
  rollback(level_marks_.back());
  level_marks_.pop_back();
}

bool ImplicationEngine::narrow(NodeId n, VSet next, NodeId reason, Why why) {
  const VSet current = sets_[n];
  next &= current;
  if (next == current) {
    return true;
  }
  trail_.push_back({n, reason, current, why});
  ++counters_.trail_pushes;
  sets_[n] = next;
  if (next == kEmptySet) {
    conflict_ = true;
    conflict_node_ = n;
    conflict_clause_ = base::ClauseArena::kNone;
    ++counters_.conflicts;
    return false;
  }
  mark_dirty(n);
  // A narrowing can only turn clause literals true, so clauses watching n
  // are the only ones that may have become fully satisfied (= fired).
  // watching_ keeps the clause-free hot path (no learning, or nothing
  // learned yet) from paying a random watch-list load per narrowing.
  if (watching_ && !watches_[n].empty() && !check_watches(n)) {
    return false;
  }
  return true;
}

bool ImplicationEngine::check_watches(NodeId n) {
  auto& wl = watches_[n];
  for (std::size_t i = 0; i < wl.size();) {
    const std::uint32_t c = wl[i];
    auto& wp = watch_pos_[c];
    const std::span<const base::ClauseLit> lits = arena_.lits(c);
    const int slot = lits[wp[0]].node == n ? 0 : 1;
    const std::uint32_t pos = wp[slot];
    const std::uint32_t other = wp[1 - slot];
    if (!lit_true(lits[pos])) {
      ++i;
      continue;
    }
    // This watch turned true: move it to a literal that is still false.
    std::uint32_t repl = static_cast<std::uint32_t>(lits.size());
    for (std::uint32_t k = 0; k < lits.size(); ++k) {
      if (k != pos && k != other && !lit_true(lits[k])) {
        repl = k;
        break;
      }
    }
    if (repl != lits.size()) {
      wp[slot] = repl;
      watches_[lits[repl].node].push_back(c);
      wl[i] = wl.back();
      wl.pop_back();
      continue;
    }
    if (other != pos && !lit_true(lits[other])) {
      // Degraded but covered: the other watch is now the clause's only
      // false literal, so its node's narrowing will revisit the clause.
      ++i;
      continue;
    }
    // Every literal holds — the nogood fires.
    conflict_ = true;
    conflict_node_ = kNoNode;
    conflict_clause_ = c;
    ++counters_.conflicts;
    ++counters_.clause_hits;
    // A firing clause proves its usefulness: bump it (EVSIDS — everyone
    // else decays by the growing increment) so reductions keep it.
    arena_.bump_activity(c, cla_inc_);
    if (arena_.activity(c) > 1e100) {
      arena_.scale_activities(1e-100);
      cla_inc_ *= 1e-100;
    }
    return false;
  }
  return true;
}

std::size_t ImplicationEngine::add_clause(std::span<const base::ClauseLit> lits,
                                          std::uint32_t lbd) {
  // Pick two literals that are false in the current state (one suffices
  // for a unit clause; none means the clause already fires here).
  std::uint32_t a = static_cast<std::uint32_t>(lits.size());
  std::uint32_t b = a;
  for (std::uint32_t k = 0; k < lits.size(); ++k) {
    if (lit_true(lits[k])) {
      continue;
    }
    if (a == lits.size()) {
      a = k;
    } else {
      b = k;
      break;
    }
  }
  if (a == lits.size()) {
    return base::ClauseArena::kNone;
  }
  if (b == lits.size()) {
    b = a;
  }
  const std::size_t index = arena_.add(lits, lbd);
  watch_pos_.push_back({a, b});
  watches_[lits[a].node].push_back(static_cast<std::uint32_t>(index));
  if (b != a) {
    watches_[lits[b].node].push_back(static_cast<std::uint32_t>(index));
  }
  watching_ = true;
  return index;
}

void ImplicationEngine::import_clauses(const base::ClauseArena& src) {
  for (std::size_t c = 0; c < src.size(); ++c) {
    add_clause(src.lits(c), src.lbd(c));
  }
}

std::size_t ImplicationEngine::reduce_clauses(std::size_t keep_target) {
  GDF_ASSERT(!conflict_, "reduce_clauses on a conflicted engine");
  const std::size_t total = arena_.size();
  if (total <= keep_target) {
    return 0;
  }
  // Rank: core clauses always survive; the rest by (LBD ascending,
  // activity descending, newer first). All tie-breaks are total, so the
  // surviving set is a pure function of the learning history.
  std::vector<std::size_t> rest;
  rest.reserve(total);
  std::size_t core = 0;
  for (std::size_t c = 0; c < total; ++c) {
    if (base::ClauseArena::tier_of(arena_.lbd(c)) == base::ClauseTier::Core) {
      ++core;
    } else {
      rest.push_back(c);
    }
  }
  const std::size_t keep_rest = keep_target > core ? keep_target - core : 0;
  if (rest.size() <= keep_rest) {
    return 0;
  }
  std::stable_sort(rest.begin(), rest.end(),
                   [this](std::size_t a, std::size_t b) {
                     if (arena_.lbd(a) != arena_.lbd(b)) {
                       return arena_.lbd(a) < arena_.lbd(b);
                     }
                     if (arena_.activity(a) != arena_.activity(b)) {
                       return arena_.activity(a) > arena_.activity(b);
                     }
                     return a > b;  // newer first on equal quality
                   });
  std::vector<std::uint8_t> keep(total, 0);
  for (std::size_t c = 0; c < total; ++c) {
    if (base::ClauseArena::tier_of(arena_.lbd(c)) == base::ClauseTier::Core) {
      keep[c] = 1;
    }
  }
  for (std::size_t k = 0; k < keep_rest; ++k) {
    keep[rest[k]] = 1;
  }
  // Rebuild the arena and the watch lists from scratch in original index
  // order. add_clause re-picks watches against the *current* state, which
  // is exactly the invariant the scheme needs (and every surviving clause
  // has a false literal here: an all-true valid nogood would contradict
  // this conflict-free fixpoint).
  base::ClauseArena old = std::move(arena_);
  arena_ = {};
  watch_pos_.clear();
  for (auto& w : watches_) {
    w.clear();
  }
  watching_ = false;
  std::size_t evicted = 0;
  for (std::size_t c = 0; c < total; ++c) {
    if (!keep[c]) {
      ++evicted;
      continue;
    }
    const std::size_t idx = add_clause(old.lits(c), old.lbd(c));
    if (idx != base::ClauseArena::kNone) {
      arena_.bump_activity(idx, old.activity(c));
    }
  }
  return evicted;
}

void ImplicationEngine::tier_sizes(long* core, long* mid, long* local) const {
  for (std::size_t c = 0; c < arena_.size(); ++c) {
    switch (base::ClauseArena::tier_of(arena_.lbd(c))) {
      case base::ClauseTier::Core:
        ++*core;
        break;
      case base::ClauseTier::Mid:
        ++*mid;
        break;
      case base::ClauseTier::Local:
        ++*local;
        break;
    }
  }
}

int ImplicationEngine::minimize_nogood(std::vector<base::ClauseLit>* lits) {
  GDF_ASSERT(!conflict_, "minimize_nogood needs a conflict-free root");
  int removed = 0;
  // Greedy self-subsumption: drop one literal at a time; a drop is sound
  // when the remaining literals alone re-derive a conflict by rule
  // replay from this root state (monotonicity: anything true under the
  // survivors is true under the full set, so the survivors are already a
  // nogood). Later candidates are tested against the already-shrunk set,
  // so the result is subset-minimal w.r.t. this (deterministic) order.
  for (std::size_t i = 0; i < lits->size() && lits->size() > 1;) {
    const std::size_t m = mark();
    bool conflicted = false;
    for (std::size_t k = 0; k < lits->size(); ++k) {
      if (k == i) {
        continue;
      }
      if (!assign((*lits)[k].node, (*lits)[k].allowed)) {
        conflicted = true;
        break;
      }
    }
    rollback(m);
    if (conflicted) {
      lits->erase(lits->begin() + static_cast<std::ptrdiff_t>(i));
      ++removed;
    } else {
      ++i;
    }
  }
  return removed;
}

void ImplicationEngine::add_pending(NodeId n, std::uint8_t bits) {
  const std::uint8_t cur = pending_[n];
  if ((cur | bits) == cur) {
    return;
  }
  if (cur == 0) {
    queue_.push_back(n);
  }
  pending_[n] = static_cast<std::uint8_t>(cur | bits);
}

void ImplicationEngine::mark_dirty(NodeId n) {
  // The rules whose operands just changed: n's own backward prune and
  // register role (kSelf), and per reader the forward image plus the
  // sibling's backward prune (kIn0/kIn1, precomputed per edge). The
  // exhaustive debug schedule re-runs everything on every touched node
  // instead.
  const std::uint32_t lo = fo_begin_[n];
  const std::uint32_t hi = fo_begin_[n + 1];
  if (full_fixpoint_) {
    add_pending(n, kAll);
    for (std::uint32_t e = lo; e < hi; ++e) {
      add_pending(fo_pool_[e], kAll);
    }
    return;
  }
  add_pending(n, kSelf);
  for (std::uint32_t e = lo; e < hi; ++e) {
    add_pending(fo_pool_[e], fo_bits_[e]);
  }
}

alg::VSet ImplicationEngine::forward_raw(NodeId id) const {
  const NodeId in0 = in0s_[id];
  switch (kinds_[id]) {
    case NodeKind::Buf:
      return sets_[in0];
    case NodeKind::Not:
      return algebra_->set_not(sets_[in0]);
    case NodeKind::And2:
      return algebra_->set_fwd(Op2::And, sets_[in0], sets_[in1s_[id]]);
    case NodeKind::Or2:
      return algebra_->set_fwd(Op2::Or, sets_[in0], sets_[in1s_[id]]);
    case NodeKind::Xor2:
      return algebra_->set_fwd(Op2::Xor, sets_[in0], sets_[in1s_[id]]);
    case NodeKind::Pi:
    case NodeKind::Ppi:
      break;
  }
  GDF_ASSERT(false, "forward_raw on a source node");
  return kEmptySet;
}

bool ImplicationEngine::apply_register_pair(std::size_t dff_index) {
  const NodeId ppi = model_->ppis()[dff_index];
  const NodeId ppo = model_->ppo_node(dff_index);
  const unsigned allowed_fins = alg::vset_initials(sets_[ppo]);
  if (!narrow(ppi, alg::vset_with_final_in(sets_[ppi], allowed_fins), ppo,
              Why::RegPair)) {
    return false;
  }
  const unsigned allowed_inits = alg::vset_finals(sets_[ppi]);
  return narrow(ppo, alg::vset_with_initial_in(sets_[ppo], allowed_inits),
                ppi, Why::RegPair);
}

bool ImplicationEngine::process(NodeId id, std::uint8_t pend) {
  const NodeKind kind = kinds_[id];
  const bool is_site = id == fault_.site;
  if (kind != NodeKind::Pi && kind != NodeKind::Ppi) {
    if ((pend & (kIn0 | kIn1)) != 0) {
      VSet raw = forward_raw(id);
      if (is_site) {
        raw = alg::DelayAlgebra::site_transform(raw, fault_.slow_to_rise);
      }
      if (!narrow(id, raw, id, Why::Forward)) {
        return false;
      }
      // A forward narrowing re-marks this node kSelf; absorb it now so the
      // backward prunes below run against the fresh output set instead of
      // re-queuing the node.
      pend |= pending_[id];
      pending_[id] = 0;
    }
    VSet out_req = sets_[id];
    if (is_site) {
      out_req =
          alg::DelayAlgebra::site_transform_pre(out_req, fault_.slow_to_rise);
    }
    const NodeId in0 = in0s_[id];
    switch (kind) {
      case NodeKind::Buf:
        // The unary backward prune depends on the output set alone.
        if ((pend & kSelf) != 0 && !narrow(in0, out_req, id, Why::BwdIn)) {
          return false;
        }
        break;
      case NodeKind::Not:
        if ((pend & kSelf) != 0 &&
            !narrow(in0, algebra_->set_not(out_req), id, Why::BwdIn)) {
          return false;
        }
        break;
      case NodeKind::And2:
      case NodeKind::Or2:
      case NodeKind::Xor2: {
        const Op2 op = kind == NodeKind::And2
                           ? Op2::And
                           : (kind == NodeKind::Or2 ? Op2::Or : Op2::Xor);
        const NodeId in1 = in1s_[id];
        // in0's prune reads (in1, out); in1's reads (in0, out). Run each
        // only when one of its operands changed.
        if ((pend & (kSelf | kIn1)) != 0 &&
            !narrow(in0,
                    algebra_->set_bwd_first(op, sets_[in0], sets_[in1],
                                            out_req),
                    id, Why::BwdIn)) {
          return false;
        }
        if ((pend & (kSelf | kIn0)) != 0 &&
            !narrow(in1,
                    algebra_->set_bwd_first(op, sets_[in1], sets_[in0],
                                            out_req),
                    id, Why::BwdIn)) {
          return false;
        }
        break;
      }
      case NodeKind::Pi:
      case NodeKind::Ppi:
        break;
    }
  }
  if ((pend & kSelf) != 0) {
    for (const std::uint32_t role : model_->register_roles(id)) {
      if (!apply_register_pair(role)) {
        return false;
      }
    }
  }
  return true;
}

bool ImplicationEngine::analyze(Analysis* out, SharedExtract* shared) {
  out->lits.clear();
  out->levels.clear();
  out->lit_levels.clear();
  out->cone_clean = false;
  if (!conflict_ || level_marks_.empty()) {
    return false;
  }

  ++analysis_epoch_;
  const std::uint64_t epoch = analysis_epoch_;
  marked_nodes_.clear();
  bool cone_clean = true;
  const auto mark = [&](NodeId n) {
    if (n == kNoNode || mark_epoch_[n] == epoch) {
      return;
    }
    mark_epoch_[n] = epoch;
    marked_nodes_.push_back(n);
    if (in_cone_[n]) {
      cone_clean = false;
    }
  };
  // Replace a narrowing by the facts its rule read. The narrowed node
  // itself stays marked: its earlier entries (and ultimately its init
  // value) are conjuncts of the value the rule consumed.
  const auto resolve_rule = [&](const TrailEntry& e) {
    switch (e.why) {
      case Why::Forward:
        mark(in0s_[e.node]);
        mark(in1s_[e.node]);
        break;
      case Why::BwdIn: {
        const NodeId g = e.reason;
        mark(g);
        const NodeKind kind = kinds_[g];
        if (kind == NodeKind::And2 || kind == NodeKind::Or2 ||
            kind == NodeKind::Xor2) {
          mark(in0s_[g] == e.node ? in1s_[g] : in0s_[g]);
        }
        break;
      }
      case Why::RegPair:
        mark(e.reason);
        break;
      case Why::External:
        break;
    }
  };

  // Seed with the conflict's cause: the emptied node, or every literal of
  // the fired clause.
  if (conflict_clause_ != base::ClauseArena::kNone) {
    for (const base::ClauseLit& lit : arena_.lits(conflict_clause_)) {
      mark(lit.node);
    }
  } else {
    GDF_ASSERT(conflict_node_ != kNoNode, "conflict without a cause");
    mark(conflict_node_);
  }

  // Walk the decision-level trail segment top-down. Marked external
  // entries are the decision constraints the conflict rests on; marked
  // rule entries dissolve into their antecedents. (A linear scan beats a
  // per-node index here: segment entries stream sequentially and the
  // mark-epoch probe hits L2, where worklist variants chase pointers.)
  level_flags_.assign(level_marks_.size() + 1, 0);
  std::size_t lvl = level_marks_.size();
  const std::size_t stop = level_marks_[0];
  for (std::size_t i = trail_.size(); i-- > stop;) {
    const TrailEntry& e = trail_[i];
    while (lvl > 0 && i < level_marks_[lvl - 1]) {
      --lvl;
    }
    if (mark_epoch_[e.node] != epoch) {
      continue;
    }
    if (e.why == Why::External) {
      out->lits.push_back({e.node, static_cast<VSet>(e.reason)});
      out->lit_levels.emplace_back(e.node,
                                   static_cast<std::uint32_t>(lvl));
      level_flags_[lvl] = 1;
    } else {
      resolve_rule(e);
    }
  }
  for (std::size_t l = 1; l < level_flags_.size(); ++l) {
    if (level_flags_[l] != 0) {
      out->levels.push_back(static_cast<std::uint32_t>(l));
    }
  }
  // Same-node literals conjoin: keep one literal with the intersection.
  std::sort(out->lits.begin(), out->lits.end(),
            [](const base::ClauseLit& a, const base::ClauseLit& b) {
              return a.node < b.node;
            });
  std::size_t w = 0;
  for (const base::ClauseLit& lit : out->lits) {
    if (w > 0 && out->lits[w - 1].node == lit.node) {
      out->lits[w - 1].allowed &= lit.allowed;
    } else {
      out->lits[w++] = lit;
    }
  }
  out->lits.resize(w);

  if (shared != nullptr) {
    // Continue through the level-0 segment so the derivation bottoms out
    // at explicit leaf facts instead of this fault's implicit level-0
    // state. Level-0 externals (activation, pins, required observation)
    // become leaf literals — in practice they sit in the cone and veto
    // sharing via cone_clean.
    shared->leaf_lits.clear();
    shared->footprint.clear();
    for (std::size_t i = stop; i-- > 0;) {
      const TrailEntry& e = trail_[i];
      if (mark_epoch_[e.node] != epoch) {
        continue;
      }
      if (e.why == Why::External) {
        shared->leaf_lits.push_back({e.node, static_cast<VSet>(e.reason)});
      } else {
        resolve_rule(e);
      }
    }
    // Base facts: every marked node's direct init value. Sources start at
    // kPrimaryDomain for every fault (primary values carry no hazard) —
    // universal, no literal needed. Everything else outside the cone
    // initializes to kCleanSet, which a consumer whose cone covers the
    // node does not guarantee — so it must be checked as a literal.
    for (const NodeId n : marked_nodes_) {
      if (!model_->node(n).source()) {
        shared->leaf_lits.push_back({n, kCleanSet});
      }
    }
    shared->footprint = marked_nodes_;
    std::sort(shared->footprint.begin(), shared->footprint.end());
  }
  // EVSIDS bump: every node on the conflict side (marked during the walk)
  // gains the current increment, then the increment grows — a geometric
  // decay of all other activities without touching them. Purely per-fault
  // state (reset by init), so decision ordering derived from it stays a
  // deterministic function of this search's own conflict history.
  for (const NodeId n : marked_nodes_) {
    activity_[n] += act_inc_;
  }
  act_inc_ *= (1.0 / 0.95);
  if (act_inc_ > 1e100) {
    for (double& a : activity_) {
      a *= 1e-100;
    }
    act_inc_ *= 1e-100;
  }
  out->cone_clean = cone_clean;
  return !out->lits.empty();
}

bool ImplicationEngine::propagate() {
  while (queue_head_ < queue_.size()) {
    const NodeId id = queue_[queue_head_++];
    const std::uint8_t pend = pending_[id];
    pending_[id] = 0;
    if (pend != 0 && !process(id, pend)) {
      clear_queue();
      return false;
    }
    if (queue_head_ == queue_.size()) {
      queue_.clear();
      queue_head_ = 0;
    }
  }
  return true;
}

}  // namespace gdf::tdgen
