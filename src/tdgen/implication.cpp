#include "tdgen/implication.hpp"

#include "base/error.hpp"

namespace gdf::tdgen {

using alg::kCarrierSet;
using alg::kCleanSet;
using alg::kEmptySet;
using alg::kFullSet;
using alg::kNoNode;
using alg::kPrimaryDomain;
using alg::Mode;
using alg::Node;
using alg::NodeId;
using alg::NodeKind;
using alg::Op2;
using alg::VSet;

// Both algebra modes keep the initial-frame component exact (the
// non-robust table is restricted to the hazard relaxation for exactly this
// reason — see tables.cpp), so the register constraint can use value
// initials directly in either mode.

ImplicationEngine::ImplicationEngine(const alg::AtpgModel& model,
                                     const alg::DelayAlgebra& algebra)
    : model_(&model), algebra_(&algebra) {
  sets_.assign(model.node_count(), kFullSet);
  in_queue_.assign(model.node_count(), 0);
  std::vector<std::vector<std::uint32_t>> roles(model.node_count());
  for (std::size_t k = 0; k < model.ppis().size(); ++k) {
    roles[model.ppis()[k]].push_back(static_cast<std::uint32_t>(k));
    roles[model.ppo_node(k)].push_back(static_cast<std::uint32_t>(k));
  }
  role_begin_.assign(model.node_count() + 1, 0);
  for (std::size_t id = 0; id < model.node_count(); ++id) {
    role_begin_[id + 1] =
        role_begin_[id] + static_cast<std::uint32_t>(roles[id].size());
  }
  role_pool_.reserve(role_begin_.back());
  for (const auto& r : roles) {
    role_pool_.insert(role_pool_.end(), r.begin(), r.end());
  }
}

void ImplicationEngine::init(const alg::FaultSpec& fault) {
  fault_ = fault;
  trail_.clear();
  clear_queue();
  conflict_ = false;

  std::vector<bool> in_cone(model_->node_count(), false);
  if (fault.site != kNoNode) {
    for (const NodeId id : model_->carrier_cone(fault.site)) {
      in_cone[id] = true;
    }
  }
  for (NodeId id = 0; id < model_->node_count(); ++id) {
    const Node& n = model_->node(id);
    VSet s = n.source() ? kPrimaryDomain : kFullSet;
    if (!in_cone[id]) {
      s &= kCleanSet;
    } else if (id == fault.site) {
      s = alg::DelayAlgebra::site_transform(s, fault.slow_to_rise);
    }
    sets_[id] = s;
    enqueue(id);
  }
  propagate();
}

bool ImplicationEngine::assign(NodeId n, VSet allowed) {
  if (conflict_) {
    return false;
  }
  if (!narrow(n, static_cast<VSet>(sets_[n] & allowed))) {
    return false;
  }
  return propagate();
}

void ImplicationEngine::clear_queue() {
  // Only entries still pending carry a set flag; resetting those is
  // O(queue) instead of O(nodes).
  for (std::size_t i = queue_head_; i < queue_.size(); ++i) {
    in_queue_[queue_[i]] = 0;
  }
  queue_.clear();
  queue_head_ = 0;
}

void ImplicationEngine::rollback(std::size_t m) {
  GDF_ASSERT(m <= trail_.size(), "rollback past trail head");
  while (trail_.size() > m) {
    const TrailEntry& e = trail_.back();
    sets_[e.node] = e.old_set;
    trail_.pop_back();
  }
  clear_queue();
  conflict_ = false;
}

bool ImplicationEngine::narrow(NodeId n, VSet next) {
  const VSet current = sets_[n];
  next &= current;
  if (next == current) {
    return true;
  }
  trail_.push_back({n, current});
  sets_[n] = next;
  if (next == kEmptySet) {
    conflict_ = true;
    return false;
  }
  enqueue(n);
  for (const NodeId reader : model_->fanout(n)) {
    enqueue(reader);
  }
  return true;
}

void ImplicationEngine::enqueue(NodeId n) {
  if (in_queue_[n] == 0) {
    in_queue_[n] = 1;
    queue_.push_back(n);
  }
}

alg::VSet ImplicationEngine::forward_raw(NodeId id) const {
  const NodeId in0 = model_->in0s()[id];
  switch (model_->kinds()[id]) {
    case NodeKind::Buf:
      return sets_[in0];
    case NodeKind::Not:
      return algebra_->set_not(sets_[in0]);
    case NodeKind::And2:
      return algebra_->set_fwd(Op2::And, sets_[in0],
                               sets_[model_->in1s()[id]]);
    case NodeKind::Or2:
      return algebra_->set_fwd(Op2::Or, sets_[in0],
                               sets_[model_->in1s()[id]]);
    case NodeKind::Xor2:
      return algebra_->set_fwd(Op2::Xor, sets_[in0],
                               sets_[model_->in1s()[id]]);
    case NodeKind::Pi:
    case NodeKind::Ppi:
      break;
  }
  GDF_ASSERT(false, "forward_raw on a source node");
  return kEmptySet;
}

bool ImplicationEngine::apply_register_pair(std::size_t dff_index) {
  const NodeId ppi = model_->ppis()[dff_index];
  const NodeId ppo = model_->ppo_node(dff_index);
  const unsigned allowed_fins = alg::vset_initials(sets_[ppo]);
  if (!narrow(ppi, alg::vset_with_final_in(sets_[ppi], allowed_fins))) {
    return false;
  }
  const unsigned allowed_inits = alg::vset_finals(sets_[ppi]);
  return narrow(ppo, alg::vset_with_initial_in(sets_[ppo], allowed_inits));
}

bool ImplicationEngine::process(NodeId id) {
  const NodeKind kind = model_->kinds()[id];
  const bool is_site = id == fault_.site;
  if (kind != NodeKind::Pi && kind != NodeKind::Ppi) {
    VSet raw = forward_raw(id);
    if (is_site) {
      raw = alg::DelayAlgebra::site_transform(raw, fault_.slow_to_rise);
    }
    if (!narrow(id, raw)) {
      return false;
    }
    VSet out_req = sets_[id];
    if (is_site) {
      out_req =
          alg::DelayAlgebra::site_transform_pre(out_req, fault_.slow_to_rise);
    }
    const NodeId in0 = model_->in0s()[id];
    switch (kind) {
      case NodeKind::Buf:
        if (!narrow(in0, out_req)) {
          return false;
        }
        break;
      case NodeKind::Not:
        if (!narrow(in0, algebra_->set_not(out_req))) {
          return false;
        }
        break;
      case NodeKind::And2:
      case NodeKind::Or2:
      case NodeKind::Xor2: {
        const Op2 op = kind == NodeKind::And2
                           ? Op2::And
                           : (kind == NodeKind::Or2 ? Op2::Or : Op2::Xor);
        const NodeId in1 = model_->in1s()[id];
        if (!narrow(in0, algebra_->set_bwd_first(op, sets_[in0],
                                                 sets_[in1], out_req))) {
          return false;
        }
        if (!narrow(in1, algebra_->set_bwd_first(op, sets_[in1],
                                                 sets_[in0], out_req))) {
          return false;
        }
        break;
      }
      case NodeKind::Pi:
      case NodeKind::Ppi:
        break;
    }
  }
  const std::uint32_t role_lo = role_begin_[id];
  const std::uint32_t role_hi = role_begin_[id + 1];
  for (std::uint32_t r = role_lo; r < role_hi; ++r) {
    if (!apply_register_pair(role_pool_[r])) {
      return false;
    }
  }
  return true;
}

bool ImplicationEngine::propagate() {
  while (queue_head_ < queue_.size()) {
    const NodeId id = queue_[queue_head_++];
    in_queue_[id] = 0;
    if (!process(id)) {
      clear_queue();
      return false;
    }
    if (queue_head_ == queue_.size()) {
      queue_.clear();
      queue_head_ = 0;
    }
  }
  return true;
}

}  // namespace gdf::tdgen
