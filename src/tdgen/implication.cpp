#include "tdgen/implication.hpp"

#include <cstdlib>

#include "base/error.hpp"

namespace gdf::tdgen {

using alg::kCarrierSet;
using alg::kCleanSet;
using alg::kEmptySet;
using alg::kFullSet;
using alg::kNoNode;
using alg::kPrimaryDomain;
using alg::Mode;
using alg::Node;
using alg::NodeId;
using alg::NodeKind;
using alg::Op2;
using alg::VSet;

// Both algebra modes keep the initial-frame component exact (the
// non-robust table is restricted to the hazard relaxation for exactly this
// reason — see tables.cpp), so the register constraint can use value
// initials directly in either mode.

bool full_fixpoint_requested() {
  static const bool requested = [] {
    const char* env = std::getenv("GDF_FULL_FIXPOINT");
    return env != nullptr && *env != '\0' && *env != '0';
  }();
  return requested;
}

ImplicationEngine::ImplicationEngine(const alg::AtpgModel& model,
                                     const alg::DelayAlgebra& algebra,
                                     bool full_fixpoint)
    : model_(&model),
      algebra_(&algebra),
      kinds_(model.kinds().data()),
      in0s_(model.in0s().data()),
      in1s_(model.in1s().data()),
      fo_begin_(model.fanout_begin().data()),
      fo_pool_(model.fanout_pool().data()),
      fo_bits_(model.fanout_in_bits().data()),
      full_fixpoint_(full_fixpoint) {
  sets_.assign(model.node_count(), kFullSet);
  pending_.assign(model.node_count(), 0);
}

void ImplicationEngine::init(const alg::FaultSpec& fault) {
  fault_ = fault;
  trail_.clear();
  level_marks_.clear();
  clear_queue();
  conflict_ = false;

  std::vector<bool> in_cone(model_->node_count(), false);
  site_chain_.clear();
  if (fault.site != kNoNode) {
    for (const NodeId id : model_->carrier_cone(fault.site)) {
      in_cone[id] = true;
    }
    // The site's dominator chain: every observation path passes each of
    // these, so a carrier-free chain node proves unobservability.
    for (NodeId d = model_->idom(fault.site); d != kNoNode;
         d = model_->idom(d)) {
      site_chain_.push_back(d);
    }
  }
  for (NodeId id = 0; id < model_->node_count(); ++id) {
    const Node& n = model_->node(id);
    VSet s = n.source() ? kPrimaryDomain : kFullSet;
    if (!in_cone[id]) {
      s &= kCleanSet;
    } else if (id == fault.site) {
      s = alg::DelayAlgebra::site_transform(s, fault.slow_to_rise);
    }
    sets_[id] = s;
    add_pending(id, kAll);
  }
  propagate();
  init_sets_ = sets_;
  init_conflict_ = conflict_;
  init_ready_ = true;
}

bool ImplicationEngine::init_from(const ImplicationEngine& donor,
                                  const alg::FaultSpec& fault) {
  if (!donor.init_ready_ || donor.model_ != model_ ||
      donor.algebra_ != algebra_ || donor.fault_.site != fault.site ||
      donor.fault_.slow_to_rise != fault.slow_to_rise) {
    return false;
  }
  fault_ = fault;
  trail_.clear();
  level_marks_.clear();
  clear_queue();
  sets_ = donor.init_sets_;
  conflict_ = donor.init_conflict_;
  site_chain_ = donor.site_chain_;
  init_sets_ = donor.init_sets_;
  init_conflict_ = donor.init_conflict_;
  init_ready_ = true;
  return true;
}

bool ImplicationEngine::assign(NodeId n, VSet allowed) {
  ++counters_.assigns;
  if (conflict_) {
    return false;
  }
  if (!narrow(n, static_cast<VSet>(sets_[n] & allowed))) {
    return false;
  }
  return propagate();
}

void ImplicationEngine::clear_queue() {
  // Only entries still pending carry a mask; resetting those is O(queue)
  // instead of O(nodes).
  for (std::size_t i = queue_head_; i < queue_.size(); ++i) {
    pending_[queue_[i]] = 0;
  }
  queue_.clear();
  queue_head_ = 0;
}

void ImplicationEngine::rollback(std::size_t m) {
  GDF_ASSERT(m <= trail_.size(), "rollback past trail head");
  counters_.trail_pops += static_cast<long>(trail_.size() - m);
  while (trail_.size() > m) {
    const TrailEntry& e = trail_.back();
    sets_[e.node] = e.old_set;
    trail_.pop_back();
  }
  clear_queue();
  conflict_ = false;
}

void ImplicationEngine::backtrack_level() {
  GDF_ASSERT(!level_marks_.empty(), "backtrack_level without a level");
  rollback(level_marks_.back());
}

void ImplicationEngine::pop_level() {
  GDF_ASSERT(!level_marks_.empty(), "pop_level without a level");
  rollback(level_marks_.back());
  level_marks_.pop_back();
}

bool ImplicationEngine::narrow(NodeId n, VSet next) {
  const VSet current = sets_[n];
  next &= current;
  if (next == current) {
    return true;
  }
  trail_.push_back({n, current});
  ++counters_.trail_pushes;
  sets_[n] = next;
  if (next == kEmptySet) {
    conflict_ = true;
    return false;
  }
  mark_dirty(n);
  return true;
}

void ImplicationEngine::add_pending(NodeId n, std::uint8_t bits) {
  const std::uint8_t cur = pending_[n];
  if ((cur | bits) == cur) {
    return;
  }
  if (cur == 0) {
    queue_.push_back(n);
  }
  pending_[n] = static_cast<std::uint8_t>(cur | bits);
}

void ImplicationEngine::mark_dirty(NodeId n) {
  // The rules whose operands just changed: n's own backward prune and
  // register role (kSelf), and per reader the forward image plus the
  // sibling's backward prune (kIn0/kIn1, precomputed per edge). The
  // exhaustive debug schedule re-runs everything on every touched node
  // instead.
  const std::uint32_t lo = fo_begin_[n];
  const std::uint32_t hi = fo_begin_[n + 1];
  if (full_fixpoint_) {
    add_pending(n, kAll);
    for (std::uint32_t e = lo; e < hi; ++e) {
      add_pending(fo_pool_[e], kAll);
    }
    return;
  }
  add_pending(n, kSelf);
  for (std::uint32_t e = lo; e < hi; ++e) {
    add_pending(fo_pool_[e], fo_bits_[e]);
  }
}

alg::VSet ImplicationEngine::forward_raw(NodeId id) const {
  const NodeId in0 = in0s_[id];
  switch (kinds_[id]) {
    case NodeKind::Buf:
      return sets_[in0];
    case NodeKind::Not:
      return algebra_->set_not(sets_[in0]);
    case NodeKind::And2:
      return algebra_->set_fwd(Op2::And, sets_[in0], sets_[in1s_[id]]);
    case NodeKind::Or2:
      return algebra_->set_fwd(Op2::Or, sets_[in0], sets_[in1s_[id]]);
    case NodeKind::Xor2:
      return algebra_->set_fwd(Op2::Xor, sets_[in0], sets_[in1s_[id]]);
    case NodeKind::Pi:
    case NodeKind::Ppi:
      break;
  }
  GDF_ASSERT(false, "forward_raw on a source node");
  return kEmptySet;
}

bool ImplicationEngine::apply_register_pair(std::size_t dff_index) {
  const NodeId ppi = model_->ppis()[dff_index];
  const NodeId ppo = model_->ppo_node(dff_index);
  const unsigned allowed_fins = alg::vset_initials(sets_[ppo]);
  if (!narrow(ppi, alg::vset_with_final_in(sets_[ppi], allowed_fins))) {
    return false;
  }
  const unsigned allowed_inits = alg::vset_finals(sets_[ppi]);
  return narrow(ppo, alg::vset_with_initial_in(sets_[ppo], allowed_inits));
}

bool ImplicationEngine::process(NodeId id, std::uint8_t pend) {
  const NodeKind kind = kinds_[id];
  const bool is_site = id == fault_.site;
  if (kind != NodeKind::Pi && kind != NodeKind::Ppi) {
    if ((pend & (kIn0 | kIn1)) != 0) {
      VSet raw = forward_raw(id);
      if (is_site) {
        raw = alg::DelayAlgebra::site_transform(raw, fault_.slow_to_rise);
      }
      if (!narrow(id, raw)) {
        return false;
      }
      // A forward narrowing re-marks this node kSelf; absorb it now so the
      // backward prunes below run against the fresh output set instead of
      // re-queuing the node.
      pend |= pending_[id];
      pending_[id] = 0;
    }
    VSet out_req = sets_[id];
    if (is_site) {
      out_req =
          alg::DelayAlgebra::site_transform_pre(out_req, fault_.slow_to_rise);
    }
    const NodeId in0 = in0s_[id];
    switch (kind) {
      case NodeKind::Buf:
        // The unary backward prune depends on the output set alone.
        if ((pend & kSelf) != 0 && !narrow(in0, out_req)) {
          return false;
        }
        break;
      case NodeKind::Not:
        if ((pend & kSelf) != 0 &&
            !narrow(in0, algebra_->set_not(out_req))) {
          return false;
        }
        break;
      case NodeKind::And2:
      case NodeKind::Or2:
      case NodeKind::Xor2: {
        const Op2 op = kind == NodeKind::And2
                           ? Op2::And
                           : (kind == NodeKind::Or2 ? Op2::Or : Op2::Xor);
        const NodeId in1 = in1s_[id];
        // in0's prune reads (in1, out); in1's reads (in0, out). Run each
        // only when one of its operands changed.
        if ((pend & (kSelf | kIn1)) != 0 &&
            !narrow(in0, algebra_->set_bwd_first(op, sets_[in0],
                                                 sets_[in1], out_req))) {
          return false;
        }
        if ((pend & (kSelf | kIn0)) != 0 &&
            !narrow(in1, algebra_->set_bwd_first(op, sets_[in1],
                                                 sets_[in0], out_req))) {
          return false;
        }
        break;
      }
      case NodeKind::Pi:
      case NodeKind::Ppi:
        break;
    }
  }
  if ((pend & kSelf) != 0) {
    for (const std::uint32_t role : model_->register_roles(id)) {
      if (!apply_register_pair(role)) {
        return false;
      }
    }
  }
  return true;
}

bool ImplicationEngine::propagate() {
  while (queue_head_ < queue_.size()) {
    const NodeId id = queue_[queue_head_++];
    const std::uint8_t pend = pending_[id];
    pending_[id] = 0;
    if (pend != 0 && !process(id, pend)) {
      clear_queue();
      return false;
    }
    if (queue_head_ == queue_.size()) {
      queue_.clear();
      queue_head_ = 0;
    }
  }
  return true;
}

}  // namespace gdf::tdgen
