// TDgen — the local robust delay-fault test pattern generator (paper §3).
//
// A branch-and-bound search over per-line value sets: the fault site is
// pinned to its carrier value, decisions extend the fault-effect path
// toward an observation point (c-frontier, nearest-observation-first) or
// split primary input/state sets, and the implication engine prunes after
// every decision. A candidate is accepted as a solution only after an
// independent forward two-frame simulation proves a carrier-only value at
// an observation point for *every* completion of the unassigned inputs —
// tests are robust by construction.
//
// The search is resumable: next() enumerates distinct local tests so the
// sequential stages (FOGBUSTER) can reject a solution and demand another,
// which is what makes the combined algorithm complete. The paper's abort
// policy (100 local backtracks) is the default.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "algebra/frame_sim.hpp"
#include "tdgen/fault.hpp"
#include "tdgen/implication.hpp"
#include "tdgen/local_test.hpp"

namespace gdf::tdgen {

/// Aggregated search-core tallies of one or more TdgenSearch lifetimes —
/// what the flow folds into StageStats so --stages can attribute the
/// incremental engine's work (see TdgenOptions::tally).
struct SearchCounters {
  long implication_assigns = 0;
  long trail_pushes = 0;
  long trail_pops = 0;
  long probe_runs = 0;  ///< verification probes executed (not memo-skipped)
  long probe_cone = 0;  ///< … settled incrementally from the cached state
  long probe_full = 0;  ///< … requiring a full two-frame pass

  void add(const SearchCounters& other) {
    implication_assigns += other.implication_assigns;
    trail_pushes += other.trail_pushes;
    trail_pops += other.trail_pops;
    probe_runs += other.probe_runs;
    probe_cone += other.probe_cone;
    probe_full += other.probe_full;
  }
};

struct TdgenOptions {
  int backtrack_limit = 100;     ///< paper §6
  long decision_limit = 200000;  ///< safety net against pathological cases
  /// When set, the search adds its counters here on destruction.
  SearchCounters* tally = nullptr;
  /// Optional pre-sorted observation-distance cone for the fault site
  /// (TdgenSearch::sorted_cone() of an earlier search over the same model
  /// and fault line). Re-entries reuse the first search's cone instead of
  /// re-deriving and re-sorting it.
  const std::vector<alg::NodeId>* shared_cone = nullptr;
  /// Optional donor engine whose post-init snapshot seeds this search's
  /// engine (see ImplicationEngine::init_from) — a started search over the
  /// same model and fault. Re-entries skip the whole-circuit init fixpoint
  /// this way; an incompatible donor silently falls back to init().
  const ImplicationEngine* init_donor = nullptr;
};

enum class TdgenStatus {
  TestFound,   ///< *out holds a verified local test; call next() to resume
  Untestable,  ///< search space exhausted: robustly untestable locally
  Aborted,     ///< a limit was hit before exhaustion
};

class TdgenSearch {
 public:
  /// `fault.line` refers to the model's netlist (use the fanout-expanded
  /// netlist so branch faults are addressable).
  TdgenSearch(const alg::AtpgModel& model, const alg::DelayAlgebra& algebra,
              DelayFault fault, TdgenOptions options = {});
  ~TdgenSearch();

  TdgenSearch(const TdgenSearch&) = delete;
  TdgenSearch& operator=(const TdgenSearch&) = delete;

  /// The fault site's carrier cone sorted nearest-observation-first — pass
  /// as TdgenOptions::shared_cone to a re-entry over the same fault line.
  const std::vector<alg::NodeId>& sorted_cone() const { return *cone_; }

  /// This search's engine — pass as TdgenOptions::init_donor to a re-entry
  /// over the same fault so it can seed from the post-init snapshot.
  const ImplicationEngine& engine() const { return engine_; }

  /// Constrains a PPO line to `allowed` (e.g. steady clean {1} during
  /// propagation justification re-entry). Call before the first next().
  void pin_ppo(std::size_t dff_index, alg::VSet allowed);

  /// Requires the fault effect to be observed at this node (e.g. the PPO
  /// the propagation phase starts from). Call before the first next().
  void require_observation(alg::NodeId obs_node);

  /// Produces the next distinct verified local test.
  TdgenStatus next(LocalTest* out);

  int backtracks() const { return backtracks_; }
  long decisions() const { return decisions_; }

 private:
  struct Decision {
    alg::NodeId node;
    alg::VSet rest;
  };

  struct PpoPin {
    std::size_t dff_index;
    alg::VSet allowed;
  };

  struct CheckOutcome {
    alg::TwoFrameStimulus stimulus;
    std::vector<alg::VSet> sim_sets;
    std::vector<alg::NodeId> observed;
  };

  bool start();
  bool backtrack();
  bool choose_decision();
  bool push_decision(alg::NodeId node, alg::VSet try_set);
  bool carrier_possible_at_observation() const;
  bool engine_claims_observation() const;
  bool check_stimulus(const std::vector<alg::VSet>& pi_sets,
                      const std::vector<unsigned>& ppi_inits,
                      CheckOutcome* out) const;
  bool verified_solution(LocalTest* out);
  TdgenStatus exhausted_status() const;

  const alg::AtpgModel* model_;
  const alg::DelayAlgebra* algebra_;
  DelayFault fault_;
  TdgenOptions options_;
  alg::FaultSpec spec_;
  ImplicationEngine engine_;
  alg::TwoFrameSim sim_;
  std::vector<alg::NodeId> cone_storage_;
  const std::vector<alg::NodeId>* cone_;
  std::vector<PpoPin> pins_;
  std::optional<alg::NodeId> required_obs_;
  std::vector<Decision> stack_;
  std::set<std::string> published_;
  /// Source-set vectors (PIs + PPI initials) already taken through
  /// verification. Different search leaves frequently share identical
  /// primary assignments (decisions on internal nodes do not move the
  /// sources), and verification is a pure function of the sources, so a
  /// repeat can only reproduce the earlier outcome — which by then is a
  /// duplicate. Skipping it is behavior-identical and avoids the
  /// simulation entirely.
  std::unordered_set<std::string> checked_entries_;
  /// check_stimulus inputs that already failed (the check is deterministic,
  /// so they fail forever) — mostly hit by the don't-care lifting probes.
  mutable std::unordered_set<std::string> failed_checks_;
  /// The cone-scoped probe cache. probe_base_ holds node sets settled
  /// under the last probe's *raw* sources (pre register-fixpoint): a new
  /// probe hands its full source vector to rerun_sources, which replays
  /// only the cones of the sources that actually differ — for the
  /// don't-care lifting probes that is a single source. The register
  /// fixpoint then prunes on a copy (probe_sets_) so the base never
  /// churns through prune/unprune cycles. Exactly equivalent to a fresh
  /// full pass per probe.
  mutable std::vector<alg::VSet> probe_base_;
  mutable std::vector<alg::VSet> probe_sets_;
  mutable bool probe_ready_ = false;
  mutable SearchCounters probe_counters_;
  bool started_ = false;
  bool aborted_ = false;
  int backtracks_ = 0;
  long decisions_ = 0;
};

}  // namespace gdf::tdgen
