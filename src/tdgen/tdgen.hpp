// TDgen — the local robust delay-fault test pattern generator (paper §3).
//
// A branch-and-bound search over per-line value sets: the fault site is
// pinned to its carrier value, decisions extend the fault-effect path
// toward an observation point (c-frontier, nearest-observation-first) or
// split primary input/state sets, and the implication engine prunes after
// every decision. A candidate is accepted as a solution only after an
// independent forward two-frame simulation proves a carrier-only value at
// an observation point for *every* completion of the unassigned inputs —
// tests are robust by construction.
//
// The search is resumable: next() enumerates distinct local tests so the
// sequential stages (FOGBUSTER) can reject a solution and demand another,
// which is what makes the combined algorithm complete. The paper's abort
// policy (100 local backtracks) is the default.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "algebra/frame_sim.hpp"
#include "base/cancel.hpp"
#include "tdgen/fault.hpp"
#include "tdgen/implication.hpp"
#include "tdgen/local_test.hpp"

namespace gdf::tdgen {

/// Deterministic per-fault work budget (--fault-budget), counted in
/// implication-engine assignments (trail pushes). One budget is created
/// per targeted fault and shared by the local search and every re-entry —
/// like the sequential backtrack budget it is never reset, so the abort
/// point is a pure function of (context, fault, options) and the verdict
/// bytes stay identical across --jobs and --shard-faults, unlike a
/// wall-clock cap.
class WorkBudget {
 public:
  /// `limit` assignments may be spent; the first charge pushing the total
  /// *past* the limit exhausts the budget (mirrors `backtracks_ > limit`).
  explicit WorkBudget(long limit) : remaining_(limit) {}

  void charge(long work) { remaining_ -= work; }
  bool exhausted() const { return remaining_ < 0; }
  long remaining() const { return remaining_; }

 private:
  long remaining_;
};

/// Aggregated search-core tallies of one or more TdgenSearch lifetimes —
/// what the flow folds into StageStats so --stages can attribute the
/// incremental engine's work (see TdgenOptions::tally).
struct SearchCounters {
  long implication_assigns = 0;
  long trail_pushes = 0;
  long trail_pops = 0;
  long conflicts = 0;    ///< empty-set narrowings + clause firings
  long learned = 0;      ///< clauses learned from conflict analysis
  long clause_hits = 0;  ///< conflicts announced early by a learned clause
  long backjump_levels_skipped = 0;  ///< levels discarded untried by CBJ
  long restarts = 0;            ///< Luby restarts taken (--restarts luby)
  long clause_reductions = 0;   ///< tiered clause-DB reduction passes
  long minimized_lits = 0;      ///< literals dropped by nogood minimization
  long clause_db_core = 0;   ///< end-of-search clauses with LBD ≤ 2
  long clause_db_mid = 0;    ///< … LBD 3–6
  long clause_db_local = 0;  ///< … LBD > 6
  long lbd_le2 = 0;   ///< learned clauses with LBD ≤ 2 (at learn time)
  long lbd_3_6 = 0;   ///< … LBD 3–6
  long lbd_gt6 = 0;   ///< … LBD > 6
  long probe_runs = 0;  ///< verification probes executed (not memo-skipped)
  long probe_cone = 0;  ///< … settled incrementally from the cached state
  long probe_full = 0;  ///< … requiring a full two-frame pass
  long probe_memo_hits = 0;  ///< probes answered from the success memo

  void add(const SearchCounters& other) {
    implication_assigns += other.implication_assigns;
    trail_pushes += other.trail_pushes;
    trail_pops += other.trail_pops;
    conflicts += other.conflicts;
    learned += other.learned;
    clause_hits += other.clause_hits;
    backjump_levels_skipped += other.backjump_levels_skipped;
    restarts += other.restarts;
    clause_reductions += other.clause_reductions;
    minimized_lits += other.minimized_lits;
    clause_db_core += other.clause_db_core;
    clause_db_mid += other.clause_db_mid;
    clause_db_local += other.clause_db_local;
    lbd_le2 += other.lbd_le2;
    lbd_3_6 += other.lbd_3_6;
    lbd_gt6 += other.lbd_gt6;
    probe_runs += other.probe_runs;
    probe_cone += other.probe_cone;
    probe_full += other.probe_full;
    probe_memo_hits += other.probe_memo_hits;
  }
};

/// Restart policy of the conflict-driven search (--restarts). Luby fires a
/// restart after base·luby(k) analyzed conflicts (k = restarts taken so
/// far): the search backjumps to level 0 but keeps its learned clauses,
/// memoized probes, node activities and saved phases, so the retried
/// descent is ordered by everything the failed one learned. The trigger
/// counts only this search's own conflicts — byte-deterministic at any
/// --jobs/--shard-faults. Off disables restarts (with --learn off this is
/// the committed pre-learning golden path).
enum class RestartPolicy : std::uint8_t { Off, Luby };

struct TdgenOptions {
  int backtrack_limit = 100;     ///< paper §6
  long decision_limit = 200000;  ///< safety net against pathological cases
  /// Conflict-driven mode: learn blocking implicates from every engine
  /// conflict, backjump non-chronologically to the deepest involved level,
  /// memoize successful verification probes, and lift don't-cares cheapest
  /// cone first. Off reproduces the chronological search byte-for-byte.
  bool learn = true;
  /// Clause-database budget per search. Exceeding it no longer stops
  /// learning: a tiered reduction pass (core LBD≤2 kept forever, the rest
  /// ranked by LBD then activity) evicts down to half the budget instead.
  int learned_limit = 512;
  /// Restart policy (--restarts); active only when `learn` is set.
  RestartPolicy restarts = RestartPolicy::Luby;
  /// Conflicts before the first restart; the k-th restart fires after
  /// restart_base·luby(k) conflicts (--restart-base).
  int restart_base = 32;
  /// Order decisions by EVSIDS node activity (bumped on conflict-side
  /// nodes at every analysis), tie-broken by the static order, with phase
  /// saving across backtracks. Active only when `learn` is set; all-zero
  /// activities reproduce the static order exactly.
  bool vsids = true;
  /// Shrink each learned nogood by replay-based self-subsumption before it
  /// is stored (the unminimized clause is still what --learn shared
  /// publishes — the minimization proof is fault-local).
  bool minimize = true;
  /// Try don't-care lifts cheapest fanout cone first instead of in index
  /// order. The reorder changes which of two interacting lifts sticks —
  /// pattern drift that cascades through fault dropping — so it is only
  /// enabled where byte-stability is already waived (--learn shared).
  bool reorder_lifts = false;
  /// When set, the search adds its counters here on destruction.
  SearchCounters* tally = nullptr;
  /// Shared per-fault work budget; the decision loop charges its engine's
  /// assignment deltas against it and aborts once it is exhausted. The
  /// flow distinguishes such aborts from backtrack-limit aborts by asking
  /// the budget afterwards.
  WorkBudget* work_budget = nullptr;
  /// Cooperative cancellation: polled once per decision-loop iteration;
  /// a fired token unwinds via throw_cancelled() (Error, kind Cancelled).
  const CancelToken* cancel = nullptr;
  /// Optional pre-sorted observation-distance cone for the fault site
  /// (TdgenSearch::sorted_cone() of an earlier search over the same model
  /// and fault line). Re-entries reuse the first search's cone instead of
  /// re-deriving and re-sorting it.
  const std::vector<alg::NodeId>* shared_cone = nullptr;
  /// Optional donor engine whose post-init snapshot seeds this search's
  /// engine (see ImplicationEngine::init_from) — a started search over the
  /// same model and fault. Re-entries skip the whole-circuit init fixpoint
  /// this way; an incompatible donor silently falls back to init().
  const ImplicationEngine* init_donor = nullptr;
  /// Clauses learned by an earlier search over the same fault (the base
  /// search, for re-entries). Pins only narrow a re-entry's level-0 state,
  /// so every base-search clause stays valid there; copied at start().
  const base::ClauseArena* seed_clauses = nullptr;
  /// Cross-fault store (--learn shared): fault-independent clauses are
  /// consumed at start() (skipping any whose footprint covers this fault's
  /// site) and published from cone-clean conflicts.
  const base::ClauseStore* shared_consume = nullptr;
  base::ClauseStore* shared_publish = nullptr;
};

enum class TdgenStatus {
  TestFound,   ///< *out holds a verified local test; call next() to resume
  Untestable,  ///< search space exhausted: robustly untestable locally
  Aborted,     ///< a limit was hit before exhaustion
};

class TdgenSearch {
 public:
  /// `fault.line` refers to the model's netlist (use the fanout-expanded
  /// netlist so branch faults are addressable).
  TdgenSearch(const alg::AtpgModel& model, const alg::DelayAlgebra& algebra,
              DelayFault fault, TdgenOptions options = {});
  ~TdgenSearch();

  TdgenSearch(const TdgenSearch&) = delete;
  TdgenSearch& operator=(const TdgenSearch&) = delete;

  /// The fault site's carrier cone sorted nearest-observation-first — pass
  /// as TdgenOptions::shared_cone to a re-entry over the same fault line.
  const std::vector<alg::NodeId>& sorted_cone() const { return *cone_; }

  /// This search's engine — pass as TdgenOptions::init_donor to a re-entry
  /// over the same fault so it can seed from the post-init snapshot.
  const ImplicationEngine& engine() const { return engine_; }

  /// Clauses learned so far — pass as TdgenOptions::seed_clauses to a
  /// re-entry over the same fault.
  const base::ClauseArena& learned_clauses() const {
    return engine_.clauses();
  }

  /// Constrains a PPO line to `allowed` (e.g. steady clean {1} during
  /// propagation justification re-entry). Call before the first next().
  void pin_ppo(std::size_t dff_index, alg::VSet allowed);

  /// Requires the fault effect to be observed at this node (e.g. the PPO
  /// the propagation phase starts from). Call before the first next().
  void require_observation(alg::NodeId obs_node);

  /// Produces the next distinct verified local test.
  TdgenStatus next(LocalTest* out);

  int backtracks() const { return backtracks_; }
  long decisions() const { return decisions_; }

 private:
  struct Decision {
    alg::NodeId node;
    alg::VSet rest;
  };

  struct PpoPin {
    std::size_t dff_index;
    alg::VSet allowed;
  };

  struct CheckOutcome {
    alg::TwoFrameStimulus stimulus;
    /// Simulated PPO sets, indexed by DFF — the only simulation output a
    /// solution needs, and compact enough to memoize per source vector.
    std::vector<alg::VSet> ppo_sets;
    std::vector<alg::NodeId> observed;
  };

  bool start();
  /// Level-0 constraints of this fault: carrier activation at the site,
  /// PPO pins, required observation. Factored out of start() so the
  /// minimization scratch engine can reproduce the root state exactly.
  bool apply_root_constraints(ImplicationEngine* engine) const;
  /// Pops every decision level but keeps clauses, probe memos, activities
  /// and saved phases; the next descent re-decides under the learned
  /// ordering. Returns false when the root state itself is conflicted.
  bool restart();
  /// Fires a Luby restart when this search's analyzed-conflict count
  /// crossed the current threshold. Returns false on a root conflict.
  bool maybe_restart();
  /// Replay-minimizes analysis_.lits on the scratch engine and recomputes
  /// involved_levels_/LBD from the surviving literals' levels.
  std::uint32_t minimize_learned(std::uint32_t lbd);
  /// Chronological backtrack, or — when `involved` names the decision
  /// levels a just-analyzed conflict rests on — conflict-directed
  /// backjumping: levels not in the failure's cause are discarded untried
  /// (their subtrees re-derive the failure, hence are solution-free).
  /// Exhausted levels hand the union of the causes accumulated against
  /// them further down; a backtrack without analysis (nullptr) poisons
  /// the levels it crosses, pinning the walk below them to chronological.
  bool backtrack(const std::vector<std::uint8_t>* involved = nullptr);
  /// Analyzes the current engine conflict, learns a clause (and publishes
  /// a cone-clean one under --learn shared), then backjumps.
  bool conflict_backtrack();
  bool choose_decision();
  bool push_decision(alg::NodeId node, alg::VSet try_set);
  bool carrier_possible_at_observation() const;
  bool engine_claims_observation() const;
  bool check_stimulus(const std::vector<alg::VSet>& pi_sets,
                      const std::vector<unsigned>& ppi_inits,
                      CheckOutcome* out) const;
  bool verified_solution(LocalTest* out);
  TdgenStatus exhausted_status() const;
  void import_shared_clauses();
  void prepare_lift_order();

  const alg::AtpgModel* model_;
  const alg::DelayAlgebra* algebra_;
  DelayFault fault_;
  TdgenOptions options_;
  alg::FaultSpec spec_;
  ImplicationEngine engine_;
  alg::TwoFrameSim sim_;
  std::vector<alg::NodeId> cone_storage_;
  const std::vector<alg::NodeId>* cone_;
  std::vector<PpoPin> pins_;
  std::optional<alg::NodeId> required_obs_;
  /// Engine trail pushes already charged to options_.work_budget — the
  /// decision loop charges deltas so shared budgets accumulate exactly
  /// one search's work once, however often next() resumes.
  long budget_charged_ = 0;
  std::vector<Decision> stack_;
  std::set<std::string> published_;
  /// Source-set vectors (PIs + PPI initials) already taken through
  /// verification. Different search leaves frequently share identical
  /// primary assignments (decisions on internal nodes do not move the
  /// sources), and verification is a pure function of the sources, so a
  /// repeat can only reproduce the earlier outcome — which by then is a
  /// duplicate. Skipping it is behavior-identical and avoids the
  /// simulation entirely.
  std::unordered_set<std::string> checked_entries_;
  /// check_stimulus inputs that already failed (the check is deterministic,
  /// so they fail forever) — mostly hit by the don't-care lifting probes.
  mutable std::unordered_set<std::string> failed_checks_;
  /// Successful probe outcomes by source key (--learn only): the check is
  /// a pure function of the sources, so a repeat returns the cached
  /// outcome instead of resimulating. Byte-equivalent either way —
  /// rerun_sources replays against any cached base state exactly.
  mutable std::unordered_map<std::string, CheckOutcome> success_checks_;
  /// The cone-scoped probe cache. probe_base_ holds node sets settled
  /// under the last probe's *raw* sources (pre register-fixpoint): a new
  /// probe hands its full source vector to rerun_sources, which replays
  /// only the cones of the sources that actually differ — for the
  /// don't-care lifting probes that is a single source. The register
  /// fixpoint then prunes on a copy (probe_sets_) so the base never
  /// churns through prune/unprune cycles. Exactly equivalent to a fresh
  /// full pass per probe.
  mutable std::vector<alg::VSet> probe_base_;
  mutable std::vector<alg::VSet> probe_sets_;
  mutable bool probe_ready_ = false;
  mutable SearchCounters probe_counters_;
  /// Conflict-analysis scratch reused across conflicts.
  Analysis analysis_;
  SharedExtract shared_extract_;
  std::vector<std::uint8_t> involved_levels_;
  /// Per decision level: the union of the conflict sets of every failure
  /// that bounced off that level (CBJ accounting, --learn only).
  /// cbj_rows_[k][l] != 0 marks level l < k as involved; cbj_poison_[k]
  /// means some failure there had no analysis ("involves everything").
  std::vector<std::vector<std::uint8_t>> cbj_rows_;
  std::vector<std::uint8_t> cbj_poison_;
  std::vector<std::uint8_t> cbj_cur_;
  /// Keys of clauses already published to the shared store by this search.
  std::unordered_set<std::string> shared_published_;
  /// Don't-care lifting order (--learn only): source indices sorted by
  /// fanout-cone size ascending, so cheap probes run (and cheap lifts
  /// stick) first. Built lazily at the first verified solution.
  std::vector<std::size_t> lift_order_ppi_;
  std::vector<std::size_t> lift_order_pi_;
  bool lift_order_ready_ = false;
  /// Last branched-to value set per node (phase saving, --learn only):
  /// primary splits retry the phase that survived deepest before falling
  /// back to the static vset_first choice. 0 = no phase saved.
  std::vector<alg::VSet> saved_phase_;
  /// Lazily built engine for replay minimization, seeded from engine_'s
  /// post-init snapshot plus the root constraints, never given clauses.
  std::unique_ptr<ImplicationEngine> minimize_engine_;
  bool minimize_engine_failed_ = false;
  long learned_ = 0;
  long backjump_levels_skipped_ = 0;
  long restarts_ = 0;
  long clause_reductions_ = 0;
  long minimized_lits_ = 0;
  long lbd_le2_ = 0;
  long lbd_3_6_ = 0;
  long lbd_gt6_ = 0;
  /// Conflicts analyzed since the last restart / the current Luby
  /// threshold (conflict counts, deterministic by construction).
  long conflicts_since_restart_ = 0;
  long restart_threshold_ = 0;
  bool started_ = false;
  bool aborted_ = false;
  int backtracks_ = 0;
  long decisions_ = 0;
};

}  // namespace gdf::tdgen
