#include "tdgen/tdgen.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace gdf::tdgen {

using alg::kCarrierSet;
using alg::kEmptySet;
using alg::Node;
using alg::NodeId;
using alg::V8;
using alg::VSet;

TdgenSearch::TdgenSearch(const alg::AtpgModel& model,
                         const alg::DelayAlgebra& algebra, DelayFault fault,
                         TdgenOptions options)
    : model_(&model),
      algebra_(&algebra),
      fault_(fault),
      options_(options),
      engine_(model, algebra),
      sim_(model, algebra) {
  GDF_ASSERT(fault.line < model.netlist().size(), "fault line out of range");
  spec_.site = model.head_of(fault.line);
  spec_.slow_to_rise = fault.slow_to_rise;
  if (options_.learn && options_.vsids) {
    saved_phase_.assign(model.node_count(), kEmptySet);
  }
  if (options_.shared_cone != nullptr) {
    // A re-entry over the same fault line reuses the first search's cone.
    cone_ = options_.shared_cone;
  } else {
    cone_storage_ = model.carrier_cone(spec_.site);
    // Deterministic frontier scans in observation-distance order.
    std::sort(cone_storage_.begin(), cone_storage_.end(),
              [&model](NodeId a, NodeId b) {
                if (model.obs_distance(a) != model.obs_distance(b)) {
                  return model.obs_distance(a) < model.obs_distance(b);
                }
                return a < b;
              });
    cone_ = &cone_storage_;
  }
}

TdgenSearch::~TdgenSearch() {
  if (options_.tally == nullptr) {
    return;
  }
  SearchCounters tally = probe_counters_;
  tally.implication_assigns = engine_.counters().assigns;
  tally.trail_pushes = engine_.counters().trail_pushes;
  tally.trail_pops = engine_.counters().trail_pops;
  tally.conflicts = engine_.counters().conflicts;
  tally.clause_hits = engine_.counters().clause_hits;
  tally.learned = learned_;
  tally.backjump_levels_skipped = backjump_levels_skipped_;
  tally.restarts = restarts_;
  tally.clause_reductions = clause_reductions_;
  tally.minimized_lits = minimized_lits_;
  tally.lbd_le2 = lbd_le2_;
  tally.lbd_3_6 = lbd_3_6_;
  tally.lbd_gt6 = lbd_gt6_;
  engine_.tier_sizes(&tally.clause_db_core, &tally.clause_db_mid,
                     &tally.clause_db_local);
  options_.tally->add(tally);
}

void TdgenSearch::pin_ppo(std::size_t dff_index, VSet allowed) {
  GDF_ASSERT(!started_, "pin_ppo after the search started");
  pins_.push_back({dff_index, allowed});
}

void TdgenSearch::require_observation(NodeId obs_node) {
  GDF_ASSERT(!started_, "require_observation after the search started");
  required_obs_ = obs_node;
}

bool TdgenSearch::apply_root_constraints(ImplicationEngine* engine) const {
  // Activation: the site must expose the carrier of the targeted
  // transition.
  const VSet carrier = alg::vset_of(
      fault_.slow_to_rise ? V8::RiseC : V8::FallC);
  if (!engine->assign(spec_.site, carrier)) {
    return false;
  }
  for (const PpoPin& pin : pins_) {
    if (!engine->assign(model_->ppo_node(pin.dff_index), pin.allowed)) {
      return false;
    }
  }
  if (required_obs_.has_value() &&
      !engine->assign(*required_obs_, kCarrierSet)) {
    return false;
  }
  return true;
}

namespace {

/// luby(0), luby(1), … = 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 … — the classic
/// reluctant-doubling sequence (finite-subsequence reshuffling of powers
/// of two). Restart k waits base·luby(k) conflicts.
long luby(long x) {
  long size = 1;
  long seq = 0;
  while (size < x + 1) {
    size = 2 * size + 1;
    ++seq;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x = x % size;
  }
  return 1L << seq;
}

}  // namespace

bool TdgenSearch::start() {
  if (options_.init_donor == nullptr ||
      !engine_.init_from(*options_.init_donor, spec_)) {
    engine_.init(spec_);
  }
  if (engine_.conflict()) {
    return false;
  }
  if (!apply_root_constraints(&engine_)) {
    return false;
  }
  import_shared_clauses();
  if (options_.learn && options_.restarts == RestartPolicy::Luby) {
    restart_threshold_ = static_cast<long>(options_.restart_base) * luby(0);
  }
  return true;
}

bool TdgenSearch::restart() {
  while (!stack_.empty()) {
    engine_.pop_level();
    stack_.pop_back();
  }
  cbj_cur_.clear();
  ++restarts_;
  conflicts_since_restart_ = 0;
  restart_threshold_ =
      static_cast<long>(options_.restart_base) * luby(restarts_);
  // The root state was conflict-free at start() and popping levels only
  // restores it; clauses fire during propagation, of which there is none
  // here. The check is a pure safety net.
  return !engine_.conflict();
}

bool TdgenSearch::maybe_restart() {
  if (options_.restarts != RestartPolicy::Luby || !options_.learn) {
    return true;
  }
  if (conflicts_since_restart_ < restart_threshold_) {
    return true;
  }
  return restart();
}

void TdgenSearch::import_shared_clauses() {
  if (!options_.learn) {
    return;
  }
  if (options_.seed_clauses != nullptr) {
    engine_.import_clauses(*options_.seed_clauses);
  }
  if (options_.shared_consume != nullptr) {
    const base::ClauseStore::Snapshot snap =
        options_.shared_consume->snapshot();
    if (snap != nullptr) {
      for (const base::SharedClause& clause : *snap) {
        // A clause whose derivation ran a rule at this fault's site is not
        // valid here — the site rule is replaced by the fault transform.
        if (!std::binary_search(clause.footprint.begin(),
                                clause.footprint.end(), spec_.site)) {
          engine_.add_clause(clause.lits);
        }
      }
    }
  }
}

bool TdgenSearch::carrier_possible_at_observation() const {
  // Dominator cutoff first: a carrier-free node on the site's dominator
  // chain proves (at fixpoint — which holds whenever the search consults
  // this) that no observation point can hold a carrier, so the scan below
  // could only agree. The chain is short, and in abort-heavy searches the
  // blocked case is the common one.
  if (engine_.carrier_path_blocked()) {
    return false;
  }
  if (required_obs_.has_value()) {
    return (engine_.get(*required_obs_) & kCarrierSet) != 0;
  }
  for (const NodeId obs : model_->observation_points()) {
    if ((engine_.get(obs) & kCarrierSet) != 0) {
      return true;
    }
  }
  return false;
}

bool TdgenSearch::engine_claims_observation() const {
  for (const NodeId obs : model_->observation_points()) {
    const VSet s = engine_.get(obs);
    if (s != kEmptySet && (s & ~kCarrierSet) == 0) {
      return true;
    }
  }
  return false;
}

namespace {

std::string source_key(const std::vector<VSet>& pi_sets,
                       const std::vector<unsigned>& ppi_inits) {
  std::string key;
  key.reserve(pi_sets.size() + ppi_inits.size());
  for (const VSet s : pi_sets) {
    key.push_back(static_cast<char>(s));
  }
  for (const unsigned inits : ppi_inits) {
    key.push_back(static_cast<char>('0' + inits));
  }
  return key;
}

}  // namespace

bool TdgenSearch::check_stimulus(const std::vector<VSet>& pi_sets,
                                 const std::vector<unsigned>& ppi_inits,
                                 CheckOutcome* out) const {
  std::string key = source_key(pi_sets, ppi_inits);
  if (failed_checks_.contains(key)) {
    return false;
  }
  if (options_.learn) {
    // The whole check is a pure function of the source vector, so a
    // repeated probe returns the memoized outcome. Byte-equivalent to
    // resimulating: rerun_sources replays exactly from any cached base.
    const auto hit = success_checks_.find(key);
    if (hit != success_checks_.end()) {
      ++probe_counters_.probe_memo_hits;
      if (out != nullptr) {
        *out = hit->second;
      }
      return true;
    }
  }
  const auto fail = [&]() {
    failed_checks_.insert(std::move(key));
    return false;
  };
  alg::TwoFrameStimulus stimulus;
  stimulus.pi_sets = pi_sets;
  // The PPI final-frame component is produced by the register from the PPO
  // values of the initial frame, so it is derived, never assumed: starting
  // with all finals allowed, repeatedly prune each PPI's finals to the
  // initial values its PPO can take under the current stimulus. The
  // fixpoint from the wide side over-approximates every real execution,
  // which makes the observation check sound for all don't-care fills.
  stimulus.ppi_sets.reserve(model_->ppis().size());
  for (const unsigned inits : ppi_inits) {
    stimulus.ppi_sets.push_back(
        alg::vset_with_initial_in(alg::kPrimaryDomain, inits));
  }

  // Cone-scoped probe: probe_base_ keeps the previous probe's settled
  // pre-fixpoint state, so each probe replays only the cones of the
  // sources that differ from it — rerun_sources is exactly equivalent to
  // a fresh full pass, which is what the first probe (and only it) runs.
  ++probe_counters_.probe_runs;
  std::vector<std::pair<NodeId, VSet>> diffs;
  diffs.reserve(model_->pis().size() + model_->ppis().size());
  const auto all_sources = [&](std::vector<std::pair<NodeId, VSet>>* out_d) {
    out_d->clear();
    for (std::size_t i = 0; i < model_->pis().size(); ++i) {
      out_d->emplace_back(model_->pis()[i], stimulus.pi_sets[i]);
    }
    for (std::size_t k = 0; k < model_->ppis().size(); ++k) {
      out_d->emplace_back(model_->ppis()[k], stimulus.ppi_sets[k]);
    }
  };
  if (!probe_ready_) {
    sim_.run(stimulus, &spec_, probe_base_);
    probe_sets_ = probe_base_;
    probe_ready_ = true;
    ++probe_counters_.probe_full;
  } else {
    all_sources(&diffs);
    sim_.rerun_sources(diffs, &spec_, probe_base_);
    ++probe_counters_.probe_cone;
  }

  // The register fixpoint: round n prunes each PPI's finals against the
  // PPO initials of run(S_n), exactly the reference iteration — but both
  // states evolve incrementally. Round 1 reads the base; as soon as a
  // prune applies, the pruned source vector is resettled onto the
  // *persistent* post-fixpoint cache (probe_sets_), whose sources carry
  // the previous probe's pruned values and therefore barely differ.
  const std::vector<VSet>* sim_view = &probe_base_;
  for (;;) {
    bool pruned_any = false;
    for (std::size_t k = 0; k < model_->ppis().size(); ++k) {
      const VSet ppo = (*sim_view)[model_->ppo_node(k)];
      const VSet pruned = alg::vset_with_final_in(stimulus.ppi_sets[k],
                                                  alg::vset_initials(ppo));
      if (pruned != stimulus.ppi_sets[k]) {
        stimulus.ppi_sets[k] = pruned;
        pruned_any = true;
      }
      if (pruned == kEmptySet) {
        return fail();  // no register-consistent execution
      }
    }
    if (!pruned_any) {
      break;
    }
    all_sources(&diffs);
    sim_.rerun_sources(diffs, &spec_, probe_sets_);
    sim_view = &probe_sets_;
  }
  const std::vector<VSet>& sim_sets = *sim_view;

  // Pins must hold for every completion of the unassigned inputs, i.e. in
  // the forward simulation sets, not merely in the engine's constraint
  // store (reconvergence can make the latter optimistic at inner nodes).
  for (const PpoPin& pin : pins_) {
    const VSet s = sim_sets[model_->ppo_node(pin.dff_index)];
    if (s == kEmptySet || (s & ~pin.allowed) != 0) {
      return fail();
    }
  }

  std::vector<NodeId> observed;
  for (const NodeId obs : model_->observation_points()) {
    const VSet s = sim_sets[obs];
    if (s != kEmptySet && (s & ~kCarrierSet) == 0) {
      observed.push_back(obs);
    }
  }
  if (observed.empty()) {
    return fail();
  }
  if (required_obs_.has_value() &&
      std::find(observed.begin(), observed.end(), *required_obs_) ==
          observed.end()) {
    return fail();
  }
  CheckOutcome result;
  result.stimulus = std::move(stimulus);
  result.ppo_sets.reserve(model_->ppis().size());
  for (std::size_t k = 0; k < model_->ppis().size(); ++k) {
    result.ppo_sets.push_back(sim_sets[model_->ppo_node(k)]);
  }
  result.observed = std::move(observed);
  if (options_.learn) {
    success_checks_.emplace(std::move(key), result);
  }
  if (out != nullptr) {
    *out = std::move(result);
  }
  return true;
}

bool TdgenSearch::verified_solution(LocalTest* out) {
  // When the fault sits directly on a PI/PPI line, the engine stores the
  // post-transform carrier there; the simulation wants the raw stimulus
  // (the activating transition) and applies the site transform itself.
  const auto source_set = [this](NodeId node) {
    VSet s = engine_.get(node);
    if (node == spec_.site) {
      s = alg::DelayAlgebra::site_transform_pre(s, spec_.slow_to_rise);
    }
    return s;
  };
  std::vector<VSet> pi_sets;
  pi_sets.reserve(model_->pis().size());
  for (const NodeId pi : model_->pis()) {
    pi_sets.push_back(source_set(pi));
  }
  std::vector<unsigned> ppi_inits;
  ppi_inits.reserve(model_->ppis().size());
  for (const NodeId ppi : model_->ppis()) {
    ppi_inits.push_back(alg::vset_initials(source_set(ppi)));
  }

  // A repeat of an already-verified source vector deterministically
  // reproduces the earlier outcome, which by now is either a known failure
  // or a duplicate of a published test — both answer false.
  if (!checked_entries_.insert(source_key(pi_sets, ppi_inits)).second) {
    return false;
  }

  CheckOutcome best;
  if (!check_stimulus(pi_sets, ppi_inits, &best)) {
    return false;
  }

  // Don't-care lifting: the search may have pinned more than the test
  // needs; try to widen every specified state bit and PI back toward X
  // while the observation stays guaranteed. This keeps the required
  // initial state small (synchronizable) and the handed-over PPO values
  // few — the paper's TDgen leaves exactly such X values behind. Under
  // --learn shared the sources are tried cheapest fanout cone first
  // (reorder_lifts); the reorder changes which of two interacting lifts
  // sticks, so the byte-stable modes keep index order.
  prepare_lift_order();
  for (std::size_t j = 0; j < ppi_inits.size(); ++j) {
    const std::size_t k = options_.reorder_lifts ? lift_order_ppi_[j] : j;
    if (ppi_inits[k] == 0b11u) {
      continue;
    }
    const unsigned saved = ppi_inits[k];
    ppi_inits[k] = 0b11u;
    CheckOutcome lifted;
    if (check_stimulus(pi_sets, ppi_inits, &lifted)) {
      best = std::move(lifted);
    } else {
      ppi_inits[k] = saved;
    }
  }
  for (std::size_t j = 0; j < pi_sets.size(); ++j) {
    const std::size_t i = options_.reorder_lifts ? lift_order_pi_[j] : j;
    const VSet wide = model_->pis()[i] == spec_.site
                          ? pi_sets[i]
                          : alg::kPrimaryDomain;
    if (pi_sets[i] == wide) {
      continue;
    }
    const VSet saved = pi_sets[i];
    pi_sets[i] = wide;
    CheckOutcome lifted;
    if (check_stimulus(pi_sets, ppi_inits, &lifted)) {
      best = std::move(lifted);
    } else {
      pi_sets[i] = saved;
    }
  }

  // Distinct-solution guarantee for the resumable enumeration: different
  // internal search states can lift to the same published test.
  std::string key;
  key.reserve(best.stimulus.pi_sets.size() +
              best.stimulus.ppi_sets.size());
  for (const VSet s : best.stimulus.pi_sets) {
    key.push_back(static_cast<char>(s));
  }
  for (const VSet s : best.stimulus.ppi_sets) {
    key.push_back(static_cast<char>(s));
  }
  if (!published_.insert(key).second) {
    return false;
  }

  if (out != nullptr) {
    out->pi_sets = best.stimulus.pi_sets;
    out->ppi_sets = best.stimulus.ppi_sets;
    out->ppo_sets = best.ppo_sets;
    out->observed = best.observed;
    out->observed_at_po = false;
    out->observed_ppos.clear();
    for (const NodeId obs : best.observed) {
      if (model_->node(obs).is_po) {
        out->observed_at_po = true;
      }
    }
    for (std::size_t k = 0; k < model_->ppis().size(); ++k) {
      const NodeId ppo = model_->ppo_node(k);
      if (std::find(best.observed.begin(), best.observed.end(), ppo) !=
          best.observed.end()) {
        out->observed_ppos.push_back(k);
      }
    }
  }
  return true;
}

bool TdgenSearch::push_decision(NodeId node, VSet try_set) {
  const VSet current = engine_.get(node);
  try_set &= current;
  GDF_ASSERT(try_set != kEmptySet && try_set != current,
             "decision must strictly split a set");
  ++decisions_;
  if (options_.learn && options_.vsids) {
    saved_phase_[node] = try_set;
  }
  engine_.push_level();
  stack_.push_back({node, static_cast<VSet>(current & ~try_set)});
  if (options_.learn) {
    // Fresh accumulated conflict set for the new level (see backtrack).
    const std::size_t level = stack_.size();
    if (cbj_rows_.size() <= level) {
      cbj_rows_.resize(level + 1);
      cbj_poison_.resize(level + 1, 0);
    }
    cbj_rows_[level].assign(level, 0);
    cbj_poison_[level] = 0;
  }
  engine_.assign(node, try_set);
  return true;
}

bool TdgenSearch::choose_decision() {
  const bool vsids = options_.learn && options_.vsids;
  // 1. Extend the fault-effect path: a node that could still become a
  // carrier, is not one yet, and has a definite-carrier input. The cone is
  // pre-sorted nearest-observation-first; under --learn the EVSIDS node
  // activity overrides that order (strictly greater activity wins, so an
  // all-zero table — e.g. before the first conflict — reproduces the
  // static order exactly).
  NodeId best = alg::kNoNode;
  double best_act = 0.0;
  for (const NodeId id : *cone_) {
    const VSet s = engine_.get(id);
    if ((s & kCarrierSet) == 0 || (s & ~kCarrierSet) == 0) {
      continue;
    }
    const Node& n = model_->node(id);
    if (n.source()) {
      continue;
    }
    const auto definite_carrier = [this](NodeId input) {
      if (input == alg::kNoNode) {
        return false;
      }
      const VSet v = engine_.get(input);
      return v != kEmptySet && (v & ~kCarrierSet) == 0;
    };
    if (!definite_carrier(n.in0) && !definite_carrier(n.in1)) {
      continue;
    }
    if (!vsids) {
      return push_decision(id, static_cast<VSet>(s & kCarrierSet));
    }
    if (best == alg::kNoNode || engine_.activity(id) > best_act) {
      best = id;
      best_act = engine_.activity(id);
    }
  }
  if (best != alg::kNoNode) {
    return push_decision(
        best, static_cast<VSet>(engine_.get(best) & kCarrierSet));
  }
  // 2. Split a primary: singleton-first, deterministic order. Values are
  // tried steady-first (0, 1, R, F) which empirically keeps off-path
  // conditions simple; under --learn the activity order takes precedence
  // and a saved phase (the subset this node last branched to) is retried
  // before the static first-value choice.
  best = alg::kNoNode;
  best_act = 0.0;
  for (const auto& group : {model_->pis(), model_->ppis()}) {
    for (const NodeId id : group) {
      const VSet s = engine_.get(id);
      if (alg::vset_size(s) <= 1) {
        continue;
      }
      if (!vsids) {
        return push_decision(id, alg::vset_of(alg::vset_first(s)));
      }
      if (best == alg::kNoNode || engine_.activity(id) > best_act) {
        best = id;
        best_act = engine_.activity(id);
      }
    }
  }
  if (best == alg::kNoNode) {
    return false;
  }
  const VSet s = engine_.get(best);
  const VSet phase = static_cast<VSet>(saved_phase_[best] & s);
  const VSet try_set = phase != kEmptySet && phase != s
                           ? phase
                           : alg::vset_of(alg::vset_first(s));
  return push_decision(best, try_set);
}

void TdgenSearch::prepare_lift_order() {
  if (!options_.reorder_lifts || lift_order_ready_) {
    return;
  }
  lift_order_ready_ = true;
  const auto order_by_cone = [this](std::span<const NodeId> sources,
                                    std::vector<std::size_t>* order) {
    std::vector<std::size_t> cone_sizes(sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      cone_sizes[i] = model_->carrier_cone(sources[i]).size();
    }
    order->resize(sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      (*order)[i] = i;
    }
    std::sort(order->begin(), order->end(),
              [&cone_sizes](std::size_t a, std::size_t b) {
                if (cone_sizes[a] != cone_sizes[b]) {
                  return cone_sizes[a] < cone_sizes[b];
                }
                return a < b;
              });
  };
  order_by_cone(model_->ppis(), &lift_order_ppi_);
  order_by_cone(model_->pis(), &lift_order_pi_);
}

bool TdgenSearch::backtrack(const std::vector<std::uint8_t>* involved) {
  ++backtracks_;
  if (backtracks_ > options_.backtrack_limit) {
    aborted_ = true;
    return false;
  }
  if (!options_.learn) {
    // Chronological walk, no conflict-set accounting — the pre-learning
    // search byte for byte.
    while (!stack_.empty()) {
      Decision& d = stack_.back();
      engine_.backtrack_level();
      if (d.rest != kEmptySet) {
        const VSet rest = d.rest;
        d.rest = kEmptySet;
        engine_.assign(d.node, rest);
        return true;
      }
      engine_.pop_level();
      stack_.pop_back();
    }
    return false;
  }
  // Conflict-directed walk (Prosser-style CBJ over set-splitting
  // decisions). The current failure is summarized as the set of decision
  // levels its derivation rests on; `poison` stands for "unknown cause"
  // (carrier-blocked, dead-leaf, and resume backtracks carry no analysis)
  // and behaves as "all levels". Each level accumulates the causes of
  // every failure that bounced off it, so when the level exhausts, that
  // union becomes the failure cause handed further down the stack.
  bool poison = involved == nullptr;
  if (!poison) {
    cbj_cur_.assign(stack_.size() + 1, 0);
    const std::size_t n = std::min(cbj_cur_.size(), involved->size());
    std::copy(involved->begin(), involved->begin() + n, cbj_cur_.begin());
  }
  while (!stack_.empty()) {
    const std::size_t level = stack_.size();
    Decision& d = stack_.back();
    if (!poison && (level >= cbj_cur_.size() || cbj_cur_[level] == 0)) {
      // This level's decision is not part of the failure: every subtree
      // under its untried rest keeps the failure's antecedents narrowed,
      // so the implication fixpoint re-derives it there — discard the
      // level wholesale without trying the rest.
      engine_.pop_level();
      stack_.pop_back();
      ++backjump_levels_skipped_;
      continue;
    }
    // Fold the cause into the level's accumulated conflict set before
    // flipping (the row only tracks levels *below* this one).
    if (poison) {
      cbj_poison_[level] = 1;
    } else {
      std::vector<std::uint8_t>& row = cbj_rows_[level];
      const std::size_t n = std::min(row.size(), cbj_cur_.size());
      for (std::size_t l = 0; l < n; ++l) {
        row[l] = static_cast<std::uint8_t>(row[l] | cbj_cur_[l]);
      }
    }
    engine_.backtrack_level();
    if (d.rest != kEmptySet) {
      const VSet rest = d.rest;
      d.rest = kEmptySet;
      if (options_.vsids) {
        saved_phase_[d.node] = rest;  // the flip is the branch now taken
      }
      engine_.assign(d.node, rest);
      return true;
    }
    // Exhausted: the union of everything that failed under this level is
    // the reason the whole level failed — it becomes the cause carried to
    // the next level down.
    poison = cbj_poison_[level] != 0;
    if (!poison) {
      cbj_cur_.assign(cbj_rows_[level].begin(), cbj_rows_[level].end());
    }
    engine_.pop_level();
    stack_.pop_back();
  }
  return false;
}

bool TdgenSearch::conflict_backtrack() {
  SharedExtract* shared =
      options_.shared_publish != nullptr ? &shared_extract_ : nullptr;
  if (engine_.depth() == 0 || !engine_.analyze(&analysis_, shared)) {
    return backtrack();
  }

  if (shared != nullptr && analysis_.cone_clean) {
    // Fault-independent conflict: assemble decision + leaf literals into a
    // standalone clause any other fault (site outside the footprint) can
    // consume.
    static constexpr std::size_t kMaxSharedLits = 16;
    static constexpr std::size_t kMaxSharedClauses = 4096;
    std::vector<base::ClauseLit> lits = analysis_.lits;
    lits.insert(lits.end(), shared_extract_.leaf_lits.begin(),
                shared_extract_.leaf_lits.end());
    std::sort(lits.begin(), lits.end(),
              [](const base::ClauseLit& a, const base::ClauseLit& b) {
                return a.node < b.node;
              });
    std::size_t w = 0;
    for (const base::ClauseLit& lit : lits) {
      if (w > 0 && lits[w - 1].node == lit.node) {
        lits[w - 1].allowed &= lit.allowed;
      } else {
        lits[w++] = lit;
      }
    }
    lits.resize(w);
    if (!lits.empty() && lits.size() <= kMaxSharedLits &&
        options_.shared_publish->size() < kMaxSharedClauses) {
      std::string key;
      key.reserve(lits.size() * 5);
      for (const base::ClauseLit& lit : lits) {
        key.append(reinterpret_cast<const char*>(&lit.node),
                   sizeof(lit.node));
        key.push_back(static_cast<char>(lit.allowed));
      }
      if (shared_published_.insert(std::move(key)).second) {
        options_.shared_publish->publish(
            {std::move(lits), shared_extract_.footprint,
             static_cast<std::uint32_t>(analysis_.levels.size())});
      }
    }
  }

  ++conflicts_since_restart_;
  involved_levels_.assign(stack_.size() + 1, 0);
  for (const std::uint32_t lvl : analysis_.levels) {
    if (lvl < involved_levels_.size()) {
      involved_levels_[lvl] = 1;
    }
  }
  // LBD at learn time: distinct decision levels the nogood spans (the
  // shared clause above deliberately kept the unminimized literal set —
  // the minimization proof below is local to this fault's root state).
  std::uint32_t lbd = static_cast<std::uint32_t>(analysis_.levels.size());
  // Each candidate literal costs one scratch-engine replay, so only short
  // clauses are worth polishing: they fire most often and drop literals
  // most often. Past ~4 literals the replay time exceeds what the sweep
  // gets back in pruning (measured on s1196/s1238).
  static constexpr std::size_t kMaxMinimizeLits = 4;
  if (options_.minimize && analysis_.lits.size() > 1 &&
      analysis_.lits.size() <= kMaxMinimizeLits) {
    lbd = minimize_learned(lbd);
  }
  if (!backtrack(&involved_levels_)) {
    return false;
  }
  // Learn at the post-jump state (the backjump flipped a decision at one
  // of the clause's involved levels, so a literal is false again and the
  // clause has a watch).
  if (engine_.add_clause(analysis_.lits, lbd) != base::ClauseArena::kNone) {
    ++learned_;
    if (lbd <= base::ClauseArena::kCoreLbd) {
      ++lbd_le2_;
    } else if (lbd <= base::ClauseArena::kMidLbd) {
      ++lbd_3_6_;
    } else {
      ++lbd_gt6_;
    }
  }
  // Tiered database reduction once past the budget — only at a
  // conflict-free state (the flip's propagation may have conflicted
  // again, in which case the next analysis round gets here first).
  if (!engine_.conflict() &&
      engine_.clauses().size() >
          static_cast<std::size_t>(options_.learned_limit) &&
      engine_.reduce_clauses(
          static_cast<std::size_t>(options_.learned_limit) / 2) > 0) {
    ++clause_reductions_;
  }
  return maybe_restart();
}

std::uint32_t TdgenSearch::minimize_learned(std::uint32_t lbd) {
  if (minimize_engine_ == nullptr && !minimize_engine_failed_) {
    // The scratch engine reproduces this search's root state (post-init
    // fixpoint + activation/pins/required-observation) and never learns
    // clauses, so its narrowings are pure rule replay — exactly what the
    // minimization proof needs.
    auto scratch = std::make_unique<ImplicationEngine>(*model_, *algebra_);
    if (!scratch->init_from(engine_, spec_)) {
      scratch->init(spec_);
    }
    if (scratch->conflict() || !apply_root_constraints(scratch.get())) {
      minimize_engine_failed_ = true;  // cannot happen after start(); safety
    } else {
      minimize_engine_ = std::move(scratch);
    }
  }
  if (minimize_engine_ == nullptr) {
    return lbd;
  }
  const int removed = minimize_engine_->minimize_nogood(&analysis_.lits);
  if (removed <= 0) {
    return lbd;
  }
  minimized_lits_ += removed;
  // Recompute the involved levels from the survivors: a level stays in
  // the backjump set iff some surviving node was split there. Every
  // survivor is a decision-level external, so the set cannot go empty.
  std::vector<std::uint8_t> shrunk(involved_levels_.size(), 0);
  std::uint32_t new_lbd = 0;
  for (const base::ClauseLit& lit : analysis_.lits) {
    for (const auto& [node, level] : analysis_.lit_levels) {
      if (node == lit.node && level < shrunk.size() && shrunk[level] == 0) {
        shrunk[level] = 1;
        ++new_lbd;
      }
    }
  }
  if (new_lbd == 0) {
    return lbd;  // defensive: keep the unminimized backjump set
  }
  involved_levels_ = std::move(shrunk);
  return new_lbd;
}

TdgenStatus TdgenSearch::exhausted_status() const {
  return aborted_ ? TdgenStatus::Aborted : TdgenStatus::Untestable;
}

TdgenStatus TdgenSearch::next(LocalTest* out) {
  if (aborted_) {
    return TdgenStatus::Aborted;
  }
  if (!started_) {
    started_ = true;
    if (!start()) {
      return TdgenStatus::Untestable;
    }
  } else {
    // Resume past the previous solution leaf.
    if (!backtrack()) {
      return exhausted_status();
    }
  }
  for (;;) {
    if (options_.cancel != nullptr && options_.cancel->requested()) {
      throw_cancelled();
    }
    if (options_.work_budget != nullptr) {
      // Charge this engine's assignment delta against the shared per-fault
      // budget; once some search's charge exhausts it, every sharer's
      // next iteration aborts — deterministically, because the charges
      // are pure counts of single-threaded search work.
      const long pushes = engine_.counters().trail_pushes;
      options_.work_budget->charge(pushes - budget_charged_);
      budget_charged_ = pushes;
      if (options_.work_budget->exhausted()) {
        aborted_ = true;
        return TdgenStatus::Aborted;
      }
    }
    if (decisions_ > options_.decision_limit) {
      aborted_ = true;
      return TdgenStatus::Aborted;
    }
    if (engine_.conflict() || !carrier_possible_at_observation()) {
      // Only engine conflicts carry a trail to analyze; a merely blocked
      // carrier path backtracks chronologically as before.
      const bool resumed = engine_.conflict() && options_.learn
                               ? conflict_backtrack()
                               : backtrack();
      if (!resumed) {
        return exhausted_status();
      }
      continue;
    }
    if (engine_claims_observation() && verified_solution(out)) {
      return TdgenStatus::TestFound;
    }
    if (!choose_decision()) {
      // Fully decided but not a verified solution: dead leaf.
      if (!backtrack()) {
        return exhausted_status();
      }
    }
  }
}

}  // namespace gdf::tdgen
