// The robust gate delay fault model of paper §3: "each gate output and each
// fan out branch can contain a Slow-to-Rise (StR) and a Slow-to-Fall (StF)
// fault, that both need to be tested robustly".
//
// Fault sites are lines of the (fanout-expanded) netlist; a branch fault is
// simply a fault on its branch buffer's output.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace gdf::tdgen {

struct DelayFault {
  net::GateId line = net::kNoGate;
  bool slow_to_rise = true;

  bool operator==(const DelayFault&) const = default;
};

/// "G11 StR", "G8$b0 StF".
std::string fault_name(const net::Netlist& nl, const DelayFault& fault);

struct FaultListOptions {
  bool include_pi_lines = true;      ///< faults on primary-input lines
  bool include_ppi_lines = true;     ///< faults on flip-flop output lines
  bool include_branches = true;      ///< faults on fanout-branch buffers

  bool operator==(const FaultListOptions&) const = default;
};

/// Enumerates StR and StF faults for every selected line of `nl`
/// (deterministic order: line id ascending, StR before StF). Run this on
/// the fanout-expanded netlist to include branch faults.
std::vector<DelayFault> enumerate_faults(const net::Netlist& nl,
                                         const FaultListOptions& options = {});

}  // namespace gdf::tdgen
