// Set-based implication engine over the decomposed two-frame model.
//
// Every node holds a byte-sized set of possible eight-valued assignments.
// Assignments narrow sets; a fixpoint queue runs forward implication
// (output ∩= image of input sets), backward implication (input ∩= members
// with support), the fault-site transform, and the state-register
// correlation (PPI.final = PPO.initial, the paper's register "truth
// table"). All narrowing is recorded on a trail so the search can backtrack
// in O(changes).
//
// Invariant: each set over-approximates the values the line can take in
// any real execution consistent with the constraints added so far. Forward
// implication preserves this exactly, backward pruning removes only
// support-less members, so conclusions drawn from the sets (conflict on
// empty set, guaranteed observation on carrier-only sets) are sound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "algebra/frame_sim.hpp"
#include "algebra/model.hpp"
#include "algebra/tables.hpp"

namespace gdf::tdgen {

class ImplicationEngine {
 public:
  ImplicationEngine(const alg::AtpgModel& model,
                    const alg::DelayAlgebra& algebra);

  /// Resets all sets for a fresh fault: primary domains at PI/PPI, carriers
  /// allowed only inside the fault cone, the site transform armed at the
  /// fault site. Clears the trail.
  void init(const alg::FaultSpec& fault);

  /// Narrows node `n` to `allowed` and propagates to fixpoint.
  /// Returns false (and sets conflict()) if any set becomes empty.
  bool assign(alg::NodeId n, alg::VSet allowed);

  alg::VSet get(alg::NodeId n) const { return sets_[n]; }
  bool conflict() const { return conflict_; }

  /// Trail position for later rollback.
  std::size_t mark() const { return trail_.size(); }
  /// Restores every set changed after `m` and clears the conflict flag.
  void rollback(std::size_t m);

  const alg::AtpgModel& model() const { return *model_; }
  const alg::DelayAlgebra& algebra() const { return *algebra_; }
  const alg::FaultSpec& fault() const { return fault_; }

 private:
  struct TrailEntry {
    alg::NodeId node;
    alg::VSet old_set;
  };

  bool narrow(alg::NodeId n, alg::VSet next);
  void enqueue(alg::NodeId n);
  bool process(alg::NodeId n);
  bool propagate();
  alg::VSet forward_raw(alg::NodeId id) const;
  bool apply_register_pair(std::size_t dff_index);
  void clear_queue();

  const alg::AtpgModel* model_;
  const alg::DelayAlgebra* algebra_;
  alg::FaultSpec fault_;
  std::vector<alg::VSet> sets_;
  std::vector<TrailEntry> trail_;
  /// FIFO as a vector plus head cursor (cheaper than std::deque at the
  /// hundreds of millions of pushes an ATPG run performs).
  std::vector<alg::NodeId> queue_;
  std::size_t queue_head_ = 0;
  std::vector<std::uint8_t> in_queue_;
  bool conflict_ = false;

  /// dff indices for which a node is the PPI / PPO partner (a PPO node can
  /// serve several flip-flops when fanout is not expanded), as a CSR so the
  /// common no-role case is a two-load check.
  std::vector<std::uint32_t> role_begin_;
  std::vector<std::uint32_t> role_pool_;
};

}  // namespace gdf::tdgen
