// Set-based implication engine over the decomposed two-frame model.
//
// Every node holds a byte-sized set of possible eight-valued assignments.
// Assignments narrow sets; a fixpoint queue runs forward implication
// (output ∩= image of input sets), backward implication (input ∩= members
// with support), the fault-site transform, and the state-register
// correlation (PPI.final = PPO.initial, the paper's register "truth
// table"). All narrowing is recorded on a trail with decision-level marks,
// so the search backtracks by popping deltas in O(changes).
//
// Scheduling is watched-fanin incremental: a narrowed node re-enqueues
// only the implication rules whose operands actually changed (its readers'
// forward images, the sibling-input backward prunes, its own backward
// prune and register role) instead of fully reprocessing every touched
// node. The implication rules are monotone narrowings, so any fair
// scheduling converges to the same greatest fixpoint — the engine's
// results are bit-identical to the exhaustive schedule, which is kept
// behind the GDF_FULL_FIXPOINT=1 escape hatch as a debug reference.
//
// Invariant: each set over-approximates the values the line can take in
// any real execution consistent with the constraints added so far. Forward
// implication preserves this exactly, backward pruning removes only
// support-less members, so conclusions drawn from the sets (conflict on
// empty set, guaranteed observation on carrier-only sets) are sound.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "algebra/frame_sim.hpp"
#include "algebra/model.hpp"
#include "algebra/tables.hpp"
#include "base/clause_arena.hpp"

namespace gdf::tdgen {

/// Hot-path tallies of one engine's lifetime (merged into StageStats by
/// the flow so --stages can attribute speedups).
struct ImplCounters {
  long assigns = 0;       ///< assign() calls (decisions + pins)
  long trail_pushes = 0;  ///< set narrowings recorded on the trail
  long trail_pops = 0;    ///< narrowings undone by rollback
  long conflicts = 0;     ///< empty-set narrowings + clause firings
  long clause_hits = 0;   ///< conflicts announced by a watched clause
};

/// Result of walking the trail back from a conflict: the minimal set of
/// decision constraints whose conjunction re-derives the conflict.
struct Analysis {
  /// Decision literals, deduped per node (conjunction = intersection).
  /// sets[lit.node] ⊆ lit.allowed for all lits is a nogood.
  std::vector<base::ClauseLit> lits;
  /// Sorted unique decision levels (1-based) involved in the conflict.
  std::vector<std::uint32_t> levels;
  /// Raw (node, level) of every decision-level external entry that became
  /// a literal, pre-merge — one node can appear at several levels (its set
  /// was split more than once). Lets a caller that drops literals (clause
  /// minimization) recompute `levels` for the survivors: a level stays
  /// involved iff some surviving node has an entry there. levels.size()
  /// of the surviving set is the clause's LBD.
  std::vector<std::pair<alg::NodeId, std::uint32_t>> lit_levels;
  /// True when the derivation never touched the fault cone or the site
  /// transform — a candidate for cross-fault sharing.
  bool cone_clean = false;
};

/// Deep-walk extension of an Analysis down through the level-0 trail:
/// complete leaf facts plus the rule footprint, i.e. everything a
/// different fault needs to validate the clause (see base::SharedClause).
struct SharedExtract {
  std::vector<base::ClauseLit> leaf_lits;
  std::vector<alg::NodeId> footprint;  ///< sorted, every marked node
};

/// True when GDF_FULL_FIXPOINT=1 asks for the exhaustive debug schedule.
bool full_fixpoint_requested();

class ImplicationEngine {
 public:
  /// `full_fixpoint` selects the exhaustive reference schedule (defaults
  /// to the GDF_FULL_FIXPOINT environment escape hatch).
  ImplicationEngine(const alg::AtpgModel& model,
                    const alg::DelayAlgebra& algebra,
                    bool full_fixpoint = full_fixpoint_requested());

  /// Resets all sets for a fresh fault: primary domains at PI/PPI, carriers
  /// allowed only inside the fault cone, the site transform armed at the
  /// fault site. Clears the trail and the decision levels. Keeps a
  /// snapshot of the settled post-init state so sibling engines over the
  /// same fault can seed from it (init_from) instead of re-running the
  /// whole-circuit fixpoint.
  void init(const alg::FaultSpec& fault);

  /// Seeds this engine with `donor`'s post-init snapshot — valid when the
  /// donor ran init() (not init_from) over the same model and exactly
  /// `fault`. Returns false (leaving this engine untouched) when the donor
  /// cannot vouch for that, in which case the caller falls back to init().
  /// The result is bit-identical to init(fault): the snapshot is a pure
  /// function of (model, algebra, fault).
  bool init_from(const ImplicationEngine& donor,
                 const alg::FaultSpec& fault);

  /// Narrows node `n` to `allowed` and propagates to fixpoint.
  /// Returns false (and sets conflict()) if any set becomes empty.
  bool assign(alg::NodeId n, alg::VSet allowed);

  alg::VSet get(alg::NodeId n) const { return sets_[n]; }
  bool conflict() const { return conflict_; }

  // Decision levels — the search's push/pop protocol. push_level() opens a
  // level at the current trail position; backtrack_level() undoes every
  // narrowing of the current level but keeps it open (try the complement);
  // pop_level() undoes and closes it.
  void push_level() { level_marks_.push_back(trail_.size()); }
  void backtrack_level();
  void pop_level();
  std::size_t depth() const { return level_marks_.size(); }

  /// Trail position for later rollback (level-free protocol).
  std::size_t mark() const { return trail_.size(); }
  /// Restores every set changed after `m` and clears the conflict flag.
  void rollback(std::size_t m);

  /// True when a node on the fault site's dominator chain — a node every
  /// path from the site to every observation point passes through — has
  /// lost all carrier members. At fixpoint the carrier chain backing any
  /// observed carrier runs through every chain node, so a blocked chain
  /// proves no observation point can see the fault. Sound only at
  /// fixpoint, i.e. after a successful assign()/init().
  bool carrier_path_blocked() const {
    for (const alg::NodeId d : site_chain_) {
      if ((sets_[d] & alg::kCarrierSet) == 0) {
        return true;
      }
    }
    return false;
  }

  const ImplCounters& counters() const { return counters_; }

  const alg::AtpgModel& model() const { return *model_; }
  const alg::DelayAlgebra& algebra() const { return *algebra_; }
  const alg::FaultSpec& fault() const { return fault_; }

  // --- Conflict-driven learning -------------------------------------------
  //
  // Every trail entry carries a reason tag naming the implication rule that
  // produced it, so a conflict can be resolved backward: walk the trail from
  // the top, replace each narrowing of a relevant node by the facts its rule
  // read, and keep whatever bottoms out at decision assignments. The result
  // is a nogood over decision literals — valid because the rules are
  // monotone, so any state satisfying all its literals re-derives this very
  // conflict at fixpoint. That same monotonicity makes clause firing a pure
  // shortcut: a fired clause only announces a conflict the fixpoint was
  // already guaranteed to reach, so learning never changes which states
  // conflict — only how fast the engine notices.

  /// Resolves the current conflict into decision literals. Requires
  /// conflict() and at least one open decision level, with the trail still
  /// intact (call before any rollback). When `shared` is non-null the walk
  /// continues through the level-0 trail to extract the complete leaf facts
  /// and rule footprint needed for cross-fault reuse (only meaningful when
  /// out->cone_clean holds). Returns false when there is nothing to analyze.
  bool analyze(Analysis* out, SharedExtract* shared = nullptr);

  /// Adds a nogood clause stamped with its LBD and wires it into the watch
  /// lists at the current state. Returns the clause index, or
  /// ClauseArena::kNone when every literal already holds (the caller should
  /// treat the state as conflicted — cannot happen at a conflict-free
  /// fixpoint for a valid clause).
  std::size_t add_clause(std::span<const base::ClauseLit> lits,
                         std::uint32_t lbd = 0);

  /// The clauses learned so far — copy into a sibling search over the same
  /// fault via import_clauses (pins only narrow the sibling's level-0 state,
  /// so every clause stays valid there).
  const base::ClauseArena& clauses() const { return arena_; }
  void import_clauses(const base::ClauseArena& src);

  /// Tiered clause-database reduction (call only at a conflict-free
  /// fixpoint, e.g. right after a backjump): keeps every core clause
  /// (LBD≤2) unconditionally and the best `keep_target` − core of the rest
  /// by (LBD ascending, activity descending, newer first), rebuilds the
  /// arena and the watch lists, and returns how many clauses were evicted.
  /// Evicting a clause never changes behavior beyond speed — firings are
  /// pure shortcuts.
  std::size_t reduce_clauses(std::size_t keep_target);

  /// Final tier composition of the clause database (core / mid / local by
  /// LBD) — the search folds this into its counters at destruction.
  void tier_sizes(long* core, long* mid, long* local) const;

  /// EVSIDS node activity: every conflict analysis bumps the nodes on the
  /// conflict side (all marked nodes) and geometrically decays the rest by
  /// growing the increment. Drives the search's decision ordering; reset
  /// by init()/init_from() so each fault's trajectory is self-contained
  /// (and with it byte-deterministic at any worker count).
  double activity(alg::NodeId n) const { return activity_[n]; }

  /// Greedy replay-based nogood minimization: for each literal in turn,
  /// drops it when re-asserting the remaining literals on *this* engine
  /// still derives a conflict through the implication rules alone. Call on
  /// a conflict-free clause-free scratch engine settled at the nogood's
  /// root state (same fault, same level-0 externals as the learner): the
  /// rules are monotone, so a conflict under a subset of the literals
  /// proves that subset is itself a nogood there. Restores the engine's
  /// state before returning; returns the number of literals removed.
  int minimize_nogood(std::vector<base::ClauseLit>* lits);

 private:
  /// Which rule produced a trail entry (for conflict resolution).
  enum class Why : std::uint8_t {
    External,  ///< assign(): reason holds the assigned VSet, not a node
    Forward,   ///< forward image of node's own inputs
    BwdIn,     ///< backward prune of an input; reason = the gate
    RegPair,   ///< register correlation; reason = the partner node
  };

  struct TrailEntry {
    alg::NodeId node;
    /// Rule operand per Why — or the assigned set for Why::External.
    alg::NodeId reason;
    alg::VSet old_set;
    Why why;
  };

  /// Pending-rule bits per node: which operands changed since the node was
  /// last processed. kIn0/kIn1 re-run the forward image and the sibling
  /// backward prune; kSelf re-runs the backward prunes of both inputs and
  /// the register role.
  static constexpr std::uint8_t kIn0 = 1;
  static constexpr std::uint8_t kIn1 = 2;
  static constexpr std::uint8_t kSelf = 4;
  static constexpr std::uint8_t kAll = kIn0 | kIn1 | kSelf;

  bool narrow(alg::NodeId n, alg::VSet next, alg::NodeId reason, Why why);
  void mark_dirty(alg::NodeId n);
  bool check_watches(alg::NodeId n);
  bool lit_true(const base::ClauseLit& lit) const {
    return (sets_[lit.node] & ~lit.allowed) == 0;
  }
  void add_pending(alg::NodeId n, std::uint8_t bits);
  bool process(alg::NodeId n, std::uint8_t pend);
  bool propagate();
  alg::VSet forward_raw(alg::NodeId id) const;
  bool apply_register_pair(std::size_t dff_index);
  void clear_queue();

  const alg::AtpgModel* model_;
  const alg::DelayAlgebra* algebra_;
  // Raw SoA views of the model, cached at construction — the fixpoint's
  // inner loops run hundreds of millions of iterations, so even the span
  // indirection shows up.
  const alg::NodeKind* kinds_;
  const alg::NodeId* in0s_;
  const alg::NodeId* in1s_;
  const std::uint32_t* fo_begin_;
  const alg::NodeId* fo_pool_;
  const std::uint8_t* fo_bits_;
  alg::FaultSpec fault_;
  std::vector<alg::VSet> sets_;
  /// Post-init() snapshot (sets + conflict flag) for init_from donors.
  std::vector<alg::VSet> init_sets_;
  bool init_conflict_ = false;
  bool init_ready_ = false;
  std::vector<TrailEntry> trail_;
  std::vector<std::size_t> level_marks_;
  /// FIFO as a vector plus head cursor (cheaper than std::deque at the
  /// hundreds of millions of pushes an ATPG run performs). A node is
  /// queued when its pending mask becomes non-zero; entries whose mask was
  /// already consumed pop as stale no-ops.
  std::vector<alg::NodeId> queue_;
  std::size_t queue_head_ = 0;
  std::vector<std::uint8_t> pending_;
  /// The fault site's dominator chain toward the observation sinks.
  std::vector<alg::NodeId> site_chain_;
  /// Membership in the fault cone (shared with init) — analysis uses it to
  /// decide whether a derivation is fault-independent.
  std::vector<std::uint8_t> in_cone_;
  bool conflict_ = false;
  /// What tripped the conflict: the emptied node, or the fired clause.
  alg::NodeId conflict_node_ = alg::kNoNode;
  std::size_t conflict_clause_ = base::ClauseArena::kNone;
  bool full_fixpoint_ = false;
  ImplCounters counters_;

  // Learned clauses + two-watch lists (watches_[n] = clauses watching a
  // literal on n). Rollback needs no watch maintenance: un-narrowing only
  // turns literals false again.
  base::ClauseArena arena_;
  std::vector<std::array<std::uint32_t, 2>> watch_pos_;
  std::vector<std::vector<std::uint32_t>> watches_;
  /// False until the first clause is wired — lets narrow() skip the watch
  /// probe entirely on clause-free searches.
  bool watching_ = false;
  /// EVSIDS clause-activity increment: firing clauses bump by cla_inc_,
  /// which grows per conflict (geometric decay of everyone else).
  double cla_inc_ = 1.0;

  // EVSIDS node activities (see activity()).
  std::vector<double> activity_;
  double act_inc_ = 1.0;

  // Analysis scratch, epoch-stamped so each analyze() starts clean in O(1).
  // A mark means the node's fact is relevant to the conflict; marks are
  // never cleared while walking — earlier narrowings of a marked node stay
  // relevant (a set's current value conjoins every narrowing down to init).
  std::uint64_t analysis_epoch_ = 0;
  std::vector<std::uint64_t> mark_epoch_;
  std::vector<alg::NodeId> marked_nodes_;
  std::vector<std::uint8_t> level_flags_;
};

}  // namespace gdf::tdgen
