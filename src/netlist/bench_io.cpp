#include "netlist/bench_io.hpp"

#include <fstream>
#include <sstream>

#include "base/error.hpp"
#include "base/fault_injection.hpp"
#include "base/string_util.hpp"
#include "netlist/builder.hpp"

namespace gdf::net {

namespace {

/// "INPUT(G0)" -> {"INPUT", "G0"}; returns false if not of that shape.
bool parse_call(std::string_view line, std::string& keyword,
                std::string& args) {
  const std::size_t open = line.find('(');
  const std::size_t close = line.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return false;
  }
  keyword = std::string(trim(line.substr(0, open)));
  args = std::string(trim(line.substr(open + 1, close - open - 1)));
  return !keyword.empty();
}

}  // namespace

Netlist parse_bench(std::string_view text, std::string circuit_name) {
  NetlistBuilder builder(std::move(circuit_name));
  std::istringstream in{std::string(text)};
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    try {
      const std::size_t eq = line.find('=');
      if (eq == std::string_view::npos) {
        std::string keyword, args;
        check(parse_call(line, keyword, args),
              "expected INPUT(...)/OUTPUT(...) or an assignment");
        const std::string k = to_lower(keyword);
        if (k == "input") {
          builder.input(args, line_no);
        } else if (k == "output") {
          builder.output(args, line_no);
        } else {
          throw Error("unexpected keyword '" + keyword + "'");
        }
        continue;
      }
      const std::string target(trim(line.substr(0, eq)));
      check(!target.empty(), "missing target net before '='");
      std::string keyword, args;
      check(parse_call(line.substr(eq + 1), keyword, args),
            "expected TYPE(fanins...) after '='");
      const GateType type = parse_gate_type(keyword);
      std::vector<std::string> fanins;
      if (!args.empty()) {
        fanins = split(args, ',');
      }
      builder.gate(target, type, std::move(fanins), line_no);
    } catch (const Error& e) {
      throw Error("bench parse error at line " + std::to_string(line_no) +
                  ": " + e.what());
    }
  }
  return builder.build();
}

Netlist read_bench_file(const std::string& path) {
  fi::fire_read_fail(path);
  std::ifstream in(path);
  check_resource(in.good(), "cannot open bench file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return parse_bench(buffer.str(), name);
}

std::string write_bench(const Netlist& nl) {
  std::ostringstream os;
  os << "# " << nl.name() << "\n";
  for (const GateId id : nl.inputs()) {
    os << "INPUT(" << nl.gate(id).name << ")\n";
  }
  for (const GateId id : nl.outputs()) {
    os << "OUTPUT(" << nl.gate(id).name << ")\n";
  }
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::Input) {
      continue;
    }
    os << g.name << " = " << gate_type_name(g.type) << "(";
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      if (i != 0) {
        os << ", ";
      }
      os << nl.gate(g.fanin[i]).name;
    }
    os << ")\n";
  }
  return os.str();
}

}  // namespace gdf::net
