// Gate types of the ISCAS'89 netlist vocabulary.
//
// A gate is identified with its output line: "the output of gate g" and
// "line g" are used interchangeably throughout the code base, matching the
// fault-site terminology of the paper (every gate output and every fanout
// branch is a fault site).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace gdf::net {

enum class GateType : std::uint8_t {
  Input,  ///< primary input; no fanin
  Dff,    ///< D flip-flop; output is a pseudo primary input (PPI), its
          ///< fanin line is the matching pseudo primary output (PPO)
  Buf,    ///< buffer; also used for explicit fanout branches
  Not,
  And,
  Nand,
  Or,
  Nor,
  Xor,
  Xnor,
};

/// Human-readable name as used in .bench files (e.g. "NAND").
std::string_view gate_type_name(GateType type);

/// Parses a .bench gate keyword (case-insensitive; accepts BUF and BUFF).
/// Throws gdf::Error for unknown keywords.
GateType parse_gate_type(std::string_view keyword);

/// True for Not / Nand / Nor / Xnor: the gate's function ends in an
/// inversion of the underlying And/Or/Xor/Buf body.
bool is_inverting(GateType type);

/// Number of fanins the type requires: 0 for Input, 1 for Dff/Buf/Not,
/// 2+ (returned as 2) for the binary-foldable gates.
int min_fanin(GateType type);

/// True for And/Nand/Or/Nor/Xor/Xnor, whose n-input forms fold over an
/// associative 2-input body.
bool is_foldable(GateType type);

}  // namespace gdf::net
