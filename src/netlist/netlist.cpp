#include "netlist/netlist.hpp"

#include "base/error.hpp"

namespace gdf::net {

GateId Netlist::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNoGate : it->second;
}

bool Netlist::feeds_dff(GateId id) const {
  for (const GateId reader : gates_[id].fanout) {
    if (gates_[reader].type == GateType::Dff) {
      return true;
    }
  }
  return false;
}

std::size_t Netlist::logic_gate_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (g.type != GateType::Input && g.type != GateType::Dff) {
      ++n;
    }
  }
  return n;
}

void Netlist::rebuild_indices() {
  by_name_.clear();
  inputs_.clear();
  dffs_.clear();
  for (GateId id = 0; id < gates_.size(); ++id) {
    Gate& g = gates_[id];
    g.fanout.clear();
    const bool inserted = by_name_.emplace(g.name, id).second;
    check(inserted, "duplicate gate name: '" + g.name + "'");
    if (g.type == GateType::Input) {
      inputs_.push_back(id);
    } else if (g.type == GateType::Dff) {
      dffs_.push_back(id);
    }
  }
  for (GateId id = 0; id < gates_.size(); ++id) {
    for (const GateId driver : gates_[id].fanin) {
      GDF_ASSERT(driver < gates_.size(), "fanin id out of range");
      gates_[driver].fanout.push_back(id);
    }
  }
  po_mask_.assign(gates_.size(), false);
  for (const GateId id : outputs_) {
    GDF_ASSERT(id < gates_.size(), "PO id out of range");
    po_mask_[id] = true;
  }
}

}  // namespace gdf::net
