#include "netlist/fanout.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace gdf::net {

std::size_t count_fanout_branches(const Netlist& in) {
  std::size_t n = 0;
  for (GateId id = 0; id < in.size(); ++id) {
    const std::size_t readers = in.gate(id).fanout.size();
    if (readers >= 2) {
      n += readers;
    }
  }
  return n;
}

Netlist expand_fanout_branches(const Netlist& in) {
  Netlist out;
  out.name_ = in.name_;
  out.gates_.reserve(in.size() + count_fanout_branches(in));

  // Copy original gates first so GateIds of originals are preserved.
  for (GateId id = 0; id < in.size(); ++id) {
    Gate g;
    g.type = in.gate(id).type;
    g.name = in.gate(id).name;
    g.fanin = in.gate(id).fanin;  // still original ids; rewired below
    g.is_branch = false;
    out.gates_.push_back(std::move(g));
  }

  // For each multi-reader net, create branch buffers and rewire each reader
  // pin to its dedicated branch. Reader order must be deterministic: walk
  // gates in id order and pins in pin order rather than using the
  // unordered fanout lists.
  std::vector<int> reader_pins(in.size(), 0);
  for (GateId id = 0; id < in.size(); ++id) {
    for (const GateId driver : in.gate(id).fanin) {
      reader_pins[driver]++;
    }
  }

  std::vector<int> branch_counter(in.size(), 0);
  for (GateId reader = 0; reader < in.size(); ++reader) {
    Gate& g = out.gates_[reader];
    for (GateId& driver : g.fanin) {
      if (reader_pins[driver] < 2) {
        continue;
      }
      Gate branch;
      branch.type = GateType::Buf;
      branch.name = in.gate(driver).name + "$b" +
                    std::to_string(branch_counter[driver]++);
      branch.fanin = {driver};
      branch.is_branch = true;
      const GateId branch_id = static_cast<GateId>(out.gates_.size());
      out.gates_.push_back(std::move(branch));
      driver = branch_id;
    }
  }

  out.outputs_ = in.outputs_;  // POs stay on the stems
  out.rebuild_indices();
  return out;
}

}  // namespace gdf::net
