// Two-phase netlist construction: gates may reference fanin nets by name
// before those nets are defined (the .bench format allows forward
// references); build() resolves everything and validates basic shape.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace gdf::net {

class NetlistBuilder {
 public:
  explicit NetlistBuilder(std::string circuit_name);

  /// Declares a primary input net.
  NetlistBuilder& input(const std::string& name);

  /// Declares a net as a primary output (the net may be defined later).
  NetlistBuilder& output(const std::string& name);

  /// Adds a gate driving net `name` with the given fanin net names.
  NetlistBuilder& gate(const std::string& name, GateType type,
                       std::vector<std::string> fanin_names);

  /// Convenience for DFF: q = DFF(d).
  NetlistBuilder& dff(const std::string& q, const std::string& d);

  /// Resolves names, checks arities and duplicate definitions, and produces
  /// the immutable netlist. Throws gdf::Error on any inconsistency.
  Netlist build();

 private:
  struct PendingGate {
    GateType type;
    std::string name;
    std::vector<std::string> fanin_names;
  };

  std::string name_;
  std::vector<PendingGate> pending_;
  std::vector<std::string> output_names_;
};

}  // namespace gdf::net
