// Two-phase netlist construction: gates may reference fanin nets by name
// before those nets are defined (the .bench format allows forward
// references); build() resolves everything and validates basic shape.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"

namespace gdf::net {

class NetlistBuilder {
 public:
  explicit NetlistBuilder(std::string circuit_name);

  /// Declares a primary input net. `line` (1-based source line, 0 =
  /// unknown) is carried into build()'s error messages.
  NetlistBuilder& input(const std::string& name, int line = 0);

  /// Declares a net as a primary output (the net may be defined later).
  NetlistBuilder& output(const std::string& name, int line = 0);

  /// Adds a gate driving net `name` with the given fanin net names.
  NetlistBuilder& gate(const std::string& name, GateType type,
                       std::vector<std::string> fanin_names, int line = 0);

  /// Convenience for DFF: q = DFF(d).
  NetlistBuilder& dff(const std::string& q, const std::string& d);

  /// Resolves names, checks arities and duplicate definitions, and produces
  /// the immutable netlist. Throws gdf::Error on any inconsistency.
  Netlist build();

 private:
  struct PendingGate {
    GateType type;
    std::string name;
    std::vector<std::string> fanin_names;
    int line = 0;  ///< source line of the declaration (0 = unknown)
  };

  std::string name_;
  std::vector<PendingGate> pending_;
  std::vector<std::pair<std::string, int>> output_names_;
};

}  // namespace gdf::net
