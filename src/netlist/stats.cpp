#include "netlist/stats.hpp"

#include <algorithm>
#include <sstream>

#include "netlist/levelize.hpp"

namespace gdf::net {

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.name = nl.name();
  s.primary_inputs = nl.inputs().size();
  s.primary_outputs = nl.outputs().size();
  s.flip_flops = nl.dffs().size();
  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type != GateType::Input && g.type != GateType::Dff) {
      ++s.logic_gates;
    }
    if (g.type == GateType::Not) {
      ++s.inverters;
    }
    if (g.is_branch) {
      ++s.branch_buffers;
    }
    if (g.fanout.size() >= 2) {
      ++s.fanout_stems;
    }
    s.max_fanin = std::max(s.max_fanin, g.fanin.size());
    s.max_fanout = std::max(s.max_fanout, g.fanout.size());
  }
  s.depth = levelize(nl).depth;
  return s;
}

std::string format_stats(const NetlistStats& s) {
  std::ostringstream os;
  os << s.name << ": PI=" << s.primary_inputs << " PO=" << s.primary_outputs
     << " FF=" << s.flip_flops << " gates=" << s.logic_gates
     << " (inv=" << s.inverters << ") depth=" << s.depth
     << " stems=" << s.fanout_stems;
  if (s.branch_buffers != 0) {
    os << " branches=" << s.branch_buffers;
  }
  return os.str();
}

}  // namespace gdf::net
