// Gate-level netlist of a synchronous sequential circuit — the finite state
// machine model of the paper's Figure 1: a combinational block whose sources
// are primary inputs (PIs) and flip-flop outputs (pseudo primary inputs,
// PPIs), and whose sinks are primary outputs (POs) and flip-flop inputs
// (pseudo primary outputs, PPOs).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/gate_type.hpp"

namespace gdf::net {

using GateId = std::uint32_t;
inline constexpr GateId kNoGate = 0xFFFFFFFFu;

struct Gate {
  GateType type = GateType::Buf;
  std::string name;             ///< name of the gate's output net
  std::vector<GateId> fanin;    ///< driver gates, in pin order
  std::vector<GateId> fanout;   ///< reader gates (derived, unordered)
  bool is_branch = false;       ///< inserted by fanout expansion
};

class NetlistBuilder;

/// Immutable after construction (via NetlistBuilder or the fanout-expansion
/// transform). GateIds are dense indices into gate storage.
class Netlist {
 public:
  const std::string& name() const { return name_; }

  std::size_t size() const { return gates_.size(); }
  const Gate& gate(GateId id) const { return gates_[id]; }

  std::span<const GateId> inputs() const { return inputs_; }
  std::span<const GateId> outputs() const { return outputs_; }
  std::span<const GateId> dffs() const { return dffs_; }

  /// Id of the gate whose output net has this name; kNoGate if absent.
  GateId find(std::string_view name) const;

  /// True if the gate's output net is declared a primary output.
  bool is_po(GateId id) const { return po_mask_[id]; }

  /// True if the gate drives at least one flip-flop (its output is read by a
  /// DFF data pin, i.e. the gate owns a pseudo primary output).
  bool feeds_dff(GateId id) const;

  /// True if the gate's value is observable at the combinational boundary:
  /// it is a PO or it feeds a DFF.
  bool is_observation_point(GateId id) const {
    return is_po(id) || feeds_dff(id);
  }

  /// Number of gates excluding Input pseudo-gates and DFFs — the "gate
  /// count" convention of the ISCAS'89 benchmark documentation.
  std::size_t logic_gate_count() const;

 private:
  friend class NetlistBuilder;
  friend Netlist expand_fanout_branches(const Netlist& in);

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<GateId> dffs_;
  std::vector<bool> po_mask_;
  std::unordered_map<std::string, GateId> by_name_;

  void rebuild_indices();
};

}  // namespace gdf::net
