#include "netlist/levelize.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "base/error.hpp"

namespace gdf::net {

namespace {
bool is_source(const Gate& g) {
  return g.type == GateType::Input || g.type == GateType::Dff;
}
}  // namespace

Levelization levelize(const Netlist& nl) {
  Levelization out;
  const std::size_t n = nl.size();
  out.level.assign(n, 0);

  // Kahn's algorithm over combinational edges. Edges into a DFF's data pin
  // do not count (the DFF belongs to the next time frame).
  std::vector<int> pending(n, 0);
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = nl.gate(id);
    pending[id] = is_source(g) ? 0 : static_cast<int>(g.fanin.size());
  }

  std::deque<GateId> ready;
  for (GateId id = 0; id < n; ++id) {
    if (pending[id] == 0) {
      ready.push_back(id);
    }
  }

  out.order.reserve(n);
  while (!ready.empty()) {
    const GateId id = ready.front();
    ready.pop_front();
    out.order.push_back(id);
    for (const GateId reader : nl.gate(id).fanout) {
      if (is_source(nl.gate(reader))) {
        continue;  // edge into a DFF: sequential, not combinational
      }
      out.level[reader] = std::max(out.level[reader], out.level[id] + 1);
      if (--pending[reader] == 0) {
        ready.push_back(reader);
      }
    }
  }

  check(out.order.size() == n,
        "netlist '" + nl.name() + "' contains a combinational cycle");
  for (GateId id = 0; id < n; ++id) {
    out.depth = std::max(out.depth, out.level[id]);
  }
  return out;
}

std::vector<GateId> fanout_cone(const Netlist& nl, GateId from) {
  std::vector<GateId> cone;
  std::vector<bool> seen(nl.size(), false);
  std::deque<GateId> work{from};
  seen[from] = true;
  while (!work.empty()) {
    const GateId id = work.front();
    work.pop_front();
    cone.push_back(id);
    for (const GateId reader : nl.gate(id).fanout) {
      if (nl.gate(reader).type == GateType::Dff) {
        continue;  // PPO boundary reached
      }
      if (!seen[reader]) {
        seen[reader] = true;
        work.push_back(reader);
      }
    }
  }
  return cone;
}

std::vector<GateId> fanin_cone(const Netlist& nl, GateId to) {
  std::vector<GateId> cone;
  std::vector<bool> seen(nl.size(), false);
  std::deque<GateId> work{to};
  seen[to] = true;
  while (!work.empty()) {
    const GateId id = work.front();
    work.pop_front();
    cone.push_back(id);
    if (is_source(nl.gate(id))) {
      continue;
    }
    for (const GateId driver : nl.gate(id).fanin) {
      if (!seen[driver]) {
        seen[driver] = true;
        work.push_back(driver);
      }
    }
  }
  return cone;
}

std::vector<int> distance_to_observation(const Netlist& nl) {
  constexpr int kUnreachable = std::numeric_limits<int>::max() / 2;
  std::vector<int> dist(nl.size(), kUnreachable);
  std::deque<GateId> work;
  for (GateId id = 0; id < nl.size(); ++id) {
    if (nl.is_observation_point(id)) {
      dist[id] = 0;
      work.push_back(id);
    }
  }
  while (!work.empty()) {
    const GateId id = work.front();
    work.pop_front();
    for (const GateId driver : nl.gate(id).fanin) {
      if (nl.gate(id).type == GateType::Dff) {
        continue;  // do not walk through the register
      }
      if (dist[driver] > dist[id] + 1) {
        dist[driver] = dist[id] + 1;
        work.push_back(driver);
      }
    }
  }
  return dist;
}

}  // namespace gdf::net
