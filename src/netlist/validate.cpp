#include "netlist/validate.hpp"

#include <sstream>

#include "base/error.hpp"
#include "netlist/levelize.hpp"

namespace gdf::net {

ValidationReport validate(const Netlist& nl) {
  ValidationReport report;
  const auto error = [&report](const std::string& m) {
    report.errors.push_back(m);
  };
  const auto warning = [&report](const std::string& m) {
    report.warnings.push_back(m);
  };

  if (nl.inputs().empty()) {
    error("circuit has no primary inputs");
  }
  if (nl.outputs().empty()) {
    error("circuit has no primary outputs");
  }

  for (GateId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    const int arity = static_cast<int>(g.fanin.size());
    const bool ok = is_foldable(g.type) ? arity >= 1
                                        : arity == min_fanin(g.type);
    if (!ok) {
      error("gate '" + g.name + "' has invalid fanin count " +
            std::to_string(arity));
    }
    if (g.is_branch && g.fanout.size() != 1) {
      error("branch '" + g.name + "' must have exactly one reader, has " +
            std::to_string(g.fanout.size()));
    }
    if (g.fanout.empty() && !nl.is_po(id)) {
      warning("gate '" + g.name + "' drives nothing and is not a PO");
    }
  }

  try {
    levelize(nl);
  } catch (const Error& e) {
    error(e.what());
  }

  return report;
}

void validate_or_throw(const Netlist& nl) {
  const ValidationReport report = validate(nl);
  if (report.ok()) {
    return;
  }
  std::ostringstream os;
  os << "netlist '" << nl.name() << "' failed validation:";
  for (const std::string& e : report.errors) {
    os << "\n  - " << e;
  }
  throw Error(os.str());
}

}  // namespace gdf::net
