// Reader and writer for the ISCAS'89 .bench netlist format:
//
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G5 = DFF(G10)
//   G8 = AND(G14, G6)
//
// Keywords are case-insensitive; BUFF and BUF are synonyms.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace gdf::net {

/// Parses .bench text. `circuit_name` becomes Netlist::name().
/// Throws gdf::Error with a line number on malformed input.
Netlist parse_bench(std::string_view text, std::string circuit_name);

/// Reads a .bench file from disk.
Netlist read_bench_file(const std::string& path);

/// Serializes in .bench syntax; parse_bench(write_bench(nl)) reproduces the
/// netlist up to gate ordering.
std::string write_bench(const Netlist& nl);

}  // namespace gdf::net
