// Explicit fanout-branch expansion.
//
// The paper's fault model places a slow-to-rise and a slow-to-fall fault on
// "each gate output and each fan out branch". To make every fault site a
// plain line, each multi-fanout net is split: the original gate keeps the
// stem, and one Buf gate per reader (marked is_branch) carries the branch.
// Faults on the stem and on each branch are then all "gate output" faults.
#pragma once

#include "netlist/netlist.hpp"

namespace gdf::net {

/// Returns a netlist in which every net with two or more readers drives
/// dedicated branch buffers named "<stem>$b0", "<stem>$b1", ... in reader
/// order. Primary-output nets keep the stem as the observable line (the PO
/// is observed at the stem, not via a branch). Nets with a single reader
/// are left untouched.
Netlist expand_fanout_branches(const Netlist& in);

/// Number of branch buffers that expansion would insert.
std::size_t count_fanout_branches(const Netlist& in);

}  // namespace gdf::net
