// Topological analysis of the combinational block. DFF outputs and primary
// inputs are the sources (level 0); DFF data pins and primary outputs are
// the sinks. DFF gates never appear inside a combinational path, so a cycle
// through the state register is legal while a purely combinational cycle is
// a structural error.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace gdf::net {

struct Levelization {
  /// Gates of the combinational block (Input/Buf/Not/And/... and also the
  /// Input and Dff source gates themselves) in topological order.
  std::vector<GateId> order;
  /// level[g]: 0 for sources, 1 + max(level of fanin) otherwise. DFF gates
  /// have level 0 (they act as sources for the next frame).
  std::vector<int> level;
  /// Maximum level over all gates (combinational depth).
  int depth = 0;
};

/// Computes topological order and levels. Throws gdf::Error if the
/// combinational block contains a cycle.
Levelization levelize(const Netlist& nl);

/// Gates in the transitive fanout cone of `from`, staying inside the
/// combinational block (DFF gates terminate the walk; they are not
/// included). The cone includes `from` itself.
std::vector<GateId> fanout_cone(const Netlist& nl, GateId from);

/// Gates in the transitive fanin cone of `to`, stopping at sources (Input
/// and Dff gates are included as cone leaves). The cone includes `to`.
std::vector<GateId> fanin_cone(const Netlist& nl, GateId to);

/// For every gate, the minimum number of combinational gates between it and
/// an observation point (PO or DFF data pin); used as the propagation
/// distance heuristic of the ATPG. Unreachable gates get a large sentinel.
std::vector<int> distance_to_observation(const Netlist& nl);

}  // namespace gdf::net
