#include "netlist/builder.hpp"

#include <unordered_map>

#include "base/error.hpp"

namespace gdf::net {

namespace {

/// " (line N)" when the declaration's source line is known; resolution
/// errors (duplicate nets, undefined fanins) point at the offending line
/// even though they only surface in build().
std::string at_line(int line) {
  return line > 0 ? " (line " + std::to_string(line) + ")" : "";
}

}  // namespace

NetlistBuilder::NetlistBuilder(std::string circuit_name)
    : name_(std::move(circuit_name)) {}

NetlistBuilder& NetlistBuilder::input(const std::string& name, int line) {
  pending_.push_back({GateType::Input, name, {}, line});
  return *this;
}

NetlistBuilder& NetlistBuilder::output(const std::string& name, int line) {
  output_names_.emplace_back(name, line);
  return *this;
}

NetlistBuilder& NetlistBuilder::gate(const std::string& name, GateType type,
                                     std::vector<std::string> fanin_names,
                                     int line) {
  check(type != GateType::Input, "use input() to declare primary inputs");
  pending_.push_back({type, name, std::move(fanin_names), line});
  return *this;
}

NetlistBuilder& NetlistBuilder::dff(const std::string& q,
                                    const std::string& d) {
  return gate(q, GateType::Dff, {d});
}

Netlist NetlistBuilder::build() {
  Netlist nl;
  nl.name_ = name_;
  nl.gates_.reserve(pending_.size());

  std::unordered_map<std::string, GateId> ids;
  for (const PendingGate& p : pending_) {
    check(ids.emplace(p.name, static_cast<GateId>(nl.gates_.size())).second,
          "net '" + p.name + "' defined twice" + at_line(p.line));
    Gate g;
    g.type = p.type;
    g.name = p.name;
    nl.gates_.push_back(std::move(g));
  }

  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const PendingGate& p = pending_[i];
    const int need = min_fanin(p.type);
    const bool arity_ok =
        is_foldable(p.type)
            ? static_cast<int>(p.fanin_names.size()) >= 1
            : static_cast<int>(p.fanin_names.size()) == need;
    check(arity_ok, "gate '" + p.name + "' (" +
                        std::string(gate_type_name(p.type)) + ") has " +
                        std::to_string(p.fanin_names.size()) +
                        " fanins, which is invalid" + at_line(p.line));
    for (const std::string& fn : p.fanin_names) {
      const auto it = ids.find(fn);
      check(it != ids.end(),
            "gate '" + p.name + "' references undefined net '" + fn + "'" +
                at_line(p.line));
      nl.gates_[i].fanin.push_back(it->second);
    }
  }

  for (const auto& [po, line] : output_names_) {
    const auto it = ids.find(po);
    check(it != ids.end(), "primary output '" + po + "' is never defined" +
                               at_line(line));
    nl.outputs_.push_back(it->second);
  }

  nl.rebuild_indices();
  return nl;
}

}  // namespace gdf::net
