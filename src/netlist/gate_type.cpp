#include "netlist/gate_type.hpp"

#include "base/error.hpp"
#include "base/string_util.hpp"

namespace gdf::net {

std::string_view gate_type_name(GateType type) {
  switch (type) {
    case GateType::Input:
      return "INPUT";
    case GateType::Dff:
      return "DFF";
    case GateType::Buf:
      return "BUF";
    case GateType::Not:
      return "NOT";
    case GateType::And:
      return "AND";
    case GateType::Nand:
      return "NAND";
    case GateType::Or:
      return "OR";
    case GateType::Nor:
      return "NOR";
    case GateType::Xor:
      return "XOR";
    case GateType::Xnor:
      return "XNOR";
  }
  return "?";
}

GateType parse_gate_type(std::string_view keyword) {
  const std::string k = to_lower(keyword);
  if (k == "dff") return GateType::Dff;
  if (k == "buf" || k == "buff") return GateType::Buf;
  if (k == "not" || k == "inv") return GateType::Not;
  if (k == "and") return GateType::And;
  if (k == "nand") return GateType::Nand;
  if (k == "or") return GateType::Or;
  if (k == "nor") return GateType::Nor;
  if (k == "xor") return GateType::Xor;
  if (k == "xnor") return GateType::Xnor;
  throw Error("unknown gate type keyword: '" + std::string(keyword) + "'");
}

bool is_inverting(GateType type) {
  switch (type) {
    case GateType::Not:
    case GateType::Nand:
    case GateType::Nor:
    case GateType::Xnor:
      return true;
    default:
      return false;
  }
}

int min_fanin(GateType type) {
  switch (type) {
    case GateType::Input:
      return 0;
    case GateType::Dff:
    case GateType::Buf:
    case GateType::Not:
      return 1;
    default:
      return 2;
  }
}

bool is_foldable(GateType type) {
  switch (type) {
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor:
    case GateType::Xor:
    case GateType::Xnor:
      return true;
    default:
      return false;
  }
}

}  // namespace gdf::net
