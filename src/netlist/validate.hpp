// Structural sanity checks run by the circuit catalog and the test bench
// before any ATPG touches a netlist.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace gdf::net {

struct ValidationReport {
  std::vector<std::string> errors;
  std::vector<std::string> warnings;
  bool ok() const { return errors.empty(); }
};

/// Checks: arities match gate types, no combinational cycles, at least one
/// PI and one PO, every DFF data pin driven, no dangling gates (warning),
/// and that branch buffers have exactly one reader.
ValidationReport validate(const Netlist& nl);

/// Throws gdf::Error listing all problems if validation fails.
void validate_or_throw(const Netlist& nl);

}  // namespace gdf::net
