// Per-circuit structural statistics used by the benchmark tables and the
// Figure 1 (FSM decomposition) bench.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "netlist/netlist.hpp"

namespace gdf::net {

struct NetlistStats {
  std::string name;
  std::size_t primary_inputs = 0;
  std::size_t primary_outputs = 0;
  std::size_t flip_flops = 0;
  std::size_t logic_gates = 0;      ///< excludes Input pseudo-gates and DFFs
  std::size_t inverters = 0;
  std::size_t branch_buffers = 0;   ///< inserted by fanout expansion
  std::size_t fanout_stems = 0;     ///< nets with >= 2 readers
  int depth = 0;                    ///< combinational depth in gate levels
  std::size_t max_fanin = 0;
  std::size_t max_fanout = 0;
};

NetlistStats compute_stats(const Netlist& nl);

/// One-line human readable summary.
std::string format_stats(const NetlistStats& s);

}  // namespace gdf::net
