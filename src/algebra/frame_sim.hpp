// Forward set-valued simulation of the two local time frames over the
// decomposed model — the functional core shared by TDgen's implication
// bootstrap, TDsim's fault-injection checks, and the end-to-end verifier.
//
// Because the tables never create a carrier from carrier-free operands, a
// carrier can appear in the result only downstream of the injected fault
// site; with no fault injected the simulation is a plain two-frame hazard
// analysis.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "algebra/model.hpp"
#include "algebra/tables.hpp"
#include "algebra/value_set.hpp"
#include "sim/worklist.hpp"

namespace gdf::alg {

/// A targeted gate delay fault: slow-to-rise or slow-to-fall at one line.
struct FaultSpec {
  NodeId site = kNoNode;
  bool slow_to_rise = true;
};

/// Primary/pseudo-primary input stimulus for the two frames, as value sets
/// (callers encode known bits as singletons and unknowns as wider sets).
struct TwoFrameStimulus {
  std::vector<VSet> pi_sets;   ///< one per PI, Netlist::inputs() order
  std::vector<VSet> ppi_sets;  ///< one per FF, Netlist::dffs() order
};

/// Builds the {0,1,R,F} subset compatible with the given frame bits
/// (-1 = unknown). Used to encode concrete (V1, V2) pairs.
VSet vset_primary_from_frames(int initial_bit, int final_bit);

class TwoFrameSim {
 public:
  /// `packed_lanes` caps the scenario count of one forced_sweep call
  /// (rounded up to whole 64-bit words of eight VSet byte lanes, at most
  /// 64). The default keeps the classic one-word batches; TDsim passes
  /// the configured backend ladder width through so wider backends batch
  /// more stems per cone sweep.
  explicit TwoFrameSim(const AtpgModel& model, const DelayAlgebra& algebra,
                       unsigned packed_lanes = 8)
      : model_(&model),
        algebra_(&algebra),
        lane_words_(std::min(8u, (std::max(packed_lanes, 1u) + 7) / 8)) {}

  /// Scenario capacity of one packed sweep (8 * lane words, at most 64).
  unsigned packed_lane_capacity() const { return 8 * lane_words_; }

  /// Computes the value set of every node. `fault` may be null for a
  /// fault-free pass. Sets over-approximate reachable values, so a result
  /// set contained in {Rc,Fc} proves guaranteed fault observation.
  void run(const TwoFrameStimulus& stimulus, const FaultSpec* fault,
           std::vector<VSet>& node_sets) const;

  /// True if the fault is guaranteed observed at some observation point
  /// (PO or PPO) under the stimulus; observation points forced to a
  /// carrier are appended to `where` if non-null.
  bool guaranteed_observation(const TwoFrameStimulus& stimulus,
                              const FaultSpec& fault,
                              std::vector<NodeId>* where = nullptr) const;

  /// Like run() without a fault, but with node `forced`'s value set
  /// overridden to `forced_set` before its fanout is evaluated. Used by
  /// critical path tracing to ask "what if this line carried the fault
  /// effect".
  void run_forced(const TwoFrameStimulus& stimulus, NodeId forced,
                  VSet forced_set, std::vector<VSet>& node_sets) const;

  /// Like run() with a fault, but starting from an already-computed
  /// fault-free pass over the same stimulus: only the site's fanout cone is
  /// re-evaluated. Exactly equivalent to run(stimulus, &fault, node_sets).
  void run_injected(std::span<const VSet> baseline, const FaultSpec& fault,
                    std::vector<VSet>& node_sets) const;

  /// Incremental settle: `node_sets` holds a settled pass (under `fault`)
  /// and `changed` lists source nodes whose raw stimulus set is replaced.
  /// Re-evaluates only the affected cones (dirty worklist over the
  /// topological node order — cost is the cone, not the circuit); the
  /// result is exactly what run() with the updated stimulus would produce.
  void rerun_sources(std::span<const std::pair<NodeId, VSet>> changed,
                     const FaultSpec* fault,
                     std::vector<VSet>& node_sets) const;

  /// One what-if scenario of a batched stem sweep: `node`'s value set is
  /// replaced by `set` before its fanout is evaluated. When `stop` names a
  /// node, the scenario's propagation is truncated there and its value at
  /// `stop` is reported instead of a PO verdict — the hook for
  /// dominator-aware stem marks (every path to an observation point passes
  /// the stop node, so the value there decides the scenario).
  struct ForcedLane {
    NodeId node = kNoNode;
    VSet set = kEmptySet;
    NodeId stop = kNoNode;
  };

  /// Batched run_forced over a shared fault-free baseline: up to
  /// packed_lane_capacity() independent scenarios evaluated in one packed
  /// cone sweep (one byte lane per scenario, eight lanes per 64-bit word).
  /// For lanes without a stop node, the returned bitmask has bit i set
  /// when scenario i forces a carrier-only value at some primary output.
  /// For lanes with one, stop_values[i] (which must have one entry per
  /// lane) receives the scenario's settled value at its stop node —
  /// baseline when the wave never reaches it — and the mask bit stays
  /// clear.
  std::uint64_t forced_sweep(std::span<const VSet> baseline,
                             std::span<const ForcedLane> lanes,
                             std::span<VSet> stop_values) const;

  /// forced_sweep without truncation — every lane reports the PO verdict.
  std::uint64_t forced_po_carrier_mask(
      std::span<const VSet> baseline,
      std::span<const ForcedLane> lanes) const {
    return forced_sweep(baseline, lanes, {});
  }

 private:
  /// Re-evaluates the fanout cone of `from` inside `node_sets`, whose value
  /// at `from` has already been overridden (everything upstream holds
  /// baseline values).
  void replay_cone(NodeId from, std::vector<VSet>& node_sets) const;

  const AtpgModel* model_;
  const DelayAlgebra* algebra_;
  /// 64-bit words of packed VSet byte lanes per node (see forced_sweep).
  unsigned lane_words_ = 1;
  /// Scratch for the cone-replay paths (not thread-safe, like the engines
  /// that own this simulator). The worklist resets in O(previous wave),
  /// so replays carry no per-call O(nodes) cost.
  mutable sim::BitQueue work_;
  mutable std::vector<std::uint64_t> packed_;
  mutable std::vector<std::uint64_t> lane_dirty_;
  mutable std::vector<std::uint64_t> lane_forced_;
  mutable std::vector<std::uint64_t> lane_stamp_;
  mutable std::uint64_t lane_epoch_ = 0;
};

}  // namespace gdf::alg
