#include "algebra/value8.hpp"

namespace gdf::alg {

std::string_view v8_name(V8 v) {
  switch (v) {
    case V8::Zero:
      return "0";
    case V8::One:
      return "1";
    case V8::Rise:
      return "R";
    case V8::Fall:
      return "F";
    case V8::ZeroH:
      return "0h";
    case V8::OneH:
      return "1h";
    case V8::RiseC:
      return "Rc";
    case V8::FallC:
      return "Fc";
  }
  return "?";
}

int v8_initial(V8 v) {
  switch (v) {
    case V8::Zero:
    case V8::ZeroH:
    case V8::Rise:
    case V8::RiseC:
      return 0;
    default:
      return 1;
  }
}

int v8_final(V8 v) {
  switch (v) {
    case V8::Zero:
    case V8::ZeroH:
    case V8::Fall:
    case V8::FallC:
      return 0;
    default:
      return 1;
  }
}

bool v8_is_carrier(V8 v) { return v == V8::RiseC || v == V8::FallC; }

bool v8_has_hazard(V8 v) { return v == V8::ZeroH || v == V8::OneH; }

bool v8_is_transition(V8 v) {
  switch (v) {
    case V8::Rise:
    case V8::Fall:
    case V8::RiseC:
    case V8::FallC:
      return true;
    default:
      return false;
  }
}

int v8_final_faulty(V8 v) {
  if (v == V8::RiseC) {
    return 0;  // slow-to-rise: still low at the fast sample
  }
  if (v == V8::FallC) {
    return 1;  // slow-to-fall: still high at the fast sample
  }
  return v8_final(v);
}

}  // namespace gdf::alg
