// Decomposed circuit model for the eight-valued engines.
//
// Every netlist gate is expanded into a chain of two-input associative
// bodies (And2/Or2/Xor2) plus explicit Not/Buf nodes, so that set-level
// implication is local and exact per node. The last node of each gate's
// chain is the gate's "head": it carries the original gate's output line,
// is the fault site for that line, and holds the PO/PPO observability
// roles. Node ids are topologically ordered by construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algebra/tables.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"

namespace gdf::alg {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xFFFFFFFFu;

enum class NodeKind : std::uint8_t { Pi, Ppi, And2, Or2, Xor2, Not, Buf };

struct Node {
  NodeKind kind = NodeKind::Buf;
  NodeId in0 = kNoNode;
  NodeId in1 = kNoNode;  ///< kNoNode for unary kinds
  net::GateId origin = net::kNoGate;  ///< set on head nodes only
  std::int32_t pi_index = -1;   ///< position in Netlist::inputs() (Pi only)
  std::int32_t ppi_index = -1;  ///< position in Netlist::dffs() (Ppi only)
  bool is_po = false;           ///< head of a primary-output gate

  bool unary() const { return kind == NodeKind::Not || kind == NodeKind::Buf; }
  bool source() const { return kind == NodeKind::Pi || kind == NodeKind::Ppi; }
};

class AtpgModel {
 public:
  explicit AtpgModel(const net::Netlist& nl);

  const net::Netlist& netlist() const { return *nl_; }

  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  std::span<const NodeId> fanout(NodeId id) const {
    return std::span<const NodeId>(fanout_pool_.data() + fanout_begin_[id],
                                   fanout_begin_[id + 1] - fanout_begin_[id]);
  }

  // Flattened structure-of-arrays view of the node graph — what the hot
  // loops (implication fixpoint, two-frame simulation) walk instead of the
  // AoS `node()` records.
  std::span<const NodeKind> kinds() const { return kind_; }
  std::span<const NodeId> in0s() const { return in0_; }
  std::span<const NodeId> in1s() const { return in1_; }
  /// CSR fanout: readers of `id` are fanout_pool()[fanout_begin()[id] ..
  /// fanout_begin()[id+1]].
  std::span<const std::uint32_t> fanout_begin() const { return fanout_begin_; }
  std::span<const NodeId> fanout_pool() const { return fanout_pool_; }
  /// Parallel to fanout_pool(): which input pins of the reader this edge
  /// feeds (bit 0 = in0, bit 1 = in1) — precomputed so event-driven
  /// engines need one load per edge instead of re-deriving it.
  std::span<const std::uint8_t> fanout_in_bits() const {
    return fanout_in_bits_;
  }

  /// Node completing the function of netlist gate `g`.
  NodeId head_of(net::GateId g) const { return head_[g]; }

  std::span<const NodeId> pis() const { return pi_nodes_; }
  std::span<const NodeId> ppis() const { return ppi_nodes_; }

  /// Head node of the gate driving flip-flop `dff_index`'s data pin — the
  /// pseudo primary output of that flip-flop.
  NodeId ppo_node(std::size_t dff_index) const { return ppo_nodes_[dff_index]; }
  std::span<const NodeId> ppo_nodes() const { return ppo_nodes_; }

  /// PO heads followed by PPO heads, deduplicated.
  std::span<const NodeId> observation_points() const { return obs_; }
  bool is_observation(NodeId id) const { return obs_mask_[id]; }

  /// Minimum node distance to an observation point (large sentinel when
  /// unreachable) — the propagation guidance heuristic.
  int obs_distance(NodeId id) const { return obs_distance_[id]; }

  /// True when some observation point is reachable through `id`'s fanout.
  bool obs_reachable(NodeId id) const { return obs_reach_[id] != 0; }
  /// True when some primary output is reachable through `id`'s fanout —
  /// the only observation kind critical path tracing's PO marks can use.
  bool po_reachable(NodeId id) const { return po_reach_[id] != 0; }

  /// Immediate dominator of `id` toward the observation sinks: the unique
  /// nearest node (other than `id`) that every path from `id` to every
  /// reachable observation point passes through. kNoNode when `id` is
  /// dominated only by the virtual sink (its paths diverge for good, or it
  /// is itself an observation point) or when no observation point is
  /// reachable at all — disambiguate with obs_reachable(). Chains strictly
  /// increase in node id, so idom walks terminate.
  NodeId idom(NodeId id) const { return idom_[id]; }

  /// Flip-flop indices for which `id` serves as the PPI or PPO partner (a
  /// PPO node can serve several flip-flops when fanout is not expanded),
  /// as a CSR so the common no-role case is a two-load check. Shared by
  /// every implication engine built over this model.
  std::span<const std::uint32_t> register_roles(NodeId id) const {
    return std::span<const std::uint32_t>(
        role_pool_.data() + role_begin_[id],
        role_begin_[id + 1] - role_begin_[id]);
  }

  /// Nodes in the transitive fanout of `from` (including `from`): the only
  /// nodes on which a fault at `from` can place a carrier value.
  std::vector<NodeId> carrier_cone(NodeId from) const;

 private:
  NodeId add_node(Node n);

  const net::Netlist* nl_;
  std::vector<Node> nodes_;
  std::vector<NodeKind> kind_;
  std::vector<NodeId> in0_;
  std::vector<NodeId> in1_;
  std::vector<std::uint32_t> fanout_begin_;
  std::vector<NodeId> fanout_pool_;
  std::vector<std::uint8_t> fanout_in_bits_;
  std::vector<NodeId> head_;
  std::vector<NodeId> pi_nodes_;
  std::vector<NodeId> ppi_nodes_;
  std::vector<NodeId> ppo_nodes_;
  std::vector<NodeId> obs_;
  std::vector<bool> obs_mask_;
  std::vector<int> obs_distance_;
  std::vector<std::uint8_t> obs_reach_;
  std::vector<std::uint8_t> po_reach_;
  std::vector<NodeId> idom_;
  std::vector<std::uint32_t> role_begin_;
  std::vector<std::uint32_t> role_pool_;
};

}  // namespace gdf::alg
