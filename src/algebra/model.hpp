// Decomposed circuit model for the eight-valued engines.
//
// Every netlist gate is expanded into a chain of two-input associative
// bodies (And2/Or2/Xor2) plus explicit Not/Buf nodes, so that set-level
// implication is local and exact per node. The last node of each gate's
// chain is the gate's "head": it carries the original gate's output line,
// is the fault site for that line, and holds the PO/PPO observability
// roles. Node ids are topologically ordered by construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algebra/tables.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"

namespace gdf::alg {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xFFFFFFFFu;

enum class NodeKind : std::uint8_t { Pi, Ppi, And2, Or2, Xor2, Not, Buf };

struct Node {
  NodeKind kind = NodeKind::Buf;
  NodeId in0 = kNoNode;
  NodeId in1 = kNoNode;  ///< kNoNode for unary kinds
  net::GateId origin = net::kNoGate;  ///< set on head nodes only
  std::int32_t pi_index = -1;   ///< position in Netlist::inputs() (Pi only)
  std::int32_t ppi_index = -1;  ///< position in Netlist::dffs() (Ppi only)
  bool is_po = false;           ///< head of a primary-output gate

  bool unary() const { return kind == NodeKind::Not || kind == NodeKind::Buf; }
  bool source() const { return kind == NodeKind::Pi || kind == NodeKind::Ppi; }
};

class AtpgModel {
 public:
  explicit AtpgModel(const net::Netlist& nl);

  const net::Netlist& netlist() const { return *nl_; }

  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  std::span<const NodeId> fanout(NodeId id) const {
    return std::span<const NodeId>(fanout_pool_.data() + fanout_begin_[id],
                                   fanout_begin_[id + 1] - fanout_begin_[id]);
  }

  // Flattened structure-of-arrays view of the node graph — what the hot
  // loops (implication fixpoint, two-frame simulation) walk instead of the
  // AoS `node()` records.
  std::span<const NodeKind> kinds() const { return kind_; }
  std::span<const NodeId> in0s() const { return in0_; }
  std::span<const NodeId> in1s() const { return in1_; }
  /// CSR fanout: readers of `id` are fanout_pool()[fanout_begin()[id] ..
  /// fanout_begin()[id+1]].
  std::span<const std::uint32_t> fanout_begin() const { return fanout_begin_; }
  std::span<const NodeId> fanout_pool() const { return fanout_pool_; }

  /// Node completing the function of netlist gate `g`.
  NodeId head_of(net::GateId g) const { return head_[g]; }

  std::span<const NodeId> pis() const { return pi_nodes_; }
  std::span<const NodeId> ppis() const { return ppi_nodes_; }

  /// Head node of the gate driving flip-flop `dff_index`'s data pin — the
  /// pseudo primary output of that flip-flop.
  NodeId ppo_node(std::size_t dff_index) const { return ppo_nodes_[dff_index]; }
  std::span<const NodeId> ppo_nodes() const { return ppo_nodes_; }

  /// PO heads followed by PPO heads, deduplicated.
  std::span<const NodeId> observation_points() const { return obs_; }
  bool is_observation(NodeId id) const { return obs_mask_[id]; }

  /// Minimum node distance to an observation point (large sentinel when
  /// unreachable) — the propagation guidance heuristic.
  int obs_distance(NodeId id) const { return obs_distance_[id]; }

  /// Nodes in the transitive fanout of `from` (including `from`): the only
  /// nodes on which a fault at `from` can place a carrier value.
  std::vector<NodeId> carrier_cone(NodeId from) const;

 private:
  NodeId add_node(Node n);

  const net::Netlist* nl_;
  std::vector<Node> nodes_;
  std::vector<NodeKind> kind_;
  std::vector<NodeId> in0_;
  std::vector<NodeId> in1_;
  std::vector<std::uint32_t> fanout_begin_;
  std::vector<NodeId> fanout_pool_;
  std::vector<NodeId> head_;
  std::vector<NodeId> pi_nodes_;
  std::vector<NodeId> ppi_nodes_;
  std::vector<NodeId> ppo_nodes_;
  std::vector<NodeId> obs_;
  std::vector<bool> obs_mask_;
  std::vector<int> obs_distance_;
};

}  // namespace gdf::alg
