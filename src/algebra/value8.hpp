// The eight-valued two-time-frame logic of TDgen (paper §3).
//
// A value describes one signal across the two local frames: the initial
// frame (applied with a slow clock, fully settled) and the test frame
// (sampled with the fast clock):
//
//   0 / 1   steady, hazard-free
//   R / F   rising / falling transition between the frames
//   0h / 1h steady value that may glitch inside the transition window
//   Rc / Fc transition carrying the fault effect — the delay-fault analogue
//           of D/D' (paper: "they also carry the fault effect")
//
// Hazards are tracked on steady values only: that is exactly the
// distinction robust propagation needs (a falling fault effect tolerates
// only a steady hazard-free 1 beside it; a rising one tolerates any final-1
// waveform). Transitions make no hazard-freedom promise.
#pragma once

#include <cstdint>
#include <string_view>

namespace gdf::alg {

enum class V8 : std::uint8_t {
  Zero = 0,
  One = 1,
  Rise = 2,
  Fall = 3,
  ZeroH = 4,
  OneH = 5,
  RiseC = 6,
  FallC = 7,
};

inline constexpr int kV8Count = 8;

/// "0", "1", "R", "F", "0h", "1h", "Rc", "Fc".
std::string_view v8_name(V8 v);

/// Settled value in the initial (first) frame: 0 or 1.
int v8_initial(V8 v);

/// Sampled value in the test (second) frame of the *good* machine: 0 or 1.
int v8_final(V8 v);

/// True for Rc / Fc.
bool v8_is_carrier(V8 v);

/// True for 0h / 1h (steady with possible hazard).
bool v8_has_hazard(V8 v);

/// True for R / F / Rc / Fc.
bool v8_is_transition(V8 v);

/// Faulty-machine sampled value in the test frame: carriers are late, so
/// Rc samples 0 and Fc samples 1; everything else equals v8_final.
int v8_final_faulty(V8 v);

}  // namespace gdf::alg
