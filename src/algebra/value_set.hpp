// Sets of possible eight-valued assignments, one byte per line.
//
// The ATPG reasons with per-line value sets (after Rajski/Cox, the paper's
// reference [20]): forward implication unions the gate table over member
// pairs, backward implication removes unsupported members. Sets always
// over-approximate the truly reachable values, so "observation set is
// contained in {Rc, Fc}" is a sound test-found criterion and the empty set
// is a definite conflict.
#pragma once

#include <cstdint>
#include <string>

#include "algebra/value8.hpp"

namespace gdf::alg {

using VSet = std::uint8_t;

inline constexpr VSet vset_of(V8 v) {
  return static_cast<VSet>(1u << static_cast<unsigned>(v));
}

inline constexpr VSet kEmptySet = 0;
inline constexpr VSet kFullSet = 0xFF;
/// Legal waveforms at primary and pseudo primary inputs: one clean
/// transition or a steady value; never a hazard, never a carrier.
inline constexpr VSet kPrimaryDomain =
    vset_of(V8::Zero) | vset_of(V8::One) | vset_of(V8::Rise) |
    vset_of(V8::Fall);
inline constexpr VSet kCarrierSet =
    vset_of(V8::RiseC) | vset_of(V8::FallC);
/// Values without a fault effect.
inline constexpr VSet kCleanSet = static_cast<VSet>(~kCarrierSet & 0xFF);

inline bool vset_contains(VSet s, V8 v) { return (s & vset_of(v)) != 0; }
inline bool vset_is_singleton(VSet s) { return s != 0 && (s & (s - 1)) == 0; }
inline int vset_size(VSet s) { return __builtin_popcount(s); }

/// The single member of a singleton set.
V8 vset_only(VSet s);

/// Lowest-indexed member of a non-empty set.
V8 vset_first(VSet s);

/// Bitmask over {0,1} of initial-frame values the set allows
/// (bit0: some member has initial 0; bit1: some member has initial 1).
unsigned vset_initials(VSet s);

/// Bitmask over {0,1} of good-machine final values the set allows.
unsigned vset_finals(VSet s);

/// Members whose initial value is in the {0,1}-bitmask `allowed`.
VSet vset_with_initial_in(VSet s, unsigned allowed);

/// Members whose good-machine final value is in the bitmask `allowed`.
VSet vset_with_final_in(VSet s, unsigned allowed);

/// "{0,R,Fc}" rendering for diagnostics.
std::string vset_to_string(VSet s);

}  // namespace gdf::alg
