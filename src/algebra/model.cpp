#include "algebra/model.hpp"

#include <deque>
#include <limits>

#include "base/error.hpp"

namespace gdf::alg {

namespace {
constexpr int kUnreachable = std::numeric_limits<int>::max() / 2;

NodeKind body_kind(net::GateType type) {
  using net::GateType;
  switch (type) {
    case GateType::And:
    case GateType::Nand:
      return NodeKind::And2;
    case GateType::Or:
    case GateType::Nor:
      return NodeKind::Or2;
    case GateType::Xor:
    case GateType::Xnor:
      return NodeKind::Xor2;
    default:
      GDF_ASSERT(false, "body_kind on non-foldable gate");
      return NodeKind::And2;
  }
}
}  // namespace

NodeId AtpgModel::add_node(Node n) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  GDF_ASSERT(n.in0 == kNoNode || n.in0 < id, "node ids must be topological");
  GDF_ASSERT(n.in1 == kNoNode || n.in1 < id, "node ids must be topological");
  nodes_.push_back(n);
  return id;
}

AtpgModel::AtpgModel(const net::Netlist& nl) : nl_(&nl) {
  head_.assign(nl.size(), kNoNode);
  pi_nodes_.assign(nl.inputs().size(), kNoNode);
  ppi_nodes_.assign(nl.dffs().size(), kNoNode);

  const net::Levelization lev = net::levelize(nl);
  for (const net::GateId g : lev.order) {
    const net::Gate& gate = nl.gate(g);
    using net::GateType;
    switch (gate.type) {
      case GateType::Input: {
        Node n;
        n.kind = NodeKind::Pi;
        n.origin = g;
        head_[g] = add_node(n);
        break;
      }
      case GateType::Dff: {
        Node n;
        n.kind = NodeKind::Ppi;
        n.origin = g;
        head_[g] = add_node(n);
        break;
      }
      case GateType::Buf:
      case GateType::Not: {
        Node n;
        n.kind =
            gate.type == GateType::Buf ? NodeKind::Buf : NodeKind::Not;
        n.in0 = head_[gate.fanin[0]];
        GDF_ASSERT(n.in0 != kNoNode, "driver not yet decomposed");
        n.origin = g;
        head_[g] = add_node(n);
        break;
      }
      default: {
        // Foldable body: left-deep chain of two-input nodes.
        const NodeKind kind = body_kind(gate.type);
        NodeId acc = head_[gate.fanin[0]];
        GDF_ASSERT(acc != kNoNode, "driver not yet decomposed");
        for (std::size_t i = 1; i < gate.fanin.size(); ++i) {
          Node n;
          n.kind = kind;
          n.in0 = acc;
          n.in1 = head_[gate.fanin[i]];
          GDF_ASSERT(n.in1 != kNoNode, "driver not yet decomposed");
          acc = add_node(n);
        }
        if (net::is_inverting(gate.type)) {
          Node n;
          n.kind = NodeKind::Not;
          n.in0 = acc;
          acc = add_node(n);
        } else if (gate.fanin.size() == 1) {
          // Single-input AND/OR degenerates to a buffer; the head must
          // still be a fresh node so the fault site is this gate's output,
          // not its driver's.
          Node n;
          n.kind = NodeKind::Buf;
          n.in0 = acc;
          acc = add_node(n);
        }
        nodes_[acc].origin = g;
        head_[g] = acc;
        break;
      }
    }
  }

  // Interface roles.
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    const NodeId id = head_[nl.inputs()[i]];
    nodes_[id].pi_index = static_cast<std::int32_t>(i);
    pi_nodes_[i] = id;
  }
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    const NodeId id = head_[nl.dffs()[i]];
    nodes_[id].ppi_index = static_cast<std::int32_t>(i);
    ppi_nodes_[i] = id;
  }
  ppo_nodes_.reserve(nl.dffs().size());
  for (const net::GateId dff : nl.dffs()) {
    ppo_nodes_.push_back(head_[nl.gate(dff).fanin[0]]);
  }

  obs_mask_.assign(nodes_.size(), false);
  for (const net::GateId po : nl.outputs()) {
    nodes_[head_[po]].is_po = true;
    if (!obs_mask_[head_[po]]) {
      obs_mask_[head_[po]] = true;
      obs_.push_back(head_[po]);
    }
  }
  for (const NodeId ppo : ppo_nodes_) {
    if (!obs_mask_[ppo]) {
      obs_mask_[ppo] = true;
      obs_.push_back(ppo);
    }
  }

  // Flattened SoA mirrors of the node records plus the CSR fanout — the
  // form the hot loops walk. Reader lists come out sorted ascending, the
  // order incremental construction used to produce.
  kind_.reserve(nodes_.size());
  in0_.reserve(nodes_.size());
  in1_.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    kind_.push_back(n.kind);
    in0_.push_back(n.in0);
    in1_.push_back(n.in1);
  }
  fanout_begin_.assign(nodes_.size() + 1, 0);
  for (const Node& n : nodes_) {
    if (n.in0 != kNoNode) {
      ++fanout_begin_[n.in0 + 1];
    }
    if (n.in1 != kNoNode) {
      ++fanout_begin_[n.in1 + 1];
    }
  }
  for (std::size_t i = 1; i < fanout_begin_.size(); ++i) {
    fanout_begin_[i] += fanout_begin_[i - 1];
  }
  fanout_pool_.resize(fanout_begin_.back());
  fanout_in_bits_.resize(fanout_begin_.back());
  std::vector<std::uint32_t> cursor(fanout_begin_.begin(),
                                    fanout_begin_.end() - 1);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.in0 != kNoNode) {
      fanout_in_bits_[cursor[n.in0]] = 1;
      fanout_pool_[cursor[n.in0]++] = id;
    }
    if (n.in1 != kNoNode) {
      fanout_in_bits_[cursor[n.in1]] = 2;
      fanout_pool_[cursor[n.in1]++] = id;
    }
  }

  // Backward BFS from observation points for the distance heuristic.
  obs_distance_.assign(nodes_.size(), kUnreachable);
  std::deque<NodeId> work;
  for (const NodeId id : obs_) {
    obs_distance_[id] = 0;
    work.push_back(id);
  }
  while (!work.empty()) {
    const NodeId id = work.front();
    work.pop_front();
    const Node& n = nodes_[id];
    for (const NodeId input : {n.in0, n.in1}) {
      if (input != kNoNode && obs_distance_[input] > obs_distance_[id] + 1) {
        obs_distance_[input] = obs_distance_[id] + 1;
        work.push_back(input);
      }
    }
  }

  // Reachability masks and immediate dominators toward the observation
  // sinks, in one reverse-topological pass. The dominator relation is over
  // the fanout DAG extended with a virtual sink T fed by every observation
  // point; kNoNode plays the role of T (conveniently the largest id, so
  // the standard two-finger intersection walk works unchanged). Node ids
  // are topological, so when `id` is processed every reader has its final
  // idom.
  obs_reach_.assign(nodes_.size(), 0);
  po_reach_.assign(nodes_.size(), 0);
  idom_.assign(nodes_.size(), kNoNode);
  const auto intersect = [this](NodeId a, NodeId b) {
    while (a != b) {
      if (a < b) {
        a = idom_[a];
      } else {
        b = idom_[b];
      }
    }
    return a;
  };
  for (NodeId id = static_cast<NodeId>(nodes_.size()); id-- > 0;) {
    bool reach = obs_mask_[id];
    bool po = nodes_[id].is_po;
    // An observation point's own edge to T pins its idom at T (kNoNode);
    // otherwise start undefined and fold the reachable readers in.
    bool have = reach;
    NodeId cand = kNoNode;
    for (const NodeId reader : fanout(id)) {
      if (!obs_reach_[reader]) {
        continue;
      }
      reach = true;
      po = po || po_reach_[reader] != 0;
      cand = have ? intersect(cand, reader) : reader;
      have = true;
    }
    obs_reach_[id] = reach ? 1 : 0;
    po_reach_[id] = po ? 1 : 0;
    idom_[id] = reach ? cand : kNoNode;
  }

  // Register-role CSR: dff indices for which a node is the PPI / PPO
  // partner.
  std::vector<std::vector<std::uint32_t>> roles(nodes_.size());
  for (std::size_t k = 0; k < ppi_nodes_.size(); ++k) {
    roles[ppi_nodes_[k]].push_back(static_cast<std::uint32_t>(k));
    roles[ppo_nodes_[k]].push_back(static_cast<std::uint32_t>(k));
  }
  role_begin_.assign(nodes_.size() + 1, 0);
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    role_begin_[id + 1] =
        role_begin_[id] + static_cast<std::uint32_t>(roles[id].size());
  }
  role_pool_.reserve(role_begin_.back());
  for (const auto& r : roles) {
    role_pool_.insert(role_pool_.end(), r.begin(), r.end());
  }
}

std::vector<NodeId> AtpgModel::carrier_cone(NodeId from) const {
  std::vector<NodeId> cone;
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<NodeId> work{from};
  seen[from] = true;
  while (!work.empty()) {
    const NodeId id = work.front();
    work.pop_front();
    cone.push_back(id);
    for (const NodeId reader : fanout(id)) {
      if (!seen[reader]) {
        seen[reader] = true;
        work.push_back(reader);
      }
    }
  }
  return cone;
}

}  // namespace gdf::alg
