#include "algebra/frame_sim.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace gdf::alg {

VSet vset_primary_from_frames(int initial_bit, int final_bit) {
  VSet out = 0;
  for (const V8 v : {V8::Zero, V8::One, V8::Rise, V8::Fall}) {
    const bool init_ok = initial_bit < 0 || v8_initial(v) == initial_bit;
    const bool final_ok = final_bit < 0 || v8_final(v) == final_bit;
    if (init_ok && final_ok) {
      out |= vset_of(v);
    }
  }
  return out;
}

namespace {

/// One non-source node evaluation over already-settled input sets. `b` is
/// ignored for unary kinds.
inline VSet eval_node(const DelayAlgebra& algebra, NodeKind kind, VSet a,
                      VSet b) {
  switch (kind) {
    case NodeKind::Buf:
      return a;
    case NodeKind::Not:
      return algebra.set_not(a);
    case NodeKind::And2:
      return algebra.set_fwd(Op2::And, a, b);
    case NodeKind::Or2:
      return algebra.set_fwd(Op2::Or, a, b);
    case NodeKind::Xor2:
      return algebra.set_fwd(Op2::Xor, a, b);
    case NodeKind::Pi:
    case NodeKind::Ppi:
      break;
  }
  return kEmptySet;
}

}  // namespace

void TwoFrameSim::replay_cone(NodeId from,
                              std::vector<VSet>& node_sets) const {
  const AtpgModel& m = *model_;
  const NodeKind* kinds = m.kinds().data();
  const NodeId* in0s = m.in0s().data();
  const NodeId* in1s = m.in1s().data();
  VSet* sets = node_sets.data();
  work_.begin(m.node_count());
  for (const NodeId reader : m.fanout(from)) {
    work_.push(reader);
  }
  // Scheduled ids are always readers of changed nodes — never sources —
  // and pop ascending, so every input is final when its consumer
  // evaluates. The wave dies wherever a value is unchanged.
  NodeId id;
  while (work_.pop(&id)) {
    const NodeId in0 = in0s[id];
    const NodeId in1 = in1s[id];
    const VSet out = eval_node(*algebra_, kinds[id], sets[in0],
                               in1 != kNoNode ? sets[in1] : kEmptySet);
    if (out == sets[id]) {
      continue;
    }
    sets[id] = out;
    for (const NodeId reader : m.fanout(id)) {
      work_.push(reader);
    }
  }
}

void TwoFrameSim::run_forced(const TwoFrameStimulus& stimulus, NodeId forced,
                             VSet forced_set,
                             std::vector<VSet>& node_sets) const {
  run(stimulus, nullptr, node_sets);
  // Re-evaluate the forced node's cone with the overridden value. Nodes
  // outside the cone keep their fault-free sets.
  node_sets[forced] = forced_set;
  replay_cone(forced, node_sets);
}

void TwoFrameSim::run_injected(std::span<const VSet> baseline,
                               const FaultSpec& fault,
                               std::vector<VSet>& node_sets) const {
  GDF_ASSERT(baseline.size() == model_->node_count(),
             "baseline size mismatch");
  node_sets.assign(baseline.begin(), baseline.end());
  const VSet transformed =
      DelayAlgebra::site_transform(baseline[fault.site], fault.slow_to_rise);
  if (transformed == baseline[fault.site]) {
    return;  // no activating transition at the site: the cone is unchanged
  }
  node_sets[fault.site] = transformed;
  replay_cone(fault.site, node_sets);
}

void TwoFrameSim::rerun_sources(
    std::span<const std::pair<NodeId, VSet>> changed, const FaultSpec* fault,
    std::vector<VSet>& node_sets) const {
  const AtpgModel& m = *model_;
  GDF_ASSERT(node_sets.size() == m.node_count(), "node set size mismatch");
  const NodeKind* kinds = m.kinds().data();
  const NodeId* in0s = m.in0s().data();
  const NodeId* in1s = m.in1s().data();
  VSet* sets = node_sets.data();
  const NodeId site = fault != nullptr ? fault->site : kNoNode;
  work_.begin(m.node_count());
  bool any = false;
  for (const auto& [src, raw] : changed) {
    VSet v = static_cast<VSet>(raw & kPrimaryDomain);
    if (src == site) {
      v = DelayAlgebra::site_transform(v, fault->slow_to_rise);
    }
    if (v != sets[src]) {
      sets[src] = v;
      for (const NodeId reader : m.fanout(src)) {
        work_.push(reader);
      }
      any = true;
    }
  }
  if (!any) {
    return;
  }
  NodeId id;
  while (work_.pop(&id)) {
    const NodeId in0 = in0s[id];
    const NodeId in1 = in1s[id];
    VSet out = eval_node(*algebra_, kinds[id], sets[in0],
                         in1 != kNoNode ? sets[in1] : kEmptySet);
    if (id == site) {
      out = DelayAlgebra::site_transform(out, fault->slow_to_rise);
    }
    if (out == sets[id]) {
      continue;
    }
    sets[id] = out;
    for (const NodeId reader : m.fanout(id)) {
      work_.push(reader);
    }
  }
}

std::uint64_t TwoFrameSim::forced_sweep(std::span<const VSet> baseline,
                                        std::span<const ForcedLane> lanes,
                                        std::span<VSet> stop_values) const {
  const std::size_t n_nodes = model_->node_count();
  const unsigned words = lane_words_;
  GDF_ASSERT(lanes.size() <= 8u * words,
             "too many scenarios for this packed sweep capacity");
  GDF_ASSERT(baseline.size() == n_nodes, "baseline size mismatch");

  // One byte lane per scenario, `words` packed 64-bit words per node;
  // lane_dirty_[id] is the lane bitmask of scenarios whose value at `id`
  // differs from the shared baseline. Clean lanes read the baseline and
  // all per-node lane state is epoch-stamped, so a sweep touches only the
  // union of the (possibly truncated) cones.
  if (packed_.size() < n_nodes * words) {
    packed_.resize(n_nodes * words, 0);
    lane_dirty_.resize(n_nodes, 0);
    lane_forced_.resize(n_nodes, 0);
    lane_stamp_.resize(n_nodes, 0);
  }
  ++lane_epoch_;
  const auto touch = [&](NodeId id) {
    if (lane_stamp_[id] != lane_epoch_) {
      lane_stamp_[id] = lane_epoch_;
      for (unsigned w = 0; w < words; ++w) {
        packed_[id * words + w] = 0;
      }
      lane_dirty_[id] = 0;
      lane_forced_[id] = 0;
    }
  };
  const auto dirty_of = [&](NodeId id) -> std::uint64_t {
    return lane_stamp_[id] == lane_epoch_ ? lane_dirty_[id] : 0;
  };
  const auto packed_get = [&](NodeId id, unsigned lane) -> VSet {
    return static_cast<VSet>(packed_[id * words + lane / 8] >>
                             (8 * (lane % 8)));
  };
  const auto packed_put = [&](NodeId id, unsigned lane, VSet v) {
    std::uint64_t& word = packed_[id * words + lane / 8];
    const unsigned shift = 8 * (lane % 8);
    word = (word & ~(std::uint64_t{0xFF} << shift)) |
           (std::uint64_t{v} << shift);
  };
  work_.begin(n_nodes);
  bool any_stop = false;
  std::uint64_t stop_lanes = 0;
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const ForcedLane& lane = lanes[i];
    GDF_ASSERT(lane.node < n_nodes, "forced node out of range");
    touch(lane.node);
    packed_put(lane.node, static_cast<unsigned>(i), lane.set);
    lane_dirty_[lane.node] |= std::uint64_t{1} << i;
    lane_forced_[lane.node] |= std::uint64_t{1} << i;
    for (const NodeId reader : model_->fanout(lane.node)) {
      work_.push(reader);
    }
    if (lane.stop != kNoNode) {
      GDF_ASSERT(i < stop_values.size(), "missing stop_values entry");
      any_stop = true;
      stop_lanes |= std::uint64_t{1} << i;
      stop_values[i] = baseline[lane.stop];
    }
  }
  const auto lane_value = [&](NodeId id, unsigned lane) -> VSet {
    if ((dirty_of(id) >> lane & 1u) != 0) {
      return packed_get(id, lane);
    }
    return baseline[id];
  };
  NodeId id;
  while (work_.pop(&id)) {
    const Node& n = model_->node(id);
    const std::uint64_t in_dirty =
        dirty_of(n.in0) | (n.in1 != kNoNode ? dirty_of(n.in1) : 0);
    if (in_dirty == 0) {
      continue;  // the inputs' waves died before reaching this reader
    }
    touch(id);
    std::uint64_t affected = in_dirty & ~lane_forced_[id];
    while (affected != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctzll(affected));
      affected &= affected - 1;
      const VSet out = eval_node(
          *algebra_, n.kind, lane_value(n.in0, lane),
          n.in1 != kNoNode ? lane_value(n.in1, lane) : kEmptySet);
      if (out != baseline[id]) {
        packed_put(id, lane, out);
        lane_dirty_[id] |= std::uint64_t{1} << lane;
      }
    }
    // Truncated lanes hand their value over at the stop node and go quiet:
    // every path to an observation point passes it, so nothing downstream
    // of it can matter to the caller.
    if (any_stop) {
      std::uint64_t cand = lane_dirty_[id] & stop_lanes;
      while (cand != 0) {
        const unsigned i = static_cast<unsigned>(__builtin_ctzll(cand));
        cand &= cand - 1;
        if (lanes[i].stop == id) {
          stop_values[i] = packed_get(id, i);
          lane_dirty_[id] &= ~(std::uint64_t{1} << i);
        }
      }
    }
    if (lane_dirty_[id] != 0) {
      for (const NodeId reader : model_->fanout(id)) {
        work_.push(reader);
      }
    }
  }

  // A fault-free baseline is never carrier-only, so only lanes that dirtied
  // a PO observation point can observe. Truncated lanes answer at their
  // stop node instead and are filtered out of the verdict below (when the
  // stop is a true dominator their wave cannot reach a PO anyway).
  std::uint64_t mask = 0;
  for (const NodeId obs : model_->observation_points()) {
    if (!model_->node(obs).is_po) {
      continue;
    }
    std::uint64_t d = dirty_of(obs);
    while (d != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctzll(d));
      d &= d - 1;
      const VSet s = packed_get(obs, lane);
      if (s != kEmptySet && (s & ~kCarrierSet) == 0) {
        mask |= std::uint64_t{1} << lane;
      }
    }
  }
  return mask & ~stop_lanes;
}

void TwoFrameSim::run(const TwoFrameStimulus& stimulus,
                      const FaultSpec* fault,
                      std::vector<VSet>& node_sets) const {
  const AtpgModel& m = *model_;
  GDF_ASSERT(stimulus.pi_sets.size() == m.pis().size(),
             "PI stimulus size mismatch");
  GDF_ASSERT(stimulus.ppi_sets.size() == m.ppis().size(),
             "PPI stimulus size mismatch");
  const std::size_t n_nodes = m.node_count();
  node_sets.assign(n_nodes, kEmptySet);
  for (std::size_t i = 0; i < m.pis().size(); ++i) {
    node_sets[m.pis()[i]] =
        static_cast<VSet>(stimulus.pi_sets[i] & kPrimaryDomain);
  }
  for (std::size_t i = 0; i < m.ppis().size(); ++i) {
    node_sets[m.ppis()[i]] =
        static_cast<VSet>(stimulus.ppi_sets[i] & kPrimaryDomain);
  }
  // Node ids are topological, so one SoA sweep settles the whole model.
  const NodeKind* kinds = m.kinds().data();
  const NodeId* in0s = m.in0s().data();
  const NodeId* in1s = m.in1s().data();
  VSet* sets = node_sets.data();
  const NodeId site = fault != nullptr ? fault->site : kNoNode;
  for (NodeId id = 0; id < n_nodes; ++id) {
    const NodeKind kind = kinds[id];
    if (kind != NodeKind::Pi && kind != NodeKind::Ppi) {
      const NodeId in1 = in1s[id];
      sets[id] = eval_node(*algebra_, kind, sets[in0s[id]],
                           in1 != kNoNode ? sets[in1] : kEmptySet);
    }
    if (id == site) {
      sets[id] = DelayAlgebra::site_transform(sets[id], fault->slow_to_rise);
    }
  }
}

bool TwoFrameSim::guaranteed_observation(const TwoFrameStimulus& stimulus,
                                         const FaultSpec& fault,
                                         std::vector<NodeId>* where) const {
  std::vector<VSet> node_sets;
  run(stimulus, &fault, node_sets);
  bool observed = false;
  for (const NodeId obs : model_->observation_points()) {
    const VSet s = node_sets[obs];
    if (s != kEmptySet && (s & ~kCarrierSet) == 0) {
      observed = true;
      if (where != nullptr) {
        where->push_back(obs);
      }
    }
  }
  return observed;
}

}  // namespace gdf::alg
