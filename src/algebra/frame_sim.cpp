#include "algebra/frame_sim.hpp"

#include "base/error.hpp"

namespace gdf::alg {

VSet vset_primary_from_frames(int initial_bit, int final_bit) {
  VSet out = 0;
  for (const V8 v : {V8::Zero, V8::One, V8::Rise, V8::Fall}) {
    const bool init_ok = initial_bit < 0 || v8_initial(v) == initial_bit;
    const bool final_ok = final_bit < 0 || v8_final(v) == final_bit;
    if (init_ok && final_ok) {
      out |= vset_of(v);
    }
  }
  return out;
}

void TwoFrameSim::run_forced(const TwoFrameStimulus& stimulus, NodeId forced,
                             VSet forced_set,
                             std::vector<VSet>& node_sets) const {
  run(stimulus, nullptr, node_sets);
  // Re-evaluate the forced node's cone with the overridden value. Nodes
  // outside the cone keep their fault-free sets.
  node_sets[forced] = forced_set;
  std::vector<bool> dirty(model_->node_count(), false);
  dirty[forced] = true;
  for (NodeId id = forced + 1; id < model_->node_count(); ++id) {
    const Node& n = model_->node(id);
    if (n.source()) {
      continue;
    }
    const bool affected = dirty[n.in0] ||
                          (n.in1 != kNoNode && dirty[n.in1]);
    if (!affected) {
      continue;
    }
    dirty[id] = true;
    switch (n.kind) {
      case NodeKind::Buf:
        node_sets[id] = node_sets[n.in0];
        break;
      case NodeKind::Not:
        node_sets[id] = algebra_->set_not(node_sets[n.in0]);
        break;
      case NodeKind::And2:
        node_sets[id] =
            algebra_->set_fwd(Op2::And, node_sets[n.in0], node_sets[n.in1]);
        break;
      case NodeKind::Or2:
        node_sets[id] =
            algebra_->set_fwd(Op2::Or, node_sets[n.in0], node_sets[n.in1]);
        break;
      case NodeKind::Xor2:
        node_sets[id] =
            algebra_->set_fwd(Op2::Xor, node_sets[n.in0], node_sets[n.in1]);
        break;
      case NodeKind::Pi:
      case NodeKind::Ppi:
        break;
    }
  }
}

void TwoFrameSim::run(const TwoFrameStimulus& stimulus,
                      const FaultSpec* fault,
                      std::vector<VSet>& node_sets) const {
  const AtpgModel& m = *model_;
  GDF_ASSERT(stimulus.pi_sets.size() == m.pis().size(),
             "PI stimulus size mismatch");
  GDF_ASSERT(stimulus.ppi_sets.size() == m.ppis().size(),
             "PPI stimulus size mismatch");
  node_sets.assign(m.node_count(), kEmptySet);
  for (std::size_t i = 0; i < m.pis().size(); ++i) {
    node_sets[m.pis()[i]] =
        static_cast<VSet>(stimulus.pi_sets[i] & kPrimaryDomain);
  }
  for (std::size_t i = 0; i < m.ppis().size(); ++i) {
    node_sets[m.ppis()[i]] =
        static_cast<VSet>(stimulus.ppi_sets[i] & kPrimaryDomain);
  }
  for (NodeId id = 0; id < m.node_count(); ++id) {
    const Node& n = m.node(id);
    switch (n.kind) {
      case NodeKind::Pi:
      case NodeKind::Ppi:
        break;
      case NodeKind::Buf:
        node_sets[id] = node_sets[n.in0];
        break;
      case NodeKind::Not:
        node_sets[id] = algebra_->set_not(node_sets[n.in0]);
        break;
      case NodeKind::And2:
        node_sets[id] =
            algebra_->set_fwd(Op2::And, node_sets[n.in0], node_sets[n.in1]);
        break;
      case NodeKind::Or2:
        node_sets[id] =
            algebra_->set_fwd(Op2::Or, node_sets[n.in0], node_sets[n.in1]);
        break;
      case NodeKind::Xor2:
        node_sets[id] =
            algebra_->set_fwd(Op2::Xor, node_sets[n.in0], node_sets[n.in1]);
        break;
    }
    if (fault != nullptr && fault->site == id) {
      node_sets[id] =
          DelayAlgebra::site_transform(node_sets[id], fault->slow_to_rise);
    }
  }
}

bool TwoFrameSim::guaranteed_observation(const TwoFrameStimulus& stimulus,
                                         const FaultSpec& fault,
                                         std::vector<NodeId>* where) const {
  std::vector<VSet> node_sets;
  run(stimulus, &fault, node_sets);
  bool observed = false;
  for (const NodeId obs : model_->observation_points()) {
    const VSet s = node_sets[obs];
    if (s != kEmptySet && (s & ~kCarrierSet) == 0) {
      observed = true;
      if (where != nullptr) {
        where->push_back(obs);
      }
    }
  }
  return observed;
}

}  // namespace gdf::alg
