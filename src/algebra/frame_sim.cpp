#include "algebra/frame_sim.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace gdf::alg {

VSet vset_primary_from_frames(int initial_bit, int final_bit) {
  VSet out = 0;
  for (const V8 v : {V8::Zero, V8::One, V8::Rise, V8::Fall}) {
    const bool init_ok = initial_bit < 0 || v8_initial(v) == initial_bit;
    const bool final_ok = final_bit < 0 || v8_final(v) == final_bit;
    if (init_ok && final_ok) {
      out |= vset_of(v);
    }
  }
  return out;
}

namespace {

/// One non-source node evaluation over already-settled input sets. `b` is
/// ignored for unary kinds.
inline VSet eval_node(const DelayAlgebra& algebra, NodeKind kind, VSet a,
                      VSet b) {
  switch (kind) {
    case NodeKind::Buf:
      return a;
    case NodeKind::Not:
      return algebra.set_not(a);
    case NodeKind::And2:
      return algebra.set_fwd(Op2::And, a, b);
    case NodeKind::Or2:
      return algebra.set_fwd(Op2::Or, a, b);
    case NodeKind::Xor2:
      return algebra.set_fwd(Op2::Xor, a, b);
    case NodeKind::Pi:
    case NodeKind::Ppi:
      break;
  }
  return kEmptySet;
}

}  // namespace

void TwoFrameSim::replay_cone(NodeId from,
                              std::vector<VSet>& node_sets) const {
  const AtpgModel& m = *model_;
  const std::size_t n_nodes = m.node_count();
  const NodeKind* kinds = m.kinds().data();
  const NodeId* in0s = m.in0s().data();
  const NodeId* in1s = m.in1s().data();
  VSet* sets = node_sets.data();
  dirty_scratch_.assign(n_nodes, 0);
  std::uint8_t* dirty = dirty_scratch_.data();
  dirty[from] = 1;
  for (NodeId id = from + 1; id < n_nodes; ++id) {
    const NodeKind kind = kinds[id];
    if (kind == NodeKind::Pi || kind == NodeKind::Ppi) {
      continue;
    }
    const NodeId in0 = in0s[id];
    const NodeId in1 = in1s[id];
    const bool affected =
        dirty[in0] != 0 || (in1 != kNoNode && dirty[in1] != 0);
    if (!affected) {
      continue;
    }
    dirty[id] = 1;
    sets[id] = eval_node(*algebra_, kind, sets[in0],
                         in1 != kNoNode ? sets[in1] : kEmptySet);
  }
}

void TwoFrameSim::run_forced(const TwoFrameStimulus& stimulus, NodeId forced,
                             VSet forced_set,
                             std::vector<VSet>& node_sets) const {
  run(stimulus, nullptr, node_sets);
  // Re-evaluate the forced node's cone with the overridden value. Nodes
  // outside the cone keep their fault-free sets.
  node_sets[forced] = forced_set;
  replay_cone(forced, node_sets);
}

void TwoFrameSim::run_injected(std::span<const VSet> baseline,
                               const FaultSpec& fault,
                               std::vector<VSet>& node_sets) const {
  GDF_ASSERT(baseline.size() == model_->node_count(),
             "baseline size mismatch");
  node_sets.assign(baseline.begin(), baseline.end());
  const VSet transformed =
      DelayAlgebra::site_transform(baseline[fault.site], fault.slow_to_rise);
  if (transformed == baseline[fault.site]) {
    return;  // no activating transition at the site: the cone is unchanged
  }
  node_sets[fault.site] = transformed;
  replay_cone(fault.site, node_sets);
}

void TwoFrameSim::rerun_sources(
    std::span<const std::pair<NodeId, VSet>> changed, const FaultSpec* fault,
    std::vector<VSet>& node_sets) const {
  const AtpgModel& m = *model_;
  const std::size_t n_nodes = m.node_count();
  GDF_ASSERT(node_sets.size() == n_nodes, "node set size mismatch");
  const NodeKind* kinds = m.kinds().data();
  const NodeId* in0s = m.in0s().data();
  const NodeId* in1s = m.in1s().data();
  VSet* sets = node_sets.data();
  const NodeId site = fault != nullptr ? fault->site : kNoNode;
  dirty_scratch_.assign(n_nodes, 0);
  std::uint8_t* dirty = dirty_scratch_.data();
  NodeId first = static_cast<NodeId>(n_nodes);
  for (const auto& [src, raw] : changed) {
    VSet v = static_cast<VSet>(raw & kPrimaryDomain);
    if (src == site) {
      v = DelayAlgebra::site_transform(v, fault->slow_to_rise);
    }
    if (v != sets[src]) {
      sets[src] = v;
      dirty[src] = 1;
      first = std::min(first, src);
    }
  }
  if (first == n_nodes) {
    return;
  }
  for (NodeId id = first + 1; id < n_nodes; ++id) {
    const NodeKind kind = kinds[id];
    if (kind == NodeKind::Pi || kind == NodeKind::Ppi) {
      continue;
    }
    const NodeId in0 = in0s[id];
    const NodeId in1 = in1s[id];
    if (!dirty[in0] && (in1 == kNoNode || !dirty[in1])) {
      continue;
    }
    VSet out = eval_node(*algebra_, kind, sets[in0],
                         in1 != kNoNode ? sets[in1] : kEmptySet);
    if (id == site) {
      out = DelayAlgebra::site_transform(out, fault->slow_to_rise);
    }
    if (out != sets[id]) {
      sets[id] = out;
      dirty[id] = 1;
    }
  }
}

unsigned TwoFrameSim::forced_po_carrier_mask(
    std::span<const VSet> baseline,
    std::span<const ForcedLane> lanes) const {
  const std::size_t n_nodes = model_->node_count();
  GDF_ASSERT(lanes.size() <= 8, "at most 8 scenarios per packed sweep");
  GDF_ASSERT(baseline.size() == n_nodes, "baseline size mismatch");

  // One byte lane per scenario; dirty[id] is the lane bitmask of scenarios
  // whose value at `id` differs from the shared baseline. Clean lanes read
  // the baseline, so the sweep touches only the union of the cones. The
  // buffers persist across calls (one sweep per stem group).
  packed_scratch_.assign(n_nodes, 0);
  dirty_scratch_.assign(n_nodes, 0);
  forced_scratch_.assign(n_nodes, 0);
  std::uint64_t* packed = packed_scratch_.data();
  std::uint8_t* dirty = dirty_scratch_.data();
  std::uint8_t* forced = forced_scratch_.data();
  NodeId first = static_cast<NodeId>(n_nodes);
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const ForcedLane& lane = lanes[i];
    GDF_ASSERT(lane.node < n_nodes, "forced node out of range");
    packed[lane.node] |= std::uint64_t{lane.set} << (8 * i);
    dirty[lane.node] = static_cast<std::uint8_t>(dirty[lane.node] | 1u << i);
    forced[lane.node] = static_cast<std::uint8_t>(forced[lane.node] | 1u << i);
    first = std::min(first, lane.node);
  }
  const auto lane_value = [&](NodeId id, unsigned lane) -> VSet {
    if ((dirty[id] >> lane & 1u) != 0) {
      return static_cast<VSet>(packed[id] >> (8 * lane));
    }
    return baseline[id];
  };
  for (NodeId id = first + 1; id < n_nodes; ++id) {
    const Node& n = model_->node(id);
    if (n.source()) {
      continue;
    }
    std::uint8_t affected = dirty[n.in0];
    if (n.in1 != kNoNode) {
      affected = static_cast<std::uint8_t>(affected | dirty[n.in1]);
    }
    affected = static_cast<std::uint8_t>(affected & ~forced[id]);
    while (affected != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(affected));
      affected = static_cast<std::uint8_t>(affected & (affected - 1));
      const VSet out = eval_node(
          *algebra_, n.kind, lane_value(n.in0, lane),
          n.in1 != kNoNode ? lane_value(n.in1, lane) : kEmptySet);
      if (out != baseline[id]) {
        packed[id] = (packed[id] & ~(std::uint64_t{0xFF} << (8 * lane))) |
                     (std::uint64_t{out} << (8 * lane));
        dirty[id] = static_cast<std::uint8_t>(dirty[id] | 1u << lane);
      }
    }
  }

  // A fault-free baseline is never carrier-only, so only lanes that dirtied
  // a PO observation point can observe.
  unsigned mask = 0;
  for (const NodeId obs : model_->observation_points()) {
    if (!model_->node(obs).is_po) {
      continue;
    }
    std::uint8_t d = dirty[obs];
    while (d != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(d));
      d = static_cast<std::uint8_t>(d & (d - 1));
      const VSet s = static_cast<VSet>(packed[obs] >> (8 * lane));
      if (s != kEmptySet && (s & ~kCarrierSet) == 0) {
        mask |= 1u << lane;
      }
    }
  }
  return mask;
}

void TwoFrameSim::run(const TwoFrameStimulus& stimulus,
                      const FaultSpec* fault,
                      std::vector<VSet>& node_sets) const {
  const AtpgModel& m = *model_;
  GDF_ASSERT(stimulus.pi_sets.size() == m.pis().size(),
             "PI stimulus size mismatch");
  GDF_ASSERT(stimulus.ppi_sets.size() == m.ppis().size(),
             "PPI stimulus size mismatch");
  const std::size_t n_nodes = m.node_count();
  node_sets.assign(n_nodes, kEmptySet);
  for (std::size_t i = 0; i < m.pis().size(); ++i) {
    node_sets[m.pis()[i]] =
        static_cast<VSet>(stimulus.pi_sets[i] & kPrimaryDomain);
  }
  for (std::size_t i = 0; i < m.ppis().size(); ++i) {
    node_sets[m.ppis()[i]] =
        static_cast<VSet>(stimulus.ppi_sets[i] & kPrimaryDomain);
  }
  // Node ids are topological, so one SoA sweep settles the whole model.
  const NodeKind* kinds = m.kinds().data();
  const NodeId* in0s = m.in0s().data();
  const NodeId* in1s = m.in1s().data();
  VSet* sets = node_sets.data();
  const NodeId site = fault != nullptr ? fault->site : kNoNode;
  for (NodeId id = 0; id < n_nodes; ++id) {
    const NodeKind kind = kinds[id];
    if (kind != NodeKind::Pi && kind != NodeKind::Ppi) {
      const NodeId in1 = in1s[id];
      sets[id] = eval_node(*algebra_, kind, sets[in0s[id]],
                           in1 != kNoNode ? sets[in1] : kEmptySet);
    }
    if (id == site) {
      sets[id] = DelayAlgebra::site_transform(sets[id], fault->slow_to_rise);
    }
  }
}

bool TwoFrameSim::guaranteed_observation(const TwoFrameStimulus& stimulus,
                                         const FaultSpec& fault,
                                         std::vector<NodeId>* where) const {
  std::vector<VSet> node_sets;
  run(stimulus, &fault, node_sets);
  bool observed = false;
  for (const NodeId obs : model_->observation_points()) {
    const VSet s = node_sets[obs];
    if (s != kEmptySet && (s & ~kCarrierSet) == 0) {
      observed = true;
      if (where != nullptr) {
        where->push_back(obs);
      }
    }
  }
  return observed;
}

}  // namespace gdf::alg
