#include "algebra/value_set.hpp"

#include "base/error.hpp"

namespace gdf::alg {

V8 vset_only(VSet s) {
  GDF_ASSERT(vset_is_singleton(s), "vset_only on non-singleton set");
  return static_cast<V8>(__builtin_ctz(s));
}

V8 vset_first(VSet s) {
  GDF_ASSERT(s != 0, "vset_first on empty set");
  return static_cast<V8>(__builtin_ctz(s));
}

unsigned vset_initials(VSet s) {
  unsigned mask = 0;
  for (int i = 0; i < kV8Count; ++i) {
    if (vset_contains(s, static_cast<V8>(i))) {
      mask |= 1u << v8_initial(static_cast<V8>(i));
    }
  }
  return mask;
}

unsigned vset_finals(VSet s) {
  unsigned mask = 0;
  for (int i = 0; i < kV8Count; ++i) {
    if (vset_contains(s, static_cast<V8>(i))) {
      mask |= 1u << v8_final(static_cast<V8>(i));
    }
  }
  return mask;
}

VSet vset_with_initial_in(VSet s, unsigned allowed) {
  VSet out = 0;
  for (int i = 0; i < kV8Count; ++i) {
    const V8 v = static_cast<V8>(i);
    if (vset_contains(s, v) &&
        (allowed & (1u << v8_initial(v))) != 0) {
      out |= vset_of(v);
    }
  }
  return out;
}

VSet vset_with_final_in(VSet s, unsigned allowed) {
  VSet out = 0;
  for (int i = 0; i < kV8Count; ++i) {
    const V8 v = static_cast<V8>(i);
    if (vset_contains(s, v) && (allowed & (1u << v8_final(v))) != 0) {
      out |= vset_of(v);
    }
  }
  return out;
}

std::string vset_to_string(VSet s) {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < kV8Count; ++i) {
    if (vset_contains(s, static_cast<V8>(i))) {
      if (!first) {
        out += ",";
      }
      out += v8_name(static_cast<V8>(i));
      first = false;
    }
  }
  out += "}";
  return out;
}

}  // namespace gdf::alg
