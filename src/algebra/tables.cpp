#include "algebra/tables.hpp"

#include "base/error.hpp"

namespace gdf::alg {

namespace {

// The AND table of the robust algebra (paper Table 1), reconstructed from
// waveform semantics; the legible entries of the paper's OCR match, as do
// the prose rules ("Rc propagates ... with any value on the off path input
// that is 1 in its final value, but Fc propagates only with a steady one or
// Fc on the off path input").
//
// Row = first operand, column = second, order 0 1 R F 0h 1h Rc Fc.
constexpr V8 Z = V8::Zero;
constexpr V8 O = V8::One;
constexpr V8 R = V8::Rise;
constexpr V8 F = V8::Fall;
constexpr V8 Zh = V8::ZeroH;
constexpr V8 Oh = V8::OneH;
constexpr V8 Rc = V8::RiseC;
constexpr V8 Fc = V8::FallC;

constexpr std::array<std::array<V8, 8>, 8> kRobustAnd = {{
    //        0   1   R   F   0h  1h  Rc  Fc
    /* 0  */ {Z, Z, Z, Z, Z, Z, Z, Z},
    /* 1  */ {Z, O, R, F, Zh, Oh, Rc, Fc},
    /* R  */ {Z, R, R, Zh, Zh, R, Rc, Zh},
    /* F  */ {Z, F, Zh, F, Zh, F, Zh, F},
    /* 0h */ {Z, Zh, Zh, Zh, Zh, Zh, Zh, Zh},
    /* 1h */ {Z, Oh, R, F, Zh, Oh, Rc, F},
    /* Rc */ {Z, Rc, Rc, Zh, Zh, Rc, Rc, Zh},
    /* Fc */ {Z, Fc, Zh, F, Zh, F, Zh, Fc},
}};

// Non-robust (hazard-relaxed) variant: a falling fault effect also
// survives beside a steady-but-hazardous 1 (two cells differ). This is the
// strongest relaxation expressible in the six+two-valued framework: letting
// Fc survive beside a *changing* off-path (R) would make the good machine's
// waveform steady-0 while the value Fc claims a 1->0 transition, corrupting
// the initial-frame component that the state-register constraint depends
// on. A fully non-robust model needs carriers with decoupled good/faulty
// frames (ten values); the enhanced-scan transition-fault comparator in
// the ablation bench provides that upper bound instead.
constexpr std::array<std::array<V8, 8>, 8> kNonRobustAnd = {{
    //        0   1   R   F   0h  1h  Rc  Fc
    /* 0  */ {Z, Z, Z, Z, Z, Z, Z, Z},
    /* 1  */ {Z, O, R, F, Zh, Oh, Rc, Fc},
    /* R  */ {Z, R, R, Zh, Zh, R, Rc, Zh},
    /* F  */ {Z, F, Zh, F, Zh, F, Zh, F},
    /* 0h */ {Z, Zh, Zh, Zh, Zh, Zh, Zh, Zh},
    /* 1h */ {Z, Oh, R, F, Zh, Oh, Rc, Fc},
    /* Rc */ {Z, Rc, Rc, Zh, Zh, Rc, Rc, Zh},
    /* Fc */ {Z, Fc, Zh, F, Zh, Fc, Zh, Fc},
}};

// Paper Table 2: the inverter swaps polarity and keeps the fault effect.
constexpr std::array<V8, 8> kNot = {O, Z, F, R, Oh, Zh, Fc, Rc};

}  // namespace

DelayAlgebra::DelayAlgebra(Mode mode) : mode_(mode) {
  const auto& and_table =
      mode == Mode::Robust ? kRobustAnd : kNonRobustAnd;
  and2_ = and_table;
  // OR and XOR derived from AND and NOT by De Morgan composition, exactly
  // as the paper constructs the remaining primitive tables. OR must be
  // complete before XOR reads from it.
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      const V8 va = static_cast<V8>(a);
      const V8 vb = static_cast<V8>(b);
      or2_[a][b] = v_not(v_and(v_not(va), v_not(vb)));
    }
  }
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      const V8 va = static_cast<V8>(a);
      const V8 vb = static_cast<V8>(b);
      xor2_[a][b] = or2_[idx(v_and(va, v_not(vb)))]
                        [idx(v_and(v_not(va), vb))];
    }
  }

  // Memoize the set operators. Singleton pairs come straight from eval2;
  // wider sets decompose as unions over their lowest member, so every
  // entry is filled from two already-filled ones.
  for (int a = 0; a < 256; ++a) {
    VSet image = kEmptySet;
    for (int v = 0; v < kV8Count; ++v) {
      if (vset_contains(static_cast<VSet>(a), static_cast<V8>(v))) {
        image |= vset_of(v_not(static_cast<V8>(v)));
      }
    }
    not_image_[a] = image;
  }
  for (const Op2 op : {Op2::And, Op2::Or, Op2::Xor}) {
    auto& table = fwd_[static_cast<int>(op)];
    for (int b = 0; b < 256; ++b) {
      table[0][b] = kEmptySet;
    }
    for (int a = 1; a < 256; ++a) {
      table[a][0] = kEmptySet;
      const int a_low = a & -a;
      const int a_rest = a & (a - 1);
      for (int b = 1; b < 256; ++b) {
        if (a_rest != 0) {
          table[a][b] = table[a_low][b] | table[a_rest][b];
          continue;
        }
        const int b_low = b & -b;
        const int b_rest = b & (b - 1);
        if (b_rest != 0) {
          table[a][b] = table[a][b_low] | table[a][b_rest];
          continue;
        }
        table[a][b] = vset_of(eval2(op, vset_only(static_cast<VSet>(a)),
                                    vset_only(static_cast<VSet>(b))));
      }
    }
  }

  // Backward support sets: bwd_[op][b][out] keeps every single value that
  // can, beside some member of b, produce a member of out. Derived from
  // the forward singleton rows so the two tables can never disagree.
  for (const Op2 op : {Op2::And, Op2::Or, Op2::Xor}) {
    const auto& fwd = fwd_[static_cast<int>(op)];
    auto& bwd = bwd_[static_cast<int>(op)];
    for (int b = 0; b < 256; ++b) {
      // Per candidate member m, the outputs reachable beside b.
      std::array<VSet, kV8Count> images;
      for (int v = 0; v < kV8Count; ++v) {
        images[v] = fwd[vset_of(static_cast<V8>(v))][b];
      }
      for (int out = 0; out < 256; ++out) {
        VSet support = kEmptySet;
        for (int v = 0; v < kV8Count; ++v) {
          if ((images[v] & out) != 0) {
            support |= vset_of(static_cast<V8>(v));
          }
        }
        bwd[b][out] = support;
      }
    }
  }
}

V8 DelayAlgebra::v_not(V8 a) const { return kNot[idx(a)]; }

V8 DelayAlgebra::eval2(Op2 op, V8 a, V8 b) const {
  switch (op) {
    case Op2::And:
      return v_and(a, b);
    case Op2::Or:
      return v_or(a, b);
    case Op2::Xor:
      return v_xor(a, b);
  }
  GDF_ASSERT(false, "bad Op2");
  return V8::Zero;
}

VSet DelayAlgebra::site_transform(VSet raw, bool slow_to_rise) {
  const V8 trigger = slow_to_rise ? V8::Rise : V8::Fall;
  const V8 carrier = slow_to_rise ? V8::RiseC : V8::FallC;
  VSet out = raw;
  if (vset_contains(raw, trigger)) {
    out = static_cast<VSet>(out & ~vset_of(trigger));
    out |= vset_of(carrier);
  }
  return out;
}

VSet DelayAlgebra::site_transform_pre(VSet transformed, bool slow_to_rise) {
  const V8 trigger = slow_to_rise ? V8::Rise : V8::Fall;
  const V8 carrier = slow_to_rise ? V8::RiseC : V8::FallC;
  // Values other than the trigger map to themselves; the trigger maps to
  // the carrier and never to itself.
  VSet pre = static_cast<VSet>(transformed &
                               ~(vset_of(trigger) | vset_of(carrier)));
  if (vset_contains(transformed, carrier)) {
    pre |= vset_of(trigger);
  }
  return pre;
}

std::shared_ptr<const DelayAlgebra> shared_algebra(Mode mode) {
  // One genuinely shared instance per mode, built lazily and thread-safely
  // on first request; handles really co-own the tables.
  if (mode == Mode::Robust) {
    static const std::shared_ptr<const DelayAlgebra> instance =
        std::make_shared<const DelayAlgebra>(Mode::Robust);
    return instance;
  }
  static const std::shared_ptr<const DelayAlgebra> instance =
      std::make_shared<const DelayAlgebra>(Mode::NonRobust);
  return instance;
}

const DelayAlgebra& robust_algebra() {
  return *shared_algebra(Mode::Robust);
}

const DelayAlgebra& nonrobust_algebra() {
  return *shared_algebra(Mode::NonRobust);
}

const DelayAlgebra& algebra_for(Mode mode) {
  return *shared_algebra(mode);
}

}  // namespace gdf::alg
