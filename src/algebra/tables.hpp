// Gate truth tables over the eight-valued logic — the paper's Tables 1
// (AND) and 2 (inverter), with every other gate type derived from them by
// De Morgan composition exactly as §3 describes.
//
// Two algebra modes exist:
//  * Robust (the paper's model): a falling fault effect (Fc) propagates
//    through an AND only beside a steady hazard-free 1 or another Fc; a
//    rising one (Rc) beside any final-1 value.
//  * NonRobust (the §7 outlook): carriers track (good final, faulty final)
//    only; Fc additionally survives beside 1h and R. Used by the ablation
//    bench that quantifies the paper's closing claim.
#pragma once

#include <array>
#include <memory>

#include "algebra/value8.hpp"
#include "algebra/value_set.hpp"

namespace gdf::alg {

enum class Mode { Robust, NonRobust };

/// Associative two-input bodies the netlist decomposes into. Inversions
/// (NAND/NOR/NOT/XNOR) become explicit Not nodes.
enum class Op2 : std::uint8_t { And, Or, Xor };

class DelayAlgebra {
 public:
  explicit DelayAlgebra(Mode mode);

  Mode mode() const { return mode_; }

  // Single-value evaluation ------------------------------------------------
  V8 v_not(V8 a) const;
  V8 v_and(V8 a, V8 b) const { return and2_[idx(a)][idx(b)]; }
  V8 v_or(V8 a, V8 b) const { return or2_[idx(a)][idx(b)]; }
  V8 v_xor(V8 a, V8 b) const { return xor2_[idx(a)][idx(b)]; }
  V8 eval2(Op2 op, V8 a, V8 b) const;

  // Set-level evaluation ---------------------------------------------------
  // The set operators are the hot path of the implication engine and the
  // two-frame simulator (hundreds of millions of calls per ATPG run), so
  // they are memoized exhaustively at construction: 2^8 x 2^8 set pairs per
  // operator, one byte each.

  /// Exact image of the Not bijection.
  VSet set_not(VSet a) const { return not_image_[a]; }
  /// Preimage of the Not bijection (same table, Not is an involution).
  VSet set_not_pre(VSet out) const { return set_not(out); }

  /// Union of eval2 over all member pairs: possible outputs.
  VSet set_fwd(Op2 op, VSet a, VSet b) const {
    return fwd_[static_cast<int>(op)][a][b];
  }

  /// Members of `a` that can, with some member of `b`, produce a value in
  /// `out` — the backward pruning step of the implication engine. Whether a
  /// member survives is independent of the other members of `a`, so the
  /// support set over the full domain is memoized per (b, out) pair and the
  /// call collapses to one lookup plus an intersection.
  VSet set_bwd_first(Op2 op, VSet a, VSet b, VSet out) const {
    return static_cast<VSet>(a & bwd_[static_cast<int>(op)][b][out]);
  }

  /// Fault-site transform: replaces the activating transition by its
  /// carrier (R->Rc for slow-to-rise, F->Fc for slow-to-fall). Other values
  /// pass unchanged.
  static VSet site_transform(VSet raw, bool slow_to_rise);
  /// Preimage of site_transform.
  static VSet site_transform_pre(VSet transformed, bool slow_to_rise);

 private:
  static int idx(V8 v) { return static_cast<int>(v); }

  Mode mode_;
  std::array<std::array<V8, 8>, 8> and2_;
  std::array<std::array<V8, 8>, 8> or2_;
  std::array<std::array<V8, 8>, 8> xor2_;
  std::array<VSet, 256> not_image_;
  std::array<std::array<std::array<VSet, 256>, 256>, 3> fwd_;
  /// bwd_[op][b][out]: members of the full domain that can, with some
  /// member of b, produce a value in out.
  std::array<std::array<std::array<VSet, 256>, 256>, 3> bwd_;
};

/// Shared immutable instances (the tables are pure data). References into
/// the same per-mode instances shared_algebra() owns.
const DelayAlgebra& robust_algebra();
const DelayAlgebra& nonrobust_algebra();
const DelayAlgebra& algebra_for(Mode mode);

/// Shared-ownership handle on the process-wide memoized tables: one
/// instance per mode, built lazily on first request. CircuitContext holds
/// one so every session on a context reads (and co-owns) the same tables
/// instead of materializing its own.
std::shared_ptr<const DelayAlgebra> shared_algebra(Mode mode);

}  // namespace gdf::alg
