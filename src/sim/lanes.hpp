// Lane-width selection for the batched simulation backends (--lanes).
//
// A LaneSpec is a per-run knob, never a structural one: every backend
// computes bit-identical verdicts (lanes are independent machines), so the
// choice may differ between hosts — `auto` probes the CPU's vector width —
// without perturbing a single output byte. It therefore must not enter
// CircuitContext::structurally_compatible or the sweep memo keys.
#pragma once

#include <cstdint>
#include <string_view>

namespace gdf::sim {

struct LaneSpec {
  enum class Width : std::uint8_t { Auto = 0, W64, W256, W512 };
  Width width = Width::Auto;

  bool operator==(const LaneSpec&) const = default;
};

/// Parses a --lanes value: auto | 64 | 256 | 512. Throws gdf::Error.
LaneSpec parse_lanes(std::string_view text);

/// The concrete lane count the spec selects on this host: 64, 256 or 512.
/// Auto probes the CPU (AVX-512 => 512, AVX2 => 256, else 64).
unsigned resolve_lane_count(LaneSpec spec);

/// Backend display name for a resolved lane count ("word64" | "word256" |
/// "word512").
const char* lane_backend_name(unsigned lanes);

/// Packed byte-lane capacity of the CPT stem sweeps for a resolved lane
/// count: eight VSet byte lanes per 64-bit word, one word per plane, so
/// the stem batches scale with the same ladder (8 | 32 | 64).
inline unsigned packed_stem_lanes(unsigned lanes) { return lanes / 8; }

/// Gate-evaluation counters attributed per kernel, so sweeps can tell
/// which backend the simulation time went to (--stages prints them).
/// Lane-evals count bodies * active lanes; the scalar bucket counts plain
/// five-valued body evaluations.
struct KernelCounters {
  long scalar_evals = 0;    ///< phase-1 scalar good-machine kernel
  long lane_evals_64 = 0;   ///< WordN<1> backend (64 lanes)
  long lane_evals_256 = 0;  ///< WordN<4> backend (256 lanes)
  long lane_evals_512 = 0;  ///< WordN<8> backend (512 lanes)

  void add(const KernelCounters& other) {
    scalar_evals += other.scalar_evals;
    lane_evals_64 += other.lane_evals_64;
    lane_evals_256 += other.lane_evals_256;
    lane_evals_512 += other.lane_evals_512;
  }
};

}  // namespace gdf::sim
