// Five-valued test logic {0, 1, X, D, D'} — the static D-calculus used by
// the sequential engines (SEMILET) and by FAUSIM.
//
// D means good-machine 1 / faulty-machine 0; D' the opposite. X is an
// unknown shared by both machines. The paper's "fixed but unknown" U values
// handed over by TDgen for non-steady PPOs are represented as X, which is
// sound (detection is only claimed when it holds for every value of X) and
// reproduces the pessimism §6 of the paper describes.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "netlist/gate_type.hpp"

namespace gdf::sim {

enum class Lv : std::uint8_t { Zero = 0, One = 1, X = 2, D = 3, Dbar = 4 };

inline constexpr int kLvCount = 5;

/// "0", "1", "X", "D", "D'".
std::string_view lv_name(Lv v);

inline bool is_binary(Lv v) { return v == Lv::Zero || v == Lv::One; }
inline bool is_fault_effect(Lv v) { return v == Lv::D || v == Lv::Dbar; }

/// Good-machine component (D -> 1, D' -> 0, else itself).
Lv good_value(Lv v);
/// Faulty-machine component (D -> 0, D' -> 1, else itself).
Lv faulty_value(Lv v);
/// Combines independent good/faulty components into one Lv (X if either
/// side is X but the sides disagree in a way X cannot express... see impl).
Lv combine(Lv good, Lv faulty);

Lv lv_not(Lv a);
Lv lv_and(Lv a, Lv b);
Lv lv_or(Lv a, Lv b);
Lv lv_xor(Lv a, Lv b);

/// Evaluates one gate over already-computed fanin values. Input and Dff
/// gates are boundary values owned by the simulator and must not be passed
/// here.
Lv eval_gate(net::GateType type, std::span<const Lv> fanin);

/// Precomputed composition tables over the five values. The flat scalar
/// kernel indexes these instead of re-deriving the good/faulty machine
/// decomposition per fanin pair.
struct LvTables {
  Lv not1[kLvCount];
  Lv and2[kLvCount][kLvCount];
  Lv or2[kLvCount][kLvCount];
  Lv xor2[kLvCount][kLvCount];
};

/// Shared immutable instance, filled from lv_not/lv_and/lv_or/lv_xor.
const LvTables& lv_tables();

/// Scalar five-valued instantiation of the flat kernel's Ops concept.
struct LvOps {
  using Value = Lv;
  const LvTables* t = &lv_tables();

  Lv not_(Lv a) const { return t->not1[static_cast<int>(a)]; }
  Lv and_(Lv a, Lv b) const {
    return t->and2[static_cast<int>(a)][static_cast<int>(b)];
  }
  Lv or_(Lv a, Lv b) const {
    return t->or2[static_cast<int>(a)][static_cast<int>(b)];
  }
  Lv xor_(Lv a, Lv b) const {
    return t->xor2[static_cast<int>(a)][static_cast<int>(b)];
  }
};

}  // namespace gdf::sim
