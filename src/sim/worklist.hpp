// Bitmap worklist over topologically-ordered ids — the one cone-replay
// scheduler shared by the incremental engines (two-frame verification
// probes in algebra/frame_sim, the delta frame resettle in
// semilet/frame_podem).
//
// Ids must be topological (every consumer's id is larger than its
// producers' — true for AtpgModel nodes by construction and for
// flat-circuit bodies via the levelization). Waves then only ever push
// ahead of the pop cursor, so one monotone scan over the bitmap pops every
// scheduled id in ascending order with all of its producers final.
//
// The bitmap makes both extremes cheap where a binary heap or a linear
// span-scan pays: push/pop are O(1) bit operations (no log-factor, no
// allocation), a sparse wave costs its own size plus a word-granular skip
// over the gaps, and a dense wave degrades gracefully into the sequential
// sweep. Only words actually touched are reset between waves, so starting
// one is O(previous wave), never O(nodes).
#pragma once

#include <cstdint>
#include <vector>

namespace gdf::sim {

class BitQueue {
 public:
  /// Ensures capacity for ids in [0, n) and starts a fresh (empty) wave.
  void begin(std::size_t n) {
    const std::size_t words = (n + 63) / 64;
    if (words_.size() < words) {
      words_.resize(words, 0);
    }
    limit_ = static_cast<std::uint32_t>(words);
    for (const std::uint32_t w : touched_) {
      words_[w] = 0;
    }
    touched_.clear();
    cursor_ = 0;
  }

  /// Schedules `id` (idempotent).
  void push(std::uint32_t id) {
    const std::uint32_t w = id >> 6;
    if (words_[w] == 0) {
      touched_.push_back(w);
    }
    words_[w] |= std::uint64_t{1} << (id & 63);
    if (w < cursor_) {
      cursor_ = w;
    }
  }

  /// Pops the smallest scheduled id; false when the wave is drained.
  bool pop(std::uint32_t* id) {
    while (cursor_ < limit_) {
      const std::uint64_t word = words_[cursor_];
      if (word != 0) {
        const unsigned bit =
            static_cast<unsigned>(__builtin_ctzll(word));
        words_[cursor_] = word & (word - 1);
        *id = (cursor_ << 6) | bit;
        return true;
      }
      ++cursor_;
    }
    return false;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::vector<std::uint32_t> touched_;
  std::uint32_t cursor_ = 0;
  std::uint32_t limit_ = 0;
};

}  // namespace gdf::sim
