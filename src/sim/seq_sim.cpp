#include "sim/seq_sim.hpp"

#include "base/error.hpp"

namespace gdf::sim {

SeqSimulator::SeqSimulator(const net::Netlist& nl)
    : nl_(&nl), lev_(net::levelize(nl)) {}

StateVec SeqSimulator::unknown_state() const {
  return StateVec(nl_->dffs().size(), Lv::X);
}

void SeqSimulator::eval_frame(std::span<const Lv> pis,
                              std::span<const Lv> state,
                              std::vector<Lv>& line_values,
                              const Injection* injection) const {
  GDF_ASSERT(pis.size() == nl_->inputs().size(), "PI vector size mismatch");
  GDF_ASSERT(state.size() == nl_->dffs().size(), "state vector size mismatch");
  line_values.assign(nl_->size(), Lv::X);
  for (std::size_t i = 0; i < pis.size(); ++i) {
    line_values[nl_->inputs()[i]] = pis[i];
  }
  for (std::size_t i = 0; i < state.size(); ++i) {
    line_values[nl_->dffs()[i]] = state[i];
  }
  const auto inject = [&](net::GateId id) {
    if (injection != nullptr && injection->line == id) {
      line_values[id] =
          combine(good_value(line_values[id]), injection->faulty);
    }
  };
  for (const net::GateId src : nl_->inputs()) {
    inject(src);
  }
  for (const net::GateId src : nl_->dffs()) {
    inject(src);
  }
  std::vector<Lv> fanin_values;
  for (const net::GateId id : lev_.order) {
    const net::Gate& g = nl_->gate(id);
    if (g.type == net::GateType::Input || g.type == net::GateType::Dff) {
      continue;  // boundary values set above
    }
    fanin_values.clear();
    for (const net::GateId driver : g.fanin) {
      fanin_values.push_back(line_values[driver]);
    }
    line_values[id] = eval_gate(g.type, fanin_values);
    inject(id);
  }
}

StateVec SeqSimulator::next_state(std::span<const Lv> line_values) const {
  StateVec next;
  next.reserve(nl_->dffs().size());
  for (const net::GateId dff : nl_->dffs()) {
    next.push_back(line_values[nl_->gate(dff).fanin[0]]);
  }
  return next;
}

std::vector<Lv> SeqSimulator::outputs(std::span<const Lv> line_values) const {
  std::vector<Lv> pos;
  pos.reserve(nl_->outputs().size());
  for (const net::GateId po : nl_->outputs()) {
    pos.push_back(line_values[po]);
  }
  return pos;
}

StateVec SeqSimulator::run(std::span<const InputVec> sequence, StateVec state,
                           std::vector<std::vector<Lv>>* po_trace) const {
  std::vector<Lv> line_values;
  for (const InputVec& pis : sequence) {
    eval_frame(pis, state, line_values);
    if (po_trace != nullptr) {
      po_trace->push_back(outputs(line_values));
    }
    state = next_state(line_values);
  }
  return state;
}

}  // namespace gdf::sim
