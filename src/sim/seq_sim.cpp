#include "sim/seq_sim.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace gdf::sim {

SeqSimulator::SeqSimulator(const net::Netlist& nl)
    : fc_(FlatCircuit::build(nl)) {}

SeqSimulator::SeqSimulator(std::shared_ptr<const FlatCircuit> fc)
    : fc_(std::move(fc)) {
  GDF_ASSERT(fc_ != nullptr, "null flat circuit");
}

StateVec SeqSimulator::unknown_state() const {
  return StateVec(fc_->dffs().size(), Lv::X);
}

void SeqSimulator::eval_frame(std::span<const Lv> pis,
                              std::span<const Lv> state,
                              std::vector<Lv>& line_values,
                              const Injection* injection) const {
  const FlatCircuit& fc = *fc_;
  GDF_ASSERT(pis.size() == fc.inputs().size(), "PI vector size mismatch");
  GDF_ASSERT(state.size() == fc.dffs().size(), "state vector size mismatch");
  line_values.assign(fc.line_count(), Lv::X);
  for (std::size_t i = 0; i < pis.size(); ++i) {
    line_values[fc.inputs()[i]] = pis[i];
  }
  for (std::size_t i = 0; i < state.size(); ++i) {
    line_values[fc.dffs()[i]] = state[i];
  }
  const LvOps ops;
  if (injection != nullptr && injection->active()) {
    const net::GateId site = injection->line;
    const Lv faulty = injection->faulty;
    if (site < line_values.size()) {
      // Boundary injection (the site may also be a body; the hook below
      // re-applies after the body's value is computed).
      line_values[site] = combine(good_value(line_values[site]), faulty);
    }
    eval_flat(fc, ops, line_values.data(), [&](net::GateId id, Lv& v) {
      if (id == site) {
        v = combine(good_value(v), faulty);
      }
    });
  } else {
    eval_flat(fc, ops, line_values.data());
  }
}

void SeqSimulator::resettle_frame(std::vector<Lv>& line_values,
                                  BitQueue& work,
                                  const Injection* injection) const {
  const FlatCircuit& fc = *fc_;
  const LvOps ops;
  const net::GateId site = injection != nullptr && injection->active()
                               ? injection->line
                               : net::kNoGate;
  // Body indices are levelized, so pops ascend through the affected cones
  // with every input final; the wave dies wherever a value is unchanged.
  std::uint32_t b;
  while (work.pop(&b)) {
    const net::GateId out = fc.body_out()[b];
    Lv v = eval_body(fc, ops, line_values.data(), b);
    if (out == site) {
      v = combine(good_value(v), injection->faulty);
    }
    if (v == line_values[out]) {
      continue;
    }
    line_values[out] = v;
    for (const std::uint32_t reader : fc.readers(out)) {
      work.push(reader);
    }
  }
}

StateVec SeqSimulator::next_state(std::span<const Lv> line_values) const {
  StateVec next;
  next.reserve(fc_->dff_data().size());
  for (const net::GateId data : fc_->dff_data()) {
    next.push_back(line_values[data]);
  }
  return next;
}

std::vector<Lv> SeqSimulator::outputs(std::span<const Lv> line_values) const {
  std::vector<Lv> pos;
  pos.reserve(fc_->outputs().size());
  for (const net::GateId po : fc_->outputs()) {
    pos.push_back(line_values[po]);
  }
  return pos;
}

StateVec SeqSimulator::run(std::span<const InputVec> sequence, StateVec state,
                           std::vector<std::vector<Lv>>* po_trace) const {
  std::vector<Lv> line_values;
  for (const InputVec& pis : sequence) {
    eval_frame(pis, state, line_values);
    if (po_trace != nullptr) {
      po_trace->push_back(outputs(line_values));
    }
    state = next_state(line_values);
  }
  return state;
}

}  // namespace gdf::sim
