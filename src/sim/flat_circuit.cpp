#include "sim/flat_circuit.hpp"

#include "netlist/levelize.hpp"

namespace gdf::sim {

FlatCircuit::FlatCircuit(const net::Netlist& nl)
    : nl_(&nl), line_count_(nl.size()) {
  const net::Levelization lev = net::levelize(nl);
  std::size_t bodies = 0;
  std::size_t fanin_total = 0;
  for (const net::GateId id : lev.order) {
    const net::Gate& g = nl.gate(id);
    if (g.type == net::GateType::Input || g.type == net::GateType::Dff) {
      continue;
    }
    ++bodies;
    fanin_total += g.fanin.size();
  }
  out_.reserve(bodies);
  type_.reserve(bodies);
  fanin_begin_.reserve(bodies + 1);
  fanin_.reserve(fanin_total);
  fanin_begin_.push_back(0);
  for (const net::GateId id : lev.order) {
    const net::Gate& g = nl.gate(id);
    if (g.type == net::GateType::Input || g.type == net::GateType::Dff) {
      continue;
    }
    out_.push_back(id);
    type_.push_back(g.type);
    fanin_.insert(fanin_.end(), g.fanin.begin(), g.fanin.end());
    fanin_begin_.push_back(static_cast<std::uint32_t>(fanin_.size()));
  }
  inputs_.assign(nl.inputs().begin(), nl.inputs().end());
  outputs_.assign(nl.outputs().begin(), nl.outputs().end());
  dffs_.assign(nl.dffs().begin(), nl.dffs().end());
  dff_data_.reserve(dffs_.size());
  for (const net::GateId dff : dffs_) {
    dff_data_.push_back(nl.gate(dff).fanin[0]);
  }

  level_ = lev.level;
  obs_distance_ = net::distance_to_observation(nl);
  pi_reachable_.assign(nl.size(), 0);
  for (const net::GateId id : lev.order) {
    const net::Gate& g = nl.gate(id);
    if (g.type == net::GateType::Input) {
      pi_reachable_[id] = 1;
      continue;
    }
    if (g.type == net::GateType::Dff) {
      continue;
    }
    for (const net::GateId driver : g.fanin) {
      if (pi_reachable_[driver] != 0) {
        pi_reachable_[id] = 1;
        break;
      }
    }
  }
}

std::shared_ptr<const FlatCircuit> FlatCircuit::build(const net::Netlist& nl) {
  return std::make_shared<const FlatCircuit>(nl);
}

}  // namespace gdf::sim
