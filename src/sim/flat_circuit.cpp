#include "sim/flat_circuit.hpp"

#include "netlist/levelize.hpp"

namespace gdf::sim {

FlatCircuit::FlatCircuit(const net::Netlist& nl)
    : nl_(&nl), line_count_(nl.size()) {
  const net::Levelization lev = net::levelize(nl);
  std::size_t bodies = 0;
  std::size_t fanin_total = 0;
  for (const net::GateId id : lev.order) {
    const net::Gate& g = nl.gate(id);
    if (g.type == net::GateType::Input || g.type == net::GateType::Dff) {
      continue;
    }
    ++bodies;
    fanin_total += g.fanin.size();
  }
  out_.reserve(bodies);
  type_.reserve(bodies);
  fanin_begin_.reserve(bodies + 1);
  fanin_.reserve(fanin_total);
  fanin_begin_.push_back(0);
  for (const net::GateId id : lev.order) {
    const net::Gate& g = nl.gate(id);
    if (g.type == net::GateType::Input || g.type == net::GateType::Dff) {
      continue;
    }
    out_.push_back(id);
    type_.push_back(g.type);
    fanin_.insert(fanin_.end(), g.fanin.begin(), g.fanin.end());
    fanin_begin_.push_back(static_cast<std::uint32_t>(fanin_.size()));
  }
  inputs_.assign(nl.inputs().begin(), nl.inputs().end());
  outputs_.assign(nl.outputs().begin(), nl.outputs().end());
  dffs_.assign(nl.dffs().begin(), nl.dffs().end());
  dff_data_.reserve(dffs_.size());
  for (const net::GateId dff : dffs_) {
    dff_data_.push_back(nl.gate(dff).fanin[0]);
  }

  // Line → body map and the reader CSR (line → consuming body indices),
  // the incremental resettle's fanout walk.
  body_of_.assign(nl.size(), kNoBody);
  for (std::size_t b = 0; b < out_.size(); ++b) {
    body_of_[out_[b]] = static_cast<std::uint32_t>(b);
  }
  reader_begin_.assign(nl.size() + 1, 0);
  for (const net::GateId driver : fanin_) {
    ++reader_begin_[driver + 1];
  }
  for (std::size_t i = 1; i < reader_begin_.size(); ++i) {
    reader_begin_[i] += reader_begin_[i - 1];
  }
  reader_pool_.resize(fanin_.size());
  std::vector<std::uint32_t> cursor(reader_begin_.begin(),
                                    reader_begin_.end() - 1);
  for (std::size_t b = 0; b < out_.size(); ++b) {
    for (std::uint32_t i = fanin_begin_[b]; i < fanin_begin_[b + 1]; ++i) {
      reader_pool_[cursor[fanin_[i]]++] = static_cast<std::uint32_t>(b);
    }
  }

  level_ = lev.level;
  obs_distance_ = net::distance_to_observation(nl);
  pi_reachable_.assign(nl.size(), 0);
  for (const net::GateId id : lev.order) {
    const net::Gate& g = nl.gate(id);
    if (g.type == net::GateType::Input) {
      pi_reachable_[id] = 1;
      continue;
    }
    if (g.type == net::GateType::Dff) {
      continue;
    }
    for (const net::GateId driver : g.fanin) {
      if (pi_reachable_[driver] != 0) {
        pi_reachable_[id] = 1;
        break;
      }
    }
  }
}

std::shared_ptr<const FlatCircuit> FlatCircuit::build(const net::Netlist& nl) {
  return std::make_shared<const FlatCircuit>(nl);
}

}  // namespace gdf::sim
