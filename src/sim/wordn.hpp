// Block-templated dual-rail words: 64*K independent three-valued machines
// per value, as K parallel uint64 planes per rail. Bit b of plane p (lane
// 64*p + b) of `ones` set => that machine sees 1; of `zeros` => 0; neither
// => X. Both set is a bug.
//
// WordN<1> is the classic one-word 64-lane form (aliased as Word3);
// WordN<4>/WordN<8> are the 256-/512-lane rungs of the ladder. The rail
// operators are plain per-plane loops over fixed K, so -O3 autovectorizes
// them to whatever width the target ISA offers (SSE2/AVX2/AVX-512) with a
// single source of truth — no per-width op definitions to drift.
#pragma once

#include <cstdint>

#include "base/error.hpp"
#include "sim/logic.hpp"

namespace gdf::sim {

template <unsigned K>
struct WordN {
  static_assert(K >= 1, "at least one 64-lane plane");
  static constexpr unsigned kPlanes = K;
  static constexpr unsigned kLanes = 64 * K;

  std::uint64_t ones[K] = {};
  std::uint64_t zeros[K] = {};
};

template <unsigned K>
inline WordN<K> wn_not(const WordN<K>& a) {
  WordN<K> r;
  for (unsigned p = 0; p < K; ++p) {
    r.ones[p] = a.zeros[p];
    r.zeros[p] = a.ones[p];
  }
  return r;
}

template <unsigned K>
inline WordN<K> wn_and(const WordN<K>& a, const WordN<K>& b) {
  WordN<K> r;
  for (unsigned p = 0; p < K; ++p) {
    r.ones[p] = a.ones[p] & b.ones[p];
    r.zeros[p] = a.zeros[p] | b.zeros[p];
  }
  return r;
}

template <unsigned K>
inline WordN<K> wn_or(const WordN<K>& a, const WordN<K>& b) {
  WordN<K> r;
  for (unsigned p = 0; p < K; ++p) {
    r.ones[p] = a.ones[p] | b.ones[p];
    r.zeros[p] = a.zeros[p] & b.zeros[p];
  }
  return r;
}

template <unsigned K>
inline WordN<K> wn_xor(const WordN<K>& a, const WordN<K>& b) {
  WordN<K> r;
  for (unsigned p = 0; p < K; ++p) {
    r.ones[p] = (a.ones[p] & b.zeros[p]) | (a.zeros[p] & b.ones[p]);
    r.zeros[p] = (a.ones[p] & b.ones[p]) | (a.zeros[p] & b.zeros[p]);
  }
  return r;
}

/// The same value in every lane (X, D and Dbar leave both rails clear —
/// only definite binary values exist lane-wise).
template <unsigned K>
inline WordN<K> wn_broadcast(Lv v) {
  WordN<K> w;
  for (unsigned p = 0; p < K; ++p) {
    if (v == Lv::One) {
      w.ones[p] = ~std::uint64_t{0};
    } else if (v == Lv::Zero) {
      w.zeros[p] = ~std::uint64_t{0};
    }
  }
  return w;
}

/// Overwrites one lane (both rails cleared first).
template <unsigned K>
inline void wn_set_lane(WordN<K>& w, unsigned lane, Lv v) {
  GDF_ASSERT(lane < WordN<K>::kLanes, "lane out of range");
  const unsigned p = lane / 64;
  const std::uint64_t bit = std::uint64_t{1} << (lane % 64);
  w.ones[p] &= ~bit;
  w.zeros[p] &= ~bit;
  if (v == Lv::One) {
    w.ones[p] |= bit;
  } else if (v == Lv::Zero) {
    w.zeros[p] |= bit;
  }
}

/// Per-lane three-valued value extraction.
template <unsigned K>
inline Lv wn_lane(const WordN<K>& w, unsigned lane) {
  GDF_ASSERT(lane < WordN<K>::kLanes, "lane out of range");
  const unsigned p = lane / 64;
  const std::uint64_t bit = std::uint64_t{1} << (lane % 64);
  const bool one = (w.ones[p] & bit) != 0;
  const bool zero = (w.zeros[p] & bit) != 0;
  GDF_ASSERT(!(one && zero), "corrupt dual-rail word");
  if (one) {
    return Lv::One;
  }
  if (zero) {
    return Lv::Zero;
  }
  return Lv::X;
}

/// 64*K-lane dual-rail instantiation of the flat kernel's Ops concept.
template <unsigned K>
struct WordNOps {
  using Value = WordN<K>;

  Value not_(const Value& a) const { return wn_not(a); }
  Value and_(const Value& a, const Value& b) const { return wn_and(a, b); }
  Value or_(const Value& a, const Value& b) const { return wn_or(a, b); }
  Value xor_(const Value& a, const Value& b) const { return wn_xor(a, b); }
};

}  // namespace gdf::sim
