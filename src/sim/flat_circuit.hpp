// Flattened structure-of-arrays form of a netlist's combinational block —
// the one levelized core every simulation engine instantiates.
//
// The per-gate walk over net::Netlist (pointer-chasing through Gate::fanin
// vectors) is replaced by four contiguous arrays: the combinational bodies
// in levelized topological order, their gate types, and one shared fanin
// index pool addressed by offsets. Built once per netlist and shared (via
// shared_ptr) between the scalar five-valued engine, the 64-lane dual-rail
// engine, and every SEMILET search that owns a simulator.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace gdf::sim {

class FlatCircuit {
 public:
  explicit FlatCircuit(const net::Netlist& nl);

  const net::Netlist& netlist() const { return *nl_; }

  /// Number of lines (== Netlist::size()); engines size their value arrays
  /// by this.
  std::size_t line_count() const { return line_count_; }

  /// Combinational bodies (every gate except Input/Dff sources) in
  /// levelized order. Parallel arrays of body_count() entries.
  std::size_t body_count() const { return out_.size(); }
  std::span<const net::GateId> body_out() const { return out_; }
  std::span<const net::GateType> body_type() const { return type_; }
  /// body_count()+1 offsets into fanin_pool().
  std::span<const std::uint32_t> fanin_begin() const { return fanin_begin_; }
  std::span<const net::GateId> fanin_pool() const { return fanin_; }

  /// Boundary lines, mirroring the netlist's index spaces.
  std::span<const net::GateId> inputs() const { return inputs_; }
  std::span<const net::GateId> dffs() const { return dffs_; }
  /// Driver of each flip-flop's data pin (the PPO line), dffs() order —
  /// the next-state taps.
  std::span<const net::GateId> dff_data() const { return dff_data_; }
  std::span<const net::GateId> outputs() const { return outputs_; }

  // Derived structure the searches over this circuit keep re-deriving —
  // computed once here so every FramePodem shares them.
  /// Combinational depth per line (levelize()'s level array).
  std::span<const int> level() const { return level_; }
  /// Minimum gate distance to a PO or DFF data pin per line.
  std::span<const int> obs_distance() const { return obs_distance_; }
  /// Whether a line transitively depends on some primary input.
  bool pi_reachable(net::GateId id) const { return pi_reachable_[id] != 0; }

  /// No body drives the line (it is an Input or Dff boundary).
  static constexpr std::uint32_t kNoBody = 0xFFFFFFFFu;
  /// Index of the body computing `line`, or kNoBody for boundaries.
  std::uint32_t body_index(net::GateId line) const { return body_of_[line]; }
  /// Bodies reading `line`, as body indices (CSR) — the fanout walk of the
  /// incremental frame resettle. Body indices are levelized, so they serve
  /// directly as the topological order of a dirty worklist.
  std::span<const std::uint32_t> readers(net::GateId line) const {
    return std::span<const std::uint32_t>(
        reader_pool_.data() + reader_begin_[line],
        reader_begin_[line + 1] - reader_begin_[line]);
  }

  /// Builds a shareable flat form; the canonical way engines obtain one
  /// when handed a bare netlist.
  static std::shared_ptr<const FlatCircuit> build(const net::Netlist& nl);

 private:
  const net::Netlist* nl_;
  std::size_t line_count_ = 0;
  std::vector<net::GateId> out_;
  std::vector<net::GateType> type_;
  std::vector<std::uint32_t> fanin_begin_;
  std::vector<net::GateId> fanin_;
  std::vector<net::GateId> inputs_;
  std::vector<net::GateId> dffs_;
  std::vector<net::GateId> dff_data_;
  std::vector<net::GateId> outputs_;
  std::vector<int> level_;
  std::vector<int> obs_distance_;
  std::vector<std::uint8_t> pi_reachable_;
  std::vector<std::uint32_t> body_of_;
  std::vector<std::uint32_t> reader_begin_;
  std::vector<std::uint32_t> reader_pool_;
};

/// One body evaluation over already-settled input lines — the per-gate
/// step of eval_flat, exposed so the incremental resettle can replay
/// single bodies out of a dirty worklist.
template <class Ops>
inline typename Ops::Value eval_body(const FlatCircuit& fc, const Ops& ops,
                                     const typename Ops::Value* lines,
                                     std::size_t b) {
  using net::GateType;
  using V = typename Ops::Value;
  const net::GateType type = fc.body_type()[b];
  const std::uint32_t lo = fc.fanin_begin()[b];
  const std::uint32_t hi = fc.fanin_begin()[b + 1];
  const net::GateId* pool = fc.fanin_pool().data();
  V acc = lines[pool[lo]];
  switch (type) {
    case GateType::Buf:
      break;
    case GateType::Not:
      acc = ops.not_(acc);
      break;
    case GateType::And:
    case GateType::Nand:
      for (std::uint32_t i = lo + 1; i < hi; ++i) {
        acc = ops.and_(acc, lines[pool[i]]);
      }
      if (type == GateType::Nand) {
        acc = ops.not_(acc);
      }
      break;
    case GateType::Or:
    case GateType::Nor:
      for (std::uint32_t i = lo + 1; i < hi; ++i) {
        acc = ops.or_(acc, lines[pool[i]]);
      }
      if (type == GateType::Nor) {
        acc = ops.not_(acc);
      }
      break;
    case GateType::Xor:
    case GateType::Xnor:
      for (std::uint32_t i = lo + 1; i < hi; ++i) {
        acc = ops.xor_(acc, lines[pool[i]]);
      }
      if (type == GateType::Xnor) {
        acc = ops.not_(acc);
      }
      break;
    case GateType::Input:
    case GateType::Dff:
      break;  // never flattened into a body
  }
  return acc;
}

/// The shared levelized kernel loop. `Ops` supplies the value domain:
/// a `Value` type and `not_` / `and_` / `or_` / `xor_` members (scalar
/// five-valued tables or 64-lane dual-rail words). `lines` must hold
/// line_count() entries with the boundary (Input/Dff) values already set;
/// bodies are evaluated in levelized order. `post` is invoked after each
/// body's value is stored — the fault-injection hook.
template <class Ops, class Post>
inline void eval_flat(const FlatCircuit& fc, const Ops& ops,
                      typename Ops::Value* lines, Post&& post) {
  const net::GateId* outs = fc.body_out().data();
  const std::size_t n = fc.body_count();
  for (std::size_t b = 0; b < n; ++b) {
    lines[outs[b]] = eval_body(fc, ops, lines, b);
    post(outs[b], lines[outs[b]]);
  }
}

template <class Ops>
inline void eval_flat(const FlatCircuit& fc, const Ops& ops,
                      typename Ops::Value* lines) {
  eval_flat(fc, ops, lines, [](net::GateId, typename Ops::Value&) {});
}

}  // namespace gdf::sim
