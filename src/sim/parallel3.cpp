#include "sim/parallel3.hpp"

#include "base/error.hpp"

namespace gdf::sim {

Lv w3_lane(Word3 w, unsigned lane) {
  GDF_ASSERT(lane < 64, "lane out of range");
  const std::uint64_t bit = std::uint64_t{1} << lane;
  const bool one = (w.ones & bit) != 0;
  const bool zero = (w.zeros & bit) != 0;
  GDF_ASSERT(!(one && zero), "corrupt dual-rail word");
  if (one) {
    return Lv::One;
  }
  if (zero) {
    return Lv::Zero;
  }
  return Lv::X;
}

ParallelSim3::ParallelSim3(const net::Netlist& nl)
    : fc_(FlatCircuit::build(nl)) {}

ParallelSim3::ParallelSim3(std::shared_ptr<const FlatCircuit> fc)
    : fc_(std::move(fc)) {
  GDF_ASSERT(fc_ != nullptr, "null flat circuit");
}

void ParallelSim3::eval_frame(std::span<const Word3> pis,
                              std::span<const Word3> state,
                              std::vector<Word3>& line_values) const {
  const FlatCircuit& fc = *fc_;
  GDF_ASSERT(pis.size() == fc.inputs().size(), "PI word count mismatch");
  GDF_ASSERT(state.size() == fc.dffs().size(), "state word count mismatch");
  line_values.assign(fc.line_count(), Word3{});
  for (std::size_t i = 0; i < pis.size(); ++i) {
    line_values[fc.inputs()[i]] = pis[i];
  }
  for (std::size_t i = 0; i < state.size(); ++i) {
    line_values[fc.dffs()[i]] = state[i];
  }
  eval_flat(fc, Word3Ops{}, line_values.data());
}

std::vector<Word3> ParallelSim3::next_state(
    std::span<const Word3> line_values) const {
  std::vector<Word3> next;
  next_state(line_values, next);
  return next;
}

void ParallelSim3::next_state(std::span<const Word3> line_values,
                              std::vector<Word3>& next) const {
  const std::span<const net::GateId> taps = fc_->dff_data();
  next.resize(taps.size());
  for (std::size_t i = 0; i < taps.size(); ++i) {
    next[i] = line_values[taps[i]];
  }
}

}  // namespace gdf::sim
