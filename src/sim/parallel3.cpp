#include "sim/parallel3.hpp"

namespace gdf::sim {

// One shared copy of the kernel per ladder rung (64/256/512 lanes).
template class ParallelSimN<1>;
template class ParallelSimN<4>;
template class ParallelSimN<8>;

}  // namespace gdf::sim
