#include "sim/parallel3.hpp"

#include "base/error.hpp"

namespace gdf::sim {

Lv w3_lane(Word3 w, unsigned lane) {
  GDF_ASSERT(lane < 64, "lane out of range");
  const std::uint64_t bit = std::uint64_t{1} << lane;
  const bool one = (w.ones & bit) != 0;
  const bool zero = (w.zeros & bit) != 0;
  GDF_ASSERT(!(one && zero), "corrupt dual-rail word");
  if (one) {
    return Lv::One;
  }
  if (zero) {
    return Lv::Zero;
  }
  return Lv::X;
}

ParallelSim3::ParallelSim3(const net::Netlist& nl)
    : nl_(&nl), lev_(net::levelize(nl)) {}

void ParallelSim3::eval_frame(std::span<const Word3> pis,
                              std::span<const Word3> state,
                              std::vector<Word3>& line_values) const {
  GDF_ASSERT(pis.size() == nl_->inputs().size(), "PI word count mismatch");
  GDF_ASSERT(state.size() == nl_->dffs().size(), "state word count mismatch");
  line_values.assign(nl_->size(), Word3{});
  for (std::size_t i = 0; i < pis.size(); ++i) {
    line_values[nl_->inputs()[i]] = pis[i];
  }
  for (std::size_t i = 0; i < state.size(); ++i) {
    line_values[nl_->dffs()[i]] = state[i];
  }
  for (const net::GateId id : lev_.order) {
    const net::Gate& g = nl_->gate(id);
    using net::GateType;
    if (g.type == GateType::Input || g.type == GateType::Dff) {
      continue;
    }
    Word3 acc = line_values[g.fanin[0]];
    switch (g.type) {
      case GateType::Buf:
        break;
      case GateType::Not:
        acc = w3_not(acc);
        break;
      case GateType::And:
      case GateType::Nand:
        for (std::size_t i = 1; i < g.fanin.size(); ++i) {
          acc = w3_and(acc, line_values[g.fanin[i]]);
        }
        if (g.type == GateType::Nand) {
          acc = w3_not(acc);
        }
        break;
      case GateType::Or:
      case GateType::Nor:
        for (std::size_t i = 1; i < g.fanin.size(); ++i) {
          acc = w3_or(acc, line_values[g.fanin[i]]);
        }
        if (g.type == GateType::Nor) {
          acc = w3_not(acc);
        }
        break;
      case GateType::Xor:
      case GateType::Xnor:
        for (std::size_t i = 1; i < g.fanin.size(); ++i) {
          acc = w3_xor(acc, line_values[g.fanin[i]]);
        }
        if (g.type == GateType::Xnor) {
          acc = w3_not(acc);
        }
        break;
      case GateType::Input:
      case GateType::Dff:
        break;
    }
    line_values[id] = acc;
  }
}

std::vector<Word3> ParallelSim3::next_state(
    std::span<const Word3> line_values) const {
  std::vector<Word3> next;
  next.reserve(nl_->dffs().size());
  for (const net::GateId dff : nl_->dffs()) {
    next.push_back(line_values[nl_->gate(dff).fanin[0]]);
  }
  return next;
}

}  // namespace gdf::sim
