#include "sim/backend.hpp"

#include <algorithm>
#include <string>

#include "base/error.hpp"
#include "sim/parallel3.hpp"

namespace gdf::sim {

LaneSpec parse_lanes(std::string_view text) {
  if (text == "auto") {
    return LaneSpec{LaneSpec::Width::Auto};
  }
  if (text == "64") {
    return LaneSpec{LaneSpec::Width::W64};
  }
  if (text == "256") {
    return LaneSpec{LaneSpec::Width::W256};
  }
  if (text == "512") {
    return LaneSpec{LaneSpec::Width::W512};
  }
  throw Error("--lanes expects 'auto', '64', '256' or '512', got '" +
              std::string(text) + "'");
}

unsigned resolve_lane_count(LaneSpec spec) {
  switch (spec.width) {
    case LaneSpec::Width::W64:
      return 64;
    case LaneSpec::Width::W256:
      return 256;
    case LaneSpec::Width::W512:
      return 512;
    case LaneSpec::Width::Auto:
      break;
  }
  // Probe the host vector width: a WordN<K> plane loop vectorizes to one
  // op per 64*K lanes only when the registers are wide enough; past that
  // the extra planes just cost more scalar ops per body.
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx512f")) {
    return 512;
  }
  if (__builtin_cpu_supports("avx2")) {
    return 256;
  }
#endif
  return 64;
}

const char* lane_backend_name(unsigned lanes) {
  switch (lanes) {
    case 64:
      return "word64";
    case 256:
      return "word256";
    case 512:
      return "word512";
    default:
      break;
  }
  GDF_ASSERT(false, "unsupported lane count");
  return "?";
}

namespace {

/// The WordN<K> rung: lane planes live in host memory and the kernel is
/// the shared eval_flat loop at 64*K lanes per body.
template <unsigned K>
class WordNBackend final : public SimBackend {
 public:
  using Word = WordN<K>;

  explicit WordNBackend(std::shared_ptr<const FlatCircuit> fc)
      : sim_(std::move(fc)) {}

  unsigned lanes() const override { return Word::kLanes; }

  const char* name() const override {
    return lane_backend_name(Word::kLanes);
  }

  void load_frames(std::span<const InputVec> frames) override {
    const FlatCircuit& fc = *sim_.flat();
    const std::size_t n_pi = fc.inputs().size();
    pi_frames_.resize(frames.size());
    for (std::size_t f = 0; f < frames.size(); ++f) {
      GDF_ASSERT(frames[f].size() == n_pi, "PI size mismatch");
      pi_frames_[f].resize(n_pi);
      for (std::size_t i = 0; i < n_pi; ++i) {
        pi_frames_[f][i] = wn_broadcast<K>(frames[f][i]);
      }
    }
  }

  void run_pass(const StateVec& state_after_fast,
                std::span<const std::size_t> flipped,
                std::vector<bool>& observable) override {
    const FlatCircuit& fc = *sim_.flat();
    GDF_ASSERT(flipped.size() + 1 <= Word::kLanes, "too many flips per pass");
    GDF_ASSERT(state_after_fast.size() == fc.dffs().size(),
               "state size mismatch");

    // Lane 0 replays the good machine; lane 1 + l flips one captured bit.
    state_.resize(state_after_fast.size());
    for (std::size_t i = 0; i < state_after_fast.size(); ++i) {
      state_[i] = wn_broadcast<K>(state_after_fast[i]);
    }
    for (std::size_t l = 0; l < flipped.size(); ++l) {
      const std::size_t ff = flipped[l];
      const Lv bad =
          state_after_fast[ff] == Lv::One ? Lv::Zero : Lv::One;
      wn_set_lane(state_[ff], static_cast<unsigned>(l + 1), bad);
    }

    // Lanes of this pass whose difference has not reached a PO yet.
    std::uint64_t pending[K] = {};
    for (std::size_t l = 0; l < flipped.size(); ++l) {
      pending[(l + 1) / 64] |= std::uint64_t{1} << ((l + 1) % 64);
    }
    for (const std::vector<Word>& pi_words : pi_frames_) {
      sim_.eval_frame(pi_words, state_, lines_);
      lane_evals_ +=
          static_cast<long>(fc.body_count()) * static_cast<long>(lanes());
      for (const net::GateId po : fc.outputs()) {
        const Word& w = lines_[po];
        // A lane differs from the good machine when both are definite and
        // opposite: good 1 => the lane's zero rail, good 0 => its one
        // rail. The good machine is lane 0 (plane 0, bit 0).
        const bool good_one = (w.ones[0] & 1) != 0;
        const bool good_zero = (w.zeros[0] & 1) != 0;
        if (!good_one && !good_zero) {
          continue;
        }
        for (unsigned p = 0; p < K; ++p) {
          std::uint64_t hits =
              (good_one ? w.zeros[p] : w.ones[p]) & pending[p];
          while (hits != 0) {
            const unsigned bit =
                static_cast<unsigned>(__builtin_ctzll(hits));
            hits &= hits - 1;
            observable[flipped[64 * p + bit - 1]] = true;
            pending[p] &= ~(std::uint64_t{1} << bit);
          }
        }
      }
      bool all_observed = true;
      for (unsigned p = 0; p < K; ++p) {
        all_observed = all_observed && pending[p] == 0;
      }
      if (all_observed) {
        break;  // every lane of this pass already observed
      }
      sim_.next_state(lines_, next_);
      state_.swap(next_);
    }
  }

  long lane_gate_evals() const override { return lane_evals_; }

 private:
  ParallelSimN<K> sim_;
  std::vector<std::vector<Word>> pi_frames_;
  /// Pass-local scratch, persisted so repeated passes do not reallocate.
  std::vector<Word> state_;
  std::vector<Word> lines_;
  std::vector<Word> next_;
  long lane_evals_ = 0;
};

}  // namespace

std::unique_ptr<SimBackend> make_sim_backend(
    std::shared_ptr<const FlatCircuit> fc, unsigned lanes) {
  GDF_ASSERT(fc != nullptr, "null flat circuit");
  switch (lanes) {
    case 64:
      return std::make_unique<WordNBackend<1>>(std::move(fc));
    case 256:
      return std::make_unique<WordNBackend<4>>(std::move(fc));
    case 512:
      return std::make_unique<WordNBackend<8>>(std::move(fc));
    default:
      break;
  }
  GDF_ASSERT(false, "unsupported lane count");
  return nullptr;
}

}  // namespace gdf::sim
