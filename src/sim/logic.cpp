#include "sim/logic.hpp"

#include "base/error.hpp"

namespace gdf::sim {

std::string_view lv_name(Lv v) {
  switch (v) {
    case Lv::Zero:
      return "0";
    case Lv::One:
      return "1";
    case Lv::X:
      return "X";
    case Lv::D:
      return "D";
    case Lv::Dbar:
      return "D'";
  }
  return "?";
}

Lv good_value(Lv v) {
  if (v == Lv::D) return Lv::One;
  if (v == Lv::Dbar) return Lv::Zero;
  return v;
}

Lv faulty_value(Lv v) {
  if (v == Lv::D) return Lv::Zero;
  if (v == Lv::Dbar) return Lv::One;
  return v;
}

Lv combine(Lv good, Lv faulty) {
  if (good == Lv::X || faulty == Lv::X) {
    // If either machine is unknown the pair cannot be expressed exactly in
    // five values; X is the sound over-approximation.
    return Lv::X;
  }
  if (good == faulty) {
    return good;
  }
  return good == Lv::One ? Lv::D : Lv::Dbar;
}

Lv lv_not(Lv a) {
  switch (a) {
    case Lv::Zero:
      return Lv::One;
    case Lv::One:
      return Lv::Zero;
    case Lv::X:
      return Lv::X;
    case Lv::D:
      return Lv::Dbar;
    case Lv::Dbar:
      return Lv::D;
  }
  return Lv::X;
}

Lv lv_and(Lv a, Lv b) {
  // Evaluate good and faulty machines independently; exact for AND.
  const Lv g = (good_value(a) == Lv::Zero || good_value(b) == Lv::Zero)
                   ? Lv::Zero
                   : (good_value(a) == Lv::One ? good_value(b)
                                               : good_value(a));
  const Lv f = (faulty_value(a) == Lv::Zero || faulty_value(b) == Lv::Zero)
                   ? Lv::Zero
                   : (faulty_value(a) == Lv::One ? faulty_value(b)
                                                 : faulty_value(a));
  return combine(g, f);
}

Lv lv_or(Lv a, Lv b) { return lv_not(lv_and(lv_not(a), lv_not(b))); }

Lv lv_xor(Lv a, Lv b) {
  return lv_or(lv_and(a, lv_not(b)), lv_and(lv_not(a), b));
}

const LvTables& lv_tables() {
  static const LvTables tables = [] {
    LvTables t;
    for (int a = 0; a < kLvCount; ++a) {
      const Lv va = static_cast<Lv>(a);
      t.not1[a] = lv_not(va);
      for (int b = 0; b < kLvCount; ++b) {
        const Lv vb = static_cast<Lv>(b);
        t.and2[a][b] = lv_and(va, vb);
        t.or2[a][b] = lv_or(va, vb);
        t.xor2[a][b] = lv_xor(va, vb);
      }
    }
    return t;
  }();
  return tables;
}

Lv eval_gate(net::GateType type, std::span<const Lv> fanin) {
  using net::GateType;
  GDF_ASSERT(!fanin.empty(), "eval_gate needs at least one fanin value");
  switch (type) {
    case GateType::Buf:
      return fanin[0];
    case GateType::Not:
      return lv_not(fanin[0]);
    case GateType::And:
    case GateType::Nand: {
      Lv acc = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) {
        acc = lv_and(acc, fanin[i]);
      }
      return type == GateType::Nand ? lv_not(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      Lv acc = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) {
        acc = lv_or(acc, fanin[i]);
      }
      return type == GateType::Nor ? lv_not(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      Lv acc = fanin[0];
      for (std::size_t i = 1; i < fanin.size(); ++i) {
        acc = lv_xor(acc, fanin[i]);
      }
      return type == GateType::Xnor ? lv_not(acc) : acc;
    }
    case GateType::Input:
    case GateType::Dff:
      break;
  }
  GDF_ASSERT(false, "eval_gate called on a boundary gate");
  return Lv::X;
}

}  // namespace gdf::sim
