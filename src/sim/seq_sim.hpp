// Frame-by-frame simulator of the sequential circuit over the five-valued
// logic. One "frame" is one clock period: combinational settling followed by
// the register edge — the time frame model of the paper's Figure 2 (this
// simulator always models the slow clock, where every signal settles).
//
// A thin scalar instantiation of the shared flat kernel (sim/flat_circuit):
// the per-frame walk is the same levelized loop the 64-lane engine uses,
// specialized to table-driven five-valued values.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/flat_circuit.hpp"
#include "sim/logic.hpp"
#include "sim/worklist.hpp"

namespace gdf::sim {

/// State vector: one value per flip-flop, indexed by position in
/// Netlist::dffs() order.
using StateVec = std::vector<Lv>;
/// Input vector: one value per primary input, in Netlist::inputs() order.
using InputVec = std::vector<Lv>;

/// A static fault active during a frame: the named line's faulty-machine
/// value is forced to `faulty` (good-machine value computed normally), so a
/// divergence appears as D/D' and propagates through the D-calculus.
struct Injection {
  net::GateId line = net::kNoGate;
  Lv faulty = Lv::X;

  bool active() const { return line != net::kNoGate; }
};

class SeqSimulator {
 public:
  /// Builds (and owns) a fresh flat form of the netlist.
  explicit SeqSimulator(const net::Netlist& nl);
  /// Shares an already-built flat form — the engines of one flow build the
  /// circuit structure once and hand it around.
  explicit SeqSimulator(std::shared_ptr<const FlatCircuit> fc);

  const net::Netlist& netlist() const { return fc_->netlist(); }
  const std::shared_ptr<const FlatCircuit>& flat() const { return fc_; }

  /// All-X power-up state.
  StateVec unknown_state() const;

  /// Computes every line value for one settled frame. `line_values` is
  /// resized to the gate count; Input gates carry the PI value, Dff gates
  /// carry the present-state value. `injection`, if given, forces the
  /// faulty machine's value at one line (stuck-at style).
  void eval_frame(std::span<const Lv> pis, std::span<const Lv> state,
                  std::vector<Lv>& line_values,
                  const Injection* injection = nullptr) const;

  /// Incremental resettle of a settled frame after boundary changes: the
  /// caller updated some Input/Dff line values in `line_values` (already
  /// including any injection at a boundary site) and pushed the changed
  /// lines' readers() into `work`. Replays only the affected body cones;
  /// the result is exactly eval_frame() over the updated boundary. The
  /// worklist is caller-owned scratch so the simulator stays shareable.
  void resettle_frame(std::vector<Lv>& line_values, BitQueue& work,
                      const Injection* injection = nullptr) const;

  /// Next-state vector implied by settled line values (value at each DFF's
  /// data pin).
  StateVec next_state(std::span<const Lv> line_values) const;

  /// Primary output values from settled line values.
  std::vector<Lv> outputs(std::span<const Lv> line_values) const;

  /// Runs a whole input sequence from `state`, returning the final state;
  /// if `po_trace` is given it receives the PO vector of every frame.
  StateVec run(std::span<const InputVec> sequence, StateVec state,
               std::vector<std::vector<Lv>>* po_trace = nullptr) const;

 private:
  std::shared_ptr<const FlatCircuit> fc_;
};

}  // namespace gdf::sim
