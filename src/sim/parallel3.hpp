// Dual-rail parallel three-valued simulation: 64*K independent machines
// per pass. Used by FAUSIM to evaluate, in one sweep, the good machine
// together with one faulty machine per fault-effect-carrying flip-flop
// (the paper's phase-2 "stuck-at fault simulation" of the propagation
// sequence).
//
// A thin WordN<K> instantiation of the shared flat kernel
// (sim/flat_circuit): the same levelized loop as the scalar engine, one
// lane block per step. K is the compile-time plane count (sim/wordn.hpp);
// ParallelSim3 is the classic 64-lane K=1 engine, and the wider rungs are
// explicitly instantiated in parallel3.cpp so every translation unit
// shares one copy of the kernel.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "base/error.hpp"
#include "netlist/netlist.hpp"
#include "sim/flat_circuit.hpp"
#include "sim/logic.hpp"
#include "sim/wordn.hpp"

namespace gdf::sim {

/// The classic one-word 64-lane form, kept as the canonical name.
using Word3 = WordN<1>;
using Word3Ops = WordNOps<1>;

/// Levelized full-circuit evaluation over WordN<K> lane blocks.
template <unsigned K>
class ParallelSimN {
 public:
  using Word = WordN<K>;

  /// Builds (and owns) a fresh flat form of the netlist.
  explicit ParallelSimN(const net::Netlist& nl)
      : fc_(FlatCircuit::build(nl)) {}
  /// Shares an already-built flat form.
  explicit ParallelSimN(std::shared_ptr<const FlatCircuit> fc)
      : fc_(std::move(fc)) {
    GDF_ASSERT(fc_ != nullptr, "null flat circuit");
  }

  const std::shared_ptr<const FlatCircuit>& flat() const { return fc_; }

  /// Evaluates one settled frame. `pis` and `state` are per-line boundary
  /// words (inputs in Netlist::inputs() order, state in dffs() order).
  /// Fills `line_values` (resized to gate count).
  void eval_frame(std::span<const Word> pis, std::span<const Word> state,
                  std::vector<Word>& line_values) const {
    const FlatCircuit& fc = *fc_;
    GDF_ASSERT(pis.size() == fc.inputs().size(), "PI word count mismatch");
    GDF_ASSERT(state.size() == fc.dffs().size(), "state word count mismatch");
    line_values.assign(fc.line_count(), Word{});
    for (std::size_t i = 0; i < pis.size(); ++i) {
      line_values[fc.inputs()[i]] = pis[i];
    }
    for (std::size_t i = 0; i < state.size(); ++i) {
      line_values[fc.dffs()[i]] = state[i];
    }
    eval_flat(fc, WordNOps<K>{}, line_values.data());
  }

  /// Next-state words (value at each DFF data pin).
  std::vector<Word> next_state(std::span<const Word> line_values) const {
    std::vector<Word> next;
    next_state(line_values, next);
    return next;
  }

  /// In-place variant: fills `next` without allocating per frame.
  void next_state(std::span<const Word> line_values,
                  std::vector<Word>& next) const {
    const std::span<const net::GateId> taps = fc_->dff_data();
    next.resize(taps.size());
    for (std::size_t i = 0; i < taps.size(); ++i) {
      next[i] = line_values[taps[i]];
    }
  }

 private:
  std::shared_ptr<const FlatCircuit> fc_;
};

extern template class ParallelSimN<1>;
extern template class ParallelSimN<4>;
extern template class ParallelSimN<8>;

/// The classic 64-lane engine.
using ParallelSim3 = ParallelSimN<1>;

}  // namespace gdf::sim
