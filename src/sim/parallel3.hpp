// Dual-rail parallel three-valued simulation: 64 independent machines per
// pass. Used by FAUSIM to evaluate, in one sweep, the good machine together
// with one faulty machine per fault-effect-carrying flip-flop (the paper's
// phase-2 "stuck-at fault simulation" of the propagation sequence).
//
// Encoding per line: bit k of `ones` set => machine k sees 1; bit k of
// `zeros` set => machine k sees 0; neither => X. Both set is a bug.
//
// A thin Word3 instantiation of the shared flat kernel (sim/flat_circuit):
// the same levelized loop as the scalar engine, 64 lanes per step.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/flat_circuit.hpp"
#include "sim/logic.hpp"

namespace gdf::sim {

struct Word3 {
  std::uint64_t ones = 0;
  std::uint64_t zeros = 0;
};

inline Word3 w3_const(Lv v, std::uint64_t lanes) {
  Word3 w;
  if (v == Lv::One) {
    w.ones = lanes;
  } else if (v == Lv::Zero) {
    w.zeros = lanes;
  }
  return w;
}

inline Word3 w3_not(Word3 a) { return Word3{a.zeros, a.ones}; }

inline Word3 w3_and(Word3 a, Word3 b) {
  return Word3{a.ones & b.ones, a.zeros | b.zeros};
}

inline Word3 w3_or(Word3 a, Word3 b) {
  return Word3{a.ones | b.ones, a.zeros & b.zeros};
}

inline Word3 w3_xor(Word3 a, Word3 b) {
  return Word3{(a.ones & b.zeros) | (a.zeros & b.ones),
               (a.ones & b.ones) | (a.zeros & b.zeros)};
}

/// Per-lane three-valued value extraction.
Lv w3_lane(Word3 w, unsigned lane);

/// 64-lane dual-rail instantiation of the flat kernel's Ops concept.
struct Word3Ops {
  using Value = Word3;

  Word3 not_(Word3 a) const { return w3_not(a); }
  Word3 and_(Word3 a, Word3 b) const { return w3_and(a, b); }
  Word3 or_(Word3 a, Word3 b) const { return w3_or(a, b); }
  Word3 xor_(Word3 a, Word3 b) const { return w3_xor(a, b); }
};

/// Levelized full-circuit evaluation over Word3 lanes.
class ParallelSim3 {
 public:
  /// Builds (and owns) a fresh flat form of the netlist.
  explicit ParallelSim3(const net::Netlist& nl);
  /// Shares an already-built flat form.
  explicit ParallelSim3(std::shared_ptr<const FlatCircuit> fc);

  const std::shared_ptr<const FlatCircuit>& flat() const { return fc_; }

  /// Evaluates one settled frame. `pis` and `state` are per-line Word3
  /// boundary values (inputs in Netlist::inputs() order, state in dffs()
  /// order). Fills `line_values` (resized to gate count).
  void eval_frame(std::span<const Word3> pis, std::span<const Word3> state,
                  std::vector<Word3>& line_values) const;

  /// Next-state words (value at each DFF data pin).
  std::vector<Word3> next_state(std::span<const Word3> line_values) const;

  /// In-place variant: fills `next` without allocating per frame.
  void next_state(std::span<const Word3> line_values,
                  std::vector<Word3>& next) const;

 private:
  std::shared_ptr<const FlatCircuit> fc_;
};

}  // namespace gdf::sim
