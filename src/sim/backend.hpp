// SimBackend — the pluggable seam between FAUSIM's phase-2 orchestration
// and the batched kernel that powers it.
//
// A backend owns the lane-plane storage for one WordN<K> rung of the
// ladder and performs the once-per-block boundary conversions (PI frames
// broadcast to all lanes, base state broadcast then per-lane flipped). The
// caller only ever speaks scalar vectors and lane indices; everything
// word-shaped stays behind this interface, which is exactly what a future
// CUDA/SYCL backend would reimplement (device-resident planes, the same
// load_frames/run_pass contract).
//
// Dispatch is per pass, never per gate: the virtual boundary costs one
// call per block of flip-flops, and the kernel underneath is the shared
// eval_flat loop.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sim/flat_circuit.hpp"
#include "sim/lanes.hpp"
#include "sim/seq_sim.hpp"

namespace gdf::sim {

class SimBackend {
 public:
  virtual ~SimBackend() = default;

  /// Total machine count per pass; lane 0 is the good machine, so
  /// lanes() - 1 faulty machines run per pass.
  virtual unsigned lanes() const = 0;

  /// Display name ("word64" | "word256" | "word512").
  virtual const char* name() const = 0;

  /// Converts the propagation frames' PI vectors to lane planes, exactly
  /// once for all subsequent passes (every lane applies the same PIs).
  virtual void load_frames(std::span<const InputVec> frames) = 0;

  /// One batched pass over the loaded frames. Lane 1 + l flips
  /// `state_after_fast[flipped[l]]` (all entries binary-valued); every
  /// flip whose good/faulty difference reaches a primary output within
  /// the frames sets observable[flipped[l]]. flipped.size() must be at
  /// most lanes() - 1.
  virtual void run_pass(const StateVec& state_after_fast,
                        std::span<const std::size_t> flipped,
                        std::vector<bool>& observable) = 0;

  /// Lane-gate-evaluations performed so far (kernel bodies * lanes).
  virtual long lane_gate_evals() const = 0;
};

/// Builds the WordN backend for the requested lane count (64, 256 or 512;
/// see resolve_lane_count).
std::unique_ptr<SimBackend> make_sim_backend(
    std::shared_ptr<const FlatCircuit> fc, unsigned lanes);

}  // namespace gdf::sim
