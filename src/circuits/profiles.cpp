#include "circuits/profiles.hpp"

#include "base/error.hpp"

namespace gdf::circuits {

const std::vector<BenchmarkProfile>& table3_profiles() {
  // Seeds are arbitrary but frozen: changing them changes every measured
  // number in EXPERIMENTS.md.
  static const std::vector<BenchmarkProfile> profiles = {
      {"s27", 4, 1, 3, 10, CircuitStyle::Exact, 27},
      {"s208", 10, 1, 8, 96, CircuitStyle::CounterChain, 208},
      {"s298", 3, 6, 14, 119, CircuitStyle::Fsm, 298},
      {"s344", 9, 11, 15, 160, CircuitStyle::Arithmetic, 344},
      {"s349", 9, 11, 15, 161, CircuitStyle::Arithmetic, 349},
      {"s386", 7, 7, 6, 159, CircuitStyle::Fsm, 386},
      {"s420", 18, 1, 16, 196, CircuitStyle::CounterChain, 420},
      {"s641", 35, 24, 19, 379, CircuitStyle::Arithmetic, 641},
      {"s713", 35, 23, 19, 393, CircuitStyle::Arithmetic, 713},
      {"s838", 34, 1, 32, 390, CircuitStyle::CounterChain, 838},
      {"s1196", 14, 14, 18, 529, CircuitStyle::Arithmetic, 1196},
      {"s1238", 14, 14, 18, 508, CircuitStyle::Arithmetic, 1238},
  };
  return profiles;
}

const BenchmarkProfile& profile_for(const std::string& name) {
  for (const BenchmarkProfile& p : table3_profiles()) {
    if (p.name == name) {
      return p;
    }
  }
  throw Error("no benchmark profile for circuit '" + name + "'");
}

}  // namespace gdf::circuits
