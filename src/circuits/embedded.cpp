#include "circuits/embedded.hpp"

#include "netlist/bench_io.hpp"

namespace gdf::circuits {

namespace {

constexpr std::string_view kS27 = R"(# s27 — ISCAS'89 benchmark (exact)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";

constexpr std::string_view kC17 = R"(# c17 — ISCAS'85 benchmark (exact)
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
)";

}  // namespace

net::Netlist make_s27() { return net::parse_bench(kS27, "s27"); }

net::Netlist make_c17() { return net::parse_bench(kC17, "c17"); }

std::string_view s27_bench_text() { return kS27; }

std::string_view c17_bench_text() { return kC17; }

}  // namespace gdf::circuits
