// Exact embedded benchmark netlists.
//
// s27 (sequential) and c17 (combinational) are small enough to ship
// verbatim from the public ISCAS benchmark suites; they anchor the test
// suite to real circuits. The larger ISCAS'89 circuits of Table 3 are
// substituted by the synthetic generator (see generator.hpp and DESIGN.md).
#pragma once

#include <string_view>

#include "netlist/netlist.hpp"

namespace gdf::circuits {

/// The ISCAS'89 s27 benchmark: 4 PI, 1 PO, 3 DFF, 10 logic gates.
net::Netlist make_s27();

/// The ISCAS'85 c17 benchmark: 5 PI, 2 PO, 6 NAND gates (combinational).
net::Netlist make_c17();

/// Raw .bench sources (exposed for parser round-trip tests).
std::string_view s27_bench_text();
std::string_view c17_bench_text();

}  // namespace gdf::circuits
