#include "circuits/catalog.hpp"

#include "base/error.hpp"
#include "circuits/embedded.hpp"
#include "circuits/generator.hpp"
#include "circuits/profiles.hpp"

namespace gdf::circuits {

std::vector<std::string> catalog_names() {
  std::vector<std::string> names;
  for (const BenchmarkProfile& p : table3_profiles()) {
    names.push_back(p.name);
  }
  names.push_back("c17");
  return names;
}

net::Netlist load_circuit(const std::string& name) {
  if (name == "s27") {
    return make_s27();
  }
  if (name == "c17") {
    return make_c17();
  }
  return generate_iscas_like(profile_for(name));
}

}  // namespace gdf::circuits
