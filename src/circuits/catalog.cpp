#include "circuits/catalog.hpp"

#include <cstdlib>
#include <filesystem>

#include "base/error.hpp"
#include "circuits/embedded.hpp"
#include "circuits/generator.hpp"
#include "circuits/profiles.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/validate.hpp"

namespace gdf::circuits {

std::vector<std::string> catalog_names() {
  std::vector<std::string> names;
  for (const BenchmarkProfile& p : table3_profiles()) {
    names.push_back(p.name);
  }
  names.push_back("c17");
  return names;
}

net::Netlist load_circuit(const std::string& name) {
  if (name == "s27") {
    return make_s27();
  }
  if (name == "c17") {
    return make_c17();
  }
  return generate_iscas_like(profile_for(name));
}

net::Netlist load_circuit(const std::string& name,
                          const std::string& bench_dir) {
  if (!bench_dir.empty()) {
    const std::filesystem::path path =
        std::filesystem::path(bench_dir) / (name + ".bench");
    if (std::filesystem::exists(path)) {
      net::Netlist nl = net::read_bench_file(path.string());
      net::validate_or_throw(nl);
      return nl;
    }
  }
  return load_circuit(name);
}

std::string resolve_bench_dir(const std::string& override_dir) {
  if (!override_dir.empty()) {
    return override_dir;
  }
  const char* env = std::getenv("GDF_BENCH_DIR");
  return env == nullptr ? std::string() : std::string(env);
}

}  // namespace gdf::circuits

