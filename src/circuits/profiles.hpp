// Structural profiles of the ISCAS'89 circuits evaluated in Table 3 of the
// paper, used to parameterize the synthetic generator. PI/PO/FF/gate counts
// follow the published benchmark documentation (approximate where variants
// of the suite disagree; absolute agreement is not required — see
// DESIGN.md §3 "Substitutions").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gdf::circuits {

/// Families steer the generator toward the structure of the real circuit.
enum class CircuitStyle {
  Exact,         ///< shipped verbatim (s27)
  CounterChain,  ///< fractional-multiplier family: s208, s420, s838
  Fsm,           ///< dense controller FSM: s298, s386
  Arithmetic,    ///< datapath/reconvergent cloud: s344, s349, s641, s713,
                 ///< s1196, s1238
};

struct BenchmarkProfile {
  std::string name;
  int primary_inputs = 0;
  int primary_outputs = 0;
  int flip_flops = 0;
  int logic_gates = 0;
  CircuitStyle style = CircuitStyle::Fsm;
  std::uint64_t seed = 0;
};

/// The twelve circuits of Table 3, in the paper's row order.
const std::vector<BenchmarkProfile>& table3_profiles();

/// Profile lookup by circuit name; throws gdf::Error if unknown.
const BenchmarkProfile& profile_for(const std::string& name);

}  // namespace gdf::circuits
