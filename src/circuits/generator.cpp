#include "circuits/generator.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "netlist/builder.hpp"
#include "netlist/validate.hpp"

namespace gdf::circuits {

namespace {

using net::GateType;
using net::NetlistBuilder;

/// Incremental netlist construction helper: tracks every defined signal
/// and its read count so random fanin picks always reference existing nets
/// (the result is a DAG by construction) and so unread signals can be
/// folded into the primary-output observation trees at the end — the
/// generated circuits must have no dead logic, or their faults would be
/// trivially untestable in ways the real benchmarks are not.
class Weaver {
 public:
  Weaver(NetlistBuilder& builder, Rng& rng)
      : builder_(builder), rng_(rng) {}

  void add_signal(const std::string& name) {
    index_.emplace(name, pool_.size());
    pool_.push_back(name);
    uses_.push_back(0);
  }

  void mark_read(const std::string& name) {
    const auto it = index_.find(name);
    if (it != index_.end()) {
      ++uses_[it->second];
    }
  }

  std::string fresh_gate(GateType type, std::vector<std::string> fanins) {
    for (const std::string& in : fanins) {
      mark_read(in);
    }
    std::string name = "g" + std::to_string(gate_count_++);
    builder_.gate(name, type, std::move(fanins));
    add_signal(name);
    return name;
  }

  /// Random signal, biased toward signals that are not read yet so the
  /// generated circuit has little dead logic.
  std::string pick() {
    GDF_ASSERT(!pool_.empty(), "signal pool is empty");
    // Two draws; prefer the less-used one.
    const std::size_t a = rng_.next_below(pool_.size());
    const std::size_t b = rng_.next_below(pool_.size());
    const std::size_t chosen = uses_[a] <= uses_[b] ? a : b;
    return pool_[chosen];
  }

  /// Random signal from the most recently defined `window` signals;
  /// keeps the cloud layered (deep paths instead of a flat soup).
  std::string pick_recent(std::size_t window) {
    GDF_ASSERT(!pool_.empty(), "signal pool is empty");
    const std::size_t lo =
        pool_.size() > window ? pool_.size() - window : 0;
    const std::size_t chosen = lo + rng_.next_below(pool_.size() - lo);
    return pool_[chosen];
  }

  /// Signals nothing reads yet, in definition order.
  std::vector<std::string> dangling() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (uses_[i] == 0) {
        out.push_back(pool_[i]);
      }
    }
    return out;
  }

  /// Gate mix for the observation trees: OR-heavy (the non-controlling
  /// side value 0 matches the post-reset state, keeping off-path
  /// justification feasible), occasional XOR parity segments in datapath
  /// styles.
  GateType pick_tree_type(bool allow_xor) {
    const unsigned r = static_cast<unsigned>(rng_.next_below(allow_xor ? 8 : 6));
    switch (r) {
      case 0:
      case 1:
      case 2:
        return GateType::Or;
      case 3:
      case 4:
        return GateType::Nand;
      case 5:
        return GateType::Nor;
      default:
        return GateType::Xor;
    }
  }

  GateType pick_gate_type(bool allow_xor) {
    // Mix modelled on ISCAS'89 statistics: NAND/NOR heavy, some AND/OR,
    // occasional NOT handled separately by callers. XOR stays rare — it
    // blocks robust propagation entirely unless its off-path is steady.
    const unsigned r =
        static_cast<unsigned>(rng_.next_below(allow_xor ? 9 : 8));
    switch (r) {
      case 0:
      case 1:
      case 2:
        return GateType::Nand;
      case 3:
      case 4:
        return GateType::Nor;
      case 5:
        return GateType::And;
      case 6:
        return GateType::Or;
      case 7:
        return GateType::Not;
      default:
        return GateType::Xor;
    }
  }

  /// One random cloud gate over existing signals. Wide windows keep the
  /// cloud shallow (the real benchmark circuits are much flatter than a
  /// recency-chained random graph would be).
  std::string random_cloud_gate(bool allow_xor, std::size_t window) {
    const GateType type = pick_gate_type(allow_xor);
    if (type == GateType::Not) {
      return fresh_gate(GateType::Not, {pick_recent(window)});
    }
    const int arity = rng_.next_percent(15) ? 3 : 2;
    std::vector<std::string> ins;
    ins.reserve(static_cast<std::size_t>(arity));
    for (int i = 0; i < arity; ++i) {
      ins.push_back(rng_.next_percent(35) ? pick_recent(window) : pick());
    }
    return fresh_gate(type, std::move(ins));
  }

  int gate_count() const { return gate_count_; }

 private:
  NetlistBuilder& builder_;
  Rng& rng_;
  std::vector<std::string> pool_;
  std::vector<int> uses_;
  std::unordered_map<std::string, std::size_t> index_;
  int gate_count_ = 0;
};

/// Common tail: pad the cloud toward the budget, then fold every dangling
/// signal into balanced observation trees, one per primary output. This is
/// what keeps the synthetic circuits honest — every line is observable
/// somewhere, like in the real ISCAS'89 netlists.
void finish_outputs(NetlistBuilder& builder, Weaver& weaver, Rng& rng,
                    const BenchmarkProfile& p, bool allow_xor) {
  // Each dangling signal will cost roughly one tree gate, so stop padding
  // when cloud + projected tree size reaches the budget.
  for (;;) {
    const int projected =
        weaver.gate_count() +
        static_cast<int>(weaver.dangling().size()) - p.primary_outputs;
    if (projected >= p.logic_gates || weaver.gate_count() > p.logic_gates) {
      break;
    }
    weaver.random_cloud_gate(allow_xor, 24);
  }

  std::vector<std::string> danglers = weaver.dangling();
  // Distribute the danglers round-robin over the outputs.
  std::vector<std::vector<std::string>> buckets(
      static_cast<std::size_t>(p.primary_outputs));
  for (std::size_t i = 0; i < danglers.size(); ++i) {
    buckets[i % buckets.size()].push_back(danglers[i]);
  }
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    std::vector<std::string>& bucket = buckets[i];
    while (bucket.empty()) {
      bucket.push_back(weaver.pick());  // starved bucket: observe anything
    }
    // Fold pairwise into a balanced tree of mixed gate types.
    while (bucket.size() > 2) {
      std::vector<std::string> next;
      for (std::size_t k = 0; k + 1 < bucket.size(); k += 2) {
        next.push_back(weaver.fresh_gate(
            weaver.pick_tree_type(allow_xor), {bucket[k], bucket[k + 1]}));
      }
      if (bucket.size() % 2 != 0) {
        next.push_back(bucket.back());
      }
      bucket = std::move(next);
    }
    if (bucket.size() == 1) {
      bucket.push_back(weaver.pick());
    }
    const GateType type = rng.next_bool() ? GateType::Nand : GateType::Nor;
    const std::string po = "po" + std::to_string(i);
    weaver.mark_read(bucket[0]);
    weaver.mark_read(bucket[1]);
    builder.gate(po, type, {bucket[0], bucket[1]});
    builder.output(po);
  }
}

net::Netlist generate_counter_chain(const BenchmarkProfile& p) {
  Rng rng(p.seed);
  NetlistBuilder builder(p.name);
  Weaver weaver(builder, rng);

  std::vector<std::string> pis;
  for (int i = 0; i < p.primary_inputs; ++i) {
    const std::string name = "pi" + std::to_string(i);
    builder.input(name);
    weaver.add_signal(name);
    pis.push_back(name);
  }
  std::vector<std::string> q;
  for (int i = 0; i < p.flip_flops; ++i) {
    const std::string name = "q" + std::to_string(i);
    weaver.add_signal(name);
    q.push_back(name);
  }

  // Control pins modelled on the loadable fractional-multiplier family:
  // pi0 clears, pi1 enables counting, pi2 loads parallel data computed by
  // a small input cloud. The load path is what makes deep state bits
  // controllable at all (without it nearly every fault is sequentially
  // untestable, far beyond what the paper reports).
  const std::string nclear = weaver.fresh_gate(GateType::Not, {pis[0]});
  const std::string load = pis.size() >= 3 ? pis[2] : pis.back();
  const std::string nload = weaver.fresh_gate(GateType::Not, {load});
  const std::string enable =
      p.primary_inputs >= 2
          ? weaver.fresh_gate(GateType::And, {pis[1], nclear})
          : nclear;
  const std::string hold = weaver.fresh_gate(GateType::And, {nclear, nload});

  // Small input cloud supplying the parallel-load data.
  const int cloud_budget = p.logic_gates / 5;
  const int cloud_start = weaver.gate_count();
  while (weaver.gate_count() - cloud_start < cloud_budget) {
    weaver.random_cloud_gate(/*allow_xor=*/false, 12);
  }

  // Ripple carry chain: carry0 = enable, carry_{i+1} = carry_i AND q_i;
  // count value (q_i XOR carry_i) is spelled with NAND gates like the real
  // fractional multipliers (they contain no XOR primitives):
  //   d_i = (count_i AND hold) OR (load AND data_i).
  std::string carry = enable;
  std::vector<std::string> d(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    const std::string nboth =
        weaver.fresh_gate(GateType::Nand, {q[i], carry});
    const std::string t1 = weaver.fresh_gate(GateType::Nand, {q[i], nboth});
    const std::string t2 = weaver.fresh_gate(GateType::Nand, {carry, nboth});
    const std::string x = weaver.fresh_gate(GateType::Nand, {t1, t2});
    const std::string keep = weaver.fresh_gate(GateType::And, {x, hold});
    const std::string data = weaver.pick();
    const std::string via =
        weaver.fresh_gate(GateType::And, {load, data});
    d[i] = weaver.fresh_gate(GateType::Or, {keep, via});
    if (i + 1 < q.size()) {
      carry = weaver.fresh_gate(GateType::And, {carry, q[i]});
    }
  }
  for (std::size_t i = 0; i < q.size(); ++i) {
    weaver.mark_read(d[i]);
    builder.dff(q[i], d[i]);
  }

  // Ripple/decode taps: real counters expose their state at the outputs;
  // without these the state would be unobservable and every state-side
  // fault sequentially untestable. Taps stay shallow (pairwise) so their
  // off-path conditions are individually reachable through the load path.
  // They are left dangling on purpose — finish_outputs folds them into
  // the PO trees.
  for (std::size_t i = 0; i < q.size(); ++i) {
    switch (i % 3) {
      case 0:
        weaver.fresh_gate(GateType::And, {q[i], q[(i + 1) % q.size()]});
        break;
      case 1:
        weaver.fresh_gate(GateType::Or, {q[i], q[(i + 1) % q.size()]});
        break;
      default:
        // Direct ripple output — no off-path condition at the tap.
        weaver.fresh_gate(GateType::Buf, {q[i]});
        break;
    }
  }

  finish_outputs(builder, weaver, rng, p, /*allow_xor=*/false);
  return builder.build();
}

net::Netlist generate_fsm(const BenchmarkProfile& p) {
  Rng rng(p.seed);
  NetlistBuilder builder(p.name);
  Weaver weaver(builder, rng);

  std::vector<std::string> pis;
  for (int i = 0; i < p.primary_inputs; ++i) {
    const std::string name = "pi" + std::to_string(i);
    builder.input(name);
    weaver.add_signal(name);
    pis.push_back(name);
  }
  std::vector<std::string> q;
  for (int i = 0; i < p.flip_flops; ++i) {
    const std::string name = "q" + std::to_string(i);
    weaver.add_signal(name);
    q.push_back(name);
  }

  const std::string nreset = weaver.fresh_gate(GateType::Not, {pis[0]});

  // Classic controller shape: the next-state logic is two-level over
  // (state, inputs) with a ring-shift backbone — real controllers walk
  // through a structured, *reachable* state space, unlike a random
  // combinational tangle. Most bits reset; a few free-run (the source of
  // sequentially untestable faults the paper discusses).
  const auto literal = [&](bool state_ok) -> std::string {
    std::string lit;
    if (state_ok && rng.next_percent(40)) {
      lit = q[rng.next_below(q.size())];
    } else {
      lit = pis[rng.next_below(pis.size())];
    }
    if (rng.next_percent(35)) {
      lit = weaver.fresh_gate(GateType::Not, {lit});
    } else {
      weaver.mark_read(lit);
    }
    return lit;
  };
  for (int i = 0; i < p.flip_flops; ++i) {
    const std::string& prev =
        q[static_cast<std::size_t>((i + p.flip_flops - 1) % p.flip_flops)];
    const std::string shift_term =
        weaver.fresh_gate(GateType::And, {prev, literal(false)});
    const std::string set_term = weaver.fresh_gate(
        GateType::And, {literal(false), literal(true)});
    std::string d =
        weaver.fresh_gate(GateType::Or, {shift_term, set_term});
    if (i % 4 != 3) {
      d = weaver.fresh_gate(GateType::And, {d, nreset});
    }
    weaver.mark_read(d);
    builder.dff(q[static_cast<std::size_t>(i)], d);
  }

  finish_outputs(builder, weaver, rng, p, /*allow_xor=*/false);
  return builder.build();
}

net::Netlist generate_arithmetic(const BenchmarkProfile& p) {
  Rng rng(p.seed);
  NetlistBuilder builder(p.name);
  Weaver weaver(builder, rng);

  for (int i = 0; i < p.primary_inputs; ++i) {
    const std::string name = "pi" + std::to_string(i);
    builder.input(name);
    weaver.add_signal(name);
  }
  std::vector<std::string> q;
  for (int i = 0; i < p.flip_flops; ++i) {
    const std::string name = "q" + std::to_string(i);
    weaver.add_signal(name);
    q.push_back(name);
  }

  // Layered reconvergent cloud first (roughly 60% of the budget), then the
  // register taps, then the PO decode handled by finish_outputs.
  const int cloud_budget = (p.logic_gates * 6) / 10;
  while (weaver.gate_count() < cloud_budget) {
    weaver.random_cloud_gate(/*allow_xor=*/true, 64);
  }

  const std::string nreset =
      weaver.fresh_gate(GateType::Not, {std::string("pi0")});
  for (int i = 0; i < p.flip_flops; ++i) {
    std::string d = weaver.random_cloud_gate(/*allow_xor=*/true, 32);
    if (i % 3 != 2) {
      d = weaver.fresh_gate(GateType::And, {d, nreset});
    }
    weaver.mark_read(d);
    builder.dff(q[static_cast<std::size_t>(i)], d);
  }

  finish_outputs(builder, weaver, rng, p, /*allow_xor=*/true);
  return builder.build();
}

}  // namespace

net::Netlist generate_iscas_like(const BenchmarkProfile& profile) {
  check(profile.style != CircuitStyle::Exact,
        "circuit '" + profile.name + "' is shipped exactly, not generated");
  net::Netlist nl;
  switch (profile.style) {
    case CircuitStyle::CounterChain:
      nl = generate_counter_chain(profile);
      break;
    case CircuitStyle::Fsm:
      nl = generate_fsm(profile);
      break;
    case CircuitStyle::Arithmetic:
    default:
      nl = generate_arithmetic(profile);
      break;
  }
  net::validate_or_throw(nl);
  return nl;
}

}  // namespace gdf::circuits
