// Deterministic synthetic ISCAS'89-like circuit generator.
//
// The original ISCAS'89 netlist files are not available offline, so the
// Table 3 circuits (other than s27) are substituted by generated circuits
// matched to each benchmark's published PI/PO/FF/gate profile and to its
// structural family:
//
//  * CounterChain — a loadable/clearable ripple-enable counter with a
//    product-term carry chain, modelled on the s208/s420/s838 fractional
//    multipliers. High-order bits need exponentially long excitation
//    sequences, reproducing the huge untestable/aborted counts the paper
//    reports for s838.
//  * Fsm — a dense controller: random product terms over {state, inputs}
//    feed the next-state and output decode logic (s298, s386).
//  * Arithmetic — a layered reconvergent datapath cloud with register taps
//    (s344/s349/s641/s713/s1196/s1238).
//
// Generation is fully deterministic in the profile's seed.
#pragma once

#include "circuits/profiles.hpp"
#include "netlist/netlist.hpp"

namespace gdf::circuits {

/// Generates a netlist matching the profile's interface counts exactly
/// (PI/PO/FF) and its gate count approximately (within a few gates).
/// Throws gdf::Error for profiles with style Exact.
net::Netlist generate_iscas_like(const BenchmarkProfile& profile);

}  // namespace gdf::circuits
