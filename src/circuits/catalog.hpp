// Central registry of benchmark circuits used by tests, examples and the
// bench harnesses.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace gdf::circuits {

/// Names of every circuit the catalog can produce, in Table 3 order
/// (plus "c17" at the end).
std::vector<std::string> catalog_names();

/// Builds the circuit: exact netlist for s27/c17, generated ISCAS-like
/// substitute for the other Table 3 entries. Throws gdf::Error for unknown
/// names. The result is validated.
net::Netlist load_circuit(const std::string& name);

}  // namespace gdf::circuits
