// Central registry of benchmark circuits used by tests, examples and the
// bench harnesses.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace gdf::circuits {

/// Names of every circuit the catalog can produce, in Table 3 order
/// (plus "c17" at the end).
std::vector<std::string> catalog_names();

/// Builds the circuit: exact netlist for s27/c17, generated ISCAS-like
/// substitute for the other Table 3 entries. Throws gdf::Error for unknown
/// names. The result is validated.
net::Netlist load_circuit(const std::string& name);

/// File-backed catalog: when `bench_dir` is non-empty and contains
/// `<name>.bench`, that genuine netlist is parsed, validated and returned
/// (so the Table-3 sweep runs the real ISCAS'89 circuits); otherwise falls
/// back to load_circuit(name). A present-but-malformed file throws rather
/// than silently substituting.
net::Netlist load_circuit(const std::string& name,
                          const std::string& bench_dir);

/// The bench directory a sweep should use: `override_dir` when non-empty,
/// else the GDF_BENCH_DIR environment variable, else "" (disabled).
std::string resolve_bench_dir(const std::string& override_dir = "");

}  // namespace gdf::circuits
