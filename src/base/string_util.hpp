// Small string helpers used by the .bench parser and the report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gdf {

/// Strips leading and trailing whitespace.
std::string_view trim(std::string_view text);

/// Splits on `sep`, trimming each piece; empty pieces are kept.
std::vector<std::string> split(std::string_view text, char sep);

/// ASCII lower-casing (identifiers in .bench files are case-insensitive).
std::string to_lower(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Renders n right-aligned in a field of `width` characters.
std::string pad_left(const std::string& text, std::size_t width);

/// Renders text left-aligned in a field of `width` characters.
std::string pad_right(const std::string& text, std::size_t width);

}  // namespace gdf
