#include "base/error.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace gdf {

namespace detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::ostringstream os;
  os << "GDF_ASSERT failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  std::cerr << os.str() << std::endl;
  std::abort();
}

}  // namespace detail

const char* error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::Input:
      return "input";
    case ErrorKind::Resource:
      return "resource";
    case ErrorKind::Internal:
      return "internal";
    case ErrorKind::Cancelled:
      return "cancelled";
  }
  return "internal";
}

void check(bool cond, const std::string& message) {
  if (!cond) {
    throw Error(message);
  }
}

void check_resource(bool cond, const std::string& message) {
  if (!cond) {
    throw Error(ErrorKind::Resource, message);
  }
}

void throw_cancelled() {
  throw Error(ErrorKind::Cancelled, "cancelled");
}

}  // namespace gdf
