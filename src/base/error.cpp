#include "base/error.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace gdf {

namespace detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::ostringstream os;
  os << "GDF_ASSERT failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  std::cerr << os.str() << std::endl;
  std::abort();
}

}  // namespace detail

void check(bool cond, const std::string& message) {
  if (!cond) {
    throw Error(message);
  }
}

}  // namespace gdf
