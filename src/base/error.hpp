// Error handling primitives shared by all gdfatpg modules.
//
// Failures fall into a small taxonomy so the sweep orchestrator can apply
// a policy per kind instead of aborting on the first throw:
//  * Input     — bad user data (malformed netlist, inconsistent options);
//                deterministic for a given invocation, never retried.
//  * Resource  — the environment failed (unreadable file, I/O error);
//                potentially transient, the only kind --on-error retry:N
//                retries.
//  * Internal  — an algorithm invariant broke; a bug, never retried.
//  * Cancelled — cooperative cancellation (SIGINT/SIGTERM via a
//                CancelToken); not an error row, the sweep drains its
//                canonical frontier and reports a partial run.
// Invariant checks that must crash (corrupting silently would be worse
// than dying) stay GDF_ASSERT.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace gdf {

enum class ErrorKind : std::uint8_t { Input, Resource, Internal, Cancelled };

/// Stable lower-case name ("input", "resource", "internal", "cancelled")
/// — part of the deterministic `# error:` row format.
const char* error_kind_name(ErrorKind kind);

/// Exception thrown for recoverable errors. The message is expected to be
/// shown to a human unchanged; the kind routes the sweep's error policy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message)
      : std::runtime_error(message), kind_(ErrorKind::Input) {}
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

namespace detail {
/// Aborts with a diagnostic; used by GDF_ASSERT below. Never returns.
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace detail

/// Throws gdf::Error (kind Input) with the given message if `cond` is
/// false. Use for conditions caused by user input; they must stay enabled
/// in release builds.
void check(bool cond, const std::string& message);

/// Like check(), but classifies the failure as a Resource error — the
/// environment (file system, I/O) failed, not the user's data.
void check_resource(bool cond, const std::string& message);

/// Throws Error(ErrorKind::Cancelled) — the cooperative cancellation
/// unwind initiated when a CancelToken fires mid-search.
[[noreturn]] void throw_cancelled();

}  // namespace gdf

/// Internal invariant check. Enabled in all build types: ATPG correctness
/// bugs silently produce invalid tests, which is far worse than the cost of
/// the branch.
#define GDF_ASSERT(expr, msg)                                        \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::gdf::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                \
  } while (false)
