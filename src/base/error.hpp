// Error handling primitives shared by all gdfatpg modules.
//
// Two categories of failure exist in this code base:
//  * user-facing errors (bad netlist file, inconsistent options) -> gdf::Error
//  * internal invariant violations (algorithm bugs)              -> GDF_ASSERT
#pragma once

#include <stdexcept>
#include <string>

namespace gdf {

/// Exception thrown for recoverable, user-facing errors such as parse
/// failures or invalid API usage. The message is expected to be shown to a
/// human unchanged.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

namespace detail {
/// Aborts with a diagnostic; used by GDF_ASSERT below. Never returns.
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace detail

/// Throws gdf::Error with the given message if `cond` is false. Use for
/// conditions caused by user input; they must stay enabled in release builds.
void check(bool cond, const std::string& message);

}  // namespace gdf

/// Internal invariant check. Enabled in all build types: ATPG correctness
/// bugs silently produce invalid tests, which is far worse than the cost of
/// the branch.
#define GDF_ASSERT(expr, msg)                                        \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::gdf::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                \
  } while (false)
