// Cooperative cancellation. A CancelToken is a one-way latch: request()
// is async-signal-safe (a lock-free atomic store), so a SIGINT/SIGTERM
// handler may fire it directly; long-running loops poll requested() and
// unwind via throw_cancelled() (see base/error.hpp). The token carries no
// callbacks and owns nothing — holders keep a const pointer and treat
// nullptr as "cancellation not wired".
#pragma once

#include <atomic>

namespace gdf {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Latches the request. Safe from signal handlers and any thread.
  void request() noexcept { flag_.store(true, std::memory_order_relaxed); }

  bool requested() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// True when `token` is wired and has fired.
inline bool cancel_requested(const CancelToken* token) noexcept {
  return token != nullptr && token->requested();
}

}  // namespace gdf
