// Wall-clock stopwatch used for the per-circuit "time [s]" column of the
// benchmark tables and for per-fault abort deadlines.
#pragma once

#include <chrono>

namespace gdf {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gdf
