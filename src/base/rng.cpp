#include "base/rng.hpp"

#include "base/error.hpp"

namespace gdf {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed expansion via splitmix64, the recommended initializer for xoshiro.
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  GDF_ASSERT(bound > 0, "next_below requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  GDF_ASSERT(lo <= hi, "next_in requires lo <= hi");
  const std::uint64_t span = hi - lo;
  if (span == UINT64_MAX) {
    // Full 64-bit domain: span + 1 would wrap to 0 and trip next_below's
    // assertion; every raw draw is admissible.
    return next();
  }
  return lo + next_below(span + 1);
}

bool Rng::next_bool() { return (next() & 1) != 0; }

bool Rng::next_percent(unsigned percent) {
  return next_below(100) < percent;
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace gdf
