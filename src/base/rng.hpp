// Deterministic pseudo-random number generator (xoshiro256**). All random
// choices in the system (synthetic circuit generation, X-filling before
// fault simulation) go through this so that every experiment is exactly
// reproducible from its seed.
#pragma once

#include <cstdint>

namespace gdf {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive; requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Fair coin.
  bool next_bool();

  /// True with probability `percent`/100.
  bool next_percent(unsigned percent);

  /// Uniform double in [0, 1).
  double next_double();

 private:
  std::uint64_t state_[4];
};

}  // namespace gdf
