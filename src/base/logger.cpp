#include "base/logger.hpp"

#include <atomic>
#include <iostream>

namespace gdf {

namespace {
// Atomic so concurrent AtpgSessions can consult the level while another
// thread (re)configures it — the one process-global mutable in the
// library.
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel Logger::level() { return g_level; }

void Logger::set_level(LogLevel level) { g_level = level; }

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) {
    return;
  }
  std::cerr << "[" << level_name(level) << "] " << message << '\n';
}

}  // namespace gdf
