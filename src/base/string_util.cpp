#include "base/string_util.hpp"

#include <algorithm>
#include <cctype>

namespace gdf {

std::string_view trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      pieces.emplace_back(trim(text.substr(start, i - start)));
      start = i + 1;
    }
  }
  return pieces;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string pad_left(const std::string& text, std::size_t width) {
  if (text.size() >= width) {
    return text;
  }
  return std::string(width - text.size(), ' ') + text;
}

std::string pad_right(const std::string& text, std::size_t width) {
  if (text.size() >= width) {
    return text;
  }
  return text + std::string(width - text.size(), ' ');
}

}  // namespace gdf
