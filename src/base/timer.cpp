#include "base/timer.hpp"

// Header-only in practice; this translation unit exists so the library has a
// stable archive member for the target and a place for future extensions
// (e.g. CPU-time clocks on platforms that need them).
