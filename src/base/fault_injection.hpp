// Fault-injection hooks for the crash-safety tests (GDF_FI=...).
//
// The environment variable GDF_FI holds a semicolon-separated list of
// directives; production code calls the fire_* probes at well-defined
// sites and the probes act only when a matching directive is present, so
// an unset GDF_FI costs one getenv per probe and nothing else:
//
//   cell-throw:LABEL[:N]  the sweep worker throws a Resource error before
//                         running any cell of circuit LABEL (N times,
//                         then behaves normally; default: always)
//   stall:LABEL:MS        the sweep worker sleeps MS milliseconds before
//                         running a cell of circuit LABEL, waking early
//                         (10 ms granularity) when the cancel token fires
//                         — the deterministic "worker stuck mid-sweep"
//                         window the kill-and-resume ctest interrupts
//   read-fail:SUBSTR[:N]  read_bench_file throws a Resource error for any
//                         path containing SUBSTR (N times, then succeeds
//                         — what --on-error retry:N recovers from)
//   journal-truncate      the journal writes only the first half of the
//                         next record and omits its newline — a torn
//                         tail, which resume must tolerate
//
// Firing counts (the [:N] forms) persist across probe calls in a small
// process-global registry; the directive list itself is re-read from the
// environment on every probe so tests can setenv/unsetenv around calls.
#pragma once

#include <string>

#include "base/cancel.hpp"

namespace gdf::fi {

/// True when GDF_FI is set and non-empty (cheap pre-check for call sites
/// that would otherwise build probe arguments).
bool enabled();

/// cell-throw probe: throws Error(ErrorKind::Resource) when an armed
/// directive matches `label`.
void fire_cell_throw(const std::string& label);

/// stall probe: blocks per a matching stall directive; returns early when
/// `cancel` fires. No-op without a match.
void fire_stall(const std::string& label, const CancelToken* cancel);

/// read-fail probe: throws Error(ErrorKind::Resource) when an armed
/// directive's substring occurs in `path`.
void fire_read_fail(const std::string& path);

/// journal-truncate probe: true exactly once per armed directive — the
/// caller then writes a torn record.
bool fire_journal_truncate();

/// Clears the firing-count registry (tests re-arm [:N] directives).
void reset_for_testing();

}  // namespace gdf::fi
