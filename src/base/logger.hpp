// Minimal leveled logger. ATPG runs produce per-fault traces that are only
// interesting when debugging, so the default level is Warn.
#pragma once

#include <sstream>
#include <string>

namespace gdf {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide log level; not thread safe by design (the ATPG is single
/// threaded, matching the 1995 system).
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  static void write(LogLevel level, const std::string& message);
  static bool enabled(LogLevel level) { return level >= Logger::level(); }
};

namespace detail {
/// Builds one log line in its destructor so call sites can stream into it.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace gdf

#define GDF_LOG(level)                            \
  if (!::gdf::Logger::enabled(level)) {           \
  } else                                          \
    ::gdf::detail::LogLine(level)

#define GDF_DEBUG GDF_LOG(::gdf::LogLevel::Debug)
#define GDF_INFO GDF_LOG(::gdf::LogLevel::Info)
#define GDF_WARN GDF_LOG(::gdf::LogLevel::Warn)
