// Flat arena for learned blocking implicates ("clauses") over value-set
// literals, plus the context-keyed store for fault-independent clauses.
//
// A clause is a nogood: a conjunction of containment facts
//   sets[node_i] ⊆ allowed_i   for every literal i
// that is known to admit no consistent execution. The implication engine
// watches two not-yet-true literals per clause; when every literal's
// containment holds mid-propagation, the engine may declare the conflict
// immediately instead of narrowing on toward the empty set the fixpoint
// would provably reach (propagation rules are monotone, so a state
// satisfying all leaf facts of a conflict derivation re-derives the
// conflict). Clauses therefore only shortcut work — they never change
// which states are conflicted.
//
// Every clause carries quality metadata for the tiered database policy:
// its LBD (literal-block-distance — how many distinct decision levels the
// nogood's literals spanned when it was learned; low LBD = the clause
// talks about tightly coupled decisions and tends to fire again) and an
// EVSIDS-style activity bumped each time the clause announces a conflict.
// The engine's reduction pass keeps LBD≤2 "core" clauses forever and
// ranks the rest by (LBD, activity) — see ImplicationEngine::reduce.
//
// The arena is a flat pool (literals back to back, offset-indexed
// headers) so a search's clause set stays cache-dense and is cheap to
// copy into a re-entry search over the same fault.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "algebra/model.hpp"
#include "algebra/value_set.hpp"

namespace gdf::base {

/// One containment fact: true in an engine state iff
/// sets[node] ⊆ allowed, i.e. (sets[node] & ~allowed) == 0.
struct ClauseLit {
  alg::NodeId node = 0;
  alg::VSet allowed = 0;
};

/// Clause-quality tier by LBD (see ClauseArena::tier_of): core clauses
/// survive every reduction, mid clauses compete on (LBD, activity), local
/// clauses are evicted aggressively.
enum class ClauseTier : std::uint8_t { Core, Mid, Local };

/// Flat clause pool. Clauses are append-only between reductions; an index
/// identifies a clause for the watch lists. Copyable (re-entry searches
/// seed from the base search's arena).
class ClauseArena {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  /// LBD boundaries of the three tiers (Glucose-style).
  static constexpr std::uint32_t kCoreLbd = 2;
  static constexpr std::uint32_t kMidLbd = 6;

  /// Appends a clause stamped with its literal-block distance; rejects
  /// empty input. Returns its index.
  std::size_t add(std::span<const ClauseLit> lits, std::uint32_t lbd = 0);

  std::size_t size() const { return offsets_.size() - 1; }
  /// Total literals pooled — the arena's dominant memory term.
  std::size_t lit_count() const { return pool_.size(); }

  std::span<const ClauseLit> lits(std::size_t clause) const {
    return {pool_.data() + offsets_[clause],
            offsets_[clause + 1] - offsets_[clause]};
  }

  std::uint32_t lbd(std::size_t clause) const { return lbd_[clause]; }
  double activity(std::size_t clause) const { return activity_[clause]; }
  void bump_activity(std::size_t clause, double inc) {
    activity_[clause] += inc;
  }
  /// Rescales every activity (the EVSIDS overflow guard).
  void scale_activities(double factor);

  static ClauseTier tier_of(std::uint32_t lbd) {
    if (lbd <= kCoreLbd) {
      return ClauseTier::Core;
    }
    return lbd <= kMidLbd ? ClauseTier::Mid : ClauseTier::Local;
  }

 private:
  std::vector<ClauseLit> pool_;
  /// size()+1 offsets into pool_ (offsets_[0] == 0 always).
  std::vector<std::size_t> offsets_ = {0};
  std::vector<std::uint32_t> lbd_;
  std::vector<double> activity_;
};

/// A clause proven without reference to any fault site: literals are its
/// complete leaf facts, `footprint` every node whose implication rule the
/// derivation ran through (sorted). A consumer fault may use the clause
/// only when its own site is outside the footprint — at the site the gate
/// rule is replaced by the fault transform, invalidating the derivation.
struct SharedClause {
  std::vector<ClauseLit> lits;
  std::vector<alg::NodeId> footprint;
  /// LBD at learn time in the publishing search — the store's eviction
  /// quality signal (the consumer re-picks watches anyway).
  std::uint32_t lbd = 0;
};

/// Cross-fault clause store, keyed on the shared CircuitContext (one per
/// algebra mode). Thread-safe: publishers append under the mutex,
/// consumers grab an immutable snapshot. Which snapshot a consumer sees
/// depends on scheduling, so consumption is opt-in (--learn shared) and
/// documented as trading byte-stability across worker counts for speed.
///
/// Growth is bounded: the store accounts its clause and byte totals and,
/// at the capacity, runs the same tiered reduction as the per-fault
/// database — LBD≤2 core clauses are kept unconditionally, the rest
/// compete by (LBD ascending, newest first) for the remaining slots.
class ClauseStore {
 public:
  using Snapshot = std::shared_ptr<const std::vector<SharedClause>>;

  explicit ClauseStore(std::size_t capacity = 4096) : capacity_(capacity) {}

  void publish(SharedClause clause);
  /// The current clause set (possibly null when nothing was published).
  Snapshot snapshot() const;
  std::size_t size() const;
  /// Payload bytes of the stored clauses (literals + footprints) — what
  /// --stages reports as clause_store_bytes.
  std::size_t bytes() const;
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  Snapshot clauses_;
  std::size_t bytes_ = 0;
};

}  // namespace gdf::base
