// Flat arena for learned blocking implicates ("clauses") over value-set
// literals, plus the context-keyed store for fault-independent clauses.
//
// A clause is a nogood: a conjunction of containment facts
//   sets[node_i] ⊆ allowed_i   for every literal i
// that is known to admit no consistent execution. The implication engine
// watches two not-yet-true literals per clause; when every literal's
// containment holds mid-propagation, the engine may declare the conflict
// immediately instead of narrowing on toward the empty set the fixpoint
// would provably reach (propagation rules are monotone, so a state
// satisfying all leaf facts of a conflict derivation re-derives the
// conflict). Clauses therefore only shortcut work — they never change
// which states are conflicted.
//
// The arena is a flat pool (literals back to back, offset-indexed
// headers) so a search's clause set stays cache-dense and is cheap to
// copy into a re-entry search over the same fault.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "algebra/model.hpp"
#include "algebra/value_set.hpp"

namespace gdf::base {

/// One containment fact: true in an engine state iff
/// sets[node] ⊆ allowed, i.e. (sets[node] & ~allowed) == 0.
struct ClauseLit {
  alg::NodeId node = 0;
  alg::VSet allowed = 0;
};

/// Flat clause pool. Clauses are append-only; an index identifies a
/// clause for the watch lists. Copyable (re-entry searches seed from the
/// base search's arena).
class ClauseArena {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// Appends a clause; rejects empty input. Returns its index.
  std::size_t add(std::span<const ClauseLit> lits);

  std::size_t size() const { return offsets_.size() - 1; }

  std::span<const ClauseLit> lits(std::size_t clause) const {
    return {pool_.data() + offsets_[clause],
            offsets_[clause + 1] - offsets_[clause]};
  }

 private:
  std::vector<ClauseLit> pool_;
  /// size()+1 offsets into pool_ (offsets_[0] == 0 always).
  std::vector<std::size_t> offsets_ = {0};
};

/// A clause proven without reference to any fault site: literals are its
/// complete leaf facts, `footprint` every node whose implication rule the
/// derivation ran through (sorted). A consumer fault may use the clause
/// only when its own site is outside the footprint — at the site the gate
/// rule is replaced by the fault transform, invalidating the derivation.
struct SharedClause {
  std::vector<ClauseLit> lits;
  std::vector<alg::NodeId> footprint;
};

/// Cross-fault clause store, keyed on the shared CircuitContext (one per
/// algebra mode). Thread-safe: publishers append under the mutex,
/// consumers grab an immutable snapshot. Which snapshot a consumer sees
/// depends on scheduling, so consumption is opt-in (--learn shared) and
/// documented as trading byte-stability across worker counts for speed.
class ClauseStore {
 public:
  using Snapshot = std::shared_ptr<const std::vector<SharedClause>>;

  void publish(SharedClause clause);
  /// The current clause set (possibly null when nothing was published).
  Snapshot snapshot() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  Snapshot clauses_;
};

}  // namespace gdf::base
