#include "base/clause_arena.hpp"

#include <algorithm>
#include <cassert>

namespace gdf::base {

std::size_t ClauseArena::add(std::span<const ClauseLit> lits,
                             std::uint32_t lbd) {
  assert(!lits.empty() && "a clause needs at least one literal");
  if (lits.empty()) return kNone;
  const std::size_t index = size();
  pool_.insert(pool_.end(), lits.begin(), lits.end());
  offsets_.push_back(pool_.size());
  lbd_.push_back(lbd);
  activity_.push_back(0.0);
  return index;
}

void ClauseArena::scale_activities(double factor) {
  for (double& a : activity_) {
    a *= factor;
  }
}

namespace {

std::size_t clause_bytes(const SharedClause& clause) {
  return clause.lits.size() * sizeof(ClauseLit) +
         clause.footprint.size() * sizeof(alg::NodeId);
}

}  // namespace

void ClauseStore::publish(SharedClause clause) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Copy-on-write append: readers keep whatever snapshot they grabbed.
  auto next = clauses_ ? std::make_shared<std::vector<SharedClause>>(*clauses_)
                       : std::make_shared<std::vector<SharedClause>>();
  bytes_ += clause_bytes(clause);
  next->push_back(std::move(clause));
  if (next->size() > capacity_) {
    // Tiered reduction, mirroring the per-fault database: core clauses
    // (LBD≤2) are untouchable, the rest are ranked by LBD ascending with
    // newer clauses winning ties (they reflect the current search
    // frontier). Original publish order is preserved among survivors so
    // consumers see a stable prefix.
    std::vector<std::size_t> rest;
    std::size_t core = 0;
    for (std::size_t i = 0; i < next->size(); ++i) {
      if (ClauseArena::tier_of((*next)[i].lbd) == ClauseTier::Core) {
        ++core;
      } else {
        rest.push_back(i);
      }
    }
    const std::size_t keep_rest = capacity_ > core ? capacity_ - core : 0;
    std::stable_sort(rest.begin(), rest.end(),
                     [&](std::size_t a, std::size_t b) {
                       if ((*next)[a].lbd != (*next)[b].lbd) {
                         return (*next)[a].lbd < (*next)[b].lbd;
                       }
                       return a > b;  // newer first on equal quality
                     });
    rest.resize(std::min(rest.size(), keep_rest));
    std::vector<std::uint8_t> keep(next->size(), 0);
    for (std::size_t i = 0; i < next->size(); ++i) {
      if (ClauseArena::tier_of((*next)[i].lbd) == ClauseTier::Core) {
        keep[i] = 1;
      }
    }
    for (const std::size_t i : rest) {
      keep[i] = 1;
    }
    auto reduced = std::make_shared<std::vector<SharedClause>>();
    reduced->reserve(capacity_);
    bytes_ = 0;
    for (std::size_t i = 0; i < next->size(); ++i) {
      if (keep[i]) {
        bytes_ += clause_bytes((*next)[i]);
        reduced->push_back(std::move((*next)[i]));
      }
    }
    next = std::move(reduced);
  }
  clauses_ = std::move(next);
}

ClauseStore::Snapshot ClauseStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clauses_;
}

std::size_t ClauseStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clauses_ ? clauses_->size() : 0;
}

std::size_t ClauseStore::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

}  // namespace gdf::base
