#include "base/clause_arena.hpp"

#include <cassert>

namespace gdf::base {

std::size_t ClauseArena::add(std::span<const ClauseLit> lits) {
  assert(!lits.empty() && "a clause needs at least one literal");
  if (lits.empty()) return kNone;
  const std::size_t index = size();
  pool_.insert(pool_.end(), lits.begin(), lits.end());
  offsets_.push_back(pool_.size());
  return index;
}

void ClauseStore::publish(SharedClause clause) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Copy-on-write append: readers keep whatever snapshot they grabbed.
  auto next = clauses_ ? std::make_shared<std::vector<SharedClause>>(*clauses_)
                       : std::make_shared<std::vector<SharedClause>>();
  next->push_back(std::move(clause));
  clauses_ = std::move(next);
}

ClauseStore::Snapshot ClauseStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clauses_;
}

std::size_t ClauseStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clauses_ ? clauses_->size() : 0;
}

}  // namespace gdf::base
