#include "base/fault_injection.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/error.hpp"
#include "base/string_util.hpp"

namespace gdf::fi {

namespace {

struct Directive {
  std::string verb;
  std::string target;  ///< label / substring; empty for journal-truncate
  long limit = -1;     ///< firings allowed; -1 = unlimited
};

std::vector<Directive> parse_directives() {
  std::vector<Directive> directives;
  const char* env = std::getenv("GDF_FI");
  if (env == nullptr || *env == '\0') {
    return directives;
  }
  for (const std::string& entry : split(env, ';')) {
    if (entry.empty()) {
      continue;
    }
    const std::vector<std::string> parts = split(entry, ':');
    Directive d;
    d.verb = parts[0];
    if (parts.size() > 1) {
      d.target = parts[1];
    }
    if (parts.size() > 2) {
      d.limit = std::atol(parts[2].c_str());
    }
    directives.push_back(std::move(d));
  }
  return directives;
}

/// Firing counts per directive spelling, persistent across probe calls
/// (the [:N] forms fire N times then go quiet).
std::mutex g_mutex;
std::unordered_map<std::string, long> g_fired;

/// Consumes one firing of `d`; false once its limit is spent.
bool consume(const Directive& d) {
  if (d.limit < 0) {
    return true;
  }
  const std::string key = d.verb + ":" + d.target;
  const std::lock_guard<std::mutex> lock(g_mutex);
  long& fired = g_fired[key];
  if (fired >= d.limit) {
    return false;
  }
  ++fired;
  return true;
}

}  // namespace

bool enabled() {
  const char* env = std::getenv("GDF_FI");
  return env != nullptr && *env != '\0';
}

void fire_cell_throw(const std::string& label) {
  if (!enabled()) {
    return;
  }
  for (const Directive& d : parse_directives()) {
    if (d.verb == "cell-throw" && d.target == label && consume(d)) {
      throw Error(ErrorKind::Resource,
                  "fault injection: forced failure for cell '" + label + "'");
    }
  }
}

void fire_stall(const std::string& label, const CancelToken* cancel) {
  if (!enabled()) {
    return;
  }
  for (const Directive& d : parse_directives()) {
    if (d.verb != "stall" || d.target != label) {
      continue;
    }
    // The third field is the duration here, not a firing limit.
    const long ms = d.limit > 0 ? d.limit : 1000;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < deadline &&
           !cancel_requested(cancel)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

void fire_read_fail(const std::string& path) {
  if (!enabled()) {
    return;
  }
  for (const Directive& d : parse_directives()) {
    if (d.verb == "read-fail" && !d.target.empty() &&
        path.find(d.target) != std::string::npos && consume(d)) {
      throw Error(ErrorKind::Resource,
                  "fault injection: forced read failure for '" + path + "'");
    }
  }
}

bool fire_journal_truncate() {
  if (!enabled()) {
    return false;
  }
  for (const Directive& d : parse_directives()) {
    if (d.verb == "journal-truncate") {
      // One torn record per armed directive.
      Directive once = d;
      once.limit = 1;
      return consume(once);
    }
  }
  return false;
}

void reset_for_testing() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_fired.clear();
}

}  // namespace gdf::fi
