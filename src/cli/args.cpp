#include "cli/args.hpp"

#include <charconv>
#include <sstream>

#include "base/error.hpp"
#include "base/string_util.hpp"
#include "circuits/catalog.hpp"

namespace gdf::cli {

namespace {

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  check(ec == std::errc() && ptr == last && !text.empty(),
        flag + " expects a non-negative integer, got '" + text + "'");
  return value;
}

int parse_int(const std::string& flag, const std::string& text) {
  const std::uint64_t value = parse_u64(flag, text);
  check(value <= 1000000000ULL, flag + " value out of range: " + text);
  return static_cast<int>(value);
}

double parse_seconds(const std::string& flag, const std::string& text) {
  std::istringstream is(text);
  double value = 0.0;
  is >> value;
  check(static_cast<bool>(is) && is.eof() && value >= 0.0,
        flag + " expects a non-negative number of seconds, got '" + text +
            "'");
  return value;
}

/// Splits a comma-separated axis value; rejects empty entries.
std::vector<std::string> parse_list(const std::string& flag,
                                    const std::string& text) {
  const std::vector<std::string> parts = split(text, ',');
  check(!parts.empty(), flag + " expects a comma-separated list");
  for (const std::string& part : parts) {
    check(!part.empty(), flag + ": empty entry in '" + text + "'");
  }
  return parts;
}

alg::Mode parse_mode(const std::string& flag, const std::string& text) {
  if (text == "robust") {
    return alg::Mode::Robust;
  }
  if (text == "nonrobust" || text == "non-robust") {
    return alg::Mode::NonRobust;
  }
  throw Error(flag + " expects 'robust' or 'nonrobust', got '" + text + "'");
}

bool parse_on_off(const std::string& flag, const std::string& text) {
  if (text == "on") {
    return true;
  }
  if (text == "off") {
    return false;
  }
  throw Error(flag + " expects 'on' or 'off', got '" + text + "'");
}

bool parse_sites(const std::string& flag, const std::string& text) {
  if (text == "full") {
    return true;
  }
  if (text == "stems") {
    return false;
  }
  throw Error(flag + " expects 'full' or 'stems', got '" + text + "'");
}

}  // namespace

DriverConfig parse_args(int argc, const char* const* argv) {
  DriverConfig config;
  auto value_of = [&](int& i, const std::string& flag) -> std::string {
    check(i + 1 < argc, flag + " requires a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      config.help = true;
    } else if (arg == "--circuit" || arg == "-c") {
      config.circuits.push_back(value_of(i, arg));
    } else if (arg == "--bench" || arg == "-b") {
      config.bench_files.push_back(value_of(i, arg));
    } else if (arg == "--all") {
      config.all = true;
    } else if (arg == "--list") {
      config.list_only = true;
    } else if (arg == "--csv") {
      config.csv = true;
    } else if (arg == "--stages") {
      config.stage_stats = true;
    } else if (arg == "--non-robust") {
      config.atpg.mode = alg::Mode::NonRobust;
    } else if (arg == "--local-backtracks") {
      config.atpg.local.backtrack_limit = parse_int(arg, value_of(i, arg));
    } else if (arg == "--seq-backtracks") {
      config.atpg.sequential.backtrack_limit =
          parse_int(arg, value_of(i, arg));
    } else if (arg == "--decision-limit") {
      const int limit = parse_int(arg, value_of(i, arg));
      config.atpg.local.decision_limit = limit;
      config.atpg.sequential.decision_limit = limit;
    } else if (arg == "--learn") {
      const std::string mode = value_of(i, arg);
      if (mode == "on") {
        config.atpg.learn = core::LearnMode::On;
      } else if (mode == "off") {
        config.atpg.learn = core::LearnMode::Off;
      } else if (mode == "shared") {
        config.atpg.learn = core::LearnMode::Shared;
      } else {
        throw Error("--learn expects 'on', 'off' or 'shared', got '" + mode +
                    "'");
      }
    } else if (arg == "--learned-limit") {
      config.atpg.learned_limit = parse_int(arg, value_of(i, arg));
    } else if (arg == "--restarts") {
      const std::string mode = value_of(i, arg);
      if (mode == "luby") {
        config.atpg.local.restarts = tdgen::RestartPolicy::Luby;
      } else if (mode == "off") {
        config.atpg.local.restarts = tdgen::RestartPolicy::Off;
      } else {
        throw Error("--restarts expects 'luby' or 'off', got '" + mode + "'");
      }
    } else if (arg == "--restart-base") {
      const int base = parse_int(arg, value_of(i, arg));
      check(base > 0, "--restart-base expects a positive conflict count");
      config.atpg.local.restart_base = base;
    } else if (arg == "--per-fault-seconds") {
      config.atpg.per_fault_seconds = parse_seconds(arg, value_of(i, arg));
    } else if (arg == "--fault-budget") {
      const int budget = parse_int(arg, value_of(i, arg));
      check(budget > 0, "--fault-budget expects a positive assignment count");
      config.atpg.fault_budget = budget;
    } else if (arg == "--on-error") {
      config.on_error = run::parse_on_error(value_of(i, arg));
    } else if (arg == "--journal") {
      config.journal = value_of(i, arg);
      check(!config.journal.empty(), "--journal expects a file path");
    } else if (arg == "--resume") {
      config.resume = true;
    } else if (arg == "--seed") {
      config.atpg.fill_seed = parse_u64(arg, value_of(i, arg));
    } else if (arg == "--tdsim") {
      const std::string engine = value_of(i, arg);
      if (engine == "cpt") {
        config.atpg.tdsim_engine = core::TdsimEngine::Cpt;
      } else if (engine == "exact") {
        config.atpg.tdsim_engine = core::TdsimEngine::Exact;
      } else {
        throw Error("--tdsim expects 'exact' or 'cpt', got '" + engine +
                    "'");
      }
    } else if (arg == "--lanes") {
      config.atpg.lanes = sim::parse_lanes(value_of(i, arg));
    } else if (arg == "--adi-sequences") {
      const int n = parse_int(arg, value_of(i, arg));
      check(n > 0, "--adi-sequences expects a positive sequence count");
      config.atpg.adi_sequences = n;
    } else if (arg == "--no-fault-dropping") {
      config.atpg.fault_dropping = false;
    } else if (arg == "--no-branch-faults") {
      config.atpg.fault_sites.include_branches = false;
      config.atpg.expand_branches = false;
    } else if (arg == "--jobs" || arg == "-j") {
      config.jobs = static_cast<unsigned>(parse_int(arg, value_of(i, arg)));
    } else if (arg == "--shard-faults") {
      const std::size_t epoch = config.shard.epoch_size;
      config.shard = run::parse_shard_faults(value_of(i, arg));
      config.shard.epoch_size = epoch;  // flag order must not matter
    } else if (arg == "--shard-epoch") {
      const int epoch = parse_int(arg, value_of(i, arg));
      check(epoch > 0, "--shard-epoch expects a positive epoch size");
      config.shard.epoch_size = static_cast<std::size_t>(epoch);
    } else if (arg == "--bench-dir") {
      config.bench_dir = value_of(i, arg);
    } else if (arg == "--no-seconds") {
      config.no_seconds = true;
    } else if (arg == "--fault-order") {
      for (const std::string& part : parse_list(arg, value_of(i, arg))) {
        config.fault_orders.push_back(run::parse_fault_order(part));
      }
    } else if (arg == "--modes") {
      for (const std::string& part : parse_list(arg, value_of(i, arg))) {
        config.modes.push_back(parse_mode(arg, part));
      }
    } else if (arg == "--seeds") {
      for (const std::string& part : parse_list(arg, value_of(i, arg))) {
        config.seeds.push_back(parse_u64(arg, part));
      }
    } else if (arg == "--backtracks") {
      for (const std::string& part : parse_list(arg, value_of(i, arg))) {
        config.backtrack_limits.push_back(parse_int(arg, part));
      }
    } else if (arg == "--dropping") {
      for (const std::string& part : parse_list(arg, value_of(i, arg))) {
        config.fault_dropping.push_back(parse_on_off(arg, part));
      }
    } else if (arg == "--fault-sites") {
      for (const std::string& part : parse_list(arg, value_of(i, arg))) {
        config.full_sites.push_back(parse_sites(arg, part));
      }
    } else {
      throw Error("unknown option '" + arg + "' (see gdf_atpg --help)");
    }
  }
  check(!(config.all && !config.circuits.empty()),
        "--all and --circuit are mutually exclusive");
  check(config.help || config.list_only || config.all ||
            !config.circuits.empty() || !config.bench_files.empty(),
        "nothing to do: pass --circuit NAME, --bench FILE, --all, or "
        "--list (see gdf_atpg --help)");
  check(config.help || config.list_only ||
            sweep_spec(config).cells_per_circuit() == 1 || config.csv,
        "a parameter matrix (multi-valued --modes/--fault-order/--seeds/"
        "--backtracks/--dropping/--fault-sites) produces CSV; pass --csv");
  check(!config.resume || !config.journal.empty(),
        "--resume requires --journal FILE (the journal to replay)");
  check(config.journal.empty() || !config.stage_stats,
        "--journal does not combine with --stages (stage counters are not "
        "journaled, so a resumed run could not replay them)");
  return config;
}

run::SweepSpec sweep_spec(const DriverConfig& config) {
  run::SweepSpec spec;
  const std::vector<std::string> names =
      config.all ? circuits::catalog_names() : config.circuits;
  for (const std::string& name : names) {
    spec.circuits.push_back(run::CircuitSource::catalog(name));
  }
  for (const std::string& path : config.bench_files) {
    spec.circuits.push_back(run::CircuitSource::file(path));
  }
  spec.base = config.atpg;
  spec.bench_dir = config.bench_dir;
  spec.modes = config.modes;
  spec.orders = config.fault_orders;
  spec.seeds = config.seeds;
  spec.backtrack_limits = config.backtrack_limits;
  spec.fault_dropping = config.fault_dropping;
  spec.full_sites = config.full_sites;
  spec.jobs = config.jobs;
  spec.include_seconds = !config.no_seconds;
  spec.shard = config.shard;
  spec.on_error = config.on_error;
  // A journaled run must emit rows that replay verbatim; the memo trailer
  // would make the concatenated bytes depend on which cells replayed.
  spec.disable_memo = !config.journal.empty();
  return spec;
}

std::string usage() {
  return
      "gdf_atpg — robust gate delay fault test generation for non-scan\n"
      "circuits (van Brakel, Gläser, Kerkhoff, Vierhaus, DATE 1995).\n"
      "\n"
      "usage: gdf_atpg (--circuit NAME | --bench FILE)... | --all | --list"
      " [options]\n"
      "\n"
      "selection:\n"
      "  -c, --circuit NAME      run one catalog circuit (repeatable)\n"
      "  -b, --bench FILE        run an ISCAS'89 .bench netlist from disk\n"
      "                          (repeatable; combines with --circuit)\n"
      "      --all               sweep the full circuit catalog\n"
      "      --list              print catalog circuit names and exit\n"
      "      --bench-dir DIR     file-backed catalog: use DIR/<name>.bench\n"
      "                          when present, generated substitute else\n"
      "                          (default: $GDF_BENCH_DIR)\n"
      "\n"
      "parallelism:\n"
      "  -j, --jobs N            worker threads for the sweep (0 = all\n"
      "                          hardware threads) [0]; output order and\n"
      "                          bytes are independent of N\n"
      "      --shard-faults P    intra-circuit fault sharding: 'auto'\n"
      "                          (large circuits fan their fault list\n"
      "                          into generation epochs on idle workers),\n"
      "                          'off', or a forced worker count [auto];\n"
      "                          bytes are independent of P\n"
      "      --shard-epoch N     faults generated per epoch between\n"
      "                          dropping barriers [4x workers]\n"
      "\n"
      "parameter matrices (comma-separated lists; the cross product runs\n"
      "per circuit and adds config columns to the CSV — requires --csv):\n"
      "      --modes LIST        robust,nonrobust\n"
      "      --fault-order LIST  targeting order: static,random,adi\n"
      "                          (adi = accidental-detection-index pass)\n"
      "      --seeds LIST        X-fill seeds\n"
      "      --backtracks LIST   local+sequential abort limits\n"
      "      --dropping LIST     fault dropping: on,off\n"
      "      --fault-sites LIST  full (stems+branches), stems\n"
      "\n"
      "flow configuration (defaults = paper setup):\n"
      "      --non-robust        non-robust algebra (§7 outlook / ablation)\n"
      "      --local-backtracks N   TDgen abort limit        [100]\n"
      "      --seq-backtracks N     SEMILET abort limit      [100]\n"
      "      --decision-limit N     safety net, both engines [200000]\n"
      "      --per-fault-seconds S  wall-clock cap per fault [off]\n"
      "                          (timing-dependent: disables automatic\n"
      "                          fault sharding; prefer --fault-budget)\n"
      "      --fault-budget N    deterministic work cap per fault, counted\n"
      "                          in implication-engine assignments: the\n"
      "                          fault aborts once the search spends N\n"
      "                          [off]; bytes stay identical across --jobs\n"
      "                          and --shard-faults\n"
      "      --learn MODE        conflict-driven learning in the two-frame\n"
      "                          search: 'on' (per-fault clause learning +\n"
      "                          non-chronological backjumping + probe\n"
      "                          memo, deterministic at any worker count,\n"
      "                          default), 'off' (chronological search,\n"
      "                          pre-learning bytes), or 'shared' (also\n"
      "                          exchange fault-independent clauses across\n"
      "                          faults; fastest, but rows may differ\n"
      "                          across --jobs/--shard-faults)\n"
      "      --learned-limit N   clause-database budget per fault; past it\n"
      "                          a tiered reduction keeps LBD<=2 clauses\n"
      "                          and the best of the rest [512]\n"
      "      --restarts MODE     restart policy of the learning search:\n"
      "                          'luby' (restart after base*luby(k)\n"
      "                          conflicts keeping clauses, activities and\n"
      "                          saved phases; deterministic at any worker\n"
      "                          count, default) or 'off'\n"
      "      --restart-base N    conflicts before the first restart [32]\n"
      "      --seed N            RNG seed for X-fill         [1995]\n"
      "      --no-fault-dropping disable dropping via fault simulation\n"
      "      --no-branch-faults  gate outputs only, no fanout branches\n"
      "      --tdsim ENGINE      phase-3 fault simulation engine:\n"
      "                          'cpt' (critical path tracing, default)\n"
      "                          or 'exact' (per-fault injection)\n"
      "      --lanes WIDTH       simulation backend lane width: 'auto'\n"
      "                          (probe the CPU vector width, default),\n"
      "                          '64', '256' or '512'; results are\n"
      "                          byte-identical for every width\n"
      "      --adi-sequences N   sampling budget of the 'adi' fault\n"
      "                          ordering pass (random sequences) [8]\n"
      "\n"
      "robust execution:\n"
      "      --on-error POLICY   what a failing cell does: 'abort' (fail\n"
      "                          fast, default), 'skip' (emit a\n"
      "                          deterministic '# error:' row at the\n"
      "                          cell's canonical position and continue),\n"
      "                          or 'retry:N' (skip plus up to N re-runs\n"
      "                          with bounded backoff for transient I/O\n"
      "                          failures)\n"
      "      --journal FILE      append every completed row to FILE\n"
      "                          (fsync'd) so a killed run can resume;\n"
      "                          not combinable with --stages\n"
      "      --resume            replay FILE's completed rows verbatim and\n"
      "                          run only the remaining cells; the\n"
      "                          concatenated output is byte-identical to\n"
      "                          an uninterrupted run (with --no-seconds)\n"
      "\n"
      "SIGINT/SIGTERM stop the run cooperatively: in-flight searches\n"
      "unwind, completed rows flush, and the exit status is 3 (partial).\n"
      "\n"
      "output:\n"
      "      --csv               CSV rows instead of the Table-3 text table\n"
      "      --no-seconds        omit the wall-time column (byte-stable\n"
      "                          output for diffing runs)\n"
      "      --stages            per-circuit Figure-4 stage counters\n"
      "  -h, --help              this message\n";
}

}  // namespace gdf::cli
