// gdf_atpg — the command-line driver over the full FOGBUSTER flow.
//
//   gdf_atpg --circuit s27             one Table-3 row, text layout
//   gdf_atpg --all --csv --jobs 4      sweep the catalog on 4 workers
//   gdf_atpg --bench s344.bench        a real ISCAS'89 netlist from disk
//   gdf_atpg --all --csv --backtracks 10,100,1000   a parameter matrix
//   gdf_atpg --circuit s298 --non-robust --seq-backtracks 500 --stages
//
// Every invocation is one declarative SweepSpec executed by the parallel
// orchestrator (run/sweep); rows stream out in canonical order whatever
// the worker count, so the bytes are identical for any --jobs value.
//
// Exit status: 0 on success, 1 on a user-facing error (unknown circuit or
// option), 2 on an internal failure.
#include <cstdio>
#include <exception>

#include "base/error.hpp"
#include "circuits/catalog.hpp"
#include "cli/args.hpp"
#include "core/report.hpp"
#include "run/sweep.hpp"
#include "sim/lanes.hpp"

namespace gdf::cli {
namespace {

int run(const DriverConfig& config) {
  if (config.help) {
    std::printf("%s", usage().c_str());
    return 0;
  }
  if (config.list_only) {
    for (const std::string& name : circuits::catalog_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  const run::SweepSpec spec = sweep_spec(config);
  const run::SweepStats stats = run::run_sweep(
      spec,
      [&](const run::SweepRow& row) {
        std::printf("%s\n", (config.csv
                                 ? run::format_sweep_csv_row(spec, row)
                                 : core::format_table3_row(row.table))
                                .c_str());
        if (config.stage_stats) {
          // The active backend is a per-run choice (auto probes the CPU),
          // so it prints with the stage counters, never in the row bytes.
          const unsigned lanes =
              sim::resolve_lane_count(config.atpg.lanes);
          std::printf("  sim backend            %s (%u lanes)\n%s\n",
                      sim::lane_backend_name(lanes), lanes,
                      core::format_stage_stats(row.stages).c_str());
        }
        std::fflush(stdout);
      },
      [&] {
        // Header only after every circuit loaded and validated — a typo
        // late in the list fails before any output, like the pre-sweep
        // driver.
        std::printf("%s\n", (config.csv ? run::sweep_csv_header(spec)
                                        : core::table3_header())
                                .c_str());
      });
  if (config.csv && stats.memo_reused_cells > 0) {
    // CSV comment trailer; deterministic (producer-before-consumer
    // scheduling fixes the hit counts). Only matrix sweeps have sibling
    // cells, so plain catalog runs keep their legacy byte layout.
    std::printf("# untestable-memo: reused_cells=%ld hits=%ld\n",
                stats.memo_reused_cells, stats.memo_hits);
  }
  return 0;
}

}  // namespace
}  // namespace gdf::cli

int main(int argc, char** argv) {
  try {
    return gdf::cli::run(gdf::cli::parse_args(argc, argv));
  } catch (const gdf::Error& e) {
    std::fprintf(stderr, "gdf_atpg: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gdf_atpg: internal error: %s\n", e.what());
    return 2;
  }
}
