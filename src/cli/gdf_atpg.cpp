// gdf_atpg — the command-line driver over the full FOGBUSTER flow.
//
//   gdf_atpg --circuit s27          one Table-3 row, text layout
//   gdf_atpg --all --csv            sweep the catalog, CSV rows
//   gdf_atpg --bench s344.bench     a real ISCAS'89 netlist from disk
//   gdf_atpg --circuit s298 --non-robust --seq-backtracks 500 --stages
//
// Exit status: 0 on success, 1 on a user-facing error (unknown circuit or
// option), 2 on an internal failure.
#include <cstdio>
#include <exception>

#include "base/error.hpp"
#include "circuits/catalog.hpp"
#include "cli/args.hpp"
#include "core/delay_atpg.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/validate.hpp"

namespace gdf::cli {
namespace {

int run(const DriverConfig& config) {
  if (config.help) {
    std::printf("%s", usage().c_str());
    return 0;
  }
  if (config.list_only) {
    for (const std::string& name : circuits::catalog_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  const std::vector<std::string> names =
      config.all ? circuits::catalog_names() : config.circuits;
  // Validate every name and file up front so a typo late in the list
  // doesn't waste a long sweep.
  std::vector<net::Netlist> circuits;
  circuits.reserve(names.size() + config.bench_files.size());
  for (const std::string& name : names) {
    circuits.push_back(circuits::load_circuit(name));
  }
  for (const std::string& path : config.bench_files) {
    circuits.push_back(net::read_bench_file(path));
    net::validate_or_throw(circuits.back());
  }

  std::printf("%s\n",
              (config.csv ? csv_header() : core::table3_header()).c_str());
  for (const net::Netlist& circuit : circuits) {
    const core::FogbusterResult result =
        core::run_delay_atpg(circuit, config.atpg);
    const core::Table3Row row =
        core::make_table3_row(circuit.name(), result);
    std::printf("%s\n", (config.csv ? format_csv_row(row)
                                    : core::format_table3_row(row))
                            .c_str());
    if (config.stage_stats) {
      std::printf("%s\n", core::format_stage_stats(result.stages).c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace gdf::cli

int main(int argc, char** argv) {
  try {
    return gdf::cli::run(gdf::cli::parse_args(argc, argv));
  } catch (const gdf::Error& e) {
    std::fprintf(stderr, "gdf_atpg: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gdf_atpg: internal error: %s\n", e.what());
    return 2;
  }
}
