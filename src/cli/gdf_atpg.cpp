// gdf_atpg — the command-line driver over the full FOGBUSTER flow.
//
//   gdf_atpg --circuit s27             one Table-3 row, text layout
//   gdf_atpg --all --csv --jobs 4      sweep the catalog on 4 workers
//   gdf_atpg --bench s344.bench        a real ISCAS'89 netlist from disk
//   gdf_atpg --all --csv --backtracks 10,100,1000   a parameter matrix
//   gdf_atpg --circuit s298 --non-robust --seq-backtracks 500 --stages
//   gdf_atpg --all --csv --no-seconds --journal run.j   (kill; then)
//   gdf_atpg --all --csv --no-seconds --journal run.j --resume
//
// Every invocation is one declarative SweepSpec executed by the parallel
// orchestrator (run/sweep); rows stream out in canonical order whatever
// the worker count, so the bytes are identical for any --jobs value.
//
// SIGINT/SIGTERM request cooperative cancellation: the searches poll the
// token and unwind, the canonical frontier drains (every row already
// complete in order is printed and journaled), and the driver exits 3.
//
// Exit status: 0 on success, 1 on a user-facing error (unknown circuit or
// option), 2 on an internal failure, 3 when interrupted (the printed rows
// are a valid partial result; rerun with --journal/--resume to finish).
#include <csignal>
#include <cstdio>
#include <exception>
#include <string>
#include <unordered_map>
#include <utility>

#include "base/cancel.hpp"
#include "base/error.hpp"
#include "circuits/catalog.hpp"
#include "cli/args.hpp"
#include "core/report.hpp"
#include "run/journal.hpp"
#include "run/sweep.hpp"
#include "sim/lanes.hpp"

namespace gdf::cli {
namespace {

/// Fired by SIGINT/SIGTERM; polled by every search loop. request() is a
/// relaxed atomic store — async-signal-safe.
CancelToken g_cancel;

extern "C" void handle_stop_signal(int) { g_cancel.request(); }

int run(const DriverConfig& config) {
  if (config.help) {
    std::printf("%s", usage().c_str());
    return 0;
  }
  if (config.list_only) {
    for (const std::string& name : circuits::catalog_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  run::SweepSpec spec = sweep_spec(config);
  spec.cancel = &g_cancel;
  spec.base.cancel = &g_cancel;
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  // Crash-safe journal: open (and under --resume, replay) before any work.
  // The fingerprint pins the expanded job list and the row layout, so a
  // journal from a different invocation refuses to resume instead of
  // splicing mismatched rows.
  run::SweepJournal journal;
  std::unordered_map<std::size_t, std::string> replay_text;
  if (!config.journal.empty()) {
    journal.open(config.journal, run::sweep_fingerprint(spec, config.csv),
                 config.resume);
    for (const auto& [index, text] : journal.completed()) {
      spec.resume_done.push_back(index);
      replay_text[index] = text;
    }
  }

  const run::SweepStats stats = run::run_sweep(
      spec,
      [&](const run::SweepRow& row) {
        std::string text;
        if (row.replayed) {
          text = replay_text.at(row.job.index);
        } else if (!row.error.empty()) {
          text = run::format_sweep_error_row(row);
        } else {
          text = config.csv ? run::format_sweep_csv_row(spec, row)
                            : core::format_table3_row(row.table);
        }
        std::printf("%s\n", text.c_str());
        if (config.stage_stats && row.error.empty() && !row.replayed) {
          // The active backend is a per-run choice (auto probes the CPU),
          // so it prints with the stage counters, never in the row bytes.
          const unsigned lanes =
              sim::resolve_lane_count(config.atpg.lanes);
          std::printf("  sim backend            %s (%u lanes)\n%s\n",
                      sim::lane_backend_name(lanes), lanes,
                      core::format_stage_stats(row.stages).c_str());
        }
        std::fflush(stdout);
        if (!row.replayed) {
          // Record only after the row reached stdout: the journal holds
          // completed (printed) cells, nothing speculative.
          journal.record(row.job.index, text);
        }
      },
      [&] {
        // Header only after every circuit loaded and validated — a typo
        // late in the list fails before any output, like the pre-sweep
        // driver.
        std::printf("%s\n", (config.csv ? run::sweep_csv_header(spec)
                                        : core::table3_header())
                                .c_str());
      });
  if (config.csv && stats.memo_reused_cells > 0) {
    // CSV comment trailer; deterministic (producer-before-consumer
    // scheduling fixes the hit counts). Only matrix sweeps have sibling
    // cells, so plain catalog runs keep their legacy byte layout.
    std::printf("# untestable-memo: reused_cells=%ld hits=%ld\n",
                stats.memo_reused_cells, stats.memo_hits);
  }
  if (stats.interrupted) {
    std::fprintf(stderr,
                 "gdf_atpg: interrupted — %ld of %ld rows completed%s\n",
                 stats.emitted, stats.total_cells,
                 journal.active() ? "; rerun with --resume to finish" : "");
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace gdf::cli

int main(int argc, char** argv) {
  try {
    return gdf::cli::run(gdf::cli::parse_args(argc, argv));
  } catch (const gdf::Error& e) {
    if (e.kind() == gdf::ErrorKind::Cancelled) {
      std::fprintf(stderr, "gdf_atpg: interrupted\n");
      return 3;
    }
    std::fprintf(stderr, "gdf_atpg: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gdf_atpg: internal error: %s\n", e.what());
    return 2;
  }
}
