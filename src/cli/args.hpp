// Command-line handling for the gdf_atpg driver: option definitions, the
// parsed configuration, and the CSV/text renderers. Kept out of main() so
// the parsing rules are unit-testable and reusable by future drivers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/report.hpp"
#include "run/sweep.hpp"

namespace gdf::cli {

/// Everything a gdf_atpg invocation asks for. Defaults reproduce the
/// paper's setup (robust algebra, 100/100 backtrack limits, fault
/// dropping), so `gdf_atpg --circuit s27` matches examples/quickstart.
struct DriverConfig {
  std::vector<std::string> circuits;  ///< catalog names
  std::vector<std::string> bench_files;  ///< .bench netlists from disk
  bool all = false;                   ///< sweep the whole catalog
  bool list_only = false;             ///< print catalog names and exit
  bool csv = false;                   ///< CSV rows instead of the text table
  bool stage_stats = false;           ///< per-circuit Figure-4 counters
  bool help = false;                  ///< usage requested
  bool no_seconds = false;            ///< omit the wall-time column
  unsigned jobs = 0;                  ///< worker threads; 0 = hardware
  std::string bench_dir;              ///< --bench-dir (else GDF_BENCH_DIR)
  /// Failure containment (--on-error abort|skip|retry:N); abort is the
  /// legacy fail-fast behavior.
  run::ErrorPolicy on_error;
  std::string journal;                ///< --journal FILE ("" = off)
  bool resume = false;                ///< --resume (requires --journal)
  core::AtpgOptions atpg;             ///< flow configuration (base cell)
  /// Intra-circuit fault sharding (--shard-faults auto|N|off and
  /// --shard-epoch). Defaults to auto: large circuits shard across idle
  /// workers; the emitted bytes never depend on it.
  run::ShardConfig shard{.policy = run::ShardConfig::Policy::Auto,
                         .workers = 0,
                         .epoch_size = 0,
                         .min_faults = 1500};

  // Parameter-matrix axes (comma-separated flag values). Empty = just the
  // base configuration. Any axis with two or more values turns the run
  // into a matrix sweep, which requires --csv.
  std::vector<alg::Mode> modes;
  std::vector<run::FaultOrder> fault_orders;
  std::vector<std::uint64_t> seeds;
  std::vector<int> backtrack_limits;
  std::vector<bool> fault_dropping;
  std::vector<bool> full_sites;
};

/// Parses argv (argv[0] is skipped). Throws gdf::Error with a user-facing
/// message on unknown flags, missing values, or malformed numbers.
DriverConfig parse_args(int argc, const char* const* argv);

/// The declarative sweep the configuration describes — what the driver
/// hands to run::run_sweep, exposed so tests can assert CLI runs and
/// in-process runs produce identical bytes.
run::SweepSpec sweep_spec(const DriverConfig& config);

/// The --help text.
std::string usage();

}  // namespace gdf::cli
