// Command-line handling for the gdf_atpg driver: option definitions, the
// parsed configuration, and the CSV/text renderers. Kept out of main() so
// the parsing rules are unit-testable and reusable by future drivers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/report.hpp"

namespace gdf::cli {

/// Everything a gdf_atpg invocation asks for. Defaults reproduce the
/// paper's setup (robust algebra, 100/100 backtrack limits, fault
/// dropping), so `gdf_atpg --circuit s27` matches examples/quickstart.
struct DriverConfig {
  std::vector<std::string> circuits;  ///< catalog names
  std::vector<std::string> bench_files;  ///< .bench netlists from disk
  bool all = false;                   ///< sweep the whole catalog
  bool list_only = false;             ///< print catalog names and exit
  bool csv = false;                   ///< CSV rows instead of the text table
  bool stage_stats = false;           ///< per-circuit Figure-4 counters
  bool help = false;                  ///< usage requested
  core::AtpgOptions atpg;             ///< flow configuration
};

/// Parses argv (argv[0] is skipped). Throws gdf::Error with a user-facing
/// message on unknown flags, missing values, or malformed numbers.
DriverConfig parse_args(int argc, const char* const* argv);

/// The --help text.
std::string usage();

/// "circuit,tested,untestable,aborted,patterns,seconds"
std::string csv_header();
std::string format_csv_row(const core::Table3Row& row);

}  // namespace gdf::cli
