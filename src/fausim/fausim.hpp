// FAUSIM — the fault simulator integrated in SEMILET (paper §5, phases 1
// and 2 of the three-phase fault simulation):
//
//  1. good-machine simulation of the complete generated sequence, with the
//     X values left by test generation "set at random to 0 or 1";
//  2. "stuck-at fault simulation" of the propagation phase: a D value is
//     injected at each pseudo primary output that is not steady, and the
//     propagation frames are simulated to find which PPOs are observable
//     at a primary output. All injections run in one dual-rail parallel
//     pass (one lane per flip-flop plus the good machine).
//
// Phase 3 (delay-fault critical path tracing inside the fast frame) lives
// in TDsim.
//
// Both engines share one flat circuit form; phase 2 converts each
// propagation frame's PI vector to lane words exactly once and keeps all
// 64 lanes hot across the per-flip-flop passes.
#pragma once

#include <span>
#include <vector>

#include "base/rng.hpp"
#include "sim/flat_circuit.hpp"
#include "sim/parallel3.hpp"
#include "sim/seq_sim.hpp"

namespace gdf::fausim {

class Fausim {
 public:
  explicit Fausim(const net::Netlist& nl);
  /// Shares an already-built flat circuit form.
  explicit Fausim(std::shared_ptr<const sim::FlatCircuit> fc);

  struct GoodTrace {
    /// Input vectors with every X bit filled randomly (what the tester
    /// would apply).
    std::vector<sim::InputVec> filled;
    /// states[k] = state entering frame k (states[0] is all-X power-up);
    /// one more entry than frames (the final state).
    std::vector<sim::StateVec> states;
    /// Settled line values per frame.
    std::vector<std::vector<sim::Lv>> lines;
  };

  /// Phase 1: good-machine simulation from power-up. Deterministic in the
  /// caller's RNG.
  GoodTrace simulate_good(std::span<const sim::InputVec> frames,
                          Rng& rng) const;

  /// Phase 2: per flip-flop, whether a good/faulty difference captured at
  /// that flip-flop at the start of the propagation phase reaches a
  /// primary output. Flip-flops whose good value is X cannot carry a
  /// meaningful single-bit difference and report false.
  std::vector<bool> ppo_observability(
      const sim::StateVec& state_after_fast,
      std::span<const sim::InputVec> propagation_frames) const;

  const net::Netlist& netlist() const { return fc_->netlist(); }

 private:
  std::shared_ptr<const sim::FlatCircuit> fc_;
  sim::SeqSimulator scalar_;
  sim::ParallelSim3 parallel_;
};

}  // namespace gdf::fausim
