// FAUSIM — the fault simulator integrated in SEMILET (paper §5, phases 1
// and 2 of the three-phase fault simulation):
//
//  1. good-machine simulation of the complete generated sequence, with the
//     X values left by test generation "set at random to 0 or 1";
//  2. "stuck-at fault simulation" of the propagation phase: a D value is
//     injected at each pseudo primary output that is not steady, and the
//     propagation frames are simulated to find which PPOs are observable
//     at a primary output. All injections run in batched dual-rail passes
//     (one lane per flip-flop plus the good machine).
//
// Phase 3 (delay-fault critical path tracing inside the fast frame) lives
// in TDsim.
//
// Phase 2 runs behind the pluggable SimBackend seam (sim/backend.hpp):
// the configured --lanes value caps the rung of the WordN ladder, and each
// pass picks the smallest rung that covers its flip count in one block, so
// narrow state vectors never pay for planes they cannot fill. Every rung
// computes identical verdicts — lanes are independent machines — so the
// choice never shows in the results, only in the kernel counters.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "base/rng.hpp"
#include "sim/backend.hpp"
#include "sim/flat_circuit.hpp"
#include "sim/lanes.hpp"
#include "sim/seq_sim.hpp"

namespace gdf::fausim {

class Fausim {
 public:
  explicit Fausim(const net::Netlist& nl, sim::LaneSpec lanes = {});
  /// Shares an already-built flat circuit form.
  explicit Fausim(std::shared_ptr<const sim::FlatCircuit> fc,
                  sim::LaneSpec lanes = {});

  struct GoodTrace {
    /// Input vectors with every X bit filled randomly (what the tester
    /// would apply).
    std::vector<sim::InputVec> filled;
    /// states[k] = state entering frame k (states[0] is all-X power-up);
    /// one more entry than frames (the final state).
    std::vector<sim::StateVec> states;
    /// Settled line values per frame.
    std::vector<std::vector<sim::Lv>> lines;
  };

  /// Phase 1: good-machine simulation from power-up. Deterministic in the
  /// caller's RNG.
  GoodTrace simulate_good(std::span<const sim::InputVec> frames,
                          Rng& rng) const;

  /// Phase 2: per flip-flop, whether a good/faulty difference captured at
  /// that flip-flop at the start of the propagation phase reaches a
  /// primary output. Flip-flops whose good value is X cannot carry a
  /// meaningful single-bit difference and report false.
  std::vector<bool> ppo_observability(
      const sim::StateVec& state_after_fast,
      std::span<const sim::InputVec> propagation_frames) const;

  /// The configured rung of the lane ladder (what --stages reports); a
  /// pass may run on a narrower rung when its flip count fits one.
  unsigned max_lanes() const { return max_lanes_; }
  const char* backend_name() const {
    return sim::lane_backend_name(max_lanes_);
  }

  /// Kernel work since the last harvest, attributed per backend; resets
  /// the counters. Serialized by the caller like the simulators' scratch.
  sim::KernelCounters take_kernel_counters();

  const net::Netlist& netlist() const { return fc_->netlist(); }

 private:
  sim::SimBackend& backend_for(std::size_t flip_count) const;

  std::shared_ptr<const sim::FlatCircuit> fc_;
  sim::SeqSimulator scalar_;
  unsigned max_lanes_;
  /// Lazily-built ladder rungs (64/256/512 lanes) and per-rung harvest
  /// snapshots. Instance-local scratch behind the const API, like the
  /// scalar engine's buffers — never shared across threads.
  mutable std::array<std::unique_ptr<sim::SimBackend>, 3> backends_;
  mutable long scalar_evals_ = 0;
  std::array<long, 3> harvested_lane_evals_ = {0, 0, 0};
};

}  // namespace gdf::fausim
