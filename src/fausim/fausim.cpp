#include "fausim/fausim.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace gdf::fausim {

using sim::Lv;

Fausim::Fausim(const net::Netlist& nl, sim::LaneSpec lanes)
    : Fausim(sim::FlatCircuit::build(nl), lanes) {}

Fausim::Fausim(std::shared_ptr<const sim::FlatCircuit> fc,
               sim::LaneSpec lanes)
    : fc_(std::move(fc)),
      scalar_(fc_),
      max_lanes_(sim::resolve_lane_count(lanes)) {}

Fausim::GoodTrace Fausim::simulate_good(std::span<const sim::InputVec> frames,
                                        Rng& rng) const {
  GoodTrace trace;
  trace.filled.reserve(frames.size());
  for (const sim::InputVec& pis : frames) {
    sim::InputVec filled = pis;
    for (Lv& v : filled) {
      if (v == Lv::X) {
        v = rng.next_bool() ? Lv::One : Lv::Zero;
      }
    }
    trace.filled.push_back(std::move(filled));
  }
  trace.states.reserve(frames.size() + 1);
  trace.lines.reserve(frames.size());
  trace.states.push_back(scalar_.unknown_state());
  for (const sim::InputVec& pis : trace.filled) {
    // Frames settle directly into the trace's own storage — no staging
    // buffer to copy out of.
    trace.lines.emplace_back();
    scalar_.eval_frame(pis, trace.states.back(), trace.lines.back());
    trace.states.push_back(scalar_.next_state(trace.lines.back()));
  }
  scalar_evals_ += static_cast<long>(frames.size()) *
                   static_cast<long>(fc_->body_count());
  return trace;
}

sim::SimBackend& Fausim::backend_for(std::size_t flip_count) const {
  // Smallest rung that runs the whole pass in one block, capped by the
  // configured width. 64*K - 1 faulty machines fit a K-plane rung (lane 0
  // is the good machine).
  static constexpr unsigned kRungLanes[3] = {64, 256, 512};
  std::size_t rung = 0;
  while (rung + 1 < 3 && kRungLanes[rung + 1] <= max_lanes_ &&
         kRungLanes[rung] - 1 < flip_count) {
    ++rung;
  }
  if (backends_[rung] == nullptr) {
    backends_[rung] = sim::make_sim_backend(fc_, kRungLanes[rung]);
  }
  return *backends_[rung];
}

std::vector<bool> Fausim::ppo_observability(
    const sim::StateVec& state_after_fast,
    std::span<const sim::InputVec> propagation_frames) const {
  const std::size_t n_ff = fc_->dffs().size();
  GDF_ASSERT(state_after_fast.size() == n_ff, "state size mismatch");
  std::vector<bool> observable(n_ff, false);

  // Only flip-flops with a definite captured value can carry a single-bit
  // good/faulty difference.
  std::vector<std::size_t> flippable;
  flippable.reserve(n_ff);
  for (std::size_t k = 0; k < n_ff; ++k) {
    if (sim::is_binary(state_after_fast[k])) {
      flippable.push_back(k);
    }
  }
  if (flippable.empty() || propagation_frames.empty()) {
    return observable;
  }

  sim::SimBackend& backend = backend_for(flippable.size());
  backend.load_frames(propagation_frames);
  const std::size_t per_pass = backend.lanes() - 1;
  for (std::size_t begin = 0; begin < flippable.size(); begin += per_pass) {
    const std::size_t count =
        std::min(per_pass, flippable.size() - begin);
    backend.run_pass(state_after_fast,
                     std::span<const std::size_t>(flippable)
                         .subspan(begin, count),
                     observable);
  }
  return observable;
}

sim::KernelCounters Fausim::take_kernel_counters() {
  sim::KernelCounters out;
  out.scalar_evals = scalar_evals_;
  scalar_evals_ = 0;
  long* buckets[3] = {&out.lane_evals_64, &out.lane_evals_256,
                      &out.lane_evals_512};
  for (std::size_t rung = 0; rung < 3; ++rung) {
    if (backends_[rung] == nullptr) {
      continue;
    }
    const long total = backends_[rung]->lane_gate_evals();
    *buckets[rung] = total - harvested_lane_evals_[rung];
    harvested_lane_evals_[rung] = total;
  }
  return out;
}

}  // namespace gdf::fausim
