#include "fausim/fausim.hpp"

#include "base/error.hpp"

namespace gdf::fausim {

using sim::Lv;
using sim::Word3;

Fausim::Fausim(const net::Netlist& nl)
    : Fausim(sim::FlatCircuit::build(nl)) {}

Fausim::Fausim(std::shared_ptr<const sim::FlatCircuit> fc)
    : fc_(std::move(fc)), scalar_(fc_), parallel_(fc_) {}

Fausim::GoodTrace Fausim::simulate_good(std::span<const sim::InputVec> frames,
                                        Rng& rng) const {
  GoodTrace trace;
  trace.filled.reserve(frames.size());
  for (const sim::InputVec& pis : frames) {
    sim::InputVec filled = pis;
    for (Lv& v : filled) {
      if (v == Lv::X) {
        v = rng.next_bool() ? Lv::One : Lv::Zero;
      }
    }
    trace.filled.push_back(std::move(filled));
  }
  trace.states.reserve(frames.size() + 1);
  trace.lines.reserve(frames.size());
  trace.states.push_back(scalar_.unknown_state());
  for (const sim::InputVec& pis : trace.filled) {
    // Frames settle directly into the trace's own storage — no staging
    // buffer to copy out of.
    trace.lines.emplace_back();
    scalar_.eval_frame(pis, trace.states.back(), trace.lines.back());
    trace.states.push_back(scalar_.next_state(trace.lines.back()));
  }
  return trace;
}

std::vector<bool> Fausim::ppo_observability(
    const sim::StateVec& state_after_fast,
    std::span<const sim::InputVec> propagation_frames) const {
  const net::Netlist& nl = fc_->netlist();
  const std::size_t n_ff = nl.dffs().size();
  GDF_ASSERT(state_after_fast.size() == n_ff, "state size mismatch");
  std::vector<bool> observable(n_ff, false);

  // Only flip-flops with a definite captured value can carry a single-bit
  // good/faulty difference.
  std::vector<std::size_t> flippable;
  flippable.reserve(n_ff);
  for (std::size_t k = 0; k < n_ff; ++k) {
    if (sim::is_binary(state_after_fast[k])) {
      flippable.push_back(k);
    }
  }
  if (flippable.empty() || propagation_frames.empty()) {
    return observable;
  }

  // PI words are identical in every lane, so each propagation frame is
  // converted exactly once and reused by every pass; lanes past the active
  // count simply replay the good machine.
  constexpr std::uint64_t kAllLanes = ~std::uint64_t{0};
  const std::size_t n_pi = nl.inputs().size();
  std::vector<std::vector<Word3>> pi_frames(propagation_frames.size());
  for (std::size_t f = 0; f < propagation_frames.size(); ++f) {
    const sim::InputVec& pis = propagation_frames[f];
    GDF_ASSERT(pis.size() == n_pi, "PI size mismatch");
    pi_frames[f].resize(n_pi);
    for (std::size_t i = 0; i < n_pi; ++i) {
      pi_frames[f][i] = sim::w3_const(pis[i], kAllLanes);
    }
  }
  std::vector<Word3> base_state(n_ff);
  for (std::size_t i = 0; i < n_ff; ++i) {
    base_state[i] = sim::w3_const(state_after_fast[i], kAllLanes);
  }

  // Lane 0 is the good machine; lanes 1..63 flip one definite state bit
  // each. 63 faulty machines per pass; buffers persist across passes.
  std::vector<Word3> state_words;
  std::vector<Word3> line_words;
  std::vector<Word3> next_words;
  for (std::size_t begin = 0; begin < flippable.size(); begin += 63) {
    const std::size_t n_lanes = std::min<std::size_t>(
        63, flippable.size() - begin);
    state_words = base_state;
    for (std::size_t lane = 0; lane < n_lanes; ++lane) {
      const std::size_t ff = flippable[begin + lane];
      const std::uint64_t bit = std::uint64_t{1} << (lane + 1);
      // Flip the captured value in this faulty machine.
      const Lv bad =
          state_after_fast[ff] == Lv::One ? Lv::Zero : Lv::One;
      state_words[ff].ones &= ~bit;
      state_words[ff].zeros &= ~bit;
      const Word3 w = sim::w3_const(bad, bit);
      state_words[ff].ones |= w.ones;
      state_words[ff].zeros |= w.zeros;
    }

    // Lanes of this pass whose difference has not reached a PO yet.
    std::uint64_t pending =
        ((n_lanes >= 63 ? std::uint64_t{0x7FFFFFFFFFFFFFFF}
                        : ((std::uint64_t{1} << n_lanes) - 1)))
        << 1;
    for (const std::vector<Word3>& pi_words : pi_frames) {
      parallel_.eval_frame(pi_words, state_words, line_words);
      for (const net::GateId po : nl.outputs()) {
        const Word3 w = line_words[po];
        // A lane differs from the good machine when both are definite and
        // opposite: good 1 => the lane's zero rail, good 0 => its one rail.
        const bool good_one = (w.ones & 1) != 0;
        const bool good_zero = (w.zeros & 1) != 0;
        if (!good_one && !good_zero) {
          continue;
        }
        std::uint64_t hits = (good_one ? w.zeros : w.ones) & pending;
        while (hits != 0) {
          const unsigned lane =
              static_cast<unsigned>(__builtin_ctzll(hits));
          hits &= hits - 1;
          observable[flippable[begin + (lane - 1)]] = true;
          pending &= ~(std::uint64_t{1} << lane);
        }
      }
      if (pending == 0) {
        break;  // every lane of this pass already observed
      }
      parallel_.next_state(line_words, next_words);
      state_words.swap(next_words);
    }
  }
  return observable;
}

}  // namespace gdf::fausim
