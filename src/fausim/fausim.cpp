#include "fausim/fausim.hpp"

#include "base/error.hpp"

namespace gdf::fausim {

using sim::Lv;
using sim::Word3;

Fausim::Fausim(const net::Netlist& nl)
    : nl_(&nl), scalar_(nl), parallel_(nl) {}

Fausim::GoodTrace Fausim::simulate_good(std::span<const sim::InputVec> frames,
                                        Rng& rng) const {
  GoodTrace trace;
  trace.filled.reserve(frames.size());
  for (const sim::InputVec& pis : frames) {
    sim::InputVec filled = pis;
    for (Lv& v : filled) {
      if (v == Lv::X) {
        v = rng.next_bool() ? Lv::One : Lv::Zero;
      }
    }
    trace.filled.push_back(std::move(filled));
  }
  sim::StateVec state = scalar_.unknown_state();
  trace.states.push_back(state);
  std::vector<Lv> lines;
  for (const sim::InputVec& pis : trace.filled) {
    scalar_.eval_frame(pis, state, lines);
    trace.lines.push_back(lines);
    state = scalar_.next_state(lines);
    trace.states.push_back(state);
  }
  return trace;
}

std::vector<bool> Fausim::ppo_observability(
    const sim::StateVec& state_after_fast,
    std::span<const sim::InputVec> propagation_frames) const {
  const std::size_t n_ff = nl_->dffs().size();
  GDF_ASSERT(state_after_fast.size() == n_ff, "state size mismatch");
  std::vector<bool> observable(n_ff, false);

  // Lane 0 is the good machine; lanes 1..k flip one definite state bit
  // each. 63 faulty machines per pass.
  std::size_t begin = 0;
  while (begin < n_ff) {
    std::vector<std::size_t> lane_ff;  // flip-flop index per faulty lane
    std::size_t end = begin;
    while (end < n_ff && lane_ff.size() < 63) {
      if (sim::is_binary(state_after_fast[end])) {
        lane_ff.push_back(end);
      }
      ++end;
    }
    if (lane_ff.empty()) {
      begin = end;
      continue;
    }
    const std::uint64_t all_lanes =
        lane_ff.size() + 1 >= 64
            ? ~std::uint64_t{0}
            : ((std::uint64_t{1} << (lane_ff.size() + 1)) - 1);

    std::vector<Word3> state_words(n_ff);
    for (std::size_t i = 0; i < n_ff; ++i) {
      state_words[i] = sim::w3_const(state_after_fast[i], all_lanes);
    }
    for (std::size_t lane = 0; lane < lane_ff.size(); ++lane) {
      const std::size_t ff = lane_ff[lane];
      const std::uint64_t bit = std::uint64_t{1} << (lane + 1);
      // Flip the captured value in this faulty machine.
      const Lv good = state_after_fast[ff];
      const Lv bad = good == Lv::One ? Lv::Zero : Lv::One;
      state_words[ff].ones &= ~bit;
      state_words[ff].zeros &= ~bit;
      const Word3 w = sim::w3_const(bad, bit);
      state_words[ff].ones |= w.ones;
      state_words[ff].zeros |= w.zeros;
    }

    std::vector<Word3> pi_words(nl_->inputs().size());
    std::vector<Word3> line_words;
    for (const sim::InputVec& pis : propagation_frames) {
      GDF_ASSERT(pis.size() == nl_->inputs().size(), "PI size mismatch");
      for (std::size_t i = 0; i < pis.size(); ++i) {
        pi_words[i] = sim::w3_const(pis[i], all_lanes);
      }
      parallel_.eval_frame(pi_words, state_words, line_words);
      for (const net::GateId po : nl_->outputs()) {
        const Word3 w = line_words[po];
        const Lv good = sim::w3_lane(w, 0);
        if (!sim::is_binary(good)) {
          continue;
        }
        for (std::size_t lane = 0; lane < lane_ff.size(); ++lane) {
          const Lv faulty = sim::w3_lane(w, static_cast<unsigned>(lane + 1));
          if (sim::is_binary(faulty) && faulty != good) {
            observable[lane_ff[lane]] = true;
          }
        }
      }
      state_words = parallel_.next_state(line_words);
    }
    begin = end;
  }
  return observable;
}

}  // namespace gdf::fausim
