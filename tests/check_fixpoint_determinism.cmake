# End-to-end equivalence of the incremental trail-based implication engine
# against the exhaustive full-fixpoint debug schedule (GDF_FULL_FIXPOINT=1
# escape hatch): the sweep's CSV bytes must be identical. Registered by
# tests/CMakeLists.txt as two ctests:
#   * cli_fixpoint_determinism       — SCOPE=full: a mixed multi-circuit
#     sweep at the paper configuration.
#   * cli_fixpoint_determinism_small — SCOPE=small: cheap enough for the
#     ThreadSanitizer CI job.
#
# Usage: cmake -DGDF_ATPG=<path> -DSCOPE=<full|small> -P
#        check_fixpoint_determinism.cmake

# --learn off pins the chronological search: conflict analysis walks the
# implication trail, whose entry order is exactly what the exhaustive
# schedule changes — learned clauses (and the backjumps they drive) are
# schedule-sensitive even though every verdict they produce is sound.
# The engine-level equivalence still covers the learning machinery via
# test_implication's replay checks.
if(SCOPE STREQUAL "small")
  set(sweep_args --circuit s27 --circuit s298 --csv --no-seconds --jobs 2
      --learn off)
else()
  set(sweep_args --circuit s298 --circuit s344 --circuit s386
      --circuit s420 --csv --no-seconds --learn off)
endif()

execute_process(
  COMMAND ${GDF_ATPG} ${sweep_args}
  OUTPUT_VARIABLE incremental_out
  RESULT_VARIABLE incremental_rc)
if(NOT incremental_rc EQUAL 0)
  message(FATAL_ERROR "gdf_atpg (incremental) failed (rc=${incremental_rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env GDF_FULL_FIXPOINT=1
          ${GDF_ATPG} ${sweep_args}
  OUTPUT_VARIABLE full_out
  RESULT_VARIABLE full_rc)
if(NOT full_rc EQUAL 0)
  message(FATAL_ERROR "gdf_atpg (GDF_FULL_FIXPOINT=1) failed (rc=${full_rc})")
endif()

if(NOT incremental_out STREQUAL full_out)
  message(FATAL_ERROR "incremental and full-fixpoint output differs:\n"
                      "=== incremental ===\n${incremental_out}\n"
                      "=== full fixpoint ===\n${full_out}")
endif()

string(LENGTH "${incremental_out}" out_len)
if(out_len EQUAL 0)
  message(FATAL_ERROR "gdf_atpg produced no output")
endif()
message(STATUS
  "incremental and full-fixpoint output byte-identical (${out_len} bytes)")
