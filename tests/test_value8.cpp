#include <gtest/gtest.h>

#include "algebra/value8.hpp"
#include "algebra/value_set.hpp"

namespace gdf::alg {
namespace {

TEST(V8Test, Names) {
  EXPECT_EQ(v8_name(V8::Zero), "0");
  EXPECT_EQ(v8_name(V8::OneH), "1h");
  EXPECT_EQ(v8_name(V8::RiseC), "Rc");
  EXPECT_EQ(v8_name(V8::FallC), "Fc");
}

TEST(V8Test, FrameComponents) {
  EXPECT_EQ(v8_initial(V8::Rise), 0);
  EXPECT_EQ(v8_final(V8::Rise), 1);
  EXPECT_EQ(v8_initial(V8::Fall), 1);
  EXPECT_EQ(v8_final(V8::Fall), 0);
  EXPECT_EQ(v8_initial(V8::ZeroH), 0);
  EXPECT_EQ(v8_final(V8::ZeroH), 0);
  EXPECT_EQ(v8_initial(V8::RiseC), 0);
  EXPECT_EQ(v8_final(V8::RiseC), 1);
}

TEST(V8Test, FaultyFinals) {
  // Slow-to-rise still low at the fast sample, slow-to-fall still high.
  EXPECT_EQ(v8_final_faulty(V8::RiseC), 0);
  EXPECT_EQ(v8_final_faulty(V8::FallC), 1);
  EXPECT_EQ(v8_final_faulty(V8::Rise), 1);
  EXPECT_EQ(v8_final_faulty(V8::One), 1);
}

TEST(V8Test, Classification) {
  EXPECT_TRUE(v8_is_carrier(V8::RiseC));
  EXPECT_TRUE(v8_is_carrier(V8::FallC));
  EXPECT_FALSE(v8_is_carrier(V8::Rise));
  EXPECT_TRUE(v8_has_hazard(V8::ZeroH));
  EXPECT_FALSE(v8_has_hazard(V8::Zero));
  EXPECT_TRUE(v8_is_transition(V8::FallC));
  EXPECT_FALSE(v8_is_transition(V8::OneH));
}

TEST(VSetTest, BasicOps) {
  const VSet s = vset_of(V8::Zero) | vset_of(V8::RiseC);
  EXPECT_TRUE(vset_contains(s, V8::Zero));
  EXPECT_FALSE(vset_contains(s, V8::One));
  EXPECT_EQ(vset_size(s), 2);
  EXPECT_FALSE(vset_is_singleton(s));
  EXPECT_TRUE(vset_is_singleton(vset_of(V8::Fall)));
  EXPECT_EQ(vset_only(vset_of(V8::Fall)), V8::Fall);
  EXPECT_EQ(vset_first(s), V8::Zero);
}

TEST(VSetTest, PrimaryDomainExcludesHazardsAndCarriers) {
  EXPECT_TRUE(vset_contains(kPrimaryDomain, V8::Zero));
  EXPECT_TRUE(vset_contains(kPrimaryDomain, V8::Rise));
  EXPECT_FALSE(vset_contains(kPrimaryDomain, V8::ZeroH));
  EXPECT_FALSE(vset_contains(kPrimaryDomain, V8::RiseC));
  EXPECT_EQ(static_cast<VSet>(kCarrierSet | kCleanSet), kFullSet);
  EXPECT_EQ(static_cast<VSet>(kCarrierSet & kCleanSet), kEmptySet);
}

TEST(VSetTest, InitialAndFinalMasks) {
  const VSet s = vset_of(V8::Rise) | vset_of(V8::One);
  EXPECT_EQ(vset_initials(s), 0b11u);  // R starts 0, 1 starts 1
  EXPECT_EQ(vset_finals(s), 0b10u);    // both end 1
}

TEST(VSetTest, FilterByInitial) {
  const VSet s = kPrimaryDomain;
  EXPECT_EQ(vset_with_initial_in(s, 0b01),
            static_cast<VSet>(vset_of(V8::Zero) | vset_of(V8::Rise)));
  EXPECT_EQ(vset_with_initial_in(s, 0b10),
            static_cast<VSet>(vset_of(V8::One) | vset_of(V8::Fall)));
  EXPECT_EQ(vset_with_initial_in(s, 0b11), s);
  EXPECT_EQ(vset_with_initial_in(s, 0), kEmptySet);
}

TEST(VSetTest, FilterByFinal) {
  const VSet s = kPrimaryDomain;
  EXPECT_EQ(vset_with_final_in(s, 0b10),
            static_cast<VSet>(vset_of(V8::One) | vset_of(V8::Rise)));
  EXPECT_EQ(vset_with_final_in(s, 0b01),
            static_cast<VSet>(vset_of(V8::Zero) | vset_of(V8::Fall)));
}

TEST(VSetTest, ToString) {
  EXPECT_EQ(vset_to_string(vset_of(V8::Zero) | vset_of(V8::FallC)),
            "{0,Fc}");
  EXPECT_EQ(vset_to_string(kEmptySet), "{}");
}

}  // namespace
}  // namespace gdf::alg
