#include <gtest/gtest.h>

#include "base/error.hpp"
#include "circuits/catalog.hpp"
#include "circuits/embedded.hpp"
#include "circuits/generator.hpp"
#include "circuits/profiles.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "netlist/validate.hpp"

namespace gdf::circuits {
namespace {

TEST(EmbeddedTest, S27HasPublishedShape) {
  const net::Netlist nl = make_s27();
  const net::NetlistStats s = net::compute_stats(nl);
  EXPECT_EQ(s.primary_inputs, 4u);
  EXPECT_EQ(s.primary_outputs, 1u);
  EXPECT_EQ(s.flip_flops, 3u);
  EXPECT_EQ(s.logic_gates, 10u);
  EXPECT_EQ(s.inverters, 2u);
  EXPECT_TRUE(net::validate(nl).ok());
}

TEST(EmbeddedTest, S27Connectivity) {
  const net::Netlist nl = make_s27();
  // G11 drives both the PO inverter G17 and feedback into G10/DFF G6.
  const net::GateId g11 = nl.find("G11");
  ASSERT_NE(g11, net::kNoGate);
  EXPECT_GE(nl.gate(g11).fanout.size(), 3u);
  EXPECT_TRUE(nl.feeds_dff(g11));
  const net::GateId g17 = nl.find("G17");
  EXPECT_TRUE(nl.is_po(g17));
}

TEST(EmbeddedTest, C17HasPublishedShape) {
  const net::Netlist nl = make_c17();
  const net::NetlistStats s = net::compute_stats(nl);
  EXPECT_EQ(s.primary_inputs, 5u);
  EXPECT_EQ(s.primary_outputs, 2u);
  EXPECT_EQ(s.flip_flops, 0u);
  EXPECT_EQ(s.logic_gates, 6u);
  EXPECT_TRUE(net::validate(nl).ok());
}

TEST(ProfilesTest, TwelveTable3Rows) {
  const auto& profiles = table3_profiles();
  ASSERT_EQ(profiles.size(), 12u);
  EXPECT_EQ(profiles.front().name, "s27");
  EXPECT_EQ(profiles.back().name, "s1238");
}

TEST(ProfilesTest, LookupThrowsForUnknown) {
  EXPECT_THROW(profile_for("s9999"), Error);
}

class GeneratorProfileTest
    : public ::testing::TestWithParam<BenchmarkProfile> {};

TEST_P(GeneratorProfileTest, MatchesInterfaceCounts) {
  const BenchmarkProfile& p = GetParam();
  const net::Netlist nl = generate_iscas_like(p);
  const net::NetlistStats s = net::compute_stats(nl);
  EXPECT_EQ(s.primary_inputs, static_cast<std::size_t>(p.primary_inputs));
  EXPECT_EQ(s.primary_outputs, static_cast<std::size_t>(p.primary_outputs));
  EXPECT_EQ(s.flip_flops, static_cast<std::size_t>(p.flip_flops));
  // Gate count is approximate by design; allow 25% headroom.
  EXPECT_GE(s.logic_gates, static_cast<std::size_t>(p.logic_gates));
  EXPECT_LE(s.logic_gates,
            static_cast<std::size_t>(p.logic_gates) * 5 / 4 + 8);
}

TEST_P(GeneratorProfileTest, DeterministicForSeed) {
  const BenchmarkProfile& p = GetParam();
  const std::string a = net::write_bench(generate_iscas_like(p));
  const std::string b = net::write_bench(generate_iscas_like(p));
  EXPECT_EQ(a, b);
}

std::vector<BenchmarkProfile> generated_profiles() {
  std::vector<BenchmarkProfile> out;
  for (const BenchmarkProfile& p : table3_profiles()) {
    if (p.style != CircuitStyle::Exact) {
      out.push_back(p);
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerated, GeneratorProfileTest,
    ::testing::ValuesIn(generated_profiles()),
    [](const ::testing::TestParamInfo<BenchmarkProfile>& info) {
      return info.param.name;
    });

TEST(GeneratorTest, RefusesExactProfiles) {
  EXPECT_THROW(generate_iscas_like(profile_for("s27")), Error);
}

TEST(CatalogTest, LoadsEveryName) {
  for (const std::string& name : catalog_names()) {
    const net::Netlist nl = load_circuit(name);
    EXPECT_EQ(nl.name(), name);
    EXPECT_TRUE(net::validate(nl).ok()) << name;
  }
}

TEST(CatalogTest, UnknownNameThrows) {
  EXPECT_THROW(load_circuit("s404"), Error);
}

TEST(GeneratorTest, DifferentSeedsGiveDifferentCircuits) {
  BenchmarkProfile p = profile_for("s298");
  const std::string a = net::write_bench(generate_iscas_like(p));
  p.seed += 1;
  const std::string b = net::write_bench(generate_iscas_like(p));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace gdf::circuits
