# Failure isolation on the gdf_atpg binary: an injected per-cell failure
# under --on-error skip must change exactly that cell's row (into a
# deterministic `# error:` line at its canonical position) and leave every
# other row byte-identical; under the default abort policy the same
# failure exits 1; under retry:N a transient failure leaves no trace.
# Registered by tests/CMakeLists.txt as `cli_error_isolation`.
#
# Usage: cmake -DGDF_ATPG=<path> -P check_error_isolation.cmake

set(sweep_args --circuit s27 --circuit c17 --circuit s298
    --csv --no-seconds --jobs 2)

execute_process(
  COMMAND ${GDF_ATPG} ${sweep_args}
  OUTPUT_VARIABLE reference_out
  RESULT_VARIABLE reference_rc)
if(NOT reference_rc EQUAL 0)
  message(FATAL_ERROR "reference run failed (rc=${reference_rc})")
endif()

# skip: the c17 row becomes an error row, everything else keeps its bytes.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env GDF_FI=cell-throw:c17
          ${GDF_ATPG} ${sweep_args} --on-error skip
  OUTPUT_VARIABLE skip_out
  RESULT_VARIABLE skip_rc)
if(NOT skip_rc EQUAL 0)
  message(FATAL_ERROR "--on-error skip run failed (rc=${skip_rc})")
endif()
string(REPLACE "c17,34,0,0,28"
       "# error: circuit=c17 cell=1 kind=resource: fault injection: forced failure for cell 'c17'"
       expected_skip "${reference_out}")
if(expected_skip STREQUAL reference_out)
  # The substitution anchor drifted (c17's row changed upstream): fall
  # back to structural checks instead of full-byte equality.
  if(NOT skip_out MATCHES "# error: circuit=c17 cell=1 kind=resource:")
    message(FATAL_ERROR "skip run did not emit c17's error row:\n${skip_out}")
  endif()
  string(REGEX REPLACE "[^\n]*c17[^\n]*\n" "" ref_rest "${reference_out}")
  string(REGEX REPLACE "[^\n]*c17[^\n]*\n" "" skip_rest "${skip_out}")
  if(NOT ref_rest STREQUAL skip_rest)
    message(FATAL_ERROR "skip changed rows other than the failing cell:\n"
                        "=== reference ===\n${ref_rest}\n"
                        "=== skip ===\n${skip_rest}")
  endif()
elseif(NOT skip_out STREQUAL expected_skip)
  message(FATAL_ERROR "skip output is not reference-with-one-error-row:\n"
                      "=== expected ===\n${expected_skip}\n"
                      "=== actual ===\n${skip_out}")
endif()

# abort (default): the injected failure is a user-facing error, exit 1.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env GDF_FI=cell-throw:c17
          ${GDF_ATPG} ${sweep_args}
  OUTPUT_VARIABLE abort_out
  ERROR_VARIABLE abort_err
  RESULT_VARIABLE abort_rc)
if(NOT abort_rc EQUAL 1)
  message(FATAL_ERROR "aborting run should exit 1, got rc=${abort_rc}")
endif()

# retry:3 over a twice-firing injection: the third attempt succeeds and
# the output is byte-identical to the clean reference.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env GDF_FI=cell-throw:c17:2
          ${GDF_ATPG} ${sweep_args} --on-error retry:3
  OUTPUT_VARIABLE retry_out
  RESULT_VARIABLE retry_rc)
if(NOT retry_rc EQUAL 0)
  message(FATAL_ERROR "--on-error retry:3 run failed (rc=${retry_rc})")
endif()
if(NOT retry_out STREQUAL reference_out)
  message(FATAL_ERROR "retried run differs from the clean reference:\n"
                      "=== retry ===\n${retry_out}\n"
                      "=== reference ===\n${reference_out}")
endif()

message(STATUS "error isolation holds: skip isolates, abort fails fast, "
               "retry recovers")
