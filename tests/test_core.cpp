#include <gtest/gtest.h>

#include "circuits/catalog.hpp"
#include "circuits/embedded.hpp"
#include "core/delay_atpg.hpp"
#include "netlist/fanout.hpp"

namespace gdf::core {
namespace {

using sim::Lv;

TEST(TestSequenceTest, FrameAssemblyAndClocks) {
  TestSequence seq;
  seq.init_frames = {{Lv::One}, {Lv::Zero}};
  seq.v1 = {Lv::X};
  seq.v2 = {Lv::One};
  seq.prop_frames = {{Lv::Zero}};
  EXPECT_EQ(seq.pattern_count(), 5u);
  EXPECT_EQ(seq.fast_index(), 3u);
  const auto frames = seq.all_frames();
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(frames[2], seq.v1);
  EXPECT_EQ(frames[3], seq.v2);
  const auto clocks = seq.clocks();
  EXPECT_EQ(clocks[3], ClockKind::Fast);
  EXPECT_EQ(clocks[2], ClockKind::Slow);
  EXPECT_EQ(clocks[4], ClockKind::Slow);
}

TEST(FogbusterC17, FullyCombinationalCircuitAllTested) {
  const net::Netlist nl = circuits::make_c17();
  const FogbusterResult result = run_delay_atpg(nl);
  EXPECT_EQ(result.faults.size(), 34u);
  EXPECT_EQ(result.tested(), 34);
  EXPECT_EQ(result.untestable(), 0);
  EXPECT_EQ(result.aborted(), 0);
  // Every explicitly generated sequence observes at a PO (no registers).
  for (const TestSequence& t : result.tests) {
    EXPECT_TRUE(t.observed_at_po);
    EXPECT_TRUE(t.init_frames.empty());
    EXPECT_TRUE(t.prop_frames.empty());
  }
}

class FogbusterS27 : public ::testing::Test {
 protected:
  static const FogbusterResult& result() {
    static const FogbusterResult r = [] {
      return run_delay_atpg(circuits::make_s27());
    }();
    return r;
  }
};

TEST_F(FogbusterS27, StatusPartitionConsistent) {
  const FogbusterResult& r = result();
  EXPECT_EQ(r.faults.size(), 52u);
  EXPECT_EQ(r.tested() + r.untestable() + r.aborted(),
            static_cast<int>(r.faults.size()));
  EXPECT_EQ(r.count(FaultStatus::Untested), 0);
  // s27 is small and synchronizable: a healthy majority must be tested.
  EXPECT_GT(r.tested(), 25);
}

TEST_F(FogbusterS27, EverySequenceVerifiesIndependently) {
  const net::Netlist nl =
      net::expand_fanout_branches(circuits::make_s27());
  const alg::AtpgModel model(nl);
  for (const TestSequence& t : result().tests) {
    const VerifyReport report =
        verify_sequence(model, alg::robust_algebra(), t);
    EXPECT_TRUE(report.ok) << report.reason;
  }
}

TEST_F(FogbusterS27, PatternCountMatchesSequences) {
  std::size_t total = 0;
  for (const TestSequence& t : result().tests) {
    total += t.pattern_count();
  }
  EXPECT_EQ(total, result().pattern_count);
}

TEST_F(FogbusterS27, DroppingReducesTargetedWork) {
  const FogbusterResult& r = result();
  EXPECT_EQ(r.stages.targeted + r.stages.dropped,
            static_cast<long>(r.faults.size()));
  EXPECT_GT(r.stages.dropped, 0);

  AtpgOptions no_drop;
  no_drop.fault_dropping = false;
  const FogbusterResult full = run_delay_atpg(circuits::make_s27(), no_drop);
  EXPECT_EQ(full.stages.targeted, static_cast<long>(full.faults.size()));
  EXPECT_GT(full.stages.targeted, r.stages.targeted);
  // Dropping never changes which faults are testable, only who finds them.
  EXPECT_EQ(full.tested(), r.tested());
}

TEST_F(FogbusterS27, Deterministic) {
  const FogbusterResult again = run_delay_atpg(circuits::make_s27());
  EXPECT_EQ(again.tested(), result().tested());
  EXPECT_EQ(again.untestable(), result().untestable());
  EXPECT_EQ(again.aborted(), result().aborted());
  EXPECT_EQ(again.pattern_count, result().pattern_count);
}

TEST(FogbusterVerifyRejects, CorruptedSequenceFails) {
  const FogbusterResult r = run_delay_atpg(circuits::make_s27());
  ASSERT_FALSE(r.tests.empty());
  const net::Netlist nl =
      net::expand_fanout_branches(circuits::make_s27());
  const alg::AtpgModel model(nl);

  // Find a sequence that relies on propagation and amputate it.
  bool exercised = false;
  for (const TestSequence& t : r.tests) {
    if (t.observed_at_po || t.prop_frames.empty()) {
      continue;
    }
    TestSequence broken = t;
    broken.prop_frames.clear();
    const VerifyReport report =
        verify_sequence(model, alg::robust_algebra(), broken);
    EXPECT_FALSE(report.ok);
    exercised = true;
    break;
  }
  // Also corrupt a launch vector of some sequence.
  TestSequence mangled = r.tests.front();
  for (Lv& v : mangled.v2) {
    v = v == Lv::One ? Lv::Zero : Lv::One;
  }
  const VerifyReport report =
      verify_sequence(model, alg::robust_algebra(), mangled);
  EXPECT_FALSE(report.ok);
  (void)exercised;
}

TEST(FogbusterSingleFault, KnownPpoFaultNeedsPropagation) {
  // G13 feeds only DFF G7, so its faults must use the propagation phase.
  const net::Netlist nl = circuits::make_s27();
  Fogbuster flow(nl);
  const net::GateId g13 = flow.working_netlist().find("G13");
  ASSERT_NE(g13, net::kNoGate);
  TestSequence seq;
  StageStats stages;
  const FaultStatus status =
      flow.generate_for_fault({g13, true}, &seq, &stages);
  ASSERT_EQ(status, FaultStatus::Tested);
  EXPECT_FALSE(seq.observed_at_po);
  EXPECT_FALSE(seq.prop_frames.empty());
  EXPECT_GT(stages.prop_attempts, 0);
}

TEST(FogbusterNonRobust, RelaxedModeTestsAtLeastAsManyFaults) {
  const net::Netlist nl = circuits::make_s27();
  const FogbusterResult robust = run_delay_atpg(nl);
  AtpgOptions opts;
  opts.mode = alg::Mode::NonRobust;
  const FogbusterResult relaxed = run_delay_atpg(nl, opts);
  EXPECT_GE(relaxed.tested(), robust.tested());
  EXPECT_LE(relaxed.untestable(), robust.untestable());
}

TEST(FogbusterOptions, StemOnlyFaultListIsSmaller) {
  AtpgOptions opts;
  opts.fault_sites.include_branches = false;
  const FogbusterResult r = run_delay_atpg(circuits::make_s27(), opts);
  EXPECT_EQ(r.faults.size(), 34u);
}

TEST(FogbusterOptions, PerFaultTimeCapAborts) {
  AtpgOptions opts;
  opts.per_fault_seconds = 1e-9;  // everything times out immediately
  opts.fault_dropping = false;
  const FogbusterResult r = run_delay_atpg(circuits::make_s27(), opts);
  EXPECT_EQ(r.aborted(), static_cast<int>(r.faults.size()));
}

TEST(ReportTest, Table3Formatting) {
  Table3Row row{"s27", 39, 11, 0, 163, 0.4};
  const std::string header = table3_header();
  const std::string line = format_table3_row(row);
  EXPECT_NE(header.find("circuit"), std::string::npos);
  EXPECT_NE(header.find("untstbl"), std::string::npos);
  EXPECT_NE(line.find("s27"), std::string::npos);
  EXPECT_NE(line.find("39"), std::string::npos);
  EXPECT_NE(line.find("<1"), std::string::npos);
  row.seconds = 12.4;
  EXPECT_NE(format_table3_row(row).find("12"), std::string::npos);
}

TEST(ReportTest, StageStatsMentionEveryStage) {
  StageStats s;
  s.targeted = 7;
  const std::string text = format_stage_stats(s);
  for (const char* key :
       {"targeted", "local", "propagation", "re-entries",
        "synchronizations", "verify", "dropped"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace gdf::core
