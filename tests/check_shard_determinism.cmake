# End-to-end intra-circuit sharding determinism on the gdf_atpg binary:
# a sweep must emit byte-identical CSV with fault sharding off and with
# four forced generation shards (the wall-time column is dropped via
# --no-seconds). Registered by tests/CMakeLists.txt twice:
#   * cli_shard_determinism       — SCOPE=full: the whole catalog at the
#                                   paper configuration (the acceptance
#                                   sweep of ISSUE 4);
#   * cli_shard_determinism_small — SCOPE=small: two mid-size circuits
#                                   with a tiny epoch, cheap enough for
#                                   the ThreadSanitizer CI job.
#
# Usage: cmake -DGDF_ATPG=<path> -DSCOPE=<full|small> -P check_shard_determinism.cmake

if(SCOPE STREQUAL "small")
  set(sweep_args --circuit s298 --circuit s344 --csv --no-seconds
      --jobs 2 --shard-epoch 5)
else()
  set(sweep_args --all --csv --no-seconds --jobs 2)
endif()

execute_process(
  COMMAND ${GDF_ATPG} ${sweep_args} --shard-faults off
  OUTPUT_VARIABLE off_out
  RESULT_VARIABLE off_rc)
if(NOT off_rc EQUAL 0)
  message(FATAL_ERROR "gdf_atpg --shard-faults off failed (rc=${off_rc})")
endif()

execute_process(
  COMMAND ${GDF_ATPG} ${sweep_args} --shard-faults 4
  OUTPUT_VARIABLE shard_out
  RESULT_VARIABLE shard_rc)
if(NOT shard_rc EQUAL 0)
  message(FATAL_ERROR "gdf_atpg --shard-faults 4 failed (rc=${shard_rc})")
endif()

if(NOT off_out STREQUAL shard_out)
  message(FATAL_ERROR "--shard-faults off and 4 output differs:\n"
                      "=== off ===\n${off_out}\n"
                      "=== 4 ===\n${shard_out}")
endif()

string(LENGTH "${off_out}" out_len)
if(out_len EQUAL 0)
  message(FATAL_ERROR "gdf_atpg produced no output")
endif()
message(STATUS
  "shard off and 4 output byte-identical (${SCOPE}, ${out_len} bytes)")
