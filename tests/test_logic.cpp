#include <gtest/gtest.h>

#include <vector>

#include "sim/logic.hpp"

namespace gdf::sim {
namespace {

const std::vector<Lv> kAll = {Lv::Zero, Lv::One, Lv::X, Lv::D, Lv::Dbar};

TEST(LvTest, Names) {
  EXPECT_EQ(lv_name(Lv::Zero), "0");
  EXPECT_EQ(lv_name(Lv::Dbar), "D'");
}

TEST(LvTest, GoodFaultyComponents) {
  EXPECT_EQ(good_value(Lv::D), Lv::One);
  EXPECT_EQ(faulty_value(Lv::D), Lv::Zero);
  EXPECT_EQ(good_value(Lv::Dbar), Lv::Zero);
  EXPECT_EQ(faulty_value(Lv::Dbar), Lv::One);
  EXPECT_EQ(good_value(Lv::X), Lv::X);
}

TEST(LvTest, CombineRebuildsValues) {
  for (const Lv v : kAll) {
    EXPECT_EQ(combine(good_value(v), faulty_value(v)), v);
  }
}

TEST(LvAndTest, MatchesDCalculusTable) {
  // Classic 5x5 D-calculus AND table.
  EXPECT_EQ(lv_and(Lv::Zero, Lv::D), Lv::Zero);
  EXPECT_EQ(lv_and(Lv::One, Lv::D), Lv::D);
  EXPECT_EQ(lv_and(Lv::D, Lv::D), Lv::D);
  EXPECT_EQ(lv_and(Lv::D, Lv::Dbar), Lv::Zero);
  EXPECT_EQ(lv_and(Lv::X, Lv::D), Lv::X);
  EXPECT_EQ(lv_and(Lv::X, Lv::Zero), Lv::Zero);
  EXPECT_EQ(lv_and(Lv::X, Lv::One), Lv::X);
}

TEST(LvAndTest, Commutative) {
  for (const Lv a : kAll) {
    for (const Lv b : kAll) {
      EXPECT_EQ(lv_and(a, b), lv_and(b, a));
    }
  }
}

TEST(LvAndTest, AssociativeUpToX) {
  // The five-valued abstraction is lossy: X forgets which machine was
  // unknown, so different fold orders may differ in precision (e.g.
  // (X AND D) AND D' = X while X AND (D AND D') = 0). Soundness only
  // requires the two results to be consistent: equal, or one of them X.
  for (const Lv a : kAll) {
    for (const Lv b : kAll) {
      for (const Lv c : kAll) {
        const Lv left = lv_and(lv_and(a, b), c);
        const Lv right = lv_and(a, lv_and(b, c));
        EXPECT_TRUE(left == right || left == Lv::X || right == Lv::X)
            << lv_name(a) << "," << lv_name(b) << "," << lv_name(c);
      }
    }
  }
}

TEST(LvAndTest, SoundPerMachine) {
  // AND over the pair must equal the pair of per-machine ANDs whenever the
  // result is definite.
  const auto and01 = [](Lv a, Lv b) {
    if (a == Lv::Zero || b == Lv::Zero) return Lv::Zero;
    if (a == Lv::X || b == Lv::X) return Lv::X;
    return Lv::One;
  };
  for (const Lv a : kAll) {
    for (const Lv b : kAll) {
      const Lv out = lv_and(a, b);
      if (out == Lv::X) {
        continue;  // X is always a sound over-approximation
      }
      EXPECT_EQ(good_value(out), and01(good_value(a), good_value(b)));
      EXPECT_EQ(faulty_value(out), and01(faulty_value(a), faulty_value(b)));
    }
  }
}

TEST(LvNotTest, Involution) {
  for (const Lv a : kAll) {
    EXPECT_EQ(lv_not(lv_not(a)), a);
  }
}

TEST(LvOrTest, DeMorganConsistent) {
  for (const Lv a : kAll) {
    for (const Lv b : kAll) {
      EXPECT_EQ(lv_or(a, b), lv_not(lv_and(lv_not(a), lv_not(b))));
    }
  }
}

TEST(LvXorTest, KnownCases) {
  EXPECT_EQ(lv_xor(Lv::D, Lv::D), Lv::Zero);
  EXPECT_EQ(lv_xor(Lv::D, Lv::Dbar), Lv::One);
  EXPECT_EQ(lv_xor(Lv::D, Lv::Zero), Lv::D);
  EXPECT_EQ(lv_xor(Lv::D, Lv::One), Lv::Dbar);
  EXPECT_EQ(lv_xor(Lv::X, Lv::One), Lv::X);
}

TEST(EvalGateTest, NandNorXnor) {
  using net::GateType;
  const std::vector<Lv> dd = {Lv::D, Lv::D};
  EXPECT_EQ(eval_gate(GateType::Nand, dd), Lv::Dbar);
  EXPECT_EQ(eval_gate(GateType::Nor, dd), Lv::Dbar);
  EXPECT_EQ(eval_gate(GateType::Xnor, dd), Lv::One);
  const std::vector<Lv> one = {Lv::D};
  EXPECT_EQ(eval_gate(GateType::Buf, one), Lv::D);
  EXPECT_EQ(eval_gate(GateType::Not, one), Lv::Dbar);
}

TEST(EvalGateTest, WideGatesFold) {
  using net::GateType;
  const std::vector<Lv> vals = {Lv::One, Lv::One, Lv::D, Lv::One};
  EXPECT_EQ(eval_gate(GateType::And, vals), Lv::D);
  EXPECT_EQ(eval_gate(GateType::Nand, vals), Lv::Dbar);
  const std::vector<Lv> with_zero = {Lv::One, Lv::Zero, Lv::D};
  EXPECT_EQ(eval_gate(GateType::And, with_zero), Lv::Zero);
}

}  // namespace
}  // namespace gdf::sim
