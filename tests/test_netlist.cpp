#include <gtest/gtest.h>

#include "base/error.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"
#include "netlist/fanout.hpp"
#include "netlist/levelize.hpp"
#include "netlist/stats.hpp"
#include "netlist/validate.hpp"

namespace gdf::net {
namespace {

Netlist tiny() {
  NetlistBuilder b("tiny");
  b.input("a").input("b");
  b.output("y");
  b.gate("n", GateType::Nand, {"a", "b"});
  b.gate("y", GateType::Not, {"n"});
  return b.build();
}

TEST(GateTypeTest, ParseIsCaseInsensitive) {
  EXPECT_EQ(parse_gate_type("nand"), GateType::Nand);
  EXPECT_EQ(parse_gate_type("NAND"), GateType::Nand);
  EXPECT_EQ(parse_gate_type("BuFf"), GateType::Buf);
  EXPECT_EQ(parse_gate_type("dff"), GateType::Dff);
  EXPECT_THROW(parse_gate_type("latch"), Error);
}

TEST(GateTypeTest, InvertingClassification) {
  EXPECT_TRUE(is_inverting(GateType::Nand));
  EXPECT_TRUE(is_inverting(GateType::Nor));
  EXPECT_TRUE(is_inverting(GateType::Not));
  EXPECT_TRUE(is_inverting(GateType::Xnor));
  EXPECT_FALSE(is_inverting(GateType::And));
  EXPECT_FALSE(is_inverting(GateType::Buf));
}

TEST(BuilderTest, BuildsSmallCircuit) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.size(), 4u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 0u);
  const GateId n = nl.find("n");
  ASSERT_NE(n, kNoGate);
  EXPECT_EQ(nl.gate(n).type, GateType::Nand);
  EXPECT_EQ(nl.gate(n).fanin.size(), 2u);
  EXPECT_TRUE(nl.is_po(nl.find("y")));
  EXPECT_FALSE(nl.is_po(n));
}

TEST(BuilderTest, ForwardReferencesResolve) {
  NetlistBuilder b("fwd");
  b.input("a");
  b.output("y");
  b.gate("y", GateType::Not, {"later"});
  b.gate("later", GateType::Buf, {"a"});
  const Netlist nl = b.build();
  EXPECT_EQ(nl.gate(nl.find("y")).fanin[0], nl.find("later"));
}

TEST(BuilderTest, RejectsDuplicateNet) {
  NetlistBuilder b("dup");
  b.input("a");
  b.gate("a", GateType::Not, {"a"});
  EXPECT_THROW(b.build(), Error);
}

TEST(BuilderTest, RejectsUndefinedFanin) {
  NetlistBuilder b("undef");
  b.input("a");
  b.output("y");
  b.gate("y", GateType::Not, {"ghost"});
  EXPECT_THROW(b.build(), Error);
}

TEST(BuilderTest, RejectsUndefinedOutput) {
  NetlistBuilder b("badpo");
  b.input("a");
  b.output("ghost");
  EXPECT_THROW(b.build(), Error);
}

TEST(BuilderTest, RejectsWrongArity) {
  NetlistBuilder b("arity");
  b.input("a");
  b.input("b");
  b.output("y");
  b.gate("y", GateType::Not, {"a", "b"});
  EXPECT_THROW(b.build(), Error);
}

TEST(BenchIoTest, ParsesBasicFile) {
  const Netlist nl = parse_bench(R"(
# comment
INPUT(a)
INPUT(b)
OUTPUT(y)
s = DFF(y)
y = NAND(a, b)
)",
                                 "demo");
  EXPECT_EQ(nl.name(), "demo");
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.dffs().size(), 1u);
  EXPECT_EQ(nl.gate(nl.find("s")).fanin[0], nl.find("y"));
}

TEST(BenchIoTest, ReportsLineNumbers) {
  try {
    parse_bench("INPUT(a)\nbogus line\n", "x");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(BenchIoTest, RoundTripPreservesStructure) {
  const Netlist original = tiny();
  const Netlist reparsed = parse_bench(write_bench(original), "tiny");
  EXPECT_EQ(reparsed.size(), original.size());
  EXPECT_EQ(reparsed.inputs().size(), original.inputs().size());
  EXPECT_EQ(reparsed.outputs().size(), original.outputs().size());
  const GateId n = reparsed.find("n");
  ASSERT_NE(n, kNoGate);
  EXPECT_EQ(reparsed.gate(n).type, GateType::Nand);
}

TEST(LevelizeTest, LevelsAreMonotone) {
  const Netlist nl = tiny();
  const Levelization lev = levelize(nl);
  EXPECT_EQ(lev.order.size(), nl.size());
  for (GateId id = 0; id < nl.size(); ++id) {
    for (const GateId d : nl.gate(id).fanin) {
      if (nl.gate(id).type != GateType::Dff) {
        EXPECT_LT(lev.level[d], lev.level[id]);
      }
    }
  }
  EXPECT_EQ(lev.depth, 2);
}

TEST(LevelizeTest, DetectsCombinationalCycle) {
  NetlistBuilder b("cyc");
  b.input("a");
  b.output("y");
  b.gate("y", GateType::And, {"a", "z"});
  b.gate("z", GateType::Not, {"y"});
  const Netlist nl = b.build();
  EXPECT_THROW(levelize(nl), Error);
}

TEST(LevelizeTest, DffFeedbackIsLegal) {
  NetlistBuilder b("ff");
  b.input("a");
  b.output("q");
  b.dff("q", "d");
  b.gate("d", GateType::And, {"a", "q"});
  const Netlist nl = b.build();
  EXPECT_NO_THROW(levelize(nl));
}

TEST(ConeTest, FanoutConeStopsAtDff) {
  NetlistBuilder b("cone");
  b.input("a");
  b.output("y");
  b.dff("q", "d");
  b.gate("d", GateType::Not, {"a"});
  b.gate("y", GateType::And, {"q", "a"});
  const Netlist nl = b.build();
  const auto cone = fanout_cone(nl, nl.find("a"));
  // a reaches d and y but must not cross the register into q.
  EXPECT_NE(std::find(cone.begin(), cone.end(), nl.find("d")), cone.end());
  EXPECT_NE(std::find(cone.begin(), cone.end(), nl.find("y")), cone.end());
  EXPECT_EQ(std::find(cone.begin(), cone.end(), nl.find("q")), cone.end());
}

TEST(ConeTest, FaninConeReachesSources) {
  const Netlist nl = tiny();
  const auto cone = fanin_cone(nl, nl.find("y"));
  EXPECT_EQ(cone.size(), 4u);  // y, n, a, b
}

TEST(DistanceTest, ObservationDistance) {
  const Netlist nl = tiny();
  const auto dist = distance_to_observation(nl);
  EXPECT_EQ(dist[nl.find("y")], 0);
  EXPECT_EQ(dist[nl.find("n")], 1);
  EXPECT_EQ(dist[nl.find("a")], 2);
}

TEST(FanoutTest, ExpansionInsertsBranches) {
  NetlistBuilder b("fan");
  b.input("a");
  b.output("y");
  b.output("z");
  b.gate("y", GateType::Not, {"a"});
  b.gate("z", GateType::Buf, {"a"});
  const Netlist nl = b.build();
  EXPECT_EQ(count_fanout_branches(nl), 2u);
  const Netlist ex = expand_fanout_branches(nl);
  EXPECT_EQ(ex.size(), nl.size() + 2);
  const GateId b0 = ex.find("a$b0");
  const GateId b1 = ex.find("a$b1");
  ASSERT_NE(b0, kNoGate);
  ASSERT_NE(b1, kNoGate);
  EXPECT_TRUE(ex.gate(b0).is_branch);
  // Each reader now sees its own branch.
  EXPECT_EQ(ex.gate(ex.find("y")).fanin[0], b0);
  EXPECT_EQ(ex.gate(ex.find("z")).fanin[0], b1);
  EXPECT_TRUE(validate(ex).ok());
}

TEST(FanoutTest, SingleReaderNetsUntouched) {
  const Netlist nl = tiny();
  const Netlist ex = expand_fanout_branches(nl);
  EXPECT_EQ(ex.size(), nl.size());
}

TEST(ValidateTest, AcceptsGoodCircuit) {
  EXPECT_TRUE(validate(tiny()).ok());
}

TEST(ValidateTest, WarnsOnDanglingGate) {
  NetlistBuilder b("dangle");
  b.input("a");
  b.output("y");
  b.gate("y", GateType::Not, {"a"});
  b.gate("dead", GateType::Buf, {"a"});
  const auto report = validate(b.build());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warnings.size(), 1u);
}

TEST(StatsTest, CountsTiny) {
  const NetlistStats s = compute_stats(tiny());
  EXPECT_EQ(s.primary_inputs, 2u);
  EXPECT_EQ(s.primary_outputs, 1u);
  EXPECT_EQ(s.logic_gates, 2u);
  EXPECT_EQ(s.inverters, 1u);
  EXPECT_EQ(s.depth, 2);
}

// Malformed-.bench corpus: every failure mode must surface as a
// structured Input error whose message names the offending source line,
// so a bad file in a thousand-circuit sweep is diagnosable from its
// `# error:` row alone.

/// Runs `body`, asserts it throws gdf::Error of kind Input, and returns
/// the message.
template <typename Fn>
std::string input_error_of(Fn&& body) {
  try {
    body();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Input);
    return e.what();
  }
  ADD_FAILURE() << "expected a gdf::Error";
  return "";
}

TEST(BenchCorpusTest, TruncatedLineNamesTheLine) {
  const std::string msg = input_error_of(
      [] { parse_bench("INPUT(a)\nOUTPUT(y)\ny = NAND(a", "trunc"); });
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
}

TEST(BenchCorpusTest, DuplicateGateNamesTheLine) {
  const std::string msg = input_error_of([] {
    parse_bench(
        "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n", "dup");
  });
  EXPECT_NE(msg.find("'y' defined twice"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(line 4)"), std::string::npos) << msg;
}

TEST(BenchCorpusTest, UndefinedFaninNamesTheLine) {
  const std::string msg = input_error_of([] {
    parse_bench("INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)\n", "undef");
  });
  EXPECT_NE(msg.find("undefined net 'ghost'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(line 3)"), std::string::npos) << msg;
}

TEST(BenchCorpusTest, UndefinedOutputNamesTheLine) {
  const std::string msg = input_error_of(
      [] { parse_bench("INPUT(a)\nOUTPUT(y)\n", "noout"); });
  EXPECT_NE(msg.find("'y' is never defined"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(line 2)"), std::string::npos) << msg;
}

TEST(BenchCorpusTest, CombinationalCycleFailsValidation) {
  const Netlist nl = parse_bench(
      "INPUT(i)\nOUTPUT(a)\na = NAND(i, b)\nb = NOT(a)\n", "cyc");
  const std::string msg =
      input_error_of([&] { validate_or_throw(nl); });
  EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
}

TEST(BenchCorpusTest, EmptyFileFailsValidation) {
  const Netlist nl = parse_bench("", "empty");
  const std::string msg =
      input_error_of([&] { validate_or_throw(nl); });
  EXPECT_NE(msg.find("no primary inputs"), std::string::npos) << msg;
}

TEST(BenchCorpusTest, MissingFileIsAResourceError) {
  try {
    read_bench_file("/nonexistent/gdf-no-such-file.bench");
    FAIL() << "missing file did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Resource);
  }
}

}  // namespace
}  // namespace gdf::net
