# End-to-end guarantees of the conflict-driven search (--learn):
#
#  1. --learn off reproduces the pre-learning chronological search
#     byte-for-byte: the sweep's CSV must equal the committed golden
#     (tests/golden_catalog_learn_off.csv).
#  2. Learning is deterministic: the default (--learn on) sweep emits the
#     same bytes whatever the worker count or fault sharding.
#  3. Learning helps, never loses faults: per circuit the fault total is
#     unchanged against the --learn off rows, and across the full
#     catalog the aborted sum does not grow. (Activity-driven decision
#     ordering and restarts re-shuffle *which* faults exhaust the
#     backtrack budget, so per-circuit counts may move in both
#     directions; the totals are the invariants. The aborted-sum gate
#     only holds at catalog scale — the heuristics are tuned for the
#     abort-heavy big circuits and may cost a few aborts on a small
#     easy subset — so the small scope checks fault totals only.)
#
# Registered by tests/CMakeLists.txt as two ctests:
#   * cli_learning_determinism       — SCOPE=full: the whole catalog at
#     the paper configuration (the ISSUE acceptance sweep).
#   * cli_learning_determinism_small — SCOPE=small: three cheap circuits,
#     fast enough for the ThreadSanitizer CI job (which is what exercises
#     the clause machinery under -fsanitize=thread).
#
# Usage: cmake -DGDF_ATPG=<path> -DGOLDEN=<csv> -DSCOPE=<full|small> -P
#        check_learning_determinism.cmake

if(SCOPE STREQUAL "small")
  set(circuits --circuit s27 --circuit s298 --circuit c17)
else()
  set(circuits --all)
endif()
set(base_args ${circuits} --csv --no-seconds)

function(run_sweep out_var)
  execute_process(
    COMMAND ${GDF_ATPG} ${base_args} ${ARGN}
    OUTPUT_VARIABLE out
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "gdf_atpg ${base_args} ${ARGN} failed (rc=${rc})")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# --- 1. --learn off against the committed golden ---------------------------
run_sweep(off_out --learn off)
file(READ ${GOLDEN} golden_all)
if(SCOPE STREQUAL "small")
  # The golden file covers the whole catalog; keep its header plus the
  # rows of the circuits this scope sweeps.
  string(REPLACE "\n" ";" golden_lines "${golden_all}")
  set(golden "circuit,tested,untestable,aborted,patterns\n")
  foreach(line IN LISTS golden_lines)
    if(line MATCHES "^(s27|s298|c17),")
      string(APPEND golden "${line}\n")
    endif()
  endforeach()
else()
  set(golden "${golden_all}")
endif()
if(NOT off_out STREQUAL golden)
  message(FATAL_ERROR "--learn off no longer matches the golden catalog:\n"
                      "=== --learn off ===\n${off_out}\n"
                      "=== golden ===\n${golden}")
endif()

# --- 2. default learning is worker/shard independent -----------------------
run_sweep(on_j1 --jobs 1)
run_sweep(on_j3 --jobs 3)
if(NOT on_j1 STREQUAL on_j3)
  message(FATAL_ERROR "--learn rows depend on --jobs:\n"
                      "=== jobs 1 ===\n${on_j1}\n=== jobs 3 ===\n${on_j3}")
endif()
run_sweep(on_shard --jobs 2 --shard-faults 2)
if(NOT on_j1 STREQUAL on_shard)
  message(FATAL_ERROR "--learn rows depend on --shard-faults:\n"
                      "=== sequential ===\n${on_j1}\n"
                      "=== sharded ===\n${on_shard}")
endif()

# --- 3. learning helps, never loses faults ----------------------------------
string(REPLACE "\n" ";" off_lines "${off_out}")
string(REPLACE "\n" ";" on_lines "${on_j1}")
list(LENGTH off_lines n_off)
list(LENGTH on_lines n_on)
if(NOT n_off EQUAL n_on)
  message(FATAL_ERROR "row counts differ between --learn off and on")
endif()
math(EXPR last "${n_off} - 1")
set(off_aborted_sum 0)
set(on_aborted_sum 0)
foreach(i RANGE 1 ${last})
  list(GET off_lines ${i} off_row)
  list(GET on_lines ${i} on_row)
  if(off_row STREQUAL "")
    continue()
  endif()
  string(REPLACE "," ";" off_cells "${off_row}")
  string(REPLACE "," ";" on_cells "${on_row}")
  list(GET off_cells 0 off_name)
  list(GET on_cells 0 on_name)
  if(NOT off_name STREQUAL on_name)
    message(FATAL_ERROR "circuit order differs: ${off_name} vs ${on_name}")
  endif()
  list(GET off_cells 1 off_tested)
  list(GET off_cells 2 off_untestable)
  list(GET off_cells 3 off_aborted)
  list(GET on_cells 1 on_tested)
  list(GET on_cells 2 on_untestable)
  list(GET on_cells 3 on_aborted)
  math(EXPR off_total "${off_tested} + ${off_untestable} + ${off_aborted}")
  math(EXPR on_total "${on_tested} + ${on_untestable} + ${on_aborted}")
  if(NOT off_total EQUAL on_total)
    message(FATAL_ERROR "${off_name}: fault total changed "
                        "(${off_total} -> ${on_total})")
  endif()
  math(EXPR off_aborted_sum "${off_aborted_sum} + ${off_aborted}")
  math(EXPR on_aborted_sum "${on_aborted_sum} + ${on_aborted}")
endforeach()
if(NOT SCOPE STREQUAL "small" AND on_aborted_sum GREATER off_aborted_sum)
  message(FATAL_ERROR "learning grew the catalog aborted total "
                      "(${off_aborted_sum} -> ${on_aborted_sum})")
endif()

message(STATUS "learning determinism holds: --learn off matches the "
               "golden, default rows are worker/shard independent, fault "
               "totals are stable; aborted sum ${off_aborted_sum} -> "
               "${on_aborted_sum}")
