# End-to-end guarantees of the restart policy (--restarts):
#
#  1. --restarts off --learn off is the committed pre-learning golden
#     path: the sweep's CSV must equal tests/golden_catalog_learn_off.csv
#     (the restart machinery is inert without learning, but this pins the
#     flag combination explicitly).
#  2. Luby restarts are deterministic: --restarts luby emits the same
#     bytes — verdicts AND pattern counts — at --jobs 1, --jobs 4, and
#     --jobs 4 --shard-faults 4. The trigger counts only each fault's own
#     analyzed conflicts, so worker scheduling cannot move a restart.
#  3. A non-default --restart-base is equally worker-independent.
#
# Registered by tests/CMakeLists.txt as two ctests:
#   * cli_restart_determinism       — SCOPE=full: the whole catalog.
#   * cli_restart_determinism_small — SCOPE=small: three cheap circuits,
#     fast enough for the ThreadSanitizer CI job.
#
# Usage: cmake -DGDF_ATPG=<path> -DGOLDEN=<csv> -DSCOPE=<full|small> -P
#        check_restart_determinism.cmake

if(SCOPE STREQUAL "small")
  set(circuits --circuit s27 --circuit s298 --circuit c17)
else()
  set(circuits --all)
endif()
set(base_args ${circuits} --csv --no-seconds)

function(run_sweep out_var)
  execute_process(
    COMMAND ${GDF_ATPG} ${base_args} ${ARGN}
    OUTPUT_VARIABLE out
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "gdf_atpg ${base_args} ${ARGN} failed (rc=${rc})")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# --- 1. --restarts off --learn off against the committed golden -------------
run_sweep(off_out --restarts off --learn off)
file(READ ${GOLDEN} golden_all)
if(SCOPE STREQUAL "small")
  string(REPLACE "\n" ";" golden_lines "${golden_all}")
  set(golden "circuit,tested,untestable,aborted,patterns\n")
  foreach(line IN LISTS golden_lines)
    if(line MATCHES "^(s27|s298|c17),")
      string(APPEND golden "${line}\n")
    endif()
  endforeach()
else()
  set(golden "${golden_all}")
endif()
if(NOT off_out STREQUAL golden)
  message(FATAL_ERROR "--restarts off --learn off no longer matches the "
                      "golden catalog:\n"
                      "=== --restarts off --learn off ===\n${off_out}\n"
                      "=== golden ===\n${golden}")
endif()

# --- 2. luby restarts are worker/shard independent --------------------------
run_sweep(luby_j1 --restarts luby --jobs 1)
run_sweep(luby_j4 --restarts luby --jobs 4)
if(NOT luby_j1 STREQUAL luby_j4)
  message(FATAL_ERROR "--restarts luby rows depend on --jobs:\n"
                      "=== jobs 1 ===\n${luby_j1}\n"
                      "=== jobs 4 ===\n${luby_j4}")
endif()
run_sweep(luby_shard --restarts luby --jobs 4 --shard-faults 4)
if(NOT luby_j1 STREQUAL luby_shard)
  message(FATAL_ERROR "--restarts luby rows depend on --shard-faults:\n"
                      "=== sequential ===\n${luby_j1}\n"
                      "=== sharded ===\n${luby_shard}")
endif()

# --- 3. a non-default restart base is equally deterministic -----------------
run_sweep(base8_j1 --restarts luby --restart-base 8 --jobs 1)
run_sweep(base8_shard --restarts luby --restart-base 8
          --jobs 4 --shard-faults 4)
if(NOT base8_j1 STREQUAL base8_shard)
  message(FATAL_ERROR "--restart-base 8 rows depend on sharding:\n"
                      "=== sequential ===\n${base8_j1}\n"
                      "=== sharded ===\n${base8_shard}")
endif()

message(STATUS "restart determinism holds: --restarts off --learn off "
               "matches the golden and luby rows are byte-identical at "
               "every worker count and sharding")
