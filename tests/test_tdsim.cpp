#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "circuits/catalog.hpp"
#include "circuits/embedded.hpp"
#include "netlist/fanout.hpp"
#include "tdsim/tdsim.hpp"

namespace gdf::tdsim {
namespace {

using alg::AtpgModel;
using alg::robust_algebra;
using alg::V8;
using alg::VSet;
using tdgen::DelayFault;

VSet bits(int init, int fin) { return alg::vset_primary_from_frames(init, fin); }

class C17Tdsim : public ::testing::Test {
 protected:
  C17Tdsim()
      : nl_(net::expand_fanout_branches(circuits::make_c17())),
        model_(nl_),
        tdsim_(model_, robust_algebra()),
        faults_(tdgen::enumerate_faults(nl_)) {}

  TdsimRequest known_good_request() const {
    // The worked N11 StR pattern: N1=0, N2=1, N3=1, N6 falls, N7=0.
    TdsimRequest request;
    request.stimulus.pi_sets = {bits(0, 0), bits(1, 1), bits(1, 1),
                                bits(1, 0), bits(0, 0)};
    return request;
  }

  int fault_index(const std::string& line, bool str) const {
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      if (faults_[i].line == nl_.find(line) &&
          faults_[i].slow_to_rise == str) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  net::Netlist nl_;
  AtpgModel model_;
  Tdsim tdsim_;
  std::vector<DelayFault> faults_;
};

TEST_F(C17Tdsim, KnownPatternDetectsTargetFault) {
  const auto detected = tdsim_.detect_exact(known_good_request(), faults_);
  EXPECT_TRUE(detected[fault_index("N11", true)]);
  // The same pattern robustly covers the falling fault at N16 (N16 falls
  // and both POs rise through it).
  EXPECT_TRUE(detected[fault_index("N16", false)]);
  // A line with no transition under this pattern cannot be detected:
  // N1 is steady 0.
  EXPECT_FALSE(detected[fault_index("N1", true)]);
  EXPECT_FALSE(detected[fault_index("N1", false)]);
}

TEST_F(C17Tdsim, ActivationRequiresCleanTransition) {
  TdsimRequest request = known_good_request();
  request.stimulus.pi_sets[3] = alg::kPrimaryDomain;  // N6 unknown
  const auto detected = tdsim_.detect_exact(request, faults_);
  // N11's transition is no longer guaranteed.
  EXPECT_FALSE(detected[fault_index("N11", true)]);
}

TEST_F(C17Tdsim, CptAgreesOnKnownPattern) {
  const auto exact = tdsim_.detect_exact(known_good_request(), faults_);
  const auto cpt = tdsim_.detect_cpt(known_good_request(), faults_);
  EXPECT_EQ(exact, cpt);
}

struct SweepCase {
  std::string circuit;
  std::uint64_t seed;
};

class CptEquivalence : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CptEquivalence, RandomPatternsMatchExact) {
  const net::Netlist nl =
      net::expand_fanout_branches(circuits::load_circuit(GetParam().circuit));
  const AtpgModel model(nl);
  const Tdsim tdsim(model, robust_algebra());
  const auto faults = tdgen::enumerate_faults(nl);
  Rng rng(GetParam().seed);

  for (int pattern = 0; pattern < 8; ++pattern) {
    TdsimRequest request;
    request.stimulus.pi_sets.resize(nl.inputs().size());
    for (VSet& s : request.stimulus.pi_sets) {
      s = bits(static_cast<int>(rng.next_below(2)),
               static_cast<int>(rng.next_below(2)));
    }
    request.stimulus.ppi_sets.resize(nl.dffs().size());
    for (VSet& s : request.stimulus.ppi_sets) {
      s = bits(static_cast<int>(rng.next_below(2)),
               static_cast<int>(rng.next_below(2)));
    }
    request.observable_ppo.assign(nl.dffs().size(), true);
    const auto exact = tdsim.detect_exact(request, faults);
    const auto cpt = tdsim.detect_cpt(request, faults);
    EXPECT_EQ(exact, cpt) << GetParam().circuit << " pattern " << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, CptEquivalence,
    ::testing::Values(SweepCase{"c17", 11}, SweepCase{"s27", 12},
                      SweepCase{"s298", 13}, SweepCase{"s386", 14}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.circuit;
    });

TEST(TdsimLaneLadder, CptVerdictsIdenticalAtEveryStemBatchWidth) {
  // Stem batch width is a pure throughput knob: the packed sweep resolves
  // dominator stems before the stems they dominate at any batch size, so
  // CPT verdicts — and hence every CSV row — must be byte-identical
  // whether stems flush 4, 16, or 32 at a time (8/32/64 packed lanes).
  std::uint64_t seed = 2026;
  for (const char* name : {"s298", "s386"}) {
    const net::Netlist nl =
        net::expand_fanout_branches(circuits::load_circuit(name));
    const AtpgModel model(nl);
    const Tdsim narrow(model, robust_algebra(), 8);
    const Tdsim mid(model, robust_algebra(), 32);
    const Tdsim wide(model, robust_algebra(), 64);
    const auto faults = tdgen::enumerate_faults(nl);
    Rng rng(++seed);

    for (int pattern = 0; pattern < 6; ++pattern) {
      TdsimRequest request;
      request.stimulus.pi_sets.resize(nl.inputs().size());
      for (VSet& s : request.stimulus.pi_sets) {
        s = bits(static_cast<int>(rng.next_below(2)),
                 static_cast<int>(rng.next_below(2)));
      }
      request.stimulus.ppi_sets.resize(nl.dffs().size());
      for (VSet& s : request.stimulus.ppi_sets) {
        s = bits(static_cast<int>(rng.next_below(2)),
                 static_cast<int>(rng.next_below(2)));
      }
      request.observable_ppo.assign(nl.dffs().size(), true);
      const auto exact = narrow.detect_exact(request, faults);
      ASSERT_EQ(narrow.detect_cpt(request, faults), exact)
          << name << " pattern " << pattern << " lanes 8";
      ASSERT_EQ(mid.detect_cpt(request, faults), exact)
          << name << " pattern " << pattern << " lanes 32";
      ASSERT_EQ(wide.detect_cpt(request, faults), exact)
          << name << " pattern " << pattern << " lanes 64";
    }
  }
}

TEST(TdsimPpoPaths, ObservabilityGatesPpoCredit) {
  // s27, fault G13 StR: G13 feeds only DFF G7 — detection must go through
  // PPO 2 and is only credited when that PPO is observable.
  const net::Netlist nl = net::expand_fanout_branches(circuits::make_s27());
  const AtpgModel model(nl);
  const Tdsim tdsim(model, robust_algebra());
  const std::vector<DelayFault> faults = {{nl.find("G13"), true}};

  TdsimRequest request;
  // G13 = NOR(G2, G12) rises: G2 falls with G12 steady 0;
  // G12 = NOR(G1, G7) = 0 via G1 = 1.
  request.stimulus.pi_sets = {bits(0, 0), bits(1, 1), bits(1, 0),
                              bits(0, 0)};
  request.stimulus.ppi_sets = {bits(0, 0), bits(0, 0), bits(0, 0)};
  request.observable_ppo = {false, false, false};
  EXPECT_FALSE(tdsim.detect_exact(request, faults)[0]);

  request.observable_ppo[2] = true;
  EXPECT_TRUE(tdsim.detect_exact(request, faults)[0]);
  EXPECT_EQ(tdsim.detect_cpt(request, faults)[0], true);
}

TEST(TdsimPpoPaths, InvalidationBlocksCredit) {
  // Same setup; declare PPO 0 (G10's flip-flop) as needed by the
  // propagation phase. G13's fault effect does not reach G10, so credit
  // stands; then make a PPO needed whose value the fault disturbs.
  const net::Netlist nl = net::expand_fanout_branches(circuits::make_s27());
  const AtpgModel model(nl);
  const Tdsim tdsim(model, robust_algebra());

  TdsimRequest request;
  request.stimulus.pi_sets = {bits(0, 0), bits(1, 1), bits(1, 0),
                              bits(0, 0)};
  request.stimulus.ppi_sets = {bits(0, 0), bits(0, 0), bits(0, 0)};
  request.observable_ppo = {false, false, true};

  // G12 StF also captures at G7's PPO? G12 = NOR(G1,G7) is steady 0 here,
  // so only G13's fault matters; needed PPO 0 is undisturbed by it.
  const std::vector<DelayFault> faults = {{nl.find("G13"), true}};
  request.needed_ppos = {0};
  EXPECT_TRUE(tdsim.detect_exact(request, faults)[0]);

  // A fault on G12's branch toward G13 corrupts the same PPO it needs:
  // needing PPO 2 while observing through PPO 2 is fine (self), but a
  // fault observed at PPO 2 that also disturbs a *different* needed PPO
  // is rejected. Construct that with fault G2 StF (G2 feeds only G13).
  // G2 falls here, so StF at G2 is activated and captured at PPO 2 as
  // well; it disturbs nothing else — credit stands.
  const std::vector<DelayFault> g2 = {{nl.find("G2"), false}};
  EXPECT_TRUE(tdsim.detect_exact(request, g2)[0]);
}

TEST(TdsimActivation, SiteMustTransitionCleanly) {
  const net::Netlist nl = net::expand_fanout_branches(circuits::make_c17());
  const AtpgModel model(nl);
  const Tdsim tdsim(model, robust_algebra());
  const std::vector<DelayFault> faults = {{nl.find("N22"), true},
                                          {nl.find("N22"), false}};
  TdsimRequest request;
  // All inputs steady: nothing transitions, nothing is detected.
  request.stimulus.pi_sets = {bits(0, 0), bits(1, 1), bits(1, 1),
                              bits(0, 0), bits(1, 1)};
  const auto detected = tdsim.detect_exact(request, faults);
  EXPECT_FALSE(detected[0]);
  EXPECT_FALSE(detected[1]);
}

}  // namespace
}  // namespace gdf::tdsim
