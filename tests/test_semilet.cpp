#include <gtest/gtest.h>

#include "circuits/catalog.hpp"
#include "circuits/embedded.hpp"
#include "netlist/builder.hpp"
#include "semilet/semilet.hpp"

namespace gdf::semilet {
namespace {

using sim::InputVec;
using sim::Lv;
using sim::StateVec;

SemiletOptions roomy() {
  SemiletOptions o;
  o.backtrack_limit = 1000;
  return o;
}

TEST(FramePodemJustify, CombinationalObjective) {
  // c17: justify N22 = 0, which needs N10 = N16 = 1.
  const net::Netlist nl = circuits::make_c17();
  sim::SeqSimulator simulator(nl);
  Budget budget(roomy());
  PodemRequest request;
  request.mode = PodemMode::JustifyValues;
  request.in_state = {};
  request.assignable_ppi = {};
  request.objectives = {{nl.find("N22"), Lv::Zero}};
  FramePodem podem(simulator, budget, std::move(request));
  FrameSolution sol;
  ASSERT_EQ(podem.next(&sol), PodemStatus::Solution);
  EXPECT_EQ(sol.line_values[nl.find("N22")], Lv::Zero);
}

TEST(FramePodemJustify, ImpossibleObjectiveExhausts) {
  net::NetlistBuilder b("const0");
  b.input("a");
  b.output("y");
  b.gate("an", net::GateType::Not, {"a"});
  b.gate("y", net::GateType::And, {"a", "an"});
  const net::Netlist nl = b.build();
  sim::SeqSimulator simulator(nl);
  Budget budget(roomy());
  PodemRequest request;
  request.mode = PodemMode::JustifyValues;
  request.objectives = {{nl.find("y"), Lv::One}};
  FramePodem podem(simulator, budget, std::move(request));
  EXPECT_EQ(podem.next(nullptr), PodemStatus::Exhausted);
}

TEST(FramePodemJustify, EnumeratesMultipleSolutions) {
  // y = OR(a, b) = 1 has three satisfying binary corners; PODEM with X's
  // yields at least two distinct solutions.
  net::NetlistBuilder b("or2");
  b.input("a");
  b.input("b");
  b.output("y");
  b.gate("y", net::GateType::Or, {"a", "b"});
  const net::Netlist nl = b.build();
  sim::SeqSimulator simulator(nl);
  Budget budget(roomy());
  PodemRequest request;
  request.mode = PodemMode::JustifyValues;
  request.objectives = {{nl.find("y"), Lv::One}};
  FramePodem podem(simulator, budget, std::move(request));
  FrameSolution first, second;
  ASSERT_EQ(podem.next(&first), PodemStatus::Solution);
  ASSERT_EQ(podem.next(&second), PodemStatus::Solution);
  EXPECT_NE(first.pis, second.pis);
}

TEST(FramePodemObserve, DriveStateFaultToOutput) {
  // s27 with D at flip-flop G5: G11 = NOR(G5, G9) passes D' to PO G17 as D
  // once G9 = 0 is justified.
  const net::Netlist nl = circuits::make_s27();
  sim::SeqSimulator simulator(nl);
  Budget budget(roomy());
  PodemRequest request;
  request.mode = PodemMode::ObserveFault;
  request.in_state = {Lv::D, Lv::X, Lv::X};
  request.assignable_ppi = {false, true, true};
  request.require_po = true;
  FramePodem podem(simulator, budget, std::move(request));
  FrameSolution sol;
  ASSERT_EQ(podem.next(&sol), PodemStatus::Solution);
  EXPECT_TRUE(sol.po_hit);
  EXPECT_TRUE(sim::is_fault_effect(sol.line_values[nl.find("G17")]));
}

TEST(FramePodemObserve, UnassignableStateBlocksBacktrace) {
  // A circuit where observation needs a specific state bit: q AND d where
  // d carries D. With q unassignable (U), the only sensitization is
  // unreachable and the frame exhausts.
  net::NetlistBuilder b("gated");
  b.input("a");
  b.output("y");
  b.dff("q", "d");
  b.gate("d", net::GateType::Buf, {"a"});
  b.gate("y", net::GateType::And, {"q", "a"});
  const net::Netlist nl = b.build();
  sim::SeqSimulator simulator(nl);

  for (const bool assignable : {true, false}) {
    Budget budget(roomy());
    PodemRequest request;
    request.mode = PodemMode::ObserveFault;
    request.in_state = {Lv::X};
    request.assignable_ppi = {assignable};
    request.require_po = true;
    // Fault effect arrives via PI a: inject stuck-at-0 at a and force the
    // activating value through the activation objective.
    request.injection = {nl.find("a"), Lv::Zero};
    request.activation_line = nl.find("a");
    request.activation_value = Lv::One;
    FramePodem podem(simulator, budget, std::move(request));
    FrameSolution sol;
    const PodemStatus status = podem.next(&sol);
    if (assignable) {
      ASSERT_EQ(status, PodemStatus::Solution);
      EXPECT_TRUE(sol.po_hit);
      ASSERT_EQ(sol.ppi_assignments.size(), 1u);
      EXPECT_EQ(sol.ppi_assignments[0].second, Lv::One);
    } else {
      EXPECT_EQ(status, PodemStatus::Exhausted);
    }
  }
}

TEST(PropagatorTest, OneFramePath) {
  const net::Netlist nl = circuits::make_s27();
  Budget budget(roomy());
  Propagator propagator(nl, budget);
  StateVec boundary = {Lv::D, Lv::X, Lv::X};
  propagator.start(boundary, {false, true, true});
  PropagationOutcome outcome;
  ASSERT_EQ(propagator.next(&outcome), SeqStatus::Success);
  ASSERT_GE(outcome.frames.size(), 1u);

  // Replay: inject D at G5 and apply the frames; a PO must show D/D'.
  sim::SeqSimulator simulator(nl);
  StateVec state = boundary;
  for (auto& [ff, v] : outcome.boundary_requirements) {
    ASSERT_EQ(state[ff], Lv::X);
    state[ff] = v;
  }
  std::vector<Lv> lines;
  bool seen_po = false;
  for (const InputVec& pis : outcome.frames) {
    simulator.eval_frame(pis, state, lines);
    for (const net::GateId po : nl.outputs()) {
      seen_po = seen_po || sim::is_fault_effect(lines[po]);
    }
    state = simulator.next_state(lines);
  }
  EXPECT_TRUE(seen_po);
}

TEST(PropagatorTest, NoFaultEffectMeansExhausted) {
  const net::Netlist nl = circuits::make_s27();
  Budget budget(roomy());
  Propagator propagator(nl, budget);
  propagator.start(StateVec{Lv::Zero, Lv::X, Lv::One},
                   {false, false, false});
  EXPECT_EQ(propagator.next(nullptr), SeqStatus::Exhausted);
}

TEST(PropagatorTest, MultiFrameChase) {
  // Two-stage shift: D must cross one extra register before a PO exists.
  net::NetlistBuilder b("shift2");
  b.input("en");
  b.output("y");
  b.dff("q0", "d0");
  b.dff("q1", "d1");
  b.gate("d0", net::GateType::And, {"q0", "en"});  // dead end for q0
  b.gate("d1", net::GateType::Buf, {"q0"});
  b.gate("y", net::GateType::And, {"q1", "en"});
  const net::Netlist nl = b.build();
  Budget budget(roomy());
  Propagator propagator(nl, budget);
  propagator.start(StateVec{Lv::D, Lv::X}, {false, true});
  PropagationOutcome outcome;
  ASSERT_EQ(propagator.next(&outcome), SeqStatus::Success);
  EXPECT_GE(outcome.frames.size(), 2u);
}

TEST(SynchronizerTest, EmptyRequirementsTrivial) {
  const net::Netlist nl = circuits::make_s27();
  Budget budget(roomy());
  Synchronizer synchronizer(nl, budget);
  SyncResult result;
  ASSERT_EQ(synchronizer.synchronize({}, &result), SeqStatus::Success);
  EXPECT_TRUE(result.frames.empty());
}

TEST(SynchronizerTest, S27FullStateReachable) {
  // All-ones inputs drive s27 into (1,0,0) from any state; the
  // synchronizer must find some sequence establishing required bits.
  const net::Netlist nl = circuits::make_s27();
  Budget budget(roomy());
  Synchronizer synchronizer(nl, budget);
  SyncResult result;
  const std::vector<std::pair<std::size_t, Lv>> reqs = {
      {0, Lv::One}, {1, Lv::Zero}, {2, Lv::Zero}};
  ASSERT_EQ(synchronizer.synchronize(reqs, &result), SeqStatus::Success);

  // Property: replaying from all-X establishes the requirements.
  sim::SeqSimulator simulator(nl);
  StateVec state = simulator.unknown_state();
  std::vector<Lv> lines;
  for (const InputVec& pis : result.frames) {
    simulator.eval_frame(pis, state, lines);
    state = simulator.next_state(lines);
  }
  for (const auto& [ff, v] : reqs) {
    EXPECT_EQ(state[ff], v) << "ff " << ff;
  }
}

TEST(SynchronizerTest, UninitializableBitExhausts) {
  // q feeds back through a buffer: no input ever defines it.
  net::NetlistBuilder b("floaty");
  b.input("a");
  b.output("y");
  b.dff("q", "d");
  b.gate("d", net::GateType::Buf, {"q"});
  b.gate("y", net::GateType::And, {"a", "q"});
  const net::Netlist nl = b.build();
  Budget budget(roomy());
  Synchronizer synchronizer(nl, budget);
  SyncResult result;
  EXPECT_EQ(synchronizer.synchronize({{0, Lv::One}}, &result),
            SeqStatus::Exhausted);
}

TEST(SynchronizerTest, ChainNeedsMultipleFrames) {
  // q1 loads from q0, q0 loads from the input: requiring q1 takes two
  // frames of reverse processing.
  net::NetlistBuilder b("chain");
  b.input("a");
  b.output("y");
  b.dff("q0", "d0");
  b.dff("q1", "d1");
  b.gate("d0", net::GateType::Buf, {"a"});
  b.gate("d1", net::GateType::Buf, {"q0"});
  b.gate("y", net::GateType::Buf, {"q1"});
  const net::Netlist nl = b.build();
  Budget budget(roomy());
  Synchronizer synchronizer(nl, budget);
  SyncResult result;
  ASSERT_EQ(synchronizer.synchronize({{1, Lv::One}}, &result),
            SeqStatus::Success);
  EXPECT_EQ(result.frames.size(), 2u);

  sim::SeqSimulator simulator(nl);
  StateVec state = simulator.unknown_state();
  std::vector<Lv> lines;
  for (const InputVec& pis : result.frames) {
    simulator.eval_frame(pis, state, lines);
    state = simulator.next_state(lines);
  }
  EXPECT_EQ(state[1], Lv::One);
}

TEST(StuckAtTest, S27MostFaultsTestable) {
  const net::Netlist nl = circuits::make_s27();
  StuckAtAtpg atpg(nl, roomy());
  sim::SeqSimulator simulator(nl);
  int found = 0, untestable = 0, aborted = 0;
  for (net::GateId line = 0; line < nl.size(); ++line) {
    for (const bool sa1 : {false, true}) {
      StuckAtTest test;
      switch (atpg.generate({line, sa1}, &test)) {
        case StuckAtStatus::TestFound: {
          ++found;
          // Independent replay with the fault injected.
          const sim::Injection inj{line, sa1 ? Lv::One : Lv::Zero};
          StateVec state = simulator.unknown_state();
          std::vector<Lv> lines_v;
          bool detected = false;
          for (const InputVec& pis : test.frames) {
            simulator.eval_frame(pis, state, lines_v, &inj);
            for (const net::GateId po : nl.outputs()) {
              detected = detected || sim::is_fault_effect(lines_v[po]);
            }
            state = simulator.next_state(lines_v);
          }
          EXPECT_TRUE(detected) << nl.gate(line).name
                                << (sa1 ? " s-a-1" : " s-a-0");
          break;
        }
        case StuckAtStatus::Untestable:
          ++untestable;
          break;
        case StuckAtStatus::Aborted:
          ++aborted;
          break;
      }
    }
  }
  // s27's stuck-at faults are almost all sequentially testable.
  EXPECT_GT(found, 25);
  EXPECT_EQ(found + untestable + aborted, 34);
}

TEST(StuckAtTest, TinyBudgetAborts) {
  const net::Netlist nl = circuits::load_circuit("s298");
  SemiletOptions strangled;
  strangled.backtrack_limit = 0;
  strangled.decision_limit = 1;
  StuckAtAtpg atpg(nl, strangled);
  int aborted = 0;
  for (net::GateId line = 0; line < 10; ++line) {
    StuckAtTest test;
    if (atpg.generate({line, false}, &test) == StuckAtStatus::Aborted) {
      ++aborted;
    }
  }
  EXPECT_GT(aborted, 0);
}

TEST(BudgetTest, CountsAndLimits) {
  SemiletOptions o;
  o.backtrack_limit = 2;
  o.decision_limit = 3;
  Budget b(o);
  EXPECT_TRUE(b.note_backtrack());
  EXPECT_TRUE(b.note_backtrack());
  EXPECT_FALSE(b.note_backtrack());
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.backtracks(), 3);
}

}  // namespace
}  // namespace gdf::semilet
