# End-to-end lane-width determinism on the gdf_atpg binary: the CSV a
# sweep emits must be byte-identical at every simulation backend width
# (--lanes 64/256/512), including when combined with worker parallelism
# and intra-circuit fault sharding — lane count is a pure throughput knob
# and must never leak into results. Registered by tests/CMakeLists.txt:
#   * cli_lanes_determinism       — SCOPE=full: the whole catalog at the
#                                   paper configuration, each width, plus
#                                   a sharded parallel variant;
#   * cli_lanes_determinism_small — SCOPE=small: two mid-size circuits,
#                                   cheap enough for sanitizer CI jobs.
#
# Usage: cmake -DGDF_ATPG=<path> -DSCOPE=<full|small> -P check_lanes_determinism.cmake

if(SCOPE STREQUAL "small")
  set(sweep_args --circuit s298 --circuit s344 --csv --no-seconds)
  set(vary_args --jobs 2 --shard-epoch 5 --shard-faults 4)
else()
  set(sweep_args --all --csv --no-seconds)
  set(vary_args --jobs 2 --shard-faults 4)
endif()

execute_process(
  COMMAND ${GDF_ATPG} ${sweep_args} --lanes 64
  OUTPUT_VARIABLE base_out
  RESULT_VARIABLE base_rc)
if(NOT base_rc EQUAL 0)
  message(FATAL_ERROR "gdf_atpg --lanes 64 failed (rc=${base_rc})")
endif()
string(LENGTH "${base_out}" out_len)
if(out_len EQUAL 0)
  message(FATAL_ERROR "gdf_atpg produced no output")
endif()

foreach(width 256 512)
  execute_process(
    COMMAND ${GDF_ATPG} ${sweep_args} --lanes ${width}
    OUTPUT_VARIABLE wide_out
    RESULT_VARIABLE wide_rc)
  if(NOT wide_rc EQUAL 0)
    message(FATAL_ERROR "gdf_atpg --lanes ${width} failed (rc=${wide_rc})")
  endif()
  if(NOT base_out STREQUAL wide_out)
    message(FATAL_ERROR "--lanes 64 and --lanes ${width} output differs:\n"
                        "=== 64 ===\n${base_out}\n"
                        "=== ${width} ===\n${wide_out}")
  endif()
endforeach()

# Widths must also commute with worker parallelism and fault sharding.
foreach(width 64 512)
  execute_process(
    COMMAND ${GDF_ATPG} ${sweep_args} ${vary_args} --lanes ${width}
    OUTPUT_VARIABLE sharded_out
    RESULT_VARIABLE sharded_rc)
  if(NOT sharded_rc EQUAL 0)
    message(FATAL_ERROR
      "gdf_atpg sharded --lanes ${width} failed (rc=${sharded_rc})")
  endif()
  if(NOT base_out STREQUAL sharded_out)
    message(FATAL_ERROR
      "sharded --lanes ${width} differs from the serial 64-lane run:\n"
      "=== serial 64 ===\n${base_out}\n"
      "=== sharded ${width} ===\n${sharded_out}")
  endif()
endforeach()

message(STATUS
  "lanes 64/256/512 (serial and sharded) byte-identical "
  "(${SCOPE}, ${out_len} bytes)")
