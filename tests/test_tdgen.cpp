#include <gtest/gtest.h>

#include "algebra/frame_sim.hpp"
#include "circuits/catalog.hpp"
#include "circuits/embedded.hpp"
#include "netlist/builder.hpp"
#include "netlist/fanout.hpp"
#include "tdgen/fault.hpp"
#include "tdgen/local_test.hpp"
#include "tdgen/tdgen.hpp"

namespace gdf::tdgen {
namespace {

using alg::AtpgModel;
using alg::kCarrierSet;
using alg::robust_algebra;
using alg::V8;
using alg::VSet;

TEST(FaultListTest, S27ExpandedCounts) {
  const net::Netlist nl =
      net::expand_fanout_branches(circuits::make_s27());
  // 17 stems (4 PI + 3 FF + 10 gates) + 9 branches = 26 lines, 52 faults.
  const auto faults = enumerate_faults(nl);
  EXPECT_EQ(faults.size(), 52u);
  // StR before StF per line, line order ascending.
  EXPECT_TRUE(faults[0].slow_to_rise);
  EXPECT_FALSE(faults[1].slow_to_rise);
  EXPECT_EQ(faults[0].line, faults[1].line);
}

TEST(FaultListTest, OptionsFilterSites) {
  const net::Netlist nl =
      net::expand_fanout_branches(circuits::make_s27());
  FaultListOptions no_branches;
  no_branches.include_branches = false;
  EXPECT_EQ(enumerate_faults(nl, no_branches).size(), 34u);  // 17 stems
  FaultListOptions logic_only;
  logic_only.include_pi_lines = false;
  logic_only.include_ppi_lines = false;
  logic_only.include_branches = false;
  EXPECT_EQ(enumerate_faults(nl, logic_only).size(), 20u);  // 10 gates
}

TEST(FaultListTest, Names) {
  const net::Netlist nl = circuits::make_s27();
  EXPECT_EQ(fault_name(nl, {nl.find("G11"), true}), "G11 StR");
  EXPECT_EQ(fault_name(nl, {nl.find("G8"), false}), "G8 StF");
}

class C17Tdgen : public ::testing::Test {
 protected:
  C17Tdgen()
      : nl_(net::expand_fanout_branches(circuits::make_c17())),
        model_(nl_) {}

  net::Netlist nl_;
  AtpgModel model_;
};

TEST_F(C17Tdgen, FindsTestForKnownFault) {
  // Slow-to-rise at N11 — the worked example of the frame-sim tests.
  TdgenSearch search(model_, robust_algebra(), {nl_.find("N11"), true});
  LocalTest test;
  ASSERT_EQ(search.next(&test), TdgenStatus::TestFound);
  EXPECT_FALSE(test.observed.empty());
  EXPECT_TRUE(test.observed_at_po);  // c17 has no flip-flops

  // Independent verification: inject the fault and simulate.
  alg::TwoFrameSim sim(model_, robust_algebra());
  alg::TwoFrameStimulus stim{test.pi_sets, test.ppi_sets};
  const alg::FaultSpec spec{model_.head_of(nl_.find("N11")), true};
  EXPECT_TRUE(sim.guaranteed_observation(stim, spec, nullptr));
}

TEST_F(C17Tdgen, EveryFaultGetsVerifiedTestOrProof) {
  // c17 is fully robustly testable for stem and branch delay faults; every
  // search must end in a verified test, and none may abort.
  alg::TwoFrameSim sim(model_, robust_algebra());
  int found = 0;
  for (const DelayFault& f : enumerate_faults(nl_)) {
    TdgenSearch search(model_, robust_algebra(), f);
    LocalTest test;
    const TdgenStatus status = search.next(&test);
    ASSERT_NE(status, TdgenStatus::Aborted) << fault_name(nl_, f);
    if (status == TdgenStatus::TestFound) {
      ++found;
      alg::TwoFrameStimulus stim{test.pi_sets, test.ppi_sets};
      const alg::FaultSpec spec{model_.head_of(f.line), f.slow_to_rise};
      EXPECT_TRUE(sim.guaranteed_observation(stim, spec, nullptr))
          << fault_name(nl_, f);
    }
  }
  // All 34 c17 delay faults are robustly testable.
  EXPECT_EQ(found, 34);
}

TEST_F(C17Tdgen, EnumerationYieldsDistinctVerifiedTests) {
  TdgenSearch search(model_, robust_algebra(), {nl_.find("N22"), false});
  LocalTest first, second;
  ASSERT_EQ(search.next(&first), TdgenStatus::TestFound);
  const TdgenStatus status = search.next(&second);
  if (status == TdgenStatus::TestFound) {
    EXPECT_TRUE(first.pi_sets != second.pi_sets ||
                first.ppi_sets != second.ppi_sets);
  } else {
    EXPECT_EQ(status, TdgenStatus::Untestable);  // enumeration may just end
  }
}

TEST(TdgenRedundant, UntestableFaultProven) {
  // y = AND(a, NOT a) is constant 0: its output can never rise, so StR at
  // y has no activating transition and must be proven untestable.
  net::NetlistBuilder b("const0");
  b.input("a");
  b.output("y");
  b.gate("an", net::GateType::Not, {"a"});
  b.gate("y", net::GateType::And, {"a", "an"});
  const net::Netlist nl = net::expand_fanout_branches(b.build());
  const AtpgModel model(nl);
  TdgenSearch search(model, robust_algebra(), {nl.find("y"), true});
  LocalTest test;
  EXPECT_EQ(search.next(&test), TdgenStatus::Untestable);
}

TEST(TdgenRedundant, RobustlyUntestableBySideInput) {
  // y = AND(a, b) where b = AND(a, c): a falling fault effect on b's path
  // needs a steady 1 on the other AND input... with a shared driver `a`
  // the off-path cannot be steady while the on-path falls through `a`.
  // StF at line `a` observed through y is still testable via b? This case
  // documents that the engine proves *something* (found or untestable)
  // without aborting on tiny circuits.
  net::NetlistBuilder b("recon");
  b.input("a");
  b.input("c");
  b.output("y");
  b.gate("b", net::GateType::And, {"a", "c"});
  b.gate("y", net::GateType::And, {"a", "b"});
  const net::Netlist nl = net::expand_fanout_branches(b.build());
  const AtpgModel model(nl);
  for (const DelayFault& f : enumerate_faults(nl)) {
    TdgenSearch search(model, robust_algebra(), f);
    LocalTest test;
    EXPECT_NE(search.next(&test), TdgenStatus::Aborted)
        << fault_name(nl, f);
  }
}

class S27Tdgen : public ::testing::Test {
 protected:
  S27Tdgen()
      : nl_(net::expand_fanout_branches(circuits::make_s27())),
        model_(nl_) {}

  net::Netlist nl_;
  AtpgModel model_;
};

TEST_F(S27Tdgen, LocalSearchTerminatesForAllFaults) {
  alg::TwoFrameSim sim(model_, robust_algebra());
  int found = 0, untestable = 0, aborted = 0;
  for (const DelayFault& f : enumerate_faults(nl_)) {
    TdgenSearch search(model_, robust_algebra(), f);
    LocalTest test;
    switch (search.next(&test)) {
      case TdgenStatus::TestFound: {
        ++found;
        alg::TwoFrameStimulus stim{test.pi_sets, test.ppi_sets};
        const alg::FaultSpec spec{model_.head_of(f.line), f.slow_to_rise};
        EXPECT_TRUE(sim.guaranteed_observation(stim, spec, nullptr))
            << fault_name(nl_, f);
        break;
      }
      case TdgenStatus::Untestable:
        ++untestable;
        break;
      case TdgenStatus::Aborted:
        ++aborted;
        break;
    }
  }
  // The local (combinational) pass finds tests for most s27 faults.
  EXPECT_GT(found, 30);
  EXPECT_EQ(found + untestable + aborted, 52);
  EXPECT_EQ(aborted, 0);
}

TEST_F(S27Tdgen, RegisterCorrelationRespected) {
  // For every found local test, the required S1 (PPI finals) must be
  // producible by the PPO initials — the register truth-table constraint.
  for (const DelayFault& f : enumerate_faults(nl_)) {
    TdgenSearch search(model_, robust_algebra(), f);
    LocalTest test;
    if (search.next(&test) != TdgenStatus::TestFound) {
      continue;
    }
    for (std::size_t k = 0; k < test.ppi_sets.size(); ++k) {
      const unsigned fins = alg::vset_finals(test.ppi_sets[k]);
      const unsigned inits = alg::vset_initials(test.ppo_sets[k]);
      EXPECT_NE(fins & inits, 0u)
          << fault_name(nl_, f) << " ff " << k;
    }
  }
}

TEST_F(S27Tdgen, PinForcesSteadyPpo) {
  // Find a fault whose unpinned solution leaves PPO 0 non-steady, then pin
  // it and require the solution to deliver a steady clean value.
  const DelayFault f{nl_.find("G13"), true};
  TdgenSearch pinned(model_, robust_algebra(), f);
  pinned.pin_ppo(1, alg::vset_of(V8::Zero));  // G11's flip-flop
  LocalTest test;
  const TdgenStatus status = pinned.next(&test);
  if (status == TdgenStatus::TestFound) {
    EXPECT_EQ(classify_ppo(test.ppo_sets[1]), PpoKind::Known0);
  } else {
    EXPECT_NE(status, TdgenStatus::Aborted);
  }
}

TEST_F(S27Tdgen, RequiredObservationHonored) {
  const DelayFault f{nl_.find("G13"), true};
  // G13 feeds only DFF G7 (ppo index 2): require observation exactly there.
  TdgenSearch search(model_, robust_algebra(), f);
  search.require_observation(model_.ppo_node(2));
  LocalTest test;
  ASSERT_EQ(search.next(&test), TdgenStatus::TestFound);
  EXPECT_EQ(classify_ppo(test.ppo_sets[2]), PpoKind::FaultD);
  EXPECT_FALSE(test.observed_at_po);
  ASSERT_EQ(test.observed_ppos.size(), 1u);
  EXPECT_EQ(test.observed_ppos[0], 2u);
}

TEST(LocalTestHelpers, VectorsAndState) {
  LocalTest t;
  t.pi_sets = {alg::vset_of(V8::Rise), alg::vset_of(V8::Zero),
               alg::kPrimaryDomain};
  t.ppi_sets = {alg::vset_of(V8::One),
                static_cast<VSet>(alg::vset_of(V8::Zero) |
                                  alg::vset_of(V8::Rise))};
  const auto v1 = initial_frame_pis(t);
  EXPECT_EQ(v1, (std::vector<int>{0, 0, -1}));
  const auto v2 = test_frame_pis(t);
  EXPECT_EQ(v2, (std::vector<int>{1, 0, -1}));
  const auto s0 = required_initial_state(t);
  EXPECT_EQ(s0, (std::vector<int>{1, 0}));
}

TEST(LocalTestHelpers, ClassifyPpo) {
  EXPECT_EQ(classify_ppo(alg::vset_of(V8::Zero)), PpoKind::Known0);
  EXPECT_EQ(classify_ppo(alg::vset_of(V8::One)), PpoKind::Known1);
  EXPECT_EQ(classify_ppo(alg::vset_of(V8::RiseC)), PpoKind::FaultD);
  EXPECT_EQ(classify_ppo(alg::vset_of(V8::FallC)), PpoKind::FaultDbar);
  EXPECT_EQ(classify_ppo(alg::vset_of(V8::Rise)), PpoKind::Unknown);
  EXPECT_EQ(classify_ppo(alg::vset_of(V8::ZeroH)), PpoKind::Unknown);
  EXPECT_EQ(classify_ppo(static_cast<VSet>(alg::vset_of(V8::Zero) |
                                           alg::vset_of(V8::One))),
            PpoKind::Unknown);
}

TEST(ConflictDrivenSearch, BackjumpOnlyConvertsAborts) {
  // Conflict-directed backjumping discards only subtrees a learned
  // conflict proves solution-free, and clause firings only announce
  // conflicts the implication fixpoint reaches anyway — so against the
  // chronological search (--learn off) a learn-enabled search may convert
  // an abort into a verdict but never flip one, and when both find a test
  // it is the *same* test (identical depth-first order elsewhere). The
  // identity argument needs the learn-on search to keep the static
  // decision order, so activity ordering and restarts are pinned off —
  // clause learning, CBJ and minimization all stay on.
  for (const char* name : {"s27", "s208"}) {
    const net::Netlist nl =
        net::expand_fanout_branches(circuits::load_circuit(name));
    const AtpgModel model(nl);
    SearchCounters tally;
    for (const DelayFault& f : enumerate_faults(nl)) {
      TdgenOptions off;
      off.learn = false;
      TdgenSearch chrono(model, robust_algebra(), f, off);
      LocalTest t_off;
      const TdgenStatus s_off = chrono.next(&t_off);

      TdgenOptions on;  // learn defaults to true
      on.vsids = false;
      on.restarts = RestartPolicy::Off;
      on.tally = &tally;
      TdgenSearch cbj(model, robust_algebra(), f, on);
      LocalTest t_on;
      const TdgenStatus s_on = cbj.next(&t_on);

      switch (s_off) {
        case TdgenStatus::TestFound:
          ASSERT_EQ(s_on, TdgenStatus::TestFound) << fault_name(nl, f);
          EXPECT_EQ(t_on.pi_sets, t_off.pi_sets) << fault_name(nl, f);
          EXPECT_EQ(t_on.ppi_sets, t_off.ppi_sets) << fault_name(nl, f);
          break;
        case TdgenStatus::Untestable:
          EXPECT_EQ(s_on, TdgenStatus::Untestable) << fault_name(nl, f);
          break;
        case TdgenStatus::Aborted:
          break;  // learning may turn an abort into either verdict
      }
    }
    // The sweep must actually exercise the machinery it validates.
    EXPECT_GT(tally.conflicts, 0);
    EXPECT_GT(tally.learned, 0);
  }
}

TEST(ConflictDrivenSearch, ProbeMemoMatchesResimulation) {
  // Enumerating several tests per fault revisits leaves whose source
  // vectors repeat, so the success memo answers some probes from cache —
  // and the enumerated tests must still match the memo-free chronological
  // search exactly.
  const net::Netlist nl =
      net::expand_fanout_branches(circuits::load_circuit("s208"));
  const AtpgModel model(nl);
  SearchCounters tally;
  for (const DelayFault& f : enumerate_faults(nl)) {
    TdgenOptions off;
    off.learn = false;
    TdgenSearch chrono(model, robust_algebra(), f, off);
    TdgenOptions on;
    on.vsids = false;  // keep the chronological decision order (see above)
    on.restarts = RestartPolicy::Off;
    on.tally = &tally;
    TdgenSearch memo(model, robust_algebra(), f, on);
    for (int round = 0; round < 4; ++round) {
      LocalTest t_off, t_on;
      const TdgenStatus s_off = chrono.next(&t_off);
      const TdgenStatus s_on = memo.next(&t_on);
      if (s_off == TdgenStatus::Aborted) {
        break;  // beyond an abort the searches may diverge
      }
      ASSERT_EQ(s_on, s_off) << fault_name(nl, f) << " round " << round;
      if (s_off != TdgenStatus::TestFound) {
        break;
      }
      EXPECT_EQ(t_on.pi_sets, t_off.pi_sets)
          << fault_name(nl, f) << " round " << round;
      EXPECT_EQ(t_on.ppi_sets, t_off.ppi_sets)
          << fault_name(nl, f) << " round " << round;
    }
  }
  EXPECT_GT(tally.probe_memo_hits, 0);
}

TEST(ConflictDrivenSearch, RestartsNeverContradictVerdicts) {
  // Restarts abandon a descent but keep every learned clause, so the
  // explored space is only re-ordered — a definite verdict from the
  // chronological search must survive any restart schedule. A tiny
  // restart base forces restarts to actually fire across the sweep.
  SearchCounters tally;
  for (const char* name : {"s27", "s208"}) {
    const net::Netlist nl =
        net::expand_fanout_branches(circuits::load_circuit(name));
    const AtpgModel model(nl);
    for (const DelayFault& f : enumerate_faults(nl)) {
      TdgenOptions off;
      off.learn = false;
      TdgenSearch chrono(model, robust_algebra(), f, off);
      LocalTest t_off;
      const TdgenStatus s_off = chrono.next(&t_off);

      TdgenOptions on;  // learn + vsids + luby restarts (defaults)
      on.restart_base = 2;
      on.tally = &tally;
      TdgenSearch restarting(model, robust_algebra(), f, on);
      LocalTest t_on;
      const TdgenStatus s_on = restarting.next(&t_on);

      // Verdicts may shift only through the abort budget: a definite
      // verdict on both sides must agree (the search space is the same;
      // clauses and restarts only re-order its exploration).
      if (s_off != TdgenStatus::Aborted && s_on != TdgenStatus::Aborted) {
        EXPECT_EQ(s_on, s_off) << fault_name(nl, f);
      }
    }
  }
  EXPECT_GT(tally.restarts, 0);
}

TEST(ConflictDrivenSearch, MinimizationOnlyShrinksClauses) {
  // Replay-based minimization drops literals whose removal still replays
  // to a conflict — the stored clause is a subset nogood, so the search
  // outcome per fault must stay a valid verdict and the counters must
  // show literals actually removed somewhere in the sweep.
  const net::Netlist nl =
      net::expand_fanout_branches(circuits::load_circuit("s208"));
  const AtpgModel model(nl);
  SearchCounters with_min, without_min;
  for (const DelayFault& f : enumerate_faults(nl)) {
    TdgenOptions plain;
    plain.vsids = false;
    plain.restarts = RestartPolicy::Off;
    plain.minimize = false;
    plain.tally = &without_min;
    TdgenSearch a(model, robust_algebra(), f, plain);
    LocalTest t_a;
    const TdgenStatus s_a = a.next(&t_a);

    TdgenOptions minimizing;
    minimizing.vsids = false;
    minimizing.restarts = RestartPolicy::Off;
    minimizing.minimize = true;
    minimizing.tally = &with_min;
    TdgenSearch b(model, robust_algebra(), f, minimizing);
    LocalTest t_b;
    const TdgenStatus s_b = b.next(&t_b);

    // Minimized clauses prune only solution-free subtrees (the subset is
    // itself a nogood), so definite verdicts must agree. Earlier firings
    // do change where the backtrack budget is spent, so an abort on one
    // side may be a definite verdict on the other — that conversion is
    // the point of minimizing.
    if (s_a != TdgenStatus::Aborted && s_b != TdgenStatus::Aborted) {
      ASSERT_EQ(s_b, s_a) << fault_name(nl, f);
      if (s_a == TdgenStatus::TestFound) {
        EXPECT_EQ(t_b.pi_sets, t_a.pi_sets) << fault_name(nl, f);
        EXPECT_EQ(t_b.ppi_sets, t_a.ppi_sets) << fault_name(nl, f);
      }
    }
  }
  EXPECT_EQ(without_min.minimized_lits, 0);
  EXPECT_GT(with_min.minimized_lits, 0);
}

TEST(ConflictDrivenSearch, ClauseDatabaseStaysBounded) {
  // A tiny clause budget forces tiered reductions; the end-of-search
  // database must respect the budget's order of magnitude (core clauses
  // may exceed it in principle, but not on these circuits) and the
  // reduction counter must show passes actually ran.
  const net::Netlist nl =
      net::expand_fanout_branches(circuits::load_circuit("s208"));
  const AtpgModel model(nl);
  SearchCounters tally;
  bool any_reduced = false;
  for (const DelayFault& f : enumerate_faults(nl)) {
    SearchCounters one;
    TdgenOptions options;
    options.learned_limit = 8;
    options.tally = &one;
    {
      TdgenSearch search(model, robust_algebra(), f, options);
      LocalTest t;
      search.next(&t);
    }
    const long db = one.clause_db_core + one.clause_db_mid +
                    one.clause_db_local;
    if (one.clause_reductions > 0) {
      any_reduced = true;
      // Reductions fire past the budget but only at conflict-free
      // states; every deferral consumes a backtrack, so the overshoot is
      // bounded by the backtrack budget.
      EXPECT_LE(db, 8 + options.backtrack_limit) << fault_name(nl, f);
    }
    tally.add(one);
  }
  EXPECT_TRUE(any_reduced);
  EXPECT_GT(tally.clause_reductions, 0);
}

TEST(TdgenNonRobust, RelaxedModeFindsAtLeastAsMany) {
  const net::Netlist nl =
      net::expand_fanout_branches(circuits::make_s27());
  const AtpgModel model(nl);
  int robust_found = 0, nonrobust_found = 0;
  for (const DelayFault& f : enumerate_faults(nl)) {
    LocalTest test;
    TdgenSearch r(model, robust_algebra(), f);
    if (r.next(&test) == TdgenStatus::TestFound) {
      ++robust_found;
    }
    TdgenSearch n(model, alg::nonrobust_algebra(), f);
    if (n.next(&test) == TdgenStatus::TestFound) {
      ++nonrobust_found;
    }
  }
  EXPECT_GE(nonrobust_found, robust_found);
}

}  // namespace
}  // namespace gdf::tdgen
