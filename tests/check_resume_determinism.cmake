# Kill-and-resume determinism on the gdf_atpg binary: a journaled sweep
# interrupted mid-run (SIGINT while a fault-injected stall pins one cell)
# must exit 3 with a valid partial prefix, and the --resume rerun must
# emit CSV byte-identical to an uninterrupted reference run. Registered by
# tests/CMakeLists.txt as the `cli_resume_determinism` ctest.
#
# Usage: cmake -DGDF_ATPG=<path> -P check_resume_determinism.cmake

set(circuits --circuit s27 --circuit c17 --circuit s298 --circuit s344)
set(sweep_args ${circuits} --csv --no-seconds --jobs 2)
set(journal ${CMAKE_CURRENT_BINARY_DIR}/resume_determinism.journal)
file(REMOVE ${journal})

# Reference: the uninterrupted run (no journal, no injection).
execute_process(
  COMMAND ${GDF_ATPG} ${sweep_args}
  OUTPUT_VARIABLE reference_out
  RESULT_VARIABLE reference_rc)
if(NOT reference_rc EQUAL 0)
  message(FATAL_ERROR "reference run failed (rc=${reference_rc})")
endif()

# Interrupted run: the stall directive pins s298's cell for far longer
# than the timeout, so SIGINT always lands mid-sweep; --preserve-status
# surfaces gdf_atpg's own exit code (3 = partial) instead of timeout's.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env GDF_FI=stall:s298:60000
          timeout --preserve-status -s INT 3
          ${GDF_ATPG} ${sweep_args} --journal ${journal}
  OUTPUT_VARIABLE partial_out
  ERROR_VARIABLE partial_err
  RESULT_VARIABLE partial_rc)
if(NOT partial_rc EQUAL 3)
  message(FATAL_ERROR "interrupted run should exit 3 (partial), got "
                      "rc=${partial_rc}\nstderr:\n${partial_err}")
endif()
if(NOT partial_err MATCHES "interrupted")
  message(FATAL_ERROR "interrupted run did not report the interruption:\n"
                      "${partial_err}")
endif()
if(NOT EXISTS ${journal})
  message(FATAL_ERROR "interrupted run left no journal at ${journal}")
endif()

# The partial stdout must be a strict prefix of the reference (header plus
# the completed canonical frontier) — never reordered or truncated rows.
string(LENGTH "${partial_out}" partial_len)
string(LENGTH "${reference_out}" reference_len)
if(partial_len GREATER_EQUAL reference_len)
  message(FATAL_ERROR "interrupted run was not actually partial "
                      "(${partial_len} vs ${reference_len} bytes)")
endif()
string(SUBSTRING "${reference_out}" 0 ${partial_len} reference_prefix)
if(NOT partial_out STREQUAL reference_prefix)
  message(FATAL_ERROR "partial output is not a prefix of the reference:\n"
                      "=== partial ===\n${partial_out}\n"
                      "=== reference ===\n${reference_out}")
endif()

# Resume: replay the journal, run only the remaining cells, and match the
# uninterrupted bytes exactly.
execute_process(
  COMMAND ${GDF_ATPG} ${sweep_args} --journal ${journal} --resume
  OUTPUT_VARIABLE resumed_out
  RESULT_VARIABLE resumed_rc)
if(NOT resumed_rc EQUAL 0)
  message(FATAL_ERROR "resume run failed (rc=${resumed_rc})")
endif()
if(NOT resumed_out STREQUAL reference_out)
  message(FATAL_ERROR "resumed output differs from the uninterrupted run:\n"
                      "=== resumed ===\n${resumed_out}\n"
                      "=== reference ===\n${reference_out}")
endif()

# A second resume replays everything (journal complete) and still matches.
execute_process(
  COMMAND ${GDF_ATPG} ${sweep_args} --journal ${journal} --resume
  OUTPUT_VARIABLE replayed_out
  RESULT_VARIABLE replayed_rc)
if(NOT replayed_rc EQUAL 0)
  message(FATAL_ERROR "full-replay run failed (rc=${replayed_rc})")
endif()
if(NOT replayed_out STREQUAL reference_out)
  message(FATAL_ERROR "full-replay output differs from the reference")
endif()

file(REMOVE ${journal})
message(STATUS "kill-and-resume output byte-identical "
               "(${reference_len} bytes; partial=${partial_len})")
