#include <gtest/gtest.h>

#include <set>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "base/string_util.hpp"
#include "base/timer.hpp"

namespace gdf {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  EXPECT_NO_THROW(check(true, "fine"));
  try {
    check(false, "bad thing");
    FAIL() << "expected gdf::Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "bad thing");
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.next_below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
  }
}

TEST(Rng, NextInFullDomainDoesNotOverflow) {
  // Regression: next_in(0, UINT64_MAX) used to compute next_below(0) via
  // wrap-around and trip the assertion.
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(rng.next_in(0, UINT64_MAX));
  }
  EXPECT_GT(seen.size(), 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(rng.next_in(1, UINT64_MAX), 1u);
    EXPECT_LE(rng.next_in(0, UINT64_MAX - 1), UINT64_MAX - 1);
  }
  EXPECT_EQ(rng.next_in(UINT64_MAX, UINT64_MAX), UINT64_MAX);
}

TEST(Rng, PercentZeroAndHundred) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_percent(0));
    EXPECT_TRUE(rng.next_percent(100));
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StringUtil, Split) {
  const auto pieces = split("a, b ,c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringUtil, SplitKeepsEmptyPieces) {
  const auto pieces = split("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "");
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("NaNd"), "nand");
  EXPECT_EQ(to_lower("G17"), "g17");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("INPUT(G0)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(StringUtil, Padding) {
  EXPECT_EQ(pad_left("7", 4), "   7");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("12345", 3), "12345");
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.millis(), 0.0);
}

}  // namespace
}  // namespace gdf
