#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "base/cancel.hpp"
#include "base/clause_arena.hpp"
#include "base/error.hpp"
#include "base/fault_injection.hpp"
#include "base/rng.hpp"
#include "base/string_util.hpp"
#include "base/timer.hpp"

namespace gdf {
namespace {

TEST(ClauseArena, TiersStampAndActivity) {
  base::ClauseArena arena;
  EXPECT_EQ(base::ClauseArena::tier_of(0), base::ClauseTier::Core);
  EXPECT_EQ(base::ClauseArena::tier_of(2), base::ClauseTier::Core);
  EXPECT_EQ(base::ClauseArena::tier_of(3), base::ClauseTier::Mid);
  EXPECT_EQ(base::ClauseArena::tier_of(6), base::ClauseTier::Mid);
  EXPECT_EQ(base::ClauseArena::tier_of(7), base::ClauseTier::Local);
  const base::ClauseLit lits[] = {{1, 0x3}, {2, 0x5}};
  const std::size_t c = arena.add(lits, 4);
  EXPECT_EQ(arena.lbd(c), 4u);
  EXPECT_EQ(arena.activity(c), 0.0);
  arena.bump_activity(c, 1.5);
  EXPECT_EQ(arena.activity(c), 1.5);
  arena.scale_activities(0.5);
  EXPECT_EQ(arena.activity(c), 0.75);
}

TEST(ClauseStore, CapacityBoundWithCoreSurvivors) {
  // Overfilling the store triggers the tiered reduction: LBD<=2 core
  // clauses all survive, the rest compete by LBD, and size/bytes stay
  // bounded and consistent with the surviving clauses.
  base::ClauseStore store(8);
  for (std::uint32_t i = 0; i < 40; ++i) {
    base::SharedClause clause;
    clause.lits = {{static_cast<alg::NodeId>(i), 0x7},
                   {static_cast<alg::NodeId>(i + 100), 0x3}};
    clause.footprint = {static_cast<alg::NodeId>(i)};
    clause.lbd = (i % 5 == 0) ? 2 : 3 + (i % 7);
    store.publish(std::move(clause));
  }
  EXPECT_LE(store.size(), store.capacity());
  const base::ClauseStore::Snapshot snap = store.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->size(), store.size());
  std::size_t bytes = 0;
  std::size_t core = 0;
  for (const base::SharedClause& clause : *snap) {
    bytes += clause.lits.size() * sizeof(base::ClauseLit) +
             clause.footprint.size() * sizeof(alg::NodeId);
    if (base::ClauseArena::tier_of(clause.lbd) == base::ClauseTier::Core) {
      ++core;
    }
  }
  EXPECT_EQ(store.bytes(), bytes);
  // Every published core clause (i % 5 == 0 -> 8 of 40) survived.
  EXPECT_EQ(core, 8u);
}

TEST(Error, CheckThrowsWithMessage) {
  EXPECT_NO_THROW(check(true, "fine"));
  try {
    check(false, "bad thing");
    FAIL() << "expected gdf::Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "bad thing");
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.next_below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
  }
}

TEST(Rng, NextInFullDomainDoesNotOverflow) {
  // Regression: next_in(0, UINT64_MAX) used to compute next_below(0) via
  // wrap-around and trip the assertion.
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(rng.next_in(0, UINT64_MAX));
  }
  EXPECT_GT(seen.size(), 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(rng.next_in(1, UINT64_MAX), 1u);
    EXPECT_LE(rng.next_in(0, UINT64_MAX - 1), UINT64_MAX - 1);
  }
  EXPECT_EQ(rng.next_in(UINT64_MAX, UINT64_MAX), UINT64_MAX);
}

TEST(Rng, PercentZeroAndHundred) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_percent(0));
    EXPECT_TRUE(rng.next_percent(100));
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StringUtil, Split) {
  const auto pieces = split("a, b ,c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringUtil, SplitKeepsEmptyPieces) {
  const auto pieces = split("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "");
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("NaNd"), "nand");
  EXPECT_EQ(to_lower("G17"), "g17");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("INPUT(G0)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(StringUtil, Padding) {
  EXPECT_EQ(pad_left("7", 4), "   7");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("12345", 3), "12345");
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.millis(), 0.0);
}

TEST(ErrorTaxonomy, KindsNameAndDefault) {
  EXPECT_STREQ(error_kind_name(ErrorKind::Input), "input");
  EXPECT_STREQ(error_kind_name(ErrorKind::Resource), "resource");
  EXPECT_STREQ(error_kind_name(ErrorKind::Internal), "internal");
  EXPECT_STREQ(error_kind_name(ErrorKind::Cancelled), "cancelled");
  const Error plain("boom");
  EXPECT_EQ(plain.kind(), ErrorKind::Input);
  const Error typed(ErrorKind::Resource, "disk");
  EXPECT_EQ(typed.kind(), ErrorKind::Resource);
}

TEST(ErrorTaxonomy, CheckHelpersTagTheirKind) {
  try {
    check(false, "bad input");
    FAIL() << "check did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Input);
  }
  try {
    check_resource(false, "bad io");
    FAIL() << "check_resource did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Resource);
  }
  try {
    throw_cancelled();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Cancelled);
  }
}

TEST(CancelTokenTest, LatchesAndFreeFunctionHandlesNull) {
  CancelToken token;
  EXPECT_FALSE(token.requested());
  EXPECT_FALSE(cancel_requested(&token));
  EXPECT_FALSE(cancel_requested(nullptr));
  token.request();
  EXPECT_TRUE(token.requested());
  EXPECT_TRUE(cancel_requested(&token));
  token.request();  // idempotent
  EXPECT_TRUE(token.requested());
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("GDF_FI");
    fi::reset_for_testing();
  }
};

TEST_F(FaultInjectionTest, DisabledWithoutEnv) {
  ::unsetenv("GDF_FI");
  fi::reset_for_testing();
  EXPECT_FALSE(fi::enabled());
  EXPECT_NO_THROW(fi::fire_cell_throw("s27"));
  EXPECT_NO_THROW(fi::fire_read_fail("/any/path.bench"));
  EXPECT_FALSE(fi::fire_journal_truncate());
}

TEST_F(FaultInjectionTest, CellThrowHonorsLabelAndLimit) {
  ::setenv("GDF_FI", "cell-throw:s27:2", 1);
  fi::reset_for_testing();
  EXPECT_TRUE(fi::enabled());
  EXPECT_NO_THROW(fi::fire_cell_throw("c17"));  // other labels untouched
  for (int i = 0; i < 2; ++i) {
    try {
      fi::fire_cell_throw("s27");
      FAIL() << "armed cell-throw did not fire";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::Resource);
    }
  }
  // The [:2] budget is spent; the probe is inert now — exactly what an
  // --on-error retry:N run recovers from.
  EXPECT_NO_THROW(fi::fire_cell_throw("s27"));
  fi::reset_for_testing();  // re-arms
  EXPECT_THROW(fi::fire_cell_throw("s27"), Error);
}

TEST_F(FaultInjectionTest, ReadFailMatchesSubstring) {
  ::setenv("GDF_FI", "read-fail:missing", 1);
  fi::reset_for_testing();
  EXPECT_NO_THROW(fi::fire_read_fail("/tmp/present.bench"));
  try {
    fi::fire_read_fail("/tmp/missing.bench");
    FAIL() << "armed read-fail did not fire";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Resource);
  }
}

TEST_F(FaultInjectionTest, JournalTruncateFiresOnce) {
  ::setenv("GDF_FI", "journal-truncate", 1);
  fi::reset_for_testing();
  EXPECT_TRUE(fi::fire_journal_truncate());
  EXPECT_FALSE(fi::fire_journal_truncate());
}

TEST_F(FaultInjectionTest, StallReturnsEarlyOnCancel) {
  ::setenv("GDF_FI", "stall:s27:60000", 1);
  fi::reset_for_testing();
  CancelToken cancel;
  cancel.request();
  const Stopwatch sw;
  fi::fire_stall("s27", &cancel);  // must not sleep the full minute
  EXPECT_LT(sw.seconds(), 5.0);
}

}  // namespace
}  // namespace gdf
