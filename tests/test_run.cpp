// The run/ layer: reentrant sessions over a shared CircuitContext, the
// work-stealing pool, fault-ordering policies, and the parallel sweep
// orchestrator's deterministic canonical-order emission.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "base/cancel.hpp"
#include "base/error.hpp"
#include "base/fault_injection.hpp"
#include "circuits/catalog.hpp"
#include "cli/args.hpp"
#include "netlist/bench_io.hpp"
#include "core/delay_atpg.hpp"
#include "run/fault_order.hpp"
#include "run/journal.hpp"
#include "run/session.hpp"
#include "run/shard.hpp"
#include "run/sweep.hpp"
#include "run/thread_pool.hpp"
#include "sim/lanes.hpp"
#include "tdgen/tdgen.hpp"

namespace gdf::run {
namespace {

/// Summary equality: everything a Table-3/CSV row is built from.
void expect_same_result(const core::FogbusterResult& a,
                        const core::FogbusterResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.pattern_count, b.pattern_count);
  EXPECT_EQ(a.tests.size(), b.tests.size());
  EXPECT_EQ(a.stages.targeted, b.stages.targeted);
  EXPECT_EQ(a.stages.dropped, b.stages.dropped);
}

/// Full equality for the sharding contract: identical classification,
/// identical pattern sets (same targets, same frames, in the same order),
/// and identical stage counters — byte-identical CSV follows from this.
void expect_identical_runs(const core::FogbusterResult& a,
                           const core::FogbusterResult& b) {
  expect_same_result(a, b);
  EXPECT_EQ(a.memo_hits, b.memo_hits);
  EXPECT_EQ(a.stages.local_solutions, b.stages.local_solutions);
  EXPECT_EQ(a.stages.sync_attempts, b.stages.sync_attempts);
  EXPECT_EQ(a.stages.aborted_local, b.stages.aborted_local);
  EXPECT_EQ(a.stages.aborted_sequential, b.stages.aborted_sequential);
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (std::size_t k = 0; k < a.tests.size(); ++k) {
    EXPECT_EQ(a.tests[k].target, b.tests[k].target) << "test " << k;
    EXPECT_EQ(a.tests[k].all_frames(), b.tests[k].all_frames())
        << "test " << k;
    EXPECT_EQ(a.tests[k].required_s0, b.tests[k].required_s0)
        << "test " << k;
  }
}

TEST(CircuitContextTest, IsSharedAndStructurallyChecked) {
  const net::Netlist nl = circuits::load_circuit("s27");
  const auto ctx = core::CircuitContext::build(nl);
  EXPECT_GT(ctx->faults().size(), 0u);
  EXPECT_TRUE(ctx->structurally_compatible({}));

  core::AtpgOptions stems;
  stems.fault_sites.include_branches = false;
  stems.expand_branches = false;
  EXPECT_FALSE(ctx->structurally_compatible(stems));
  EXPECT_THROW(AtpgSession(ctx, stems), Error);
}

// Two runs on one session, two sessions on one context, and a fresh
// standalone run must all be bit-identical — the reentrancy contract.
TEST(AtpgSessionTest, ReuseMatchesFreshRuns) {
  const net::Netlist nl = circuits::load_circuit("s27");
  const auto ctx = core::CircuitContext::build(nl);

  AtpgSession session_a(ctx);
  const core::FogbusterResult first = session_a.run();
  const core::FogbusterResult second = session_a.run();
  expect_same_result(first, second);

  AtpgSession session_b(ctx);
  expect_same_result(first, session_b.run());

  expect_same_result(first, core::run_delay_atpg(nl));
}

TEST(AtpgSessionTest, NonDefaultOptionsStayPerSession) {
  const net::Netlist nl = circuits::load_circuit("s27");
  const auto ctx = core::CircuitContext::build(nl);

  core::AtpgOptions no_drop;
  no_drop.fault_dropping = false;
  AtpgSession dropping(ctx);
  AtpgSession no_dropping(ctx, no_drop);
  const core::FogbusterResult with = dropping.run();
  const core::FogbusterResult without = no_dropping.run();
  EXPECT_GT(without.stages.targeted, with.stages.targeted);
  EXPECT_EQ(without.stages.dropped, 0);
  // The shared context is untouched: rerunning the first session still
  // reproduces its result.
  expect_same_result(with, dropping.run());
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    // Destructor note: tasks queued at shutdown are dropped, so give the
    // pool a chance to drain by spinning on the counter.
    while (counter.load() < 100) {
    }
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ResolveJobs) {
  EXPECT_EQ(ThreadPool::resolve_jobs(3), 3u);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1u);
}

// Fork-join groups: wait() returns only after every group task ran, and
// the waiting thread helps — a single-threaded pool must complete a
// group whose wait() is issued from inside a pool task (the sharding
// pattern), which only works because the waiter drains its own group.
TEST(ThreadPoolTest, GroupWaitHelpsAndCompletes) {
  ThreadPool pool(1);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  ThreadPool::Group top;
  for (int i = 0; i < 8; ++i) {
    pool.submit(top, [&] {
      ThreadPool::Group nested;
      for (int k = 0; k < 4; ++k) {
        pool.submit(nested, [&inner] { ++inner; });
      }
      pool.wait(nested);  // helping: the sole worker is *this* thread
      ++outer;
    });
  }
  pool.wait(top);  // external-thread wait also helps
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPoolTest, GroupIsReusableAfterWait) {
  ThreadPool pool(2);
  ThreadPool::Group group;
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 16; ++i) {
      pool.submit(group, [&counter] { ++counter; });
    }
    pool.wait(group);
    EXPECT_EQ(counter.load(), (round + 1) * 16);
  }
}

TEST(ShardConfigTest, ParseRoundTrips) {
  EXPECT_EQ(parse_shard_faults("off").policy, ShardConfig::Policy::Off);
  EXPECT_EQ(parse_shard_faults("auto").policy, ShardConfig::Policy::Auto);
  const ShardConfig forced = parse_shard_faults("6");
  EXPECT_EQ(forced.policy, ShardConfig::Policy::Forced);
  EXPECT_EQ(forced.workers, 6u);
  EXPECT_EQ(shard_faults_name(forced), "6");
  EXPECT_THROW(parse_shard_faults("0"), Error);
  EXPECT_THROW(parse_shard_faults("many"), Error);
}

TEST(ShardConfigTest, AutoGatesOnSizePoolAndTimingCaps) {
  ThreadPool wide(4);
  ThreadPool narrow(1);
  ShardConfig shard;
  shard.policy = ShardConfig::Policy::Auto;
  shard.min_faults = 100;
  EXPECT_EQ(shard_workers(shard, wide, 5000, 0.0), 4u);
  EXPECT_EQ(shard_workers(shard, wide, 99, 0.0), 0u);   // too small
  EXPECT_EQ(shard_workers(shard, narrow, 5000, 0.0), 0u);  // no spare
  // A per-fault wall-clock cap makes verdicts timing-dependent; Auto
  // declines rather than adding scheduling noise.
  EXPECT_EQ(shard_workers(shard, wide, 5000, 1.0), 0u);
  shard.policy = ShardConfig::Policy::Forced;
  shard.workers = 3;
  EXPECT_EQ(shard_workers(shard, narrow, 10, 1.0), 3u);
  EXPECT_EQ(shard_epoch_size(shard, 3), 16u);  // 4x workers, floor 16
  shard.epoch_size = 5;
  EXPECT_EQ(shard_epoch_size(shard, 3), 5u);
}

TEST(ShardConfigTest, ForcedWidthOneRunsSequential) {
  // --shard-faults 1 degenerates to the sequential loop plus the
  // epoch/barrier machinery — same bytes, pure overhead — so the gate
  // hands it to the plain loop. Width 2 still shards, even on a
  // one-thread pool (the orchestrating thread helps inside wait()).
  ThreadPool narrow(1);
  ThreadPool wide(4);
  ShardConfig shard;
  shard.policy = ShardConfig::Policy::Forced;
  shard.workers = 1;
  EXPECT_EQ(shard_workers(shard, narrow, 5000, 0.0), 0u);
  EXPECT_EQ(shard_workers(shard, wide, 5000, 0.0), 0u);
  shard.workers = 2;
  EXPECT_EQ(shard_workers(shard, narrow, 5000, 0.0), 2u);
}

// The tentpole contract: an epoch-sharded run is indistinguishable from
// the sequential run — same classifications, same pattern sets, same
// stage counters — for any pool width and any epoch size, including
// epoch sizes small enough to force many barriers and a pool of one
// (where helping does all the work).
TEST(ShardTest, EpochShardingMatchesSequential) {
  const net::Netlist nl = circuits::load_circuit("s298");
  const auto ctx = core::CircuitContext::build(nl);
  AtpgSession sequential(ctx);
  const core::FogbusterResult reference = sequential.run();

  for (const unsigned pool_width : {1u, 4u}) {
    for (const std::size_t epoch : {std::size_t{3}, std::size_t{64}}) {
      ThreadPool pool(pool_width);
      ShardConfig shard;
      shard.policy = ShardConfig::Policy::Forced;
      shard.workers = 4;
      shard.epoch_size = epoch;
      AtpgSession session(ctx);
      const core::FogbusterResult sharded = session.run(pool, shard);
      expect_identical_runs(reference, sharded);
    }
  }
}

// Sharding composes with non-static targeting orders (the permutation is
// what the epochs walk).
TEST(ShardTest, ShardingComposesWithFaultOrders) {
  const net::Netlist nl = circuits::load_circuit("s344");
  const auto ctx = core::CircuitContext::build(nl);
  ThreadPool pool(3);
  ShardConfig shard;
  shard.policy = ShardConfig::Policy::Forced;
  shard.workers = 3;
  shard.epoch_size = 10;
  for (const FaultOrder order :
       {FaultOrder::Static, FaultOrder::Random, FaultOrder::Adi}) {
    AtpgSession sequential(ctx, {}, order);
    AtpgSession sharded(ctx, {}, order);
    expect_identical_runs(sequential.run(), sharded.run(pool, shard));
  }
}

// The acceptance sweep of the issue, in-process: every catalog circuit,
// sequential versus sharded, full tested/untestable/aborted/pattern-set
// equality. Reduced backtrack limits keep the runtime in check — the
// cli_shard_determinism ctest covers the paper configuration end to end.
// Skipped under ThreadSanitizer (order-of-magnitude slowdown would blow
// the suite timeout; the small-scope shard tests above give TSan the
// same concurrency coverage).
TEST(ShardTest, WholeCatalogEquality) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "whole-catalog sweep is too slow under TSan";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "whole-catalog sweep is too slow under TSan";
#endif
#endif
  core::AtpgOptions options;
  options.local.backtrack_limit = 20;
  options.sequential.backtrack_limit = 20;
  ThreadPool pool(4);
  ShardConfig shard;
  shard.policy = ShardConfig::Policy::Forced;
  shard.workers = 4;
  for (const std::string& name : circuits::catalog_names()) {
    const net::Netlist nl = circuits::load_circuit(name);
    const auto ctx = core::CircuitContext::build(nl, options);
    AtpgSession sequential(ctx, options);
    AtpgSession sharded(ctx, options);
    const core::FogbusterResult a = sequential.run();
    const core::FogbusterResult b = sharded.run(pool, shard);
    expect_identical_runs(a, b);
  }
}

TEST(FaultOrderTest, NamesRoundTrip) {
  for (const FaultOrder order :
       {FaultOrder::Static, FaultOrder::Random, FaultOrder::Adi}) {
    EXPECT_EQ(parse_fault_order(fault_order_name(order)), order);
  }
  EXPECT_THROW(parse_fault_order("alphabetical"), Error);
}

TEST(FaultOrderTest, PermutationsAreValidAndDeterministic) {
  const net::Netlist nl = circuits::load_circuit("s27");
  const auto ctx = core::CircuitContext::build(nl);
  const core::AtpgOptions options;
  for (const FaultOrder order :
       {FaultOrder::Static, FaultOrder::Random, FaultOrder::Adi}) {
    const std::vector<std::size_t> perm =
        make_fault_order(*ctx, order, options);
    EXPECT_EQ(perm.size(), ctx->faults().size());
    EXPECT_EQ(std::set<std::size_t>(perm.begin(), perm.end()).size(),
              perm.size())
        << fault_order_name(order) << " is not a permutation";
    EXPECT_EQ(perm, make_fault_order(*ctx, order, options));
  }
  // Static is the identity: same flow as the paper's setup.
  const std::vector<std::size_t> id =
      make_fault_order(*ctx, FaultOrder::Static, options);
  for (std::size_t i = 0; i < id.size(); ++i) {
    EXPECT_EQ(id[i], i);
  }
}

// Whatever the targeting order, the per-fault classification work is the
// same — only test count/pattern mix may shift. Sanity: every fault ends
// classified and the session completes.
TEST(FaultOrderTest, OrderedRunsClassifyEveryFault) {
  const net::Netlist nl = circuits::load_circuit("s27");
  const auto ctx = core::CircuitContext::build(nl);
  for (const FaultOrder order :
       {FaultOrder::Static, FaultOrder::Random, FaultOrder::Adi}) {
    AtpgSession session(ctx, {}, order);
    const core::FogbusterResult result = session.run();
    EXPECT_EQ(result.status.size(), ctx->faults().size());
    for (const core::FaultStatus s : result.status) {
      EXPECT_NE(s, core::FaultStatus::Untested);
    }
  }
}

TEST(SweepSpecTest, ExpansionIsCanonicalAndCircuitMajor) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s27"),
                   CircuitSource::catalog("c17")};
  spec.backtrack_limits = {10, 100};
  spec.seeds = {1, 2, 3};
  EXPECT_EQ(spec.cells_per_circuit(), 6u);
  EXPECT_TRUE(spec.has_matrix());

  const std::vector<SweepJob> jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 12u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].circuit.label, i < 6 ? "s27" : "c17");
  }
  // Seed-major before backtracks (axis declaration order).
  EXPECT_EQ(jobs[0].options.fill_seed, 1u);
  EXPECT_EQ(jobs[0].options.local.backtrack_limit, 10);
  EXPECT_EQ(jobs[1].options.local.backtrack_limit, 100);
  EXPECT_EQ(jobs[2].options.fill_seed, 2u);
  // Backtrack cells set both engines' limits.
  EXPECT_EQ(jobs[0].options.sequential.backtrack_limit, 10);
}

// A 'full' sites cell means the paper's fault model even when the base
// configuration disabled branches: expansion and enumeration follow the
// axis, so the CSV sites column never lies.
TEST(SweepSpecTest, SitesAxisOverridesBaseBranchConfig) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s27")};
  spec.base.fault_sites.include_branches = false;
  spec.base.expand_branches = false;
  spec.full_sites = {true, false};
  const std::vector<SweepJob> jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_TRUE(jobs[0].options.fault_sites.include_branches);
  EXPECT_TRUE(jobs[0].options.expand_branches);
  EXPECT_FALSE(jobs[1].options.fault_sites.include_branches);
  EXPECT_FALSE(jobs[1].options.expand_branches);
}

TEST(SweepSpecTest, SingleCellKeepsLegacyCsvLayout) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s27")};
  EXPECT_EQ(sweep_csv_header(spec),
            "circuit,tested,untestable,aborted,patterns,seconds");
  spec.include_seconds = false;
  EXPECT_EQ(sweep_csv_header(spec),
            "circuit,tested,untestable,aborted,patterns");
  spec.modes = {alg::Mode::Robust, alg::Mode::NonRobust};
  EXPECT_EQ(sweep_csv_header(spec),
            "circuit,mode,order,seed,backtracks,dropping,sites,"
            "tested,untestable,aborted,patterns");
}

std::string csv_of_sweep(SweepSpec spec, unsigned jobs) {
  spec.jobs = jobs;
  spec.include_seconds = false;
  std::string out = sweep_csv_header(spec) + "\n";
  run_sweep(spec, [&](const SweepRow& row) {
    out += format_sweep_csv_row(spec, row) + "\n";
  });
  return out;
}

// The tentpole determinism contract: a multi-circuit (matrix) sweep emits
// byte-identical CSV at --jobs 1 and --jobs 4.
TEST(SweepOrchestratorTest, JobCountDoesNotChangeTheBytes) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s27"),
                   CircuitSource::catalog("c17")};
  spec.backtrack_limits = {10, 100};
  spec.fault_dropping = {true, false};

  const std::string serial = csv_of_sweep(spec, 1);
  const std::string parallel = csv_of_sweep(spec, 4);
  EXPECT_EQ(serial, parallel);
  // 2 circuits × 2 backtracks × 2 dropping = 8 rows + header.
  EXPECT_EQ(static_cast<int>(
                std::count(serial.begin(), serial.end(), '\n')),
            9);
}

// File-backed catalog: a .bench file in the bench dir overrides the
// generated substitute; absent files fall back silently.
TEST(FileBackedCatalogTest, BenchDirOverridesGeneratedCircuits) {
  const std::string dir = ::testing::TempDir() + "gdf_bench_dir";
  std::filesystem::create_directories(dir);
  // Masquerade c17's netlist as "s344": if the override is honored, the
  // loaded circuit has c17's size, not the generated s344 profile's.
  const net::Netlist c17 = circuits::load_circuit("c17");
  {
    std::ofstream out(dir + "/s344.bench");
    out << net::write_bench(c17);
  }
  const net::Netlist overridden = circuits::load_circuit("s344", dir);
  EXPECT_EQ(overridden.size(), c17.size());
  const net::Netlist fallback = circuits::load_circuit("s386", dir);
  EXPECT_EQ(fallback.size(), circuits::load_circuit("s386").size());
  // Explicit --bench-dir wins over the environment.
  EXPECT_EQ(circuits::resolve_bench_dir(dir), dir);
  std::filesystem::remove_all(dir);
}

// The untestable memo must be invisible in the results: a session seeded
// with another run's proven-untestable set classifies every fault exactly
// as a memo-free session would — it only skips the redundant searches.
TEST(MemoTest, MemoDoesNotChangeResults) {
  const net::Netlist nl = circuits::load_circuit("s298");
  const auto ctx = core::CircuitContext::build(nl);

  AtpgSession producer(ctx);
  const core::FogbusterResult proved = producer.run();
  auto verdicts = std::make_shared<std::vector<bool>>(proved.status.size());
  long untestable = 0;
  for (std::size_t f = 0; f < proved.status.size(); ++f) {
    const bool u = proved.status[f] == core::FaultStatus::Untestable;
    (*verdicts)[f] = u;
    untestable += u ? 1 : 0;
  }
  ASSERT_GT(untestable, 0);

  // A different seed and a different targeting order than the producer:
  // the memo still applies (verdicts are seed/order independent).
  core::AtpgOptions other;
  other.fill_seed = 7;
  AtpgSession memo_free(ctx, other, FaultOrder::Random);
  AtpgSession with_memo(ctx, other, FaultOrder::Random);
  with_memo.set_untestable_memo(verdicts);
  const core::FogbusterResult plain = memo_free.run();
  const core::FogbusterResult memoized = with_memo.run();

  EXPECT_EQ(plain.status, memoized.status);
  EXPECT_EQ(plain.pattern_count, memoized.pattern_count);
  EXPECT_EQ(plain.tests.size(), memoized.tests.size());
  EXPECT_EQ(plain.memo_hits, 0);
  EXPECT_GT(memoized.memo_hits, 0);
  // Memo hits can fall short of the set size only because dropping beat
  // targeting to some faults; never the other way around.
  EXPECT_LE(memoized.memo_hits, untestable);
}

// Memo reuse composes with sharding: epochs skip memoized faults without
// burning generation slices on them.
TEST(MemoTest, MemoComposesWithSharding) {
  const net::Netlist nl = circuits::load_circuit("s344");
  const auto ctx = core::CircuitContext::build(nl);
  AtpgSession producer(ctx);
  const core::FogbusterResult proved = producer.run();
  auto verdicts = std::make_shared<std::vector<bool>>(proved.status.size());
  for (std::size_t f = 0; f < proved.status.size(); ++f) {
    (*verdicts)[f] = proved.status[f] == core::FaultStatus::Untestable;
  }

  ThreadPool pool(4);
  ShardConfig shard;
  shard.policy = ShardConfig::Policy::Forced;
  shard.workers = 4;
  shard.epoch_size = 8;
  AtpgSession sequential(ctx);
  AtpgSession sharded(ctx);
  sequential.set_untestable_memo(verdicts);
  sharded.set_untestable_memo(verdicts);
  const core::FogbusterResult a = sequential.run();
  const core::FogbusterResult b = sharded.run(pool, shard);
  expect_identical_runs(a, b);
  EXPECT_GT(a.memo_hits, 0);
}

// Sweep-level memo orchestration: cells differing only in seed share one
// producer's verdicts; the hit counts and the bytes are identical for
// any worker count (producer-before-consumer scheduling), and the rows
// match what memo-free single-cell runs produce.
TEST(MemoTest, SweepMemoIsDeterministicAcrossJobs) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s298")};
  spec.seeds = {1995, 7, 23};

  auto run_with_jobs = [&](unsigned jobs) {
    SweepSpec s = spec;
    s.jobs = jobs;
    s.include_seconds = false;
    std::string csv = sweep_csv_header(s) + "\n";
    std::vector<long> hits;
    const SweepStats stats = run_sweep(s, [&](const SweepRow& row) {
      csv += format_sweep_csv_row(s, row) + "\n";
      hits.push_back(row.memo_hits);
    });
    return std::tuple(csv, hits, stats);
  };

  const auto [csv1, hits1, stats1] = run_with_jobs(1);
  const auto [csv4, hits4, stats4] = run_with_jobs(4);
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(hits1, hits4);
  EXPECT_EQ(stats1.memo_hits, stats4.memo_hits);
  EXPECT_EQ(stats1.memo_reused_cells, stats4.memo_reused_cells);
  ASSERT_EQ(hits1.size(), 3u);
  EXPECT_EQ(hits1[0], 0);  // producer proves, consumers reuse
  EXPECT_GT(hits1[1], 0);
  EXPECT_EQ(stats1.memo_reused_cells, 2);

  // Consumers produce the same rows a memo-free run of their cell would.
  SweepSpec single = spec;
  single.seeds = {7};
  single.include_seconds = false;
  std::string expect_row;
  run_sweep(single, [&](const SweepRow& row) {
    expect_row = format_sweep_csv_row(single, row);
  });
  // The matrix row carries config columns; compare the counters tail.
  const std::string tail = expect_row.substr(expect_row.find(','));
  EXPECT_NE(csv1.find(tail), std::string::npos);
}

// Cells whose generation configuration differs (here: backtrack limits)
// must not share verdicts — a tighter cell would abort where the looser
// one proved untestability, so no group forms across them.
TEST(MemoTest, DifferentLimitsDoNotShareVerdicts) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s27")};
  spec.backtrack_limits = {10, 100};
  spec.jobs = 2;
  spec.include_seconds = false;
  const SweepStats stats = run_sweep(spec, [](const SweepRow&) {});
  EXPECT_EQ(stats.memo_hits, 0);
  EXPECT_EQ(stats.memo_reused_cells, 0);
}

// Sharding through the sweep front door: auto policy with a threshold
// low enough to trigger, bytes identical to the shard-off sweep.
TEST(SweepOrchestratorTest, ShardedSweepKeepsTheBytes) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s27"),
                   CircuitSource::catalog("s298")};
  spec.fault_dropping = {true, false};

  SweepSpec off = spec;
  off.shard.policy = ShardConfig::Policy::Off;
  SweepSpec sharded = spec;
  sharded.shard.policy = ShardConfig::Policy::Auto;
  sharded.shard.min_faults = 1;  // everything qualifies
  sharded.jobs = 4;

  const std::string a = csv_of_sweep(off, 4);
  const std::string b = csv_of_sweep(sharded, 4);
  EXPECT_EQ(a, b);
}

TEST(SweepOrchestratorTest, ErrorsSurfaceOnTheCallingThread) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("no-such-circuit")};
  EXPECT_THROW(run_sweep(spec, [](const SweepRow&) {}), Error);
}

// The CLI builds its sweep through the same spec/formatting functions, so
// in-process expectations transfer to the binary byte-for-byte.
TEST(SweepOrchestratorTest, CliSpecMatchesInProcessSweep) {
  const char* argv[] = {"gdf_atpg", "--circuit", "s27", "--csv",
                        "--no-seconds", "--jobs", "2"};
  const cli::DriverConfig config =
      cli::parse_args(static_cast<int>(std::size(argv)), argv);
  const SweepSpec spec = cli::sweep_spec(config);
  EXPECT_EQ(spec.jobs, 2u);
  EXPECT_FALSE(spec.include_seconds);
  ASSERT_EQ(spec.circuits.size(), 1u);
  EXPECT_EQ(spec.circuits[0].name, "s27");

  const std::string csv = csv_of_sweep(spec, 2);
  EXPECT_NE(csv.find("s27,"), std::string::npos);
}

TEST(ErrorPolicyTest, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_on_error("abort").mode, ErrorPolicy::Mode::Abort);
  EXPECT_EQ(parse_on_error("skip").mode, ErrorPolicy::Mode::Skip);
  const ErrorPolicy retry = parse_on_error("retry:3");
  EXPECT_EQ(retry.mode, ErrorPolicy::Mode::Retry);
  EXPECT_EQ(retry.retries, 3);
  EXPECT_EQ(on_error_name(parse_on_error("abort")), "abort");
  EXPECT_EQ(on_error_name(parse_on_error("skip")), "skip");
  EXPECT_EQ(on_error_name(retry), "retry:3");
  EXPECT_THROW(parse_on_error("retry:0"), Error);
  EXPECT_THROW(parse_on_error("retry:"), Error);
  EXPECT_THROW(parse_on_error("ignore"), Error);
}

TEST(ErrorPolicyTest, ErrorRowBytesAreDeterministic) {
  SweepRow row;
  row.job.index = 7;
  row.job.circuit.label = "s298";
  row.error = "cannot open bench file 's298.bench'";
  row.error_kind = ErrorKind::Resource;
  EXPECT_EQ(format_sweep_error_row(row),
            "# error: circuit=s298 cell=7 kind=resource: "
            "cannot open bench file 's298.bench'");
}

TEST(WorkBudgetTest, CountsChargesAndExhaustsPastTheLimit) {
  tdgen::WorkBudget budget(10);
  EXPECT_EQ(budget.remaining(), 10);
  budget.charge(10);
  EXPECT_FALSE(budget.exhausted());  // mirrors backtracks_ > limit
  budget.charge(1);
  EXPECT_TRUE(budget.exhausted());
}

// --fault-budget's abort point is a pure function of the fault: the
// verdicts (and the budget-abort attribution) are identical whether the
// fault list runs sequentially or sharded, at any worker count.
TEST(WorkBudgetTest, BudgetedRunsAreShardAndJobsInvariant) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s298")};
  spec.base.fault_budget = 300;  // tight: forces budget aborts

  std::vector<std::string> outputs;
  long budget_aborts = -1;
  for (const unsigned jobs : {1u, 4u}) {
    for (const bool shard : {false, true}) {
      SweepSpec s = spec;
      s.jobs = jobs;
      s.include_seconds = false;
      s.shard.policy =
          shard ? ShardConfig::Policy::Forced : ShardConfig::Policy::Off;
      s.shard.workers = shard ? 4 : 0;
      std::string csv;
      run_sweep(s, [&](const SweepRow& row) {
        csv += format_sweep_csv_row(s, row) + "\n";
        if (budget_aborts < 0) {
          budget_aborts = row.stages.aborted_budget;
        } else {
          EXPECT_EQ(row.stages.aborted_budget, budget_aborts);
        }
      });
      outputs.push_back(csv);
    }
  }
  for (std::size_t i = 1; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[0], outputs[i]) << "variant " << i;
  }
  EXPECT_GT(budget_aborts, 0);  // the cap actually bit, and is attributed
}

TEST(JournalTest, RecordsAndReplaysRows) {
  const std::string path = ::testing::TempDir() + "gdf_journal_basic.j";
  std::filesystem::remove(path);
  {
    SweepJournal journal;
    journal.open(path, 0xabcdULL, false);
    EXPECT_TRUE(journal.active());
    journal.record(0, "s27,20,6,0,14");
    journal.record(1, "c17,22,0,0,12");
  }
  SweepJournal resumed;
  resumed.open(path, 0xabcdULL, true);
  ASSERT_EQ(resumed.completed().size(), 2u);
  EXPECT_EQ(resumed.completed()[0].first, 0u);
  EXPECT_EQ(resumed.completed()[0].second, "s27,20,6,0,14");
  EXPECT_EQ(resumed.completed()[1].second, "c17,22,0,0,12");
  std::filesystem::remove(path);
}

TEST(JournalTest, RefusesAForeignFingerprint) {
  const std::string path = ::testing::TempDir() + "gdf_journal_foreign.j";
  std::filesystem::remove(path);
  {
    SweepJournal journal;
    journal.open(path, 1ULL, false);
    journal.record(0, "row");
  }
  SweepJournal resumed;
  try {
    resumed.open(path, 2ULL, true);
    FAIL() << "fingerprint mismatch did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Input);
    EXPECT_NE(std::string(e.what()).find("different sweep configuration"),
              std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(JournalTest, TornTailIsDiscardedOnResume) {
  const std::string path = ::testing::TempDir() + "gdf_journal_torn.j";
  std::filesystem::remove(path);
  {
    SweepJournal journal;
    journal.open(path, 9ULL, false);
    journal.record(0, "s27,20,6,0,14");
    // Injected mid-write kill: the next record is half a line, no
    // newline — what a real SIGKILL between write() and completion
    // leaves behind.
    ::setenv("GDF_FI", "journal-truncate", 1);
    fi::reset_for_testing();
    journal.record(1, "c17,22,0,0,12");
    ::unsetenv("GDF_FI");
    fi::reset_for_testing();
  }
  SweepJournal resumed;
  resumed.open(path, 9ULL, true);
  ASSERT_EQ(resumed.completed().size(), 1u);  // torn record discarded
  EXPECT_EQ(resumed.completed()[0].second, "s27,20,6,0,14");
  // Appends continue a well-formed file: re-record the lost row, reopen.
  resumed.record(1, "c17,22,0,0,12");
  resumed.close();
  SweepJournal again;
  again.open(path, 9ULL, true);
  EXPECT_EQ(again.completed().size(), 2u);
  std::filesystem::remove(path);
}

TEST(SweepFingerprintTest, PinsJobListAndLayout) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s27")};
  const std::uint64_t base = sweep_fingerprint(spec, true);
  EXPECT_EQ(base, sweep_fingerprint(spec, true));  // stable
  EXPECT_NE(base, sweep_fingerprint(spec, false));  // layout matters
  SweepSpec seeded = spec;
  seeded.base.fill_seed = 7;
  EXPECT_NE(base, sweep_fingerprint(seeded, true));
  SweepSpec budgeted = spec;
  budgeted.base.fault_budget = 100;
  EXPECT_NE(base, sweep_fingerprint(budgeted, true));
  // Lane width never changes the bytes, so it must not invalidate a
  // journal.
  SweepSpec lanes = spec;
  lanes.base.lanes.width = sim::LaneSpec::Width::W64;
  EXPECT_EQ(base, sweep_fingerprint(lanes, true));
}

class SweepFaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("GDF_FI");
    fi::reset_for_testing();
  }

  static SweepSpec three_circuits() {
    SweepSpec spec;
    spec.circuits = {CircuitSource::catalog("s27"),
                     CircuitSource::catalog("c17"),
                     CircuitSource::catalog("s298")};
    spec.include_seconds = false;
    spec.jobs = 2;
    return spec;
  }

  static std::vector<std::string> rows_of(const SweepSpec& spec,
                                          SweepStats* stats = nullptr) {
    std::vector<std::string> rows;
    const SweepStats s = run_sweep(spec, [&](const SweepRow& row) {
      rows.push_back(row.error.empty() ? format_sweep_csv_row(spec, row)
                                       : format_sweep_error_row(row));
    });
    if (stats != nullptr) {
      *stats = s;
    }
    return rows;
  }
};

// The failure-isolation contract: an injected failure under --on-error
// skip changes that cell's row into a deterministic `# error:` line and
// nothing else — every other row keeps its exact bytes and position.
TEST_F(SweepFaultInjectionTest, SkipIsolatesTheFailingCell) {
  const std::vector<std::string> reference = rows_of(three_circuits());
  ASSERT_EQ(reference.size(), 3u);

  ::setenv("GDF_FI", "cell-throw:c17", 1);
  fi::reset_for_testing();
  SweepSpec spec = three_circuits();
  spec.on_error = parse_on_error("skip");
  SweepStats stats;
  const std::vector<std::string> rows = rows_of(spec, &stats);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], reference[0]);
  EXPECT_EQ(rows[1],
            "# error: circuit=c17 cell=1 kind=resource: "
            "fault injection: forced failure for cell 'c17'");
  EXPECT_EQ(rows[2], reference[2]);
  EXPECT_EQ(stats.error_cells, 1);
  EXPECT_EQ(stats.emitted, 3);
  EXPECT_FALSE(stats.interrupted);
}

// Under the default abort policy the same injected failure is rethrown at
// its canonical position — the pre-policy fail-fast behavior.
TEST_F(SweepFaultInjectionTest, AbortRethrowsTheFirstFailure) {
  ::setenv("GDF_FI", "cell-throw:c17", 1);
  fi::reset_for_testing();
  const SweepSpec spec = three_circuits();
  try {
    rows_of(spec);
    FAIL() << "aborting sweep did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Resource);
  }
}

// retry:N re-runs Resource failures with bounded backoff; a fault that
// clears within the budget leaves no trace in the rows.
TEST_F(SweepFaultInjectionTest, RetryRecoversTransientFailures) {
  const std::vector<std::string> reference = rows_of(three_circuits());

  ::setenv("GDF_FI", "cell-throw:c17:2", 1);
  fi::reset_for_testing();
  SweepSpec spec = three_circuits();
  spec.on_error = parse_on_error("retry:3");
  SweepStats stats;
  const std::vector<std::string> rows = rows_of(spec, &stats);
  EXPECT_EQ(rows, reference);
  EXPECT_EQ(stats.error_cells, 0);
  EXPECT_EQ(stats.retries, 2);  // two injected failures, third try wins
}

// A failed circuit *load* under skip yields error rows for every cell of
// that circuit; the other circuits are untouched.
TEST_F(SweepFaultInjectionTest, LoadFailureMarksTheWholeCircuit) {
  const std::vector<std::string> reference = rows_of(three_circuits());

  // The generated catalog never reads files, so point c17 at a bench
  // path the read-fail directive matches.
  ::setenv("GDF_FI", "read-fail:flaky", 1);
  fi::reset_for_testing();
  SweepSpec spec = three_circuits();
  spec.circuits[1] = CircuitSource::file("/tmp/flaky_c17.bench");
  spec.on_error = parse_on_error("skip");
  SweepStats stats;
  const std::vector<std::string> rows = rows_of(spec, &stats);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], reference[0]);
  EXPECT_NE(rows[1].find("# error: circuit=flaky_c17 cell=1 "
                         "kind=resource:"),
            std::string::npos)
      << rows[1];
  EXPECT_EQ(rows[2], reference[2]);
  EXPECT_EQ(stats.error_cells, 1);
}

// A cancel token that fired before the sweep starts drains to an empty
// partial result instead of running anything (the SIGINT-before-work
// case).
TEST(SweepCancelTest, PreFiredTokenYieldsEmptyInterruptedRun) {
  CancelToken cancel;
  cancel.request();
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s27"),
                   CircuitSource::catalog("c17")};
  spec.include_seconds = false;
  spec.cancel = &cancel;
  spec.base.cancel = &cancel;
  long emitted = 0;
  const SweepStats stats =
      run_sweep(spec, [&](const SweepRow&) { ++emitted; });
  EXPECT_TRUE(stats.interrupted);
  EXPECT_EQ(emitted, 0);
  EXPECT_EQ(stats.emitted, 0);
  EXPECT_EQ(stats.total_cells, 2);
}

// resume_done replays cells without recomputing them: the replayed cell
// comes back flagged (the caller re-emits its journaled text) and the
// fresh cells keep their exact bytes.
TEST(SweepResumeTest, ReplayedCellsAreNotRecomputed) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s27"),
                   CircuitSource::catalog("c17")};
  spec.include_seconds = false;
  std::vector<std::string> reference;
  run_sweep(spec, [&](const SweepRow& row) {
    reference.push_back(format_sweep_csv_row(spec, row));
  });

  SweepSpec resumed = spec;
  resumed.resume_done = {0};
  std::vector<std::pair<bool, std::string>> rows;
  const SweepStats stats = run_sweep(resumed, [&](const SweepRow& row) {
    rows.emplace_back(row.replayed,
                      row.replayed ? std::string()
                                   : format_sweep_csv_row(resumed, row));
  });
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows[0].first);
  EXPECT_FALSE(rows[1].first);
  EXPECT_EQ(rows[1].second, reference[1]);
  EXPECT_EQ(stats.replayed_cells, 1);
  EXPECT_EQ(stats.emitted, 2);

  SweepSpec bad = spec;
  bad.resume_done = {5};
  EXPECT_THROW(run_sweep(bad, [](const SweepRow&) {}), Error);
}

}  // namespace
}  // namespace gdf::run
