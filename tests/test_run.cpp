// The run/ layer: reentrant sessions over a shared CircuitContext, the
// work-stealing pool, fault-ordering policies, and the parallel sweep
// orchestrator's deterministic canonical-order emission.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "circuits/catalog.hpp"
#include "cli/args.hpp"
#include "netlist/bench_io.hpp"
#include "core/delay_atpg.hpp"
#include "run/fault_order.hpp"
#include "run/session.hpp"
#include "run/sweep.hpp"
#include "run/thread_pool.hpp"

namespace gdf::run {
namespace {

/// Summary equality: everything a Table-3/CSV row is built from.
void expect_same_result(const core::FogbusterResult& a,
                        const core::FogbusterResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.pattern_count, b.pattern_count);
  EXPECT_EQ(a.tests.size(), b.tests.size());
  EXPECT_EQ(a.stages.targeted, b.stages.targeted);
  EXPECT_EQ(a.stages.dropped, b.stages.dropped);
}

TEST(CircuitContextTest, IsSharedAndStructurallyChecked) {
  const net::Netlist nl = circuits::load_circuit("s27");
  const auto ctx = core::CircuitContext::build(nl);
  EXPECT_GT(ctx->faults().size(), 0u);
  EXPECT_TRUE(ctx->structurally_compatible({}));

  core::AtpgOptions stems;
  stems.fault_sites.include_branches = false;
  stems.expand_branches = false;
  EXPECT_FALSE(ctx->structurally_compatible(stems));
  EXPECT_THROW(AtpgSession(ctx, stems), Error);
}

// Two runs on one session, two sessions on one context, and a fresh
// standalone run must all be bit-identical — the reentrancy contract.
TEST(AtpgSessionTest, ReuseMatchesFreshRuns) {
  const net::Netlist nl = circuits::load_circuit("s27");
  const auto ctx = core::CircuitContext::build(nl);

  AtpgSession session_a(ctx);
  const core::FogbusterResult first = session_a.run();
  const core::FogbusterResult second = session_a.run();
  expect_same_result(first, second);

  AtpgSession session_b(ctx);
  expect_same_result(first, session_b.run());

  expect_same_result(first, core::run_delay_atpg(nl));
}

TEST(AtpgSessionTest, NonDefaultOptionsStayPerSession) {
  const net::Netlist nl = circuits::load_circuit("s27");
  const auto ctx = core::CircuitContext::build(nl);

  core::AtpgOptions no_drop;
  no_drop.fault_dropping = false;
  AtpgSession dropping(ctx);
  AtpgSession no_dropping(ctx, no_drop);
  const core::FogbusterResult with = dropping.run();
  const core::FogbusterResult without = no_dropping.run();
  EXPECT_GT(without.stages.targeted, with.stages.targeted);
  EXPECT_EQ(without.stages.dropped, 0);
  // The shared context is untouched: rerunning the first session still
  // reproduces its result.
  expect_same_result(with, dropping.run());
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    // Destructor note: tasks queued at shutdown are dropped, so give the
    // pool a chance to drain by spinning on the counter.
    while (counter.load() < 100) {
    }
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ResolveJobs) {
  EXPECT_EQ(ThreadPool::resolve_jobs(3), 3u);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1u);
}

TEST(FaultOrderTest, NamesRoundTrip) {
  for (const FaultOrder order :
       {FaultOrder::Static, FaultOrder::Random, FaultOrder::Adi}) {
    EXPECT_EQ(parse_fault_order(fault_order_name(order)), order);
  }
  EXPECT_THROW(parse_fault_order("alphabetical"), Error);
}

TEST(FaultOrderTest, PermutationsAreValidAndDeterministic) {
  const net::Netlist nl = circuits::load_circuit("s27");
  const auto ctx = core::CircuitContext::build(nl);
  const core::AtpgOptions options;
  for (const FaultOrder order :
       {FaultOrder::Static, FaultOrder::Random, FaultOrder::Adi}) {
    const std::vector<std::size_t> perm =
        make_fault_order(*ctx, order, options);
    EXPECT_EQ(perm.size(), ctx->faults().size());
    EXPECT_EQ(std::set<std::size_t>(perm.begin(), perm.end()).size(),
              perm.size())
        << fault_order_name(order) << " is not a permutation";
    EXPECT_EQ(perm, make_fault_order(*ctx, order, options));
  }
  // Static is the identity: same flow as the paper's setup.
  const std::vector<std::size_t> id =
      make_fault_order(*ctx, FaultOrder::Static, options);
  for (std::size_t i = 0; i < id.size(); ++i) {
    EXPECT_EQ(id[i], i);
  }
}

// Whatever the targeting order, the per-fault classification work is the
// same — only test count/pattern mix may shift. Sanity: every fault ends
// classified and the session completes.
TEST(FaultOrderTest, OrderedRunsClassifyEveryFault) {
  const net::Netlist nl = circuits::load_circuit("s27");
  const auto ctx = core::CircuitContext::build(nl);
  for (const FaultOrder order :
       {FaultOrder::Static, FaultOrder::Random, FaultOrder::Adi}) {
    AtpgSession session(ctx, {}, order);
    const core::FogbusterResult result = session.run();
    EXPECT_EQ(result.status.size(), ctx->faults().size());
    for (const core::FaultStatus s : result.status) {
      EXPECT_NE(s, core::FaultStatus::Untested);
    }
  }
}

TEST(SweepSpecTest, ExpansionIsCanonicalAndCircuitMajor) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s27"),
                   CircuitSource::catalog("c17")};
  spec.backtrack_limits = {10, 100};
  spec.seeds = {1, 2, 3};
  EXPECT_EQ(spec.cells_per_circuit(), 6u);
  EXPECT_TRUE(spec.has_matrix());

  const std::vector<SweepJob> jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 12u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].circuit.label, i < 6 ? "s27" : "c17");
  }
  // Seed-major before backtracks (axis declaration order).
  EXPECT_EQ(jobs[0].options.fill_seed, 1u);
  EXPECT_EQ(jobs[0].options.local.backtrack_limit, 10);
  EXPECT_EQ(jobs[1].options.local.backtrack_limit, 100);
  EXPECT_EQ(jobs[2].options.fill_seed, 2u);
  // Backtrack cells set both engines' limits.
  EXPECT_EQ(jobs[0].options.sequential.backtrack_limit, 10);
}

// A 'full' sites cell means the paper's fault model even when the base
// configuration disabled branches: expansion and enumeration follow the
// axis, so the CSV sites column never lies.
TEST(SweepSpecTest, SitesAxisOverridesBaseBranchConfig) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s27")};
  spec.base.fault_sites.include_branches = false;
  spec.base.expand_branches = false;
  spec.full_sites = {true, false};
  const std::vector<SweepJob> jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_TRUE(jobs[0].options.fault_sites.include_branches);
  EXPECT_TRUE(jobs[0].options.expand_branches);
  EXPECT_FALSE(jobs[1].options.fault_sites.include_branches);
  EXPECT_FALSE(jobs[1].options.expand_branches);
}

TEST(SweepSpecTest, SingleCellKeepsLegacyCsvLayout) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s27")};
  EXPECT_EQ(sweep_csv_header(spec),
            "circuit,tested,untestable,aborted,patterns,seconds");
  spec.include_seconds = false;
  EXPECT_EQ(sweep_csv_header(spec),
            "circuit,tested,untestable,aborted,patterns");
  spec.modes = {alg::Mode::Robust, alg::Mode::NonRobust};
  EXPECT_EQ(sweep_csv_header(spec),
            "circuit,mode,order,seed,backtracks,dropping,sites,"
            "tested,untestable,aborted,patterns");
}

std::string csv_of_sweep(SweepSpec spec, unsigned jobs) {
  spec.jobs = jobs;
  spec.include_seconds = false;
  std::string out = sweep_csv_header(spec) + "\n";
  run_sweep(spec, [&](const SweepRow& row) {
    out += format_sweep_csv_row(spec, row) + "\n";
  });
  return out;
}

// The tentpole determinism contract: a multi-circuit (matrix) sweep emits
// byte-identical CSV at --jobs 1 and --jobs 4.
TEST(SweepOrchestratorTest, JobCountDoesNotChangeTheBytes) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("s27"),
                   CircuitSource::catalog("c17")};
  spec.backtrack_limits = {10, 100};
  spec.fault_dropping = {true, false};

  const std::string serial = csv_of_sweep(spec, 1);
  const std::string parallel = csv_of_sweep(spec, 4);
  EXPECT_EQ(serial, parallel);
  // 2 circuits × 2 backtracks × 2 dropping = 8 rows + header.
  EXPECT_EQ(static_cast<int>(
                std::count(serial.begin(), serial.end(), '\n')),
            9);
}

// File-backed catalog: a .bench file in the bench dir overrides the
// generated substitute; absent files fall back silently.
TEST(FileBackedCatalogTest, BenchDirOverridesGeneratedCircuits) {
  const std::string dir = ::testing::TempDir() + "gdf_bench_dir";
  std::filesystem::create_directories(dir);
  // Masquerade c17's netlist as "s344": if the override is honored, the
  // loaded circuit has c17's size, not the generated s344 profile's.
  const net::Netlist c17 = circuits::load_circuit("c17");
  {
    std::ofstream out(dir + "/s344.bench");
    out << net::write_bench(c17);
  }
  const net::Netlist overridden = circuits::load_circuit("s344", dir);
  EXPECT_EQ(overridden.size(), c17.size());
  const net::Netlist fallback = circuits::load_circuit("s386", dir);
  EXPECT_EQ(fallback.size(), circuits::load_circuit("s386").size());
  // Explicit --bench-dir wins over the environment.
  EXPECT_EQ(circuits::resolve_bench_dir(dir), dir);
  std::filesystem::remove_all(dir);
}

TEST(SweepOrchestratorTest, ErrorsSurfaceOnTheCallingThread) {
  SweepSpec spec;
  spec.circuits = {CircuitSource::catalog("no-such-circuit")};
  EXPECT_THROW(run_sweep(spec, [](const SweepRow&) {}), Error);
}

// The CLI builds its sweep through the same spec/formatting functions, so
// in-process expectations transfer to the binary byte-for-byte.
TEST(SweepOrchestratorTest, CliSpecMatchesInProcessSweep) {
  const char* argv[] = {"gdf_atpg", "--circuit", "s27", "--csv",
                        "--no-seconds", "--jobs", "2"};
  const cli::DriverConfig config =
      cli::parse_args(static_cast<int>(std::size(argv)), argv);
  const SweepSpec spec = cli::sweep_spec(config);
  EXPECT_EQ(spec.jobs, 2u);
  EXPECT_FALSE(spec.include_seconds);
  ASSERT_EQ(spec.circuits.size(), 1u);
  EXPECT_EQ(spec.circuits[0].name, "s27");

  const std::string csv = csv_of_sweep(spec, 2);
  EXPECT_NE(csv.find("s27,"), std::string::npos);
}

}  // namespace
}  // namespace gdf::run
