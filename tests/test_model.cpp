#include <gtest/gtest.h>

#include "algebra/model.hpp"
#include "circuits/embedded.hpp"
#include "netlist/builder.hpp"
#include "netlist/fanout.hpp"

namespace gdf::alg {
namespace {

TEST(ModelTest, S27Decomposition) {
  const net::Netlist nl = circuits::make_s27();
  const AtpgModel m(nl);
  // 4 Pi + 3 Ppi + 2 NOT (1 node) + 1 AND2 (1) + 2 OR2 (1) +
  // 1 NAND (2) + 4 NOR (2 each) = 4+3+2+1+2+2+8 = 22 nodes.
  EXPECT_EQ(m.node_count(), 22u);
  EXPECT_EQ(m.pis().size(), 4u);
  EXPECT_EQ(m.ppis().size(), 3u);
  // Observation points: PO G17 plus PPOs G10, G11, G13.
  EXPECT_EQ(m.observation_points().size(), 4u);
  EXPECT_TRUE(m.node(m.head_of(nl.find("G17"))).is_po);
  EXPECT_EQ(m.ppo_node(0), m.head_of(nl.find("G10")));
  EXPECT_EQ(m.ppo_node(1), m.head_of(nl.find("G11")));
  EXPECT_EQ(m.ppo_node(2), m.head_of(nl.find("G13")));
}

TEST(ModelTest, IdsAreTopological) {
  const net::Netlist nl = circuits::make_s27();
  const AtpgModel m(nl);
  for (NodeId id = 0; id < m.node_count(); ++id) {
    const Node& n = m.node(id);
    if (n.in0 != kNoNode) {
      EXPECT_LT(n.in0, id);
    }
    if (n.in1 != kNoNode) {
      EXPECT_LT(n.in1, id);
    }
  }
}

TEST(ModelTest, HeadsCarryOrigin) {
  const net::Netlist nl = circuits::make_s27();
  const AtpgModel m(nl);
  for (net::GateId g = 0; g < nl.size(); ++g) {
    const NodeId head = m.head_of(g);
    ASSERT_NE(head, kNoNode);
    EXPECT_EQ(m.node(head).origin, g);
  }
}

TEST(ModelTest, NandBecomesAndPlusNot) {
  net::NetlistBuilder b("nand3");
  b.input("a").input("b").input("c");
  b.output("y");
  b.gate("y", net::GateType::Nand, {"a", "b", "c"});
  const AtpgModel m(b.build());
  // 3 Pi + 2 And2 + 1 Not = 6 nodes.
  EXPECT_EQ(m.node_count(), 6u);
  const Node& head = m.node(m.node_count() - 1);
  EXPECT_EQ(head.kind, NodeKind::Not);
  EXPECT_TRUE(head.is_po);
}

TEST(ModelTest, SingleInputAndGetsFreshBufHead) {
  net::NetlistBuilder b("and1");
  b.input("a");
  b.output("y");
  b.gate("y", net::GateType::And, {"a"});
  const net::Netlist nl = b.build();
  const AtpgModel m(nl);
  EXPECT_EQ(m.node_count(), 2u);
  EXPECT_NE(m.head_of(nl.find("y")), m.head_of(nl.find("a")));
  EXPECT_EQ(m.node(m.head_of(nl.find("y"))).kind, NodeKind::Buf);
}

TEST(ModelTest, ObsDistanceDecreasesTowardOutputs) {
  const net::Netlist nl = circuits::make_c17();
  const AtpgModel m(nl);
  const NodeId po_head = m.head_of(nl.find("N22"));
  EXPECT_EQ(m.obs_distance(po_head), 0);
  const NodeId n10_head = m.head_of(nl.find("N10"));
  EXPECT_GT(m.obs_distance(n10_head), 0);
}

TEST(ModelTest, CarrierConeCoversFanout) {
  const net::Netlist nl = circuits::make_c17();
  const AtpgModel m(nl);
  const auto cone = m.carrier_cone(m.head_of(nl.find("N11")));
  // N11 reaches N16, N19, N22, N23 (heads and their internal nodes).
  const auto contains = [&cone](NodeId id) {
    return std::find(cone.begin(), cone.end(), id) != cone.end();
  };
  EXPECT_TRUE(contains(m.head_of(nl.find("N16"))));
  EXPECT_TRUE(contains(m.head_of(nl.find("N19"))));
  EXPECT_TRUE(contains(m.head_of(nl.find("N22"))));
  EXPECT_TRUE(contains(m.head_of(nl.find("N23"))));
  EXPECT_FALSE(contains(m.head_of(nl.find("N10"))));
}

TEST(ModelTest, BranchBuffersAreDistinctSites) {
  const net::Netlist ex =
      net::expand_fanout_branches(circuits::make_c17());
  const AtpgModel m(ex);
  // N11 feeds N16 and N19 through two branch buffers with distinct heads.
  const net::GateId b0 = ex.find("N11$b0");
  const net::GateId b1 = ex.find("N11$b1");
  ASSERT_NE(b0, net::kNoGate);
  ASSERT_NE(b1, net::kNoGate);
  EXPECT_NE(m.head_of(b0), m.head_of(b1));
  EXPECT_EQ(m.node(m.head_of(b0)).kind, NodeKind::Buf);
}

TEST(DominatorTest, DiamondReconvergesAtDominator) {
  // s fans out into two paths that reconverge at d before the only PO:
  // d is the immediate dominator of s (and of both path gates).
  net::NetlistBuilder b("diamond");
  b.input("a");
  b.output("y");
  b.gate("s", net::GateType::Buf, {"a"});
  b.gate("p", net::GateType::Not, {"s"});
  b.gate("q", net::GateType::Buf, {"s"});
  b.gate("d", net::GateType::And, {"p", "q"});
  b.gate("y", net::GateType::Buf, {"d"});
  const net::Netlist nl = b.build();
  const AtpgModel m(nl);
  const NodeId d = m.head_of(nl.find("d"));
  EXPECT_EQ(m.idom(m.head_of(nl.find("s"))), d);
  EXPECT_EQ(m.idom(m.head_of(nl.find("p"))), d);
  EXPECT_EQ(m.idom(m.head_of(nl.find("q"))), d);
  EXPECT_EQ(m.idom(d), m.head_of(nl.find("y")));
  // The PO itself is dominated only by the virtual sink.
  EXPECT_EQ(m.idom(m.head_of(nl.find("y"))), kNoNode);
  EXPECT_TRUE(m.obs_reachable(m.head_of(nl.find("s"))));
  EXPECT_TRUE(m.po_reachable(m.head_of(nl.find("s"))));
}

TEST(DominatorTest, DivergingPathsHaveNoProperDominator) {
  // s feeds two separate POs: no single node sits on every path.
  net::NetlistBuilder b("diverge");
  b.input("a");
  b.output("y1");
  b.output("y2");
  b.gate("s", net::GateType::Buf, {"a"});
  b.gate("y1", net::GateType::Buf, {"s"});
  b.gate("y2", net::GateType::Not, {"s"});
  const net::Netlist nl = b.build();
  const AtpgModel m(nl);
  EXPECT_EQ(m.idom(m.head_of(nl.find("s"))), kNoNode);
  EXPECT_TRUE(m.obs_reachable(m.head_of(nl.find("s"))));
}

TEST(DominatorTest, PpoOnlyPathIsObsButNotPoReachable) {
  net::NetlistBuilder b("ppo_only");
  b.input("a");
  b.output("y");
  b.dff("q", "d");
  b.gate("d", net::GateType::Not, {"a"});
  b.gate("y", net::GateType::Buf, {"q"});
  const net::Netlist nl = b.build();
  const AtpgModel m(nl);
  const NodeId d_head = m.head_of(nl.find("d"));
  EXPECT_TRUE(m.obs_reachable(d_head));   // the PPO observes it
  EXPECT_FALSE(m.po_reachable(d_head));   // but no PO path exists
  // The PPI side reaches the PO.
  EXPECT_TRUE(m.po_reachable(m.head_of(nl.find("q"))));
}

/// Brute-force dominator property on real circuits: idom(n) must cut every
/// fanout path from n to an observation point, and be the nearest (lowest
/// id) node that does.
TEST(DominatorTest, MatchesBruteForceOnC17AndS27) {
  for (const bool expand : {false, true}) {
    for (const net::Netlist& base :
         {circuits::make_c17(), circuits::make_s27()}) {
      const net::Netlist nl =
          expand ? net::expand_fanout_branches(base) : base;
      const AtpgModel m(nl);
      const auto reaches_obs_avoiding = [&m](NodeId from, NodeId cut) {
        std::vector<NodeId> work{from};
        std::vector<bool> seen(m.node_count(), false);
        seen[from] = true;
        while (!work.empty()) {
          const NodeId id = work.back();
          work.pop_back();
          if (m.is_observation(id)) {
            return true;
          }
          for (const NodeId r : m.fanout(id)) {
            if (r != cut && !seen[r]) {
              seen[r] = true;
              work.push_back(r);
            }
          }
        }
        return false;
      };
      for (NodeId n = 0; n < m.node_count(); ++n) {
        if (!m.obs_reachable(n)) {
          EXPECT_EQ(m.idom(n), kNoNode);
          continue;
        }
        // All dominators lie on every path, so the immediate one is the
        // lowest-id cone node whose removal disconnects n from every
        // observation point.
        NodeId expected = kNoNode;
        if (!m.is_observation(n)) {
          for (const NodeId c : m.carrier_cone(n)) {
            if (c != n && !reaches_obs_avoiding(n, c)) {
              expected = std::min(expected, c);
            }
          }
        }
        EXPECT_EQ(m.idom(n), expected) << "node " << n;
      }
    }
  }
}

}  // namespace
}  // namespace gdf::alg
