// Exact and property-based checks of the eight-valued algebra — the
// reproduction of the paper's Tables 1 and 2.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "algebra/tables.hpp"

namespace gdf::alg {
namespace {

constexpr V8 Z = V8::Zero;
constexpr V8 O = V8::One;
constexpr V8 R = V8::Rise;
constexpr V8 F = V8::Fall;
constexpr V8 Zh = V8::ZeroH;
constexpr V8 Oh = V8::OneH;
constexpr V8 Rc = V8::RiseC;
constexpr V8 Fc = V8::FallC;

const std::array<V8, 8> kAll = {Z, O, R, F, Zh, Oh, Rc, Fc};

TEST(Table2Inverter, ExactPerPaper) {
  const DelayAlgebra& a = robust_algebra();
  EXPECT_EQ(a.v_not(Z), O);
  EXPECT_EQ(a.v_not(O), Z);
  EXPECT_EQ(a.v_not(R), F);
  EXPECT_EQ(a.v_not(F), R);
  EXPECT_EQ(a.v_not(Zh), Oh);
  EXPECT_EQ(a.v_not(Oh), Zh);
  EXPECT_EQ(a.v_not(Rc), Fc);
  EXPECT_EQ(a.v_not(Fc), Rc);
}

TEST(Table1And, FullRobustTable) {
  // Row order 0,1,R,F,0h,1h,Rc,Fc; reconstructed per DESIGN.md §2.1. The
  // legible OCR rows of the paper (Rc and Fc) are asserted verbatim below.
  const std::array<std::array<V8, 8>, 8> expected = {{
      {Z, Z, Z, Z, Z, Z, Z, Z},
      {Z, O, R, F, Zh, Oh, Rc, Fc},
      {Z, R, R, Zh, Zh, R, Rc, Zh},
      {Z, F, Zh, F, Zh, F, Zh, F},
      {Z, Zh, Zh, Zh, Zh, Zh, Zh, Zh},
      {Z, Oh, R, F, Zh, Oh, Rc, F},
      {Z, Rc, Rc, Zh, Zh, Rc, Rc, Zh},
      {Z, Fc, Zh, F, Zh, F, Zh, Fc},
  }};
  const DelayAlgebra& a = robust_algebra();
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(a.v_and(kAll[i], kAll[j]), expected[i][j])
          << v8_name(kAll[i]) << " AND " << v8_name(kAll[j]);
    }
  }
}

TEST(Table1And, PaperProseRules) {
  const DelayAlgebra& a = robust_algebra();
  // "Rc propagates from the on path input to the output of the gate with
  // any value on the off path input that is 1 in its final value."
  for (const V8 off : {O, Oh, R, Rc}) {
    EXPECT_EQ(a.v_and(Rc, off), Rc) << v8_name(off);
  }
  // "...but Fc propagates only with a steady one or Fc on the off path."
  EXPECT_EQ(a.v_and(Fc, O), Fc);
  EXPECT_EQ(a.v_and(Fc, Fc), Fc);
  for (const V8 off : {R, F, Zh, Oh, Rc}) {
    EXPECT_NE(a.v_and(Fc, off), Fc) << v8_name(off);
  }
}

TEST(Table1And, CarrierNeverEmergesFromCleanOperands) {
  // "Note that an Rc or Fc value never emerges at an output of a gate if
  // there wasn't already one or more of these values at the input."
  const DelayAlgebra& a = robust_algebra();
  for (const V8 x : kAll) {
    for (const V8 y : kAll) {
      if (!v8_is_carrier(x) && !v8_is_carrier(y)) {
        EXPECT_FALSE(v8_is_carrier(a.v_and(x, y)));
        EXPECT_FALSE(v8_is_carrier(a.v_or(x, y)));
        EXPECT_FALSE(v8_is_carrier(a.v_xor(x, y)));
      }
    }
  }
}

class AlgebraModeTest : public ::testing::TestWithParam<Mode> {};

TEST_P(AlgebraModeTest, AndOrCommutativeIdempotent) {
  const DelayAlgebra& a = algebra_for(GetParam());
  for (const V8 x : kAll) {
    EXPECT_EQ(a.v_and(x, x), x);
    EXPECT_EQ(a.v_or(x, x), x);
    for (const V8 y : kAll) {
      EXPECT_EQ(a.v_and(x, y), a.v_and(y, x));
      EXPECT_EQ(a.v_or(x, y), a.v_or(y, x));
      EXPECT_EQ(a.v_xor(x, y), a.v_xor(y, x));
    }
  }
}

TEST_P(AlgebraModeTest, AndOrStrictlyAssociative) {
  // Exact associativity holds in both algebras (so multi-input gates can
  // be decomposed into chains without changing any result).
  const DelayAlgebra& a = algebra_for(GetParam());
  for (const V8 x : kAll) {
    for (const V8 y : kAll) {
      for (const V8 z : kAll) {
        EXPECT_EQ(a.v_and(a.v_and(x, y), z), a.v_and(x, a.v_and(y, z)));
        EXPECT_EQ(a.v_or(a.v_or(x, y), z), a.v_or(x, a.v_or(y, z)));
      }
    }
  }
}

TEST_P(AlgebraModeTest, ZeroAndOneActAsLatticeConstants) {
  const DelayAlgebra& a = algebra_for(GetParam());
  for (const V8 x : kAll) {
    EXPECT_EQ(a.v_and(Z, x), Z);
    EXPECT_EQ(a.v_and(O, x), x);
    EXPECT_EQ(a.v_or(O, x), O);
    EXPECT_EQ(a.v_or(Z, x), x);
  }
}

TEST_P(AlgebraModeTest, DeMorganByConstruction) {
  const DelayAlgebra& a = algebra_for(GetParam());
  for (const V8 x : kAll) {
    for (const V8 y : kAll) {
      EXPECT_EQ(a.v_or(x, y), a.v_not(a.v_and(a.v_not(x), a.v_not(y))));
      EXPECT_EQ(a.v_and(x, y), a.v_not(a.v_or(a.v_not(x), a.v_not(y))));
    }
  }
}

TEST_P(AlgebraModeTest, GoodMachineFramesAreExact) {
  // Initial values and good-machine final values behave like two
  // independent Boolean frames under every operation, in both modes. This
  // exactness is what the state-register constraint relies on; it is the
  // reason the non-robust table is restricted to the hazard relaxation
  // (Fc AND R = Fc would violate it — see tables.cpp).
  const DelayAlgebra& a = algebra_for(GetParam());
  for (const V8 x : kAll) {
    for (const V8 y : kAll) {
      const V8 and_out = a.v_and(x, y);
      EXPECT_EQ(v8_initial(and_out), v8_initial(x) & v8_initial(y))
          << v8_name(x) << " AND " << v8_name(y);
      EXPECT_EQ(v8_final(and_out), v8_final(x) & v8_final(y));
      const V8 or_out = a.v_or(x, y);
      EXPECT_EQ(v8_initial(or_out), v8_initial(x) | v8_initial(y));
      EXPECT_EQ(v8_final(or_out), v8_final(x) | v8_final(y));
      const V8 xor_out = a.v_xor(x, y);
      EXPECT_EQ(v8_initial(xor_out), v8_initial(x) ^ v8_initial(y));
      EXPECT_EQ(v8_final(xor_out), v8_final(x) ^ v8_final(y));
    }
  }
}

TEST_P(AlgebraModeTest, CarrierOutputsTrackFaultyMachine) {
  // Whenever a carrier survives, its faulty final value must equal the AND
  // of the operands' faulty finals (soundness of kept fault effects).
  const DelayAlgebra& a = algebra_for(GetParam());
  for (const V8 x : kAll) {
    for (const V8 y : kAll) {
      const V8 out = a.v_and(x, y);
      if (v8_is_carrier(out)) {
        EXPECT_EQ(v8_final_faulty(out),
                  v8_final_faulty(x) & v8_final_faulty(y))
            << v8_name(x) << " AND " << v8_name(y);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, AlgebraModeTest,
                         ::testing::Values(Mode::Robust, Mode::NonRobust),
                         [](const ::testing::TestParamInfo<Mode>& info) {
                           return info.param == Mode::Robust ? "Robust"
                                                             : "NonRobust";
                         });

TEST(NonRobustTable, ExactlyTwoCellsRelaxed) {
  // The hazard relaxation: Fc survives beside a steady-but-hazardous 1.
  // (Relaxing changing off-paths as well would need ten values; see
  // tables.cpp.)
  const DelayAlgebra& r = robust_algebra();
  const DelayAlgebra& n = nonrobust_algebra();
  int diffs = 0;
  for (const V8 x : kAll) {
    for (const V8 y : kAll) {
      if (r.v_and(x, y) != n.v_and(x, y)) {
        ++diffs;
        EXPECT_EQ(n.v_and(x, y), Fc);  // every relaxation keeps Fc alive
        EXPECT_TRUE((x == Fc && y == Oh) || (y == Fc && x == Oh))
            << v8_name(x) << " AND " << v8_name(y);
      }
    }
  }
  EXPECT_EQ(diffs, 2);
}

TEST(NonRobustTable, HazardTolerantFallingPropagation) {
  const DelayAlgebra& r = robust_algebra();
  const DelayAlgebra& n = nonrobust_algebra();
  // Robust: a hazardous off-path 1 strips the falling fault effect;
  // relaxed: it survives. Changing off-paths strip it in both modes.
  EXPECT_EQ(r.v_and(Fc, Oh), F);
  EXPECT_EQ(n.v_and(Fc, Oh), Fc);
  EXPECT_FALSE(v8_is_carrier(n.v_and(Fc, R)));
  EXPECT_FALSE(v8_is_carrier(r.v_and(Fc, R)));
  // Rising propagation is already final-value-only in the robust model,
  // so the modes agree on every Rc row cell.
  for (const V8 y : kAll) {
    EXPECT_EQ(r.v_and(Rc, y), n.v_and(Rc, y));
  }
}

TEST(XorComposition, CarrierCases) {
  const DelayAlgebra& a = robust_algebra();
  EXPECT_EQ(a.v_xor(Rc, Z), Rc);
  EXPECT_EQ(a.v_xor(Rc, O), Fc);  // inverting side swaps polarity
  EXPECT_EQ(a.v_xor(Fc, Z), Fc);
  EXPECT_EQ(a.v_xor(Fc, O), Rc);
  // A changing off-path input invalidates robustness through XOR.
  EXPECT_FALSE(v8_is_carrier(a.v_xor(Rc, R)));
  EXPECT_FALSE(v8_is_carrier(a.v_xor(Rc, F)));
}

TEST(SetOps, ForwardIsUnionOfPairs) {
  const DelayAlgebra& a = robust_algebra();
  const VSet s1 = vset_of(R) | vset_of(O);
  const VSet s2 = vset_of(Fc) | vset_of(O);
  const VSet out = a.set_fwd(Op2::And, s1, s2);
  // Pairs: R&Fc=0h, R&1=R, 1&Fc=Fc, 1&1=1.
  EXPECT_EQ(out, static_cast<VSet>(vset_of(Zh) | vset_of(R) | vset_of(Fc) |
                                   vset_of(O)));
}

TEST(SetOps, BackwardKeepsOnlySupportedMembers) {
  const DelayAlgebra& a = robust_algebra();
  // Output must be Fc; first operand ranges over everything, second is
  // exactly Fc: only 1 and Fc survive on the first input.
  const VSet pruned =
      a.set_bwd_first(Op2::And, kFullSet, vset_of(Fc), vset_of(Fc));
  EXPECT_EQ(pruned, static_cast<VSet>(vset_of(O) | vset_of(Fc)));
}

TEST(SetOps, NotIsExactBijection) {
  const DelayAlgebra& a = robust_algebra();
  for (int s = 0; s <= 0xFF; ++s) {
    const VSet in = static_cast<VSet>(s);
    EXPECT_EQ(a.set_not(a.set_not(in)), in);
    EXPECT_EQ(vset_size(a.set_not(in)), vset_size(in));
  }
}

TEST(SetOps, ForwardMonotoneInOperands) {
  const DelayAlgebra& a = robust_algebra();
  // Adding members to an operand can only grow the output set.
  const VSet base = vset_of(R);
  const VSet wider = vset_of(R) | vset_of(Oh);
  const VSet other = vset_of(Rc) | vset_of(O);
  const VSet out_base = a.set_fwd(Op2::And, base, other);
  const VSet out_wider = a.set_fwd(Op2::And, wider, other);
  EXPECT_EQ(static_cast<VSet>(out_base & out_wider), out_base);
}

TEST(SiteTransform, ReplacesTriggerWithCarrier) {
  const VSet raw = vset_of(R) | vset_of(Z);
  const VSet str = DelayAlgebra::site_transform(raw, true);
  EXPECT_EQ(str, static_cast<VSet>(vset_of(Rc) | vset_of(Z)));
  const VSet stf = DelayAlgebra::site_transform(raw, false);
  EXPECT_EQ(stf, raw);  // no falling member to convert
}

TEST(SiteTransform, PreimageInvertsImage) {
  for (int s = 0; s <= 0xFF; ++s) {
    const VSet raw = static_cast<VSet>(s & static_cast<int>(kCleanSet));
    for (const bool str : {true, false}) {
      const VSet image = DelayAlgebra::site_transform(raw, str);
      const VSet pre = DelayAlgebra::site_transform_pre(image, str);
      // Preimage of the image must contain every clean raw value.
      EXPECT_EQ(static_cast<VSet>(pre & raw), raw);
      // And map back into the image.
      EXPECT_EQ(static_cast<VSet>(
                    DelayAlgebra::site_transform(pre, str) & ~image),
                kEmptySet);
    }
  }
}

}  // namespace
}  // namespace gdf::alg
