# End-to-end determinism check on the gdf_atpg binary itself: a
# multi-circuit sweep must emit byte-identical CSV at --jobs 1 and
# --jobs 4 (the wall-time column is dropped via --no-seconds). Registered
# by tests/CMakeLists.txt as the `cli_jobs_determinism` ctest.
#
# Usage: cmake -DGDF_ATPG=<path> -P check_jobs_determinism.cmake

set(sweep_args --circuit s27 --circuit c17 --csv --no-seconds)

execute_process(
  COMMAND ${GDF_ATPG} ${sweep_args} --jobs 1
  OUTPUT_VARIABLE serial_out
  RESULT_VARIABLE serial_rc)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "gdf_atpg --jobs 1 failed (rc=${serial_rc})")
endif()

execute_process(
  COMMAND ${GDF_ATPG} ${sweep_args} --jobs 4
  OUTPUT_VARIABLE parallel_out
  RESULT_VARIABLE parallel_rc)
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "gdf_atpg --jobs 4 failed (rc=${parallel_rc})")
endif()

if(NOT serial_out STREQUAL parallel_out)
  message(FATAL_ERROR "--jobs 1 and --jobs 4 output differs:\n"
                      "=== jobs 1 ===\n${serial_out}\n"
                      "=== jobs 4 ===\n${parallel_out}")
endif()

string(LENGTH "${serial_out}" out_len)
if(out_len EQUAL 0)
  message(FATAL_ERROR "gdf_atpg produced no output")
endif()
message(STATUS "jobs=1 and jobs=4 output byte-identical (${out_len} bytes)")
