// Round-trip and cross-representation properties over the whole circuit
// catalog: the .bench writer/parser, the fanout expansion, and the
// decomposed ATPG model must all preserve structure and behaviour.
#include <gtest/gtest.h>

#include "algebra/frame_sim.hpp"
#include "base/rng.hpp"
#include "circuits/catalog.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/fanout.hpp"
#include "netlist/stats.hpp"
#include "sim/seq_sim.hpp"

namespace gdf {
namespace {

class CatalogRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(CatalogRoundTrip, BenchWriteParsePreservesStats) {
  const net::Netlist original = circuits::load_circuit(GetParam());
  const net::Netlist reparsed =
      net::parse_bench(net::write_bench(original), original.name());
  const net::NetlistStats a = net::compute_stats(original);
  const net::NetlistStats b = net::compute_stats(reparsed);
  EXPECT_EQ(a.primary_inputs, b.primary_inputs);
  EXPECT_EQ(a.primary_outputs, b.primary_outputs);
  EXPECT_EQ(a.flip_flops, b.flip_flops);
  EXPECT_EQ(a.logic_gates, b.logic_gates);
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_EQ(a.fanout_stems, b.fanout_stems);
}

TEST_P(CatalogRoundTrip, BenchRoundTripPreservesBehaviour) {
  const net::Netlist original = circuits::load_circuit(GetParam());
  const net::Netlist reparsed =
      net::parse_bench(net::write_bench(original), original.name());
  sim::SeqSimulator sim_a(original);
  sim::SeqSimulator sim_b(reparsed);
  Rng rng(GetParam().size() + 99);
  sim::StateVec state_a(original.dffs().size(), sim::Lv::Zero);
  sim::StateVec state_b = state_a;
  std::vector<sim::Lv> lines_a, lines_b;
  for (int frame = 0; frame < 6; ++frame) {
    sim::InputVec pis(original.inputs().size());
    for (sim::Lv& v : pis) {
      v = rng.next_bool() ? sim::Lv::One : sim::Lv::Zero;
    }
    sim_a.eval_frame(pis, state_a, lines_a);
    sim_b.eval_frame(pis, state_b, lines_b);
    EXPECT_EQ(sim_a.outputs(lines_a), sim_b.outputs(lines_b))
        << GetParam() << " frame " << frame;
    state_a = sim_a.next_state(lines_a);
    state_b = sim_b.next_state(lines_b);
  }
  EXPECT_EQ(state_a, state_b);
}

TEST_P(CatalogRoundTrip, FanoutExpansionPreservesBehaviour) {
  const net::Netlist original = circuits::load_circuit(GetParam());
  const net::Netlist expanded = net::expand_fanout_branches(original);
  // Interface is untouched.
  ASSERT_EQ(expanded.inputs().size(), original.inputs().size());
  ASSERT_EQ(expanded.outputs().size(), original.outputs().size());
  ASSERT_EQ(expanded.dffs().size(), original.dffs().size());
  // Behaviour is identical on random binary stimulus.
  sim::SeqSimulator sim_a(original);
  sim::SeqSimulator sim_b(expanded);
  Rng rng(GetParam().size() + 7);
  sim::StateVec state_a(original.dffs().size(), sim::Lv::Zero);
  sim::StateVec state_b = state_a;
  std::vector<sim::Lv> lines_a, lines_b;
  for (int frame = 0; frame < 6; ++frame) {
    sim::InputVec pis(original.inputs().size());
    for (sim::Lv& v : pis) {
      v = rng.next_bool() ? sim::Lv::One : sim::Lv::Zero;
    }
    sim_a.eval_frame(pis, state_a, lines_a);
    sim_b.eval_frame(pis, state_b, lines_b);
    EXPECT_EQ(sim_a.outputs(lines_a), sim_b.outputs(lines_b));
    state_a = sim_a.next_state(lines_a);
    state_b = sim_b.next_state(lines_b);
  }
}

TEST_P(CatalogRoundTrip, ModelAgreesWithGateLevelSimulation) {
  // The decomposed two-frame model, evaluated with singleton steady
  // values, must agree with the gate-level simulator in both frames.
  const net::Netlist nl =
      net::expand_fanout_branches(circuits::load_circuit(GetParam()));
  const alg::AtpgModel model(nl);
  const alg::TwoFrameSim frame_sim(model, alg::robust_algebra());
  sim::SeqSimulator gate_sim(nl);
  Rng rng(GetParam().size() + 13);

  sim::InputVec v1(nl.inputs().size()), v2(nl.inputs().size());
  sim::StateVec s0(nl.dffs().size());
  for (auto* vec : {&v1, &v2}) {
    for (sim::Lv& v : *vec) {
      v = rng.next_bool() ? sim::Lv::One : sim::Lv::Zero;
    }
  }
  for (sim::Lv& v : s0) {
    v = rng.next_bool() ? sim::Lv::One : sim::Lv::Zero;
  }
  std::vector<sim::Lv> frame1;
  gate_sim.eval_frame(v1, s0, frame1);
  const sim::StateVec s1 = gate_sim.next_state(frame1);
  std::vector<sim::Lv> frame2;
  gate_sim.eval_frame(v2, s1, frame2);

  alg::TwoFrameStimulus stimulus;
  const auto bit = [](sim::Lv v) { return v == sim::Lv::One ? 1 : 0; };
  for (std::size_t i = 0; i < v1.size(); ++i) {
    stimulus.pi_sets.push_back(
        alg::vset_primary_from_frames(bit(v1[i]), bit(v2[i])));
  }
  for (std::size_t k = 0; k < s0.size(); ++k) {
    stimulus.ppi_sets.push_back(
        alg::vset_primary_from_frames(bit(s0[k]), bit(s1[k])));
  }
  std::vector<alg::VSet> sets;
  frame_sim.run(stimulus, nullptr, sets);

  for (net::GateId g = 0; g < nl.size(); ++g) {
    const alg::VSet s = sets[model.head_of(g)];
    ASSERT_TRUE(alg::vset_is_singleton(s)) << nl.gate(g).name;
    const alg::V8 v = alg::vset_only(s);
    EXPECT_EQ(alg::v8_initial(v), bit(frame1[g])) << nl.gate(g).name;
    EXPECT_EQ(alg::v8_final(v), bit(frame2[g])) << nl.gate(g).name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCircuits, CatalogRoundTrip,
    ::testing::ValuesIn(gdf::circuits::catalog_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace gdf
