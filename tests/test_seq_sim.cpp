#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "circuits/catalog.hpp"
#include "circuits/embedded.hpp"
#include "netlist/builder.hpp"
#include "sim/parallel3.hpp"
#include "sim/seq_sim.hpp"

namespace gdf::sim {
namespace {

net::Netlist toggler() {
  // q toggles when en=1: d = q XOR en.
  net::NetlistBuilder b("toggler");
  b.input("en");
  b.output("q");
  b.dff("q", "d");
  b.gate("d", net::GateType::Xor, {"q", "en"});
  return b.build();
}

TEST(SeqSimTest, TogglerBehaviour) {
  const net::Netlist nl = toggler();
  SeqSimulator sim(nl);
  StateVec state = {Lv::Zero};
  std::vector<Lv> lines;
  sim.eval_frame(InputVec{Lv::One}, state, lines);
  EXPECT_EQ(sim.outputs(lines)[0], Lv::Zero);  // PO is the present state
  state = sim.next_state(lines);
  EXPECT_EQ(state[0], Lv::One);
  sim.eval_frame(InputVec{Lv::Zero}, state, lines);
  state = sim.next_state(lines);
  EXPECT_EQ(state[0], Lv::One);  // hold
}

TEST(SeqSimTest, UnknownStateStaysUnknownWithoutControl) {
  const net::Netlist nl = toggler();
  SeqSimulator sim(nl);
  StateVec state = sim.unknown_state();
  std::vector<Lv> lines;
  sim.eval_frame(InputVec{Lv::One}, state, lines);
  EXPECT_EQ(sim.next_state(lines)[0], Lv::X);  // X xor 1 = X
}

TEST(SeqSimTest, RunWholeSequence) {
  const net::Netlist nl = toggler();
  SeqSimulator sim(nl);
  const std::vector<InputVec> seq = {{Lv::One}, {Lv::One}, {Lv::One}};
  std::vector<std::vector<Lv>> pos;
  const StateVec end = sim.run(seq, StateVec{Lv::Zero}, &pos);
  ASSERT_EQ(pos.size(), 3u);
  EXPECT_EQ(end[0], Lv::One);  // toggled three times from 0
  EXPECT_EQ(pos[1][0], Lv::One);
}

TEST(SeqSimTest, S27KnownFrame) {
  const net::Netlist nl = circuits::make_s27();
  SeqSimulator sim(nl);
  // All PIs zero, state all zero. Hand-evaluated s27:
  // G14=NOT(G0)=1, G12=NOR(G1,G7)=1, G13=NOR(G2,G12)=0, G8=AND(G14,G6)=0,
  // G15=OR(G12,G8)=1, G16=OR(G3,G8)=0, G9=NAND(G16,G15)=1,
  // G10=NOR(G14,G11)=0, G11=NOR(G5,G9)=0, G17=NOT(G11)=1.
  std::vector<Lv> lines;
  sim.eval_frame(InputVec(4, Lv::Zero), StateVec(3, Lv::Zero), lines);
  EXPECT_EQ(lines[nl.find("G14")], Lv::One);
  EXPECT_EQ(lines[nl.find("G13")], Lv::Zero);
  EXPECT_EQ(lines[nl.find("G9")], Lv::One);
  EXPECT_EQ(lines[nl.find("G11")], Lv::Zero);
  EXPECT_EQ(sim.outputs(lines)[0], Lv::One);
  const StateVec next = sim.next_state(lines);
  EXPECT_EQ(next[0], Lv::Zero);  // G5 <- G10
  EXPECT_EQ(next[1], Lv::Zero);  // G6 <- G11
  EXPECT_EQ(next[2], Lv::Zero);  // G7 <- G13
}

TEST(ParallelSim3Test, MatchesScalarSimLaneWise) {
  const net::Netlist nl = circuits::load_circuit("s298");
  SeqSimulator scalar(nl);
  ParallelSim3 parallel(nl);
  Rng rng(1234);

  const std::size_t n_pi = nl.inputs().size();
  const std::size_t n_ff = nl.dffs().size();
  constexpr unsigned kLanes = 8;

  // Random three-valued stimulus per lane.
  std::vector<std::vector<Lv>> lane_pis(kLanes, std::vector<Lv>(n_pi));
  std::vector<std::vector<Lv>> lane_state(kLanes, std::vector<Lv>(n_ff));
  const auto random_lv = [&rng]() {
    const auto r = rng.next_below(3);
    return r == 0 ? Lv::Zero : (r == 1 ? Lv::One : Lv::X);
  };
  for (unsigned l = 0; l < kLanes; ++l) {
    for (auto& v : lane_pis[l]) v = random_lv();
    for (auto& v : lane_state[l]) v = random_lv();
  }

  // Pack into dual-rail words.
  std::vector<Word3> pi_words(n_pi), state_words(n_ff);
  for (std::size_t i = 0; i < n_pi; ++i) {
    for (unsigned l = 0; l < kLanes; ++l) {
      wn_set_lane(pi_words[i], l, lane_pis[l][i]);
    }
  }
  for (std::size_t i = 0; i < n_ff; ++i) {
    for (unsigned l = 0; l < kLanes; ++l) {
      wn_set_lane(state_words[i], l, lane_state[l][i]);
    }
  }

  std::vector<Word3> packed;
  parallel.eval_frame(pi_words, state_words, packed);

  std::vector<Lv> scalar_lines;
  for (unsigned l = 0; l < kLanes; ++l) {
    scalar.eval_frame(lane_pis[l], lane_state[l], scalar_lines);
    for (net::GateId g = 0; g < nl.size(); ++g) {
      EXPECT_EQ(wn_lane(packed[g], l), scalar_lines[g])
          << "lane " << l << " gate " << nl.gate(g).name;
    }
  }
}

TEST(ResettleFrame, MatchesFullEvalUnderRandomBoundaryFlips) {
  // The incremental per-decision resettle (FramePodem's discipline) must
  // stay exactly eval_frame() across arbitrary boundary flip sequences,
  // with and without an injection.
  const net::Netlist nl = circuits::load_circuit("s298");
  const SeqSimulator sim(nl);
  const FlatCircuit& fc = *sim.flat();
  for (const bool inject : {false, true}) {
    Injection injection;
    if (inject) {
      injection.line = static_cast<net::GateId>(nl.size() / 2);
      injection.faulty = Lv::Zero;
    }
    const Injection* inj = inject ? &injection : nullptr;
    InputVec pis(nl.inputs().size(), Lv::X);
    StateVec state(nl.dffs().size(), Lv::X);
    std::vector<Lv> incremental;
    sim.eval_frame(pis, state, incremental, inj);
    Rng rng(2026);
    BitQueue work;
    const Lv values[] = {Lv::Zero, Lv::One, Lv::X};
    for (int step = 0; step < 120; ++step) {
      work.begin(fc.body_count());
      bool any = false;
      const std::size_t n_changes = 1 + rng.next_below(2);
      for (std::size_t c = 0; c < n_changes; ++c) {
        const bool is_ppi = rng.next_bool() && !state.empty();
        const std::size_t index = is_ppi ? rng.next_below(state.size())
                                         : rng.next_below(pis.size());
        const Lv v = values[rng.next_below(3)];
        const net::GateId line =
            is_ppi ? nl.dffs()[index] : nl.inputs()[index];
        if (is_ppi) {
          state[index] = v;
        } else {
          pis[index] = v;
        }
        Lv applied = v;
        if (inj != nullptr && inj->line == line) {
          applied = combine(good_value(applied), inj->faulty);
        }
        if (applied == incremental[line]) {
          continue;
        }
        incremental[line] = applied;
        for (const std::uint32_t reader : fc.readers(line)) {
          work.push(reader);
        }
        any = true;
      }
      if (any) {
        sim.resettle_frame(incremental, work, inj);
      }
      std::vector<Lv> fresh;
      sim.eval_frame(pis, state, fresh, inj);
      ASSERT_EQ(incremental, fresh) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace gdf::sim
