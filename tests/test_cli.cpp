// The gdf_atpg argument parser and the CLI-reachable engine choices.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "base/error.hpp"
#include "circuits/catalog.hpp"
#include "cli/args.hpp"
#include "core/delay_atpg.hpp"
#include "netlist/bench_io.hpp"
#include "sim/lanes.hpp"

namespace gdf::cli {
namespace {

DriverConfig parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"gdf_atpg"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_args(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, BenchFilesAreCollected) {
  const DriverConfig config =
      parse({"--bench", "a.bench", "-b", "b.bench"});
  ASSERT_EQ(config.bench_files.size(), 2u);
  EXPECT_EQ(config.bench_files[0], "a.bench");
  EXPECT_EQ(config.bench_files[1], "b.bench");
}

TEST(ArgsTest, BenchAloneIsEnoughToRun) {
  EXPECT_NO_THROW(parse({"--bench", "x.bench"}));
  EXPECT_THROW(parse({"--csv"}), Error);
}

TEST(ArgsTest, TdsimEngineChoices) {
  EXPECT_EQ(parse({"--all"}).atpg.tdsim_engine, core::TdsimEngine::Cpt);
  EXPECT_EQ(parse({"--all", "--tdsim", "exact"}).atpg.tdsim_engine,
            core::TdsimEngine::Exact);
  EXPECT_EQ(parse({"--all", "--tdsim", "cpt"}).atpg.tdsim_engine,
            core::TdsimEngine::Cpt);
  EXPECT_THROW(parse({"--all", "--tdsim", "fast"}), Error);
}

TEST(ArgsTest, UsageMentionsNewFlags) {
  const std::string text = usage();
  EXPECT_NE(text.find("--bench"), std::string::npos);
  EXPECT_NE(text.find("--tdsim"), std::string::npos);
  EXPECT_NE(text.find("--jobs"), std::string::npos);
  EXPECT_NE(text.find("--fault-order"), std::string::npos);
  EXPECT_NE(text.find("--bench-dir"), std::string::npos);
  EXPECT_NE(text.find("--shard-faults"), std::string::npos);
  EXPECT_NE(text.find("--shard-epoch"), std::string::npos);
  EXPECT_NE(text.find("--lanes"), std::string::npos);
  EXPECT_NE(text.find("--adi-sequences"), std::string::npos);
  EXPECT_NE(text.find("--learn"), std::string::npos);
  EXPECT_NE(text.find("--learned-limit"), std::string::npos);
  EXPECT_NE(text.find("--restarts"), std::string::npos);
  EXPECT_NE(text.find("--restart-base"), std::string::npos);
  EXPECT_NE(text.find("--on-error"), std::string::npos);
  EXPECT_NE(text.find("--fault-budget"), std::string::npos);
  EXPECT_NE(text.find("--journal"), std::string::npos);
  EXPECT_NE(text.find("--resume"), std::string::npos);
}

TEST(ArgsTest, RobustExecutionFlags) {
  const DriverConfig defaults = parse({"--all"});
  EXPECT_EQ(defaults.on_error.mode, run::ErrorPolicy::Mode::Abort);
  EXPECT_EQ(defaults.atpg.fault_budget, 0);
  EXPECT_TRUE(defaults.journal.empty());
  EXPECT_FALSE(defaults.resume);

  const DriverConfig skip = parse({"--all", "--on-error", "skip"});
  EXPECT_EQ(skip.on_error.mode, run::ErrorPolicy::Mode::Skip);
  const DriverConfig retry = parse({"--all", "--on-error", "retry:2"});
  EXPECT_EQ(retry.on_error.mode, run::ErrorPolicy::Mode::Retry);
  EXPECT_EQ(retry.on_error.retries, 2);
  EXPECT_THROW(parse({"--all", "--on-error", "retry:0"}), Error);
  EXPECT_THROW(parse({"--all", "--on-error", "never"}), Error);

  EXPECT_EQ(parse({"--all", "--fault-budget", "5000"}).atpg.fault_budget,
            5000);
  EXPECT_THROW(parse({"--all", "--fault-budget", "0"}), Error);

  const DriverConfig journaled =
      parse({"--all", "--journal", "run.j", "--resume"});
  EXPECT_EQ(journaled.journal, "run.j");
  EXPECT_TRUE(journaled.resume);
  // --resume without a journal has nothing to replay; --stages output is
  // not journaled, so the combination could not resume faithfully.
  EXPECT_THROW(parse({"--all", "--resume"}), Error);
  EXPECT_THROW(parse({"--all", "--journal", "run.j", "--stages"}), Error);
}

TEST(ArgsTest, RobustFlagsReachTheSweepSpec) {
  const DriverConfig config = parse(
      {"--circuit", "s27", "--on-error", "skip", "--journal", "run.j"});
  const run::SweepSpec spec = sweep_spec(config);
  EXPECT_EQ(spec.on_error.mode, run::ErrorPolicy::Mode::Skip);
  EXPECT_TRUE(spec.disable_memo);  // journaled rows must replay verbatim
  const run::SweepSpec plain = sweep_spec(parse({"--circuit", "s27"}));
  EXPECT_FALSE(plain.disable_memo);
}

TEST(ArgsTest, LaneWidthChoices) {
  using sim::LaneSpec;
  EXPECT_EQ(parse({"--all"}).atpg.lanes.width, LaneSpec::Width::Auto);
  EXPECT_EQ(parse({"--all", "--lanes", "auto"}).atpg.lanes.width,
            LaneSpec::Width::Auto);
  EXPECT_EQ(parse({"--all", "--lanes", "64"}).atpg.lanes.width,
            LaneSpec::Width::W64);
  EXPECT_EQ(parse({"--all", "--lanes", "256"}).atpg.lanes.width,
            LaneSpec::Width::W256);
  EXPECT_EQ(parse({"--all", "--lanes", "512"}).atpg.lanes.width,
            LaneSpec::Width::W512);
  EXPECT_THROW(parse({"--all", "--lanes", "128"}), Error);
  EXPECT_THROW(parse({"--all", "--lanes", "wide"}), Error);
  // Every explicit width resolves to itself; auto resolves to a real one.
  EXPECT_EQ(sim::resolve_lane_count({LaneSpec::Width::W64}), 64u);
  EXPECT_EQ(sim::resolve_lane_count({LaneSpec::Width::W256}), 256u);
  EXPECT_EQ(sim::resolve_lane_count({LaneSpec::Width::W512}), 512u);
  const unsigned probed = sim::resolve_lane_count({});
  EXPECT_TRUE(probed == 64 || probed == 256 || probed == 512);
}

TEST(ArgsTest, LearnModeChoices) {
  EXPECT_EQ(parse({"--all"}).atpg.learn, core::LearnMode::On);
  EXPECT_EQ(parse({"--all", "--learn", "on"}).atpg.learn,
            core::LearnMode::On);
  EXPECT_EQ(parse({"--all", "--learn", "off"}).atpg.learn,
            core::LearnMode::Off);
  EXPECT_EQ(parse({"--all", "--learn", "shared"}).atpg.learn,
            core::LearnMode::Shared);
  EXPECT_THROW(parse({"--all", "--learn", "maybe"}), Error);
  EXPECT_EQ(parse({"--all"}).atpg.learned_limit, 512);
  EXPECT_EQ(parse({"--all", "--learned-limit", "64"}).atpg.learned_limit,
            64);
}

TEST(ArgsTest, RestartPolicyChoices) {
  EXPECT_EQ(parse({"--all"}).atpg.local.restarts,
            tdgen::RestartPolicy::Luby);
  EXPECT_EQ(parse({"--all", "--restarts", "luby"}).atpg.local.restarts,
            tdgen::RestartPolicy::Luby);
  EXPECT_EQ(parse({"--all", "--restarts", "off"}).atpg.local.restarts,
            tdgen::RestartPolicy::Off);
  EXPECT_THROW(parse({"--all", "--restarts", "geometric"}), Error);
  EXPECT_EQ(parse({"--all"}).atpg.local.restart_base, 32);
  EXPECT_EQ(parse({"--all", "--restart-base", "8"}).atpg.local.restart_base,
            8);
  EXPECT_THROW(parse({"--all", "--restart-base", "0"}), Error);
}

TEST(ArgsTest, AdiSequenceBudget) {
  EXPECT_EQ(parse({"--all"}).atpg.adi_sequences, 8);
  EXPECT_EQ(parse({"--all", "--adi-sequences", "16"}).atpg.adi_sequences, 16);
  EXPECT_THROW(parse({"--all", "--adi-sequences", "0"}), Error);
  EXPECT_THROW(parse({"--all", "--adi-sequences", "-3"}), Error);
}

TEST(ArgsTest, ShardFlags) {
  // Default: auto policy, epoch derived from the worker count.
  const DriverConfig defaults = parse({"--all"});
  EXPECT_EQ(defaults.shard.policy, run::ShardConfig::Policy::Auto);
  EXPECT_EQ(defaults.shard.epoch_size, 0u);

  const DriverConfig forced =
      parse({"--all", "--shard-faults", "8", "--shard-epoch", "32"});
  EXPECT_EQ(forced.shard.policy, run::ShardConfig::Policy::Forced);
  EXPECT_EQ(forced.shard.workers, 8u);
  EXPECT_EQ(forced.shard.epoch_size, 32u);
  EXPECT_EQ(sweep_spec(forced).shard, forced.shard);

  // Flag order must not matter: --shard-epoch before --shard-faults.
  const DriverConfig swapped =
      parse({"--all", "--shard-epoch", "32", "--shard-faults", "off"});
  EXPECT_EQ(swapped.shard.policy, run::ShardConfig::Policy::Off);
  EXPECT_EQ(swapped.shard.epoch_size, 32u);

  EXPECT_THROW(parse({"--all", "--shard-faults", "sideways"}), Error);
  EXPECT_THROW(parse({"--all", "--shard-faults", "0"}), Error);
  EXPECT_THROW(parse({"--all", "--shard-epoch", "0"}), Error);
}

TEST(ArgsTest, JobsAndBenchDir) {
  const DriverConfig config =
      parse({"--all", "--jobs", "4", "--bench-dir", "/tmp/iscas"});
  EXPECT_EQ(config.jobs, 4u);
  EXPECT_EQ(config.bench_dir, "/tmp/iscas");
  EXPECT_EQ(parse({"--all"}).jobs, 0u);  // 0 = hardware concurrency
}

TEST(ArgsTest, MatrixAxesAreCommaLists) {
  const DriverConfig config = parse(
      {"--all", "--csv", "--backtracks", "10,100", "--modes",
       "robust,nonrobust", "--fault-order", "static,adi", "--seeds", "1,2",
       "--dropping", "on,off", "--fault-sites", "full,stems"});
  EXPECT_EQ(config.backtrack_limits, (std::vector<int>{10, 100}));
  EXPECT_EQ(config.modes,
            (std::vector<alg::Mode>{alg::Mode::Robust,
                                    alg::Mode::NonRobust}));
  EXPECT_EQ(config.fault_orders,
            (std::vector<run::FaultOrder>{run::FaultOrder::Static,
                                          run::FaultOrder::Adi}));
  EXPECT_EQ(config.seeds, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(config.fault_dropping, (std::vector<bool>{true, false}));
  EXPECT_EQ(config.full_sites, (std::vector<bool>{true, false}));
  EXPECT_EQ(sweep_spec(config).cells_per_circuit(), 64u);
}

TEST(ArgsTest, MatrixRequiresCsv) {
  EXPECT_THROW(parse({"--all", "--backtracks", "10,100"}), Error);
  EXPECT_NO_THROW(parse({"--all", "--csv", "--backtracks", "10,100"}));
  // A single-valued axis is not a matrix and stays text-table friendly.
  EXPECT_NO_THROW(parse({"--all", "--fault-order", "adi"}));
}

TEST(ArgsTest, BadAxisValuesThrow) {
  EXPECT_THROW(parse({"--all", "--csv", "--modes", "fast"}), Error);
  EXPECT_THROW(parse({"--all", "--csv", "--fault-order", "best"}), Error);
  EXPECT_THROW(parse({"--all", "--csv", "--dropping", "maybe"}), Error);
  EXPECT_THROW(parse({"--all", "--csv", "--fault-sites", "none"}), Error);
  EXPECT_THROW(parse({"--all", "--csv", "--seeds", "1,,2"}), Error);
}

// The two TDsim engines must be interchangeable from one binary: the full
// flow produces identical Table-3 rows either way.
TEST(TdsimEngineSmokeTest, ExactAndCptAgreeOnS27) {
  const net::Netlist nl = circuits::load_circuit("s27");
  core::AtpgOptions cpt;
  cpt.tdsim_engine = core::TdsimEngine::Cpt;
  core::AtpgOptions exact;
  exact.tdsim_engine = core::TdsimEngine::Exact;
  const core::FogbusterResult a = core::run_delay_atpg(nl, cpt);
  const core::FogbusterResult b = core::run_delay_atpg(nl, exact);
  EXPECT_EQ(a.tested(), b.tested());
  EXPECT_EQ(a.untestable(), b.untestable());
  EXPECT_EQ(a.aborted(), b.aborted());
  EXPECT_EQ(a.pattern_count, b.pattern_count);
  EXPECT_EQ(a.status, b.status);
}

// --bench round trip: a catalog circuit serialized to .bench and loaded
// back is accepted and runs through the same flow.
TEST(BenchFileSmokeTest, WrittenBenchFileLoadsAndRuns) {
  const net::Netlist original = circuits::load_circuit("s27");
  const std::string path = ::testing::TempDir() + "gdf_cli_s27.bench";
  {
    std::ofstream out(path);
    out << net::write_bench(original);
  }
  const net::Netlist loaded = net::read_bench_file(path);
  EXPECT_EQ(loaded.size(), original.size());
  const core::FogbusterResult result = core::run_delay_atpg(loaded);
  EXPECT_GT(result.tested(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gdf::cli
