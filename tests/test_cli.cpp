// The gdf_atpg argument parser and the CLI-reachable engine choices.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "base/error.hpp"
#include "circuits/catalog.hpp"
#include "cli/args.hpp"
#include "core/delay_atpg.hpp"
#include "netlist/bench_io.hpp"

namespace gdf::cli {
namespace {

DriverConfig parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"gdf_atpg"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_args(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, BenchFilesAreCollected) {
  const DriverConfig config =
      parse({"--bench", "a.bench", "-b", "b.bench"});
  ASSERT_EQ(config.bench_files.size(), 2u);
  EXPECT_EQ(config.bench_files[0], "a.bench");
  EXPECT_EQ(config.bench_files[1], "b.bench");
}

TEST(ArgsTest, BenchAloneIsEnoughToRun) {
  EXPECT_NO_THROW(parse({"--bench", "x.bench"}));
  EXPECT_THROW(parse({"--csv"}), Error);
}

TEST(ArgsTest, TdsimEngineChoices) {
  EXPECT_EQ(parse({"--all"}).atpg.tdsim_engine, core::TdsimEngine::Cpt);
  EXPECT_EQ(parse({"--all", "--tdsim", "exact"}).atpg.tdsim_engine,
            core::TdsimEngine::Exact);
  EXPECT_EQ(parse({"--all", "--tdsim", "cpt"}).atpg.tdsim_engine,
            core::TdsimEngine::Cpt);
  EXPECT_THROW(parse({"--all", "--tdsim", "fast"}), Error);
}

TEST(ArgsTest, UsageMentionsNewFlags) {
  const std::string text = usage();
  EXPECT_NE(text.find("--bench"), std::string::npos);
  EXPECT_NE(text.find("--tdsim"), std::string::npos);
}

// The two TDsim engines must be interchangeable from one binary: the full
// flow produces identical Table-3 rows either way.
TEST(TdsimEngineSmokeTest, ExactAndCptAgreeOnS27) {
  const net::Netlist nl = circuits::load_circuit("s27");
  core::AtpgOptions cpt;
  cpt.tdsim_engine = core::TdsimEngine::Cpt;
  core::AtpgOptions exact;
  exact.tdsim_engine = core::TdsimEngine::Exact;
  const core::FogbusterResult a = core::run_delay_atpg(nl, cpt);
  const core::FogbusterResult b = core::run_delay_atpg(nl, exact);
  EXPECT_EQ(a.tested(), b.tested());
  EXPECT_EQ(a.untestable(), b.untestable());
  EXPECT_EQ(a.aborted(), b.aborted());
  EXPECT_EQ(a.pattern_count, b.pattern_count);
  EXPECT_EQ(a.status, b.status);
}

// --bench round trip: a catalog circuit serialized to .bench and loaded
// back is accepted and runs through the same flow.
TEST(BenchFileSmokeTest, WrittenBenchFileLoadsAndRuns) {
  const net::Netlist original = circuits::load_circuit("s27");
  const std::string path = ::testing::TempDir() + "gdf_cli_s27.bench";
  {
    std::ofstream out(path);
    out << net::write_bench(original);
  }
  const net::Netlist loaded = net::read_bench_file(path);
  EXPECT_EQ(loaded.size(), original.size());
  const core::FogbusterResult result = core::run_delay_atpg(loaded);
  EXPECT_GT(result.tested(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gdf::cli
