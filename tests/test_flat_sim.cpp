// Scalar/packed equivalence of the flat simulation engine: randomized
// sequences over every catalog circuit must produce identical line values,
// next states, and PPO observability in the scalar five-valued engine and
// the 64-lane dual-rail engine — both thin instantiations of the same
// levelized kernel over sim::FlatCircuit.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "circuits/catalog.hpp"
#include "fausim/fausim.hpp"
#include "sim/flat_circuit.hpp"
#include "sim/parallel3.hpp"
#include "sim/seq_sim.hpp"

namespace gdf::sim {
namespace {

Lv random_three_valued(Rng& rng) {
  const auto r = rng.next_below(3);
  return r == 0 ? Lv::Zero : (r == 1 ? Lv::One : Lv::X);
}

/// Packs per-lane three-valued vectors into dual-rail words.
std::vector<Word3> pack_lanes(const std::vector<std::vector<Lv>>& lanes) {
  const std::size_t width = lanes.empty() ? 0 : lanes[0].size();
  std::vector<Word3> words(width);
  for (std::size_t i = 0; i < width; ++i) {
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      const Word3 w = w3_const(lanes[l][i], std::uint64_t{1} << l);
      words[i].ones |= w.ones;
      words[i].zeros |= w.zeros;
    }
  }
  return words;
}

TEST(FlatSimTest, ScalarAndPackedAgreeOnEveryCatalogCircuit) {
  Rng rng(20260730);
  for (const std::string& name : circuits::catalog_names()) {
    const net::Netlist nl = circuits::load_circuit(name);
    const auto fc = FlatCircuit::build(nl);
    const SeqSimulator scalar(fc);
    const ParallelSim3 packed(fc);

    constexpr unsigned kLanes = 64;
    constexpr int kFrames = 4;
    std::vector<std::vector<Lv>> lane_state(
        kLanes, std::vector<Lv>(nl.dffs().size()));
    for (auto& st : lane_state) {
      for (Lv& v : st) {
        v = random_three_valued(rng);
      }
    }
    std::vector<Word3> state_words = pack_lanes(lane_state);

    for (int frame = 0; frame < kFrames; ++frame) {
      std::vector<std::vector<Lv>> lane_pis(
          kLanes, std::vector<Lv>(nl.inputs().size()));
      for (auto& pis : lane_pis) {
        for (Lv& v : pis) {
          v = random_three_valued(rng);
        }
      }
      const std::vector<Word3> pi_words = pack_lanes(lane_pis);

      std::vector<Word3> packed_lines;
      packed.eval_frame(pi_words, state_words, packed_lines);

      std::vector<Lv> scalar_lines;
      for (unsigned l = 0; l < kLanes; ++l) {
        scalar.eval_frame(lane_pis[l], lane_state[l], scalar_lines);
        for (net::GateId g = 0; g < nl.size(); ++g) {
          ASSERT_EQ(w3_lane(packed_lines[g], l), scalar_lines[g])
              << name << " frame " << frame << " lane " << l << " line "
              << nl.gate(g).name;
        }
        lane_state[l] = scalar.next_state(scalar_lines);
      }
      packed.next_state(packed_lines, state_words);
      const std::vector<Word3> expect_state = pack_lanes(lane_state);
      for (std::size_t k = 0; k < nl.dffs().size(); ++k) {
        ASSERT_EQ(state_words[k].ones, expect_state[k].ones)
            << name << " next state ff " << k;
        ASSERT_EQ(state_words[k].zeros, expect_state[k].zeros)
            << name << " next state ff " << k;
      }
    }
  }
}

/// Scalar reference for phase-2 observability: one good/faulty twin replay
/// per definite flip-flop.
std::vector<bool> scalar_ppo_observability(
    const SeqSimulator& sim, const StateVec& state_after_fast,
    const std::vector<InputVec>& frames) {
  const net::Netlist& nl = sim.netlist();
  std::vector<bool> observable(nl.dffs().size(), false);
  for (std::size_t ff = 0; ff < nl.dffs().size(); ++ff) {
    if (!is_binary(state_after_fast[ff])) {
      continue;
    }
    StateVec good = state_after_fast;
    StateVec faulty = state_after_fast;
    faulty[ff] = good[ff] == Lv::One ? Lv::Zero : Lv::One;
    std::vector<Lv> lg, lf;
    for (const InputVec& pis : frames) {
      sim.eval_frame(pis, good, lg);
      sim.eval_frame(pis, faulty, lf);
      bool seen = false;
      for (const net::GateId po : nl.outputs()) {
        if (is_binary(lg[po]) && is_binary(lf[po]) && lg[po] != lf[po]) {
          observable[ff] = true;
          seen = true;
          break;
        }
      }
      if (seen) {
        break;
      }
      good = sim.next_state(lg);
      faulty = sim.next_state(lf);
    }
  }
  return observable;
}

TEST(FlatSimTest, PpoObservabilityMatchesScalarTwinReplay) {
  Rng rng(95);
  for (const std::string& name : circuits::catalog_names()) {
    const net::Netlist nl = circuits::load_circuit(name);
    if (nl.dffs().empty()) {
      continue;  // combinational: no PPOs to observe
    }
    const fausim::Fausim fausim(nl);
    const SeqSimulator scalar(nl);

    for (int trial = 0; trial < 3; ++trial) {
      StateVec state(nl.dffs().size());
      for (Lv& v : state) {
        v = random_three_valued(rng);
      }
      std::vector<InputVec> frames(3, InputVec(nl.inputs().size()));
      for (auto& pis : frames) {
        for (Lv& v : pis) {
          v = rng.next_bool() ? Lv::One : Lv::Zero;
        }
      }
      const std::vector<bool> batched =
          fausim.ppo_observability(state, frames);
      const std::vector<bool> reference =
          scalar_ppo_observability(scalar, state, frames);
      ASSERT_EQ(batched, reference) << name << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace gdf::sim
