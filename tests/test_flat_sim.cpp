// Scalar/packed equivalence of the flat simulation engine across the whole
// WordN<K> lane ladder: randomized sequences over every catalog circuit
// must produce identical line values, next states, fault-injection (post
// hook) effects, and PPO observability in the scalar five-valued engine
// and every batched dual-rail rung (64/256/512 lanes) — all thin
// instantiations of the same levelized kernel over sim::FlatCircuit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "circuits/catalog.hpp"
#include "fausim/fausim.hpp"
#include "netlist/builder.hpp"
#include "sim/flat_circuit.hpp"
#include "sim/lanes.hpp"
#include "sim/parallel3.hpp"
#include "sim/seq_sim.hpp"

namespace gdf::sim {
namespace {

Lv random_three_valued(Rng& rng) {
  const auto r = rng.next_below(3);
  return r == 0 ? Lv::Zero : (r == 1 ? Lv::One : Lv::X);
}

/// Packs per-lane three-valued vectors into dual-rail lane blocks.
template <unsigned K>
std::vector<WordN<K>> pack_lanes(const std::vector<std::vector<Lv>>& lanes) {
  const std::size_t width = lanes.empty() ? 0 : lanes[0].size();
  std::vector<WordN<K>> words(width);
  for (std::size_t i = 0; i < width; ++i) {
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      wn_set_lane(words[i], static_cast<unsigned>(l), lanes[l][i]);
    }
  }
  return words;
}

/// Every lane of every catalog circuit must match the scalar engine, at
/// full lane occupancy of the K-plane rung.
template <unsigned K>
void scalar_packed_equivalence(int frames_per_circuit, std::uint64_t seed) {
  Rng rng(seed);
  constexpr unsigned kLanes = WordN<K>::kLanes;
  for (const std::string& name : circuits::catalog_names()) {
    const net::Netlist nl = circuits::load_circuit(name);
    const auto fc = FlatCircuit::build(nl);
    const SeqSimulator scalar(fc);
    const ParallelSimN<K> packed(fc);

    std::vector<std::vector<Lv>> lane_state(
        kLanes, std::vector<Lv>(nl.dffs().size()));
    for (auto& st : lane_state) {
      for (Lv& v : st) {
        v = random_three_valued(rng);
      }
    }
    std::vector<WordN<K>> state_words = pack_lanes<K>(lane_state);

    for (int frame = 0; frame < frames_per_circuit; ++frame) {
      std::vector<std::vector<Lv>> lane_pis(
          kLanes, std::vector<Lv>(nl.inputs().size()));
      for (auto& pis : lane_pis) {
        for (Lv& v : pis) {
          v = random_three_valued(rng);
        }
      }
      const std::vector<WordN<K>> pi_words = pack_lanes<K>(lane_pis);

      std::vector<WordN<K>> packed_lines;
      packed.eval_frame(pi_words, state_words, packed_lines);

      std::vector<Lv> scalar_lines;
      for (unsigned l = 0; l < kLanes; ++l) {
        scalar.eval_frame(lane_pis[l], lane_state[l], scalar_lines);
        for (net::GateId g = 0; g < nl.size(); ++g) {
          ASSERT_EQ(wn_lane(packed_lines[g], l), scalar_lines[g])
              << name << " K " << K << " frame " << frame << " lane " << l
              << " line " << nl.gate(g).name;
        }
        lane_state[l] = scalar.next_state(scalar_lines);
      }
      packed.next_state(packed_lines, state_words);
      const std::vector<WordN<K>> expect_state = pack_lanes<K>(lane_state);
      for (std::size_t k = 0; k < nl.dffs().size(); ++k) {
        for (unsigned p = 0; p < K; ++p) {
          ASSERT_EQ(state_words[k].ones[p], expect_state[k].ones[p])
              << name << " K " << K << " next state ff " << k;
          ASSERT_EQ(state_words[k].zeros[p], expect_state[k].zeros[p])
              << name << " K " << K << " next state ff " << k;
        }
      }
    }
  }
}

TEST(FlatSimTest, ScalarAndPackedAgreeOnEveryCatalogCircuit) {
  scalar_packed_equivalence<1>(4, 20260730);
}

TEST(FlatSimTest, ScalarAndPacked256AgreeOnEveryCatalogCircuit) {
  scalar_packed_equivalence<4>(2, 20260731);
}

TEST(FlatSimTest, ScalarAndPacked512AgreeOnEveryCatalogCircuit) {
  scalar_packed_equivalence<8>(2, 20260801);
}

/// The fault-injection hook of eval_flat: forcing values at body outputs
/// (the scalar engine's Injection path and FAUSIM's phase-2 idiom) must
/// behave identically lane-wise on every rung.
template <unsigned K>
void post_hook_equivalence(std::uint64_t seed) {
  Rng rng(seed);
  constexpr unsigned kLanes = WordN<K>::kLanes;
  for (const std::string& name : circuits::catalog_names()) {
    const net::Netlist nl = circuits::load_circuit(name);
    const auto fcp = FlatCircuit::build(nl);
    const FlatCircuit& fc = *fcp;
    if (fc.body_count() == 0) {
      continue;
    }
    // Invert every seventh body output as it settles — a deterministic
    // multi-site injection that downstream bodies observe.
    const auto is_site = [&](net::GateId line) {
      const std::size_t b = fc.body_index(line);
      return b != FlatCircuit::kNoBody && b % 7 == 3;
    };

    std::vector<std::vector<Lv>> lane_pis(
        kLanes, std::vector<Lv>(nl.inputs().size()));
    std::vector<std::vector<Lv>> lane_state(
        kLanes, std::vector<Lv>(nl.dffs().size()));
    for (unsigned l = 0; l < kLanes; ++l) {
      for (Lv& v : lane_pis[l]) {
        v = random_three_valued(rng);
      }
      for (Lv& v : lane_state[l]) {
        v = random_three_valued(rng);
      }
    }

    // Packed pass with the wordwise post hook.
    std::vector<WordN<K>> lines(fc.line_count());
    const std::vector<WordN<K>> pi_words = pack_lanes<K>(lane_pis);
    const std::vector<WordN<K>> state_words = pack_lanes<K>(lane_state);
    for (std::size_t i = 0; i < pi_words.size(); ++i) {
      lines[fc.inputs()[i]] = pi_words[i];
    }
    for (std::size_t i = 0; i < state_words.size(); ++i) {
      lines[fc.dffs()[i]] = state_words[i];
    }
    eval_flat(fc, WordNOps<K>{}, lines.data(),
              [&](net::GateId out, WordN<K>& v) {
                if (is_site(out)) {
                  v = wn_not(v);
                }
              });

    // Scalar reference, one lane at a time, with the same injection.
    const auto scalar_not = [](Lv v) {
      return v == Lv::One ? Lv::Zero : (v == Lv::Zero ? Lv::One : Lv::X);
    };
    std::vector<Lv> ref(fc.line_count(), Lv::X);
    for (unsigned l = 0; l < kLanes; ++l) {
      for (std::size_t i = 0; i < lane_pis[l].size(); ++i) {
        ref[fc.inputs()[i]] = lane_pis[l][i];
      }
      for (std::size_t i = 0; i < lane_state[l].size(); ++i) {
        ref[fc.dffs()[i]] = lane_state[l][i];
      }
      eval_flat(fc, LvOps{}, ref.data(), [&](net::GateId out, Lv& v) {
        if (is_site(out)) {
          v = scalar_not(v);
        }
      });
      for (net::GateId g = 0; g < nl.size(); ++g) {
        ASSERT_EQ(wn_lane(lines[g], l), ref[g])
            << name << " K " << K << " lane " << l << " line "
            << nl.gate(g).name;
      }
    }
  }
}

TEST(FlatSimTest, FaultInjectionPostHookAgreesLaneWise64) {
  post_hook_equivalence<1>(95001);
}

TEST(FlatSimTest, FaultInjectionPostHookAgreesLaneWise256) {
  post_hook_equivalence<4>(95002);
}

TEST(FlatSimTest, FaultInjectionPostHookAgreesLaneWise512) {
  post_hook_equivalence<8>(95003);
}

/// Scalar reference for phase-2 observability: one good/faulty twin replay
/// per definite flip-flop.
std::vector<bool> scalar_ppo_observability(
    const SeqSimulator& sim, const StateVec& state_after_fast,
    const std::vector<InputVec>& frames) {
  const net::Netlist& nl = sim.netlist();
  std::vector<bool> observable(nl.dffs().size(), false);
  for (std::size_t ff = 0; ff < nl.dffs().size(); ++ff) {
    if (!is_binary(state_after_fast[ff])) {
      continue;
    }
    StateVec good = state_after_fast;
    StateVec faulty = state_after_fast;
    faulty[ff] = good[ff] == Lv::One ? Lv::Zero : Lv::One;
    std::vector<Lv> lg, lf;
    for (const InputVec& pis : frames) {
      sim.eval_frame(pis, good, lg);
      sim.eval_frame(pis, faulty, lf);
      bool seen = false;
      for (const net::GateId po : nl.outputs()) {
        if (is_binary(lg[po]) && is_binary(lf[po]) && lg[po] != lf[po]) {
          observable[ff] = true;
          seen = true;
          break;
        }
      }
      if (seen) {
        break;
      }
      good = sim.next_state(lg);
      faulty = sim.next_state(lf);
    }
  }
  return observable;
}

/// The --lanes ladder a cross-backend test sweeps.
const LaneSpec kLadder[] = {LaneSpec{LaneSpec::Width::W64},
                            LaneSpec{LaneSpec::Width::W256},
                            LaneSpec{LaneSpec::Width::W512}};

TEST(FlatSimTest, PpoObservabilityMatchesScalarTwinReplayOnEveryBackend) {
  Rng rng(95);
  for (const std::string& name : circuits::catalog_names()) {
    const net::Netlist nl = circuits::load_circuit(name);
    if (nl.dffs().empty()) {
      continue;  // combinational: no PPOs to observe
    }
    const SeqSimulator scalar(nl);

    for (int trial = 0; trial < 3; ++trial) {
      StateVec state(nl.dffs().size());
      for (Lv& v : state) {
        v = random_three_valued(rng);
      }
      std::vector<InputVec> frames(3, InputVec(nl.inputs().size()));
      for (auto& pis : frames) {
        for (Lv& v : pis) {
          v = rng.next_bool() ? Lv::One : Lv::Zero;
        }
      }
      const std::vector<bool> reference =
          scalar_ppo_observability(scalar, state, frames);
      for (const LaneSpec spec : kLadder) {
        const fausim::Fausim fausim(nl, spec);
        const std::vector<bool> batched =
            fausim.ppo_observability(state, frames);
        ASSERT_EQ(batched, reference)
            << name << " trial " << trial << " lanes "
            << resolve_lane_count(spec);
      }
    }
  }
}

/// A wide-state machine (more flip-flops than one or even four planes of
/// faulty lanes) so the multi-plane passes and the 64-lane multi-block
/// path genuinely cross word boundaries. Mixed AND/OR/XOR observation
/// trees give non-trivial masking.
net::Netlist wide_state_machine(std::size_t n_ff, std::size_t n_pi,
                                std::size_t n_po, std::size_t window) {
  net::NetlistBuilder b("wide");
  for (std::size_t i = 0; i < n_pi; ++i) {
    b.input("x" + std::to_string(i));
  }
  const net::GateType ops[] = {net::GateType::And, net::GateType::Or,
                               net::GateType::Xor};
  for (std::size_t i = 0; i < n_ff; ++i) {
    b.dff("q" + std::to_string(i), "d" + std::to_string(i));
    b.gate("d" + std::to_string(i), ops[i % 3],
           {"q" + std::to_string((i + 37) % n_ff),
            "x" + std::to_string(i % n_pi)});
  }
  const std::size_t stride = n_ff / n_po;
  for (std::size_t k = 0; k < n_po; ++k) {
    std::string acc = "q" + std::to_string((k * stride) % n_ff);
    for (std::size_t j = 1; j < window; ++j) {
      const std::string out =
          "t" + std::to_string(k) + "_" + std::to_string(j);
      b.gate(out, ops[(k + j) % 3],
             {acc, "q" + std::to_string((k * stride + j) % n_ff)});
      acc = out;
    }
    const std::string po = "po" + std::to_string(k);
    b.gate(po, net::GateType::Buf, {acc});
    b.output(po);
  }
  return b.build();
}

TEST(FlatSimTest, WideStatePpoObservabilityAgreesAcrossBackends) {
  // 300 definite-capable flip-flops: the 64-lane rung needs five blocks,
  // the 256-lane rung two, and the 512-lane rung runs one pass with lanes
  // in all eight planes.
  const net::Netlist nl = wide_state_machine(300, 8, 10, 15);
  const SeqSimulator scalar(nl);
  Rng rng(424242);
  for (int trial = 0; trial < 2; ++trial) {
    StateVec state(nl.dffs().size());
    for (Lv& v : state) {
      // Mostly binary so several hundred lanes are genuinely flippable.
      v = rng.next_below(8) == 0 ? Lv::X
                                 : (rng.next_bool() ? Lv::One : Lv::Zero);
    }
    std::vector<InputVec> frames(4, InputVec(nl.inputs().size()));
    for (auto& pis : frames) {
      for (Lv& v : pis) {
        v = rng.next_bool() ? Lv::One : Lv::Zero;
      }
    }
    const std::vector<bool> reference =
        scalar_ppo_observability(scalar, state, frames);
    for (const LaneSpec spec : kLadder) {
      const fausim::Fausim fausim(nl, spec);
      ASSERT_EQ(fausim.ppo_observability(state, frames), reference)
          << "trial " << trial << " lanes " << resolve_lane_count(spec);
    }
  }
}

}  // namespace
}  // namespace gdf::sim
