// Cross-module integration properties on the synthetic benchmark circuits:
// whatever the flow claims, an independent replay must confirm.
#include <gtest/gtest.h>

#include "circuits/catalog.hpp"
#include "core/delay_atpg.hpp"
#include "netlist/fanout.hpp"
#include "semilet/semilet.hpp"

namespace gdf::core {
namespace {

class GeneratedCircuitFlow : public ::testing::TestWithParam<std::string> {};

TEST_P(GeneratedCircuitFlow, FirstFortyFaultsResolveAndVerify) {
  const net::Netlist circuit = circuits::load_circuit(GetParam());
  Fogbuster flow(circuit);
  const alg::AtpgModel& model = flow.model();
  const auto faults = tdgen::enumerate_faults(flow.working_netlist());
  StageStats stages;
  int resolved = 0;
  for (std::size_t i = 0; i < faults.size() && i < 40; ++i) {
    TestSequence sequence;
    const FaultStatus status =
        flow.generate_for_fault(faults[i], &sequence, &stages);
    ++resolved;
    if (status != FaultStatus::Tested) {
      continue;
    }
    // Independent end-to-end replay of the claimed test.
    const VerifyReport report =
        verify_sequence(model, alg::robust_algebra(), sequence);
    EXPECT_TRUE(report.ok)
        << tdgen::fault_name(flow.working_netlist(), faults[i]) << ": "
        << report.reason;
    // The sequence shape is sane: one fast frame, clocks annotated.
    EXPECT_EQ(sequence.clocks()[sequence.fast_index()], ClockKind::Fast);
    EXPECT_EQ(sequence.pattern_count(), sequence.all_frames().size());
    // Every required S0 bit is binary.
    for (const int bit : sequence.required_s0) {
      EXPECT_GE(bit, -1);
      EXPECT_LE(bit, 1);
    }
  }
  EXPECT_EQ(resolved, std::min<std::size_t>(faults.size(), 40));
}

INSTANTIATE_TEST_SUITE_P(Circuits, GeneratedCircuitFlow,
                         ::testing::Values("s208", "s298", "s386"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(GeneratedCircuitSync, SynchronizerResultsReplayOnAllCircuits) {
  // For every circuit: synchronize a couple of single-bit requirements and
  // replay the sequence from all-X; established bits must hold.
  for (const char* name : {"s208", "s298", "s386", "s420"}) {
    const net::Netlist nl = circuits::load_circuit(name);
    semilet::SemiletOptions options;
    sim::SeqSimulator simulator(nl);
    for (const std::size_t ff : {std::size_t{0}, nl.dffs().size() - 1}) {
      for (const sim::Lv v : {sim::Lv::Zero, sim::Lv::One}) {
        semilet::Budget budget(options);
        semilet::Synchronizer synchronizer(nl, budget);
        semilet::SyncResult result;
        const semilet::SeqStatus status =
            synchronizer.synchronize({{ff, v}}, &result);
        if (status != semilet::SeqStatus::Success) {
          continue;  // some bits are genuinely hard within paper budgets
        }
        sim::StateVec state = simulator.unknown_state();
        std::vector<sim::Lv> lines;
        for (const sim::InputVec& pis : result.frames) {
          simulator.eval_frame(pis, state, lines);
          state = simulator.next_state(lines);
        }
        EXPECT_EQ(state[ff], v) << name << " ff " << ff;
      }
    }
  }
}

TEST(GeneratedCircuitDropping, DroppedFaultsNeverContradictUntestable) {
  // With dropping on and off, a fault proven untestable by the exhaustive
  // search must never be claimed tested by dropping (soundness of TDsim
  // crediting) — and vice versa, dropping may rescue aborted faults only.
  const net::Netlist circuit = circuits::load_circuit("s386");
  const FogbusterResult with = run_delay_atpg(circuit);
  AtpgOptions off;
  off.fault_dropping = false;
  const FogbusterResult without = run_delay_atpg(circuit, off);
  ASSERT_EQ(with.faults.size(), without.faults.size());
  const Fogbuster flow(circuit);
  for (std::size_t i = 0; i < with.faults.size(); ++i) {
    if (without.status[i] == FaultStatus::Untestable) {
      EXPECT_NE(with.status[i], FaultStatus::Tested)
          << tdgen::fault_name(flow.working_netlist(), with.faults[i]);
    }
  }
}

}  // namespace
}  // namespace gdf::core
