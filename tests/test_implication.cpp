// Direct tests of the set-based implication engine — the invariants the
// TDgen search correctness rests on.
#include <gtest/gtest.h>

#include "circuits/embedded.hpp"
#include "netlist/builder.hpp"
#include "netlist/fanout.hpp"
#include "tdgen/implication.hpp"

namespace gdf::tdgen {
namespace {

using alg::AtpgModel;
using alg::kCarrierSet;
using alg::kPrimaryDomain;
using alg::NodeId;
using alg::robust_algebra;
using alg::V8;
using alg::VSet;

class C17Engine : public ::testing::Test {
 protected:
  C17Engine()
      : nl_(net::expand_fanout_branches(circuits::make_c17())),
        model_(nl_),
        engine_(model_, robust_algebra()) {
    fault_.site = model_.head_of(nl_.find("N11"));
    fault_.slow_to_rise = true;
    engine_.init(fault_);
  }

  net::Netlist nl_;
  AtpgModel model_;
  ImplicationEngine engine_;
  alg::FaultSpec fault_;
};

TEST_F(C17Engine, InitRestrictsDomains) {
  EXPECT_FALSE(engine_.conflict());
  // Primary inputs stay within the primary domain.
  for (const NodeId pi : model_.pis()) {
    EXPECT_EQ(static_cast<VSet>(engine_.get(pi) & ~kPrimaryDomain), 0);
  }
  // Carriers are possible only in the fault cone.
  std::vector<bool> in_cone(model_.node_count(), false);
  for (const NodeId id : model_.carrier_cone(fault_.site)) {
    in_cone[id] = true;
  }
  for (NodeId id = 0; id < model_.node_count(); ++id) {
    if (!in_cone[id]) {
      EXPECT_EQ(static_cast<VSet>(engine_.get(id) & kCarrierSet), 0)
          << "node " << id;
    }
  }
}

TEST_F(C17Engine, ActivationImpliesBackward) {
  // Pinning the site to Rc forces N11 = NAND(N3,N6) to rise: its And2
  // body must fall, which excludes steady-one combinations of N3/N6.
  ASSERT_TRUE(engine_.assign(fault_.site, alg::vset_of(V8::RiseC)));
  const VSet n3 = engine_.get(model_.head_of(nl_.find("N3")));
  const VSet n6 = engine_.get(model_.head_of(nl_.find("N6")));
  // The conjunction N3&N6 must have initial value 1 (so N11 starts 0):
  // both initial values must include 1.
  EXPECT_NE(alg::vset_initials(n3) & 0b10u, 0u);
  EXPECT_NE(alg::vset_initials(n6) & 0b10u, 0u);
}

TEST_F(C17Engine, RollbackRestoresExactState) {
  std::vector<VSet> before(model_.node_count());
  for (NodeId id = 0; id < model_.node_count(); ++id) {
    before[id] = engine_.get(id);
  }
  const std::size_t mark = engine_.mark();
  ASSERT_TRUE(engine_.assign(fault_.site, alg::vset_of(V8::RiseC)));
  ASSERT_TRUE(engine_.assign(model_.pis()[0], alg::vset_of(V8::Zero)));
  engine_.rollback(mark);
  EXPECT_FALSE(engine_.conflict());
  for (NodeId id = 0; id < model_.node_count(); ++id) {
    EXPECT_EQ(engine_.get(id), before[id]) << "node " << id;
  }
}

TEST_F(C17Engine, ConflictOnContradictoryAssignments) {
  ASSERT_TRUE(engine_.assign(fault_.site, alg::vset_of(V8::RiseC)));
  // N11 must rise, so forcing its driver N3 and N6 steady-0 (NAND output
  // steady 1) contradicts.
  const NodeId n3 = model_.head_of(nl_.find("N3"));
  const NodeId n6 = model_.head_of(nl_.find("N6"));
  engine_.assign(n3, alg::vset_of(V8::Zero));
  const bool ok = engine_.assign(n6, alg::vset_of(V8::Zero));
  EXPECT_FALSE(ok);
  EXPECT_TRUE(engine_.conflict());
}

TEST_F(C17Engine, ConflictClearsOnRollback) {
  const std::size_t mark = engine_.mark();
  engine_.assign(model_.head_of(nl_.find("N3")), alg::vset_of(V8::Zero));
  engine_.assign(model_.head_of(nl_.find("N6")), alg::vset_of(V8::Zero));
  engine_.assign(fault_.site, alg::vset_of(V8::RiseC));
  EXPECT_TRUE(engine_.conflict());
  engine_.rollback(mark);
  EXPECT_FALSE(engine_.conflict());
  EXPECT_TRUE(engine_.assign(fault_.site, alg::vset_of(V8::RiseC)));
}

TEST(RegisterConstraint, CouplesPpiFinalsToPpoInitials) {
  // q = DFF(d); d = NOT(q): the PPI's final value must equal the PPO's
  // initial value, which is the inverse of the PPI's initial value.
  net::NetlistBuilder b("inv_ff");
  b.input("a");
  b.output("y");
  b.dff("q", "d");
  b.gate("d", net::GateType::Not, {"q"});
  b.gate("y", net::GateType::And, {"a", "q"});
  const net::Netlist nl = b.build();
  const AtpgModel model(nl);
  ImplicationEngine engine(model, robust_algebra());
  engine.init({model.head_of(nl.find("y")), true});
  // Pin the PPI to initial 0: since d = NOT(q), the PPO starts at 1, so
  // the PPI's final must be 1 → the PPI set collapses to {R}.
  const NodeId ppi = model.ppis()[0];
  ASSERT_TRUE(engine.assign(
      ppi, alg::vset_with_initial_in(kPrimaryDomain, 0b01)));
  EXPECT_EQ(engine.get(ppi), alg::vset_of(V8::Rise));
}

TEST(RegisterConstraint, ToggleFlopSteadySubsetIsAbstractionLimit) {
  // Same circuit: a toggle flop can never hold its value, yet the
  // *set-level* register filter keeps {0,1} alive because each member has
  // pairwise support (0 is compatible with the PPO-init of the q=1 member
  // and vice versa). This documents why the search only trusts solutions
  // after the register-aware fixpoint simulation: pinning either single
  // steady value does conflict.
  net::NetlistBuilder b("inv_ff2");
  b.input("a");
  b.output("y");
  b.dff("q", "d");
  b.gate("d", net::GateType::Not, {"q"});
  b.gate("y", net::GateType::And, {"a", "q"});
  const net::Netlist nl = b.build();
  const AtpgModel model(nl);
  for (const V8 steady : {V8::Zero, V8::One}) {
    ImplicationEngine engine(model, robust_algebra());
    engine.init({model.head_of(nl.find("y")), true});
    EXPECT_FALSE(engine.assign(model.ppis()[0], alg::vset_of(steady)))
        << v8_name(steady);
    EXPECT_TRUE(engine.conflict());
  }
}

TEST(SiteOnBranch, BranchFaultIndependentOfStem) {
  // The stem N11 fans out to two branches; pinning the branch toward N16
  // to Rc must not force the sibling branch to a carrier.
  const net::Netlist nl =
      net::expand_fanout_branches(circuits::make_c17());
  const AtpgModel model(nl);
  const net::GateId b0 = nl.find("N11$b0");
  const net::GateId b1 = nl.find("N11$b1");
  ASSERT_NE(b0, net::kNoGate);
  ImplicationEngine engine(model, robust_algebra());
  engine.init({model.head_of(b0), true});
  ASSERT_TRUE(engine.assign(model.head_of(b0), alg::vset_of(V8::RiseC)));
  EXPECT_EQ(static_cast<VSet>(engine.get(model.head_of(b1)) & kCarrierSet),
            0);
  // But the shared stem must rise for the branch to rise.
  const VSet stem = engine.get(model.head_of(nl.find("N11")));
  EXPECT_EQ(stem, alg::vset_of(V8::Rise));
}

}  // namespace
}  // namespace gdf::tdgen
