// Direct tests of the set-based implication engine — the invariants the
// TDgen search correctness rests on.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "circuits/embedded.hpp"
#include "netlist/builder.hpp"
#include "netlist/fanout.hpp"
#include "tdgen/implication.hpp"

namespace gdf::tdgen {
namespace {

using alg::AtpgModel;
using alg::kCarrierSet;
using alg::kPrimaryDomain;
using alg::NodeId;
using alg::robust_algebra;
using alg::V8;
using alg::VSet;

class C17Engine : public ::testing::Test {
 protected:
  C17Engine()
      : nl_(net::expand_fanout_branches(circuits::make_c17())),
        model_(nl_),
        engine_(model_, robust_algebra()) {
    fault_.site = model_.head_of(nl_.find("N11"));
    fault_.slow_to_rise = true;
    engine_.init(fault_);
  }

  net::Netlist nl_;
  AtpgModel model_;
  ImplicationEngine engine_;
  alg::FaultSpec fault_;
};

TEST_F(C17Engine, InitRestrictsDomains) {
  EXPECT_FALSE(engine_.conflict());
  // Primary inputs stay within the primary domain.
  for (const NodeId pi : model_.pis()) {
    EXPECT_EQ(static_cast<VSet>(engine_.get(pi) & ~kPrimaryDomain), 0);
  }
  // Carriers are possible only in the fault cone.
  std::vector<bool> in_cone(model_.node_count(), false);
  for (const NodeId id : model_.carrier_cone(fault_.site)) {
    in_cone[id] = true;
  }
  for (NodeId id = 0; id < model_.node_count(); ++id) {
    if (!in_cone[id]) {
      EXPECT_EQ(static_cast<VSet>(engine_.get(id) & kCarrierSet), 0)
          << "node " << id;
    }
  }
}

TEST_F(C17Engine, ActivationImpliesBackward) {
  // Pinning the site to Rc forces N11 = NAND(N3,N6) to rise: its And2
  // body must fall, which excludes steady-one combinations of N3/N6.
  ASSERT_TRUE(engine_.assign(fault_.site, alg::vset_of(V8::RiseC)));
  const VSet n3 = engine_.get(model_.head_of(nl_.find("N3")));
  const VSet n6 = engine_.get(model_.head_of(nl_.find("N6")));
  // The conjunction N3&N6 must have initial value 1 (so N11 starts 0):
  // both initial values must include 1.
  EXPECT_NE(alg::vset_initials(n3) & 0b10u, 0u);
  EXPECT_NE(alg::vset_initials(n6) & 0b10u, 0u);
}

TEST_F(C17Engine, RollbackRestoresExactState) {
  std::vector<VSet> before(model_.node_count());
  for (NodeId id = 0; id < model_.node_count(); ++id) {
    before[id] = engine_.get(id);
  }
  const std::size_t mark = engine_.mark();
  ASSERT_TRUE(engine_.assign(fault_.site, alg::vset_of(V8::RiseC)));
  ASSERT_TRUE(engine_.assign(model_.pis()[0], alg::vset_of(V8::Zero)));
  engine_.rollback(mark);
  EXPECT_FALSE(engine_.conflict());
  for (NodeId id = 0; id < model_.node_count(); ++id) {
    EXPECT_EQ(engine_.get(id), before[id]) << "node " << id;
  }
}

TEST_F(C17Engine, ConflictOnContradictoryAssignments) {
  ASSERT_TRUE(engine_.assign(fault_.site, alg::vset_of(V8::RiseC)));
  // N11 must rise, so forcing its driver N3 and N6 steady-0 (NAND output
  // steady 1) contradicts.
  const NodeId n3 = model_.head_of(nl_.find("N3"));
  const NodeId n6 = model_.head_of(nl_.find("N6"));
  engine_.assign(n3, alg::vset_of(V8::Zero));
  const bool ok = engine_.assign(n6, alg::vset_of(V8::Zero));
  EXPECT_FALSE(ok);
  EXPECT_TRUE(engine_.conflict());
}

TEST_F(C17Engine, ConflictClearsOnRollback) {
  const std::size_t mark = engine_.mark();
  engine_.assign(model_.head_of(nl_.find("N3")), alg::vset_of(V8::Zero));
  engine_.assign(model_.head_of(nl_.find("N6")), alg::vset_of(V8::Zero));
  engine_.assign(fault_.site, alg::vset_of(V8::RiseC));
  EXPECT_TRUE(engine_.conflict());
  engine_.rollback(mark);
  EXPECT_FALSE(engine_.conflict());
  EXPECT_TRUE(engine_.assign(fault_.site, alg::vset_of(V8::RiseC)));
}

TEST(RegisterConstraint, CouplesPpiFinalsToPpoInitials) {
  // q = DFF(d); d = NOT(q): the PPI's final value must equal the PPO's
  // initial value, which is the inverse of the PPI's initial value.
  net::NetlistBuilder b("inv_ff");
  b.input("a");
  b.output("y");
  b.dff("q", "d");
  b.gate("d", net::GateType::Not, {"q"});
  b.gate("y", net::GateType::And, {"a", "q"});
  const net::Netlist nl = b.build();
  const AtpgModel model(nl);
  ImplicationEngine engine(model, robust_algebra());
  engine.init({model.head_of(nl.find("y")), true});
  // Pin the PPI to initial 0: since d = NOT(q), the PPO starts at 1, so
  // the PPI's final must be 1 → the PPI set collapses to {R}.
  const NodeId ppi = model.ppis()[0];
  ASSERT_TRUE(engine.assign(
      ppi, alg::vset_with_initial_in(kPrimaryDomain, 0b01)));
  EXPECT_EQ(engine.get(ppi), alg::vset_of(V8::Rise));
}

TEST(RegisterConstraint, ToggleFlopSteadySubsetIsAbstractionLimit) {
  // Same circuit: a toggle flop can never hold its value, yet the
  // *set-level* register filter keeps {0,1} alive because each member has
  // pairwise support (0 is compatible with the PPO-init of the q=1 member
  // and vice versa). This documents why the search only trusts solutions
  // after the register-aware fixpoint simulation: pinning either single
  // steady value does conflict.
  net::NetlistBuilder b("inv_ff2");
  b.input("a");
  b.output("y");
  b.dff("q", "d");
  b.gate("d", net::GateType::Not, {"q"});
  b.gate("y", net::GateType::And, {"a", "q"});
  const net::Netlist nl = b.build();
  const AtpgModel model(nl);
  for (const V8 steady : {V8::Zero, V8::One}) {
    ImplicationEngine engine(model, robust_algebra());
    engine.init({model.head_of(nl.find("y")), true});
    EXPECT_FALSE(engine.assign(model.ppis()[0], alg::vset_of(steady)))
        << v8_name(steady);
    EXPECT_TRUE(engine.conflict());
  }
}

TEST_F(C17Engine, DecisionLevelRoundTrip) {
  std::vector<VSet> before(model_.node_count());
  for (NodeId id = 0; id < model_.node_count(); ++id) {
    before[id] = engine_.get(id);
  }
  engine_.push_level();
  EXPECT_EQ(engine_.depth(), 1u);
  ASSERT_TRUE(engine_.assign(fault_.site, alg::vset_of(V8::RiseC)));
  engine_.push_level();
  ASSERT_TRUE(engine_.assign(model_.pis()[0], alg::vset_of(V8::Zero)));
  std::vector<VSet> at_level1(model_.node_count());
  for (NodeId id = 0; id < model_.node_count(); ++id) {
    at_level1[id] = engine_.get(id);
  }
  // backtrack_level undoes the level's deltas but keeps it open.
  engine_.backtrack_level();
  EXPECT_EQ(engine_.depth(), 2u);
  ASSERT_TRUE(engine_.assign(model_.pis()[0], alg::vset_of(V8::Zero)));
  for (NodeId id = 0; id < model_.node_count(); ++id) {
    EXPECT_EQ(engine_.get(id), at_level1[id]) << "node " << id;
  }
  engine_.pop_level();
  engine_.pop_level();
  EXPECT_EQ(engine_.depth(), 0u);
  for (NodeId id = 0; id < model_.node_count(); ++id) {
    EXPECT_EQ(engine_.get(id), before[id]) << "node " << id;
  }
}

TEST_F(C17Engine, CountersTrackTrail) {
  const long pushes0 = engine_.counters().trail_pushes;
  engine_.push_level();
  ASSERT_TRUE(engine_.assign(fault_.site, alg::vset_of(V8::RiseC)));
  const long delta = engine_.counters().trail_pushes - pushes0;
  EXPECT_GT(delta, 0);
  const long pops0 = engine_.counters().trail_pops;
  engine_.pop_level();
  EXPECT_EQ(engine_.counters().trail_pops - pops0, delta);
  EXPECT_GE(engine_.counters().assigns, 1);
}

/// The watched-fanin incremental schedule and the exhaustive
/// GDF_FULL_FIXPOINT reference must agree on every set after every
/// operation of a randomized decision/backtrack script — on hand-built
/// reconvergent cones and on c17.
TEST(WatchedFanin, MatchesFullFixpointUnderRandomScript) {
  std::vector<net::Netlist> circuits;
  circuits.push_back(net::expand_fanout_branches(circuits::make_c17()));
  {
    // Reconvergent diamond with a register loop — exercises sibling
    // backward prunes and the register-pair rule.
    net::NetlistBuilder b("diamond_ff");
    b.input("a");
    b.input("c");
    b.output("y");
    b.dff("q", "d");
    b.gate("s", net::GateType::Nand, {"a", "q"});
    b.gate("p", net::GateType::Not, {"s"});
    b.gate("r", net::GateType::Xor, {"s", "c"});
    b.gate("d", net::GateType::Or, {"p", "r"});
    b.gate("y", net::GateType::And, {"d", "q"});
    const net::Netlist nl = b.build();
    circuits.push_back(net::expand_fanout_branches(nl));
  }
  for (const net::Netlist& nl : circuits) {
    const AtpgModel model(nl);
    for (NodeId site = 0; site < model.node_count(); site += 3) {
      ImplicationEngine watched(model, robust_algebra(), false);
      ImplicationEngine full(model, robust_algebra(), true);
      const alg::FaultSpec spec{site, (site & 1u) == 0};
      watched.init(spec);
      full.init(spec);
      Rng rng(1995 + site);
      const auto expect_equal = [&](const char* what) {
        ASSERT_EQ(watched.conflict(), full.conflict()) << what;
        if (!watched.conflict()) {
          for (NodeId id = 0; id < model.node_count(); ++id) {
            ASSERT_EQ(watched.get(id), full.get(id))
                << what << " node " << id;
          }
        }
      };
      expect_equal("init");
      for (int step = 0; step < 40; ++step) {
        const NodeId n =
            static_cast<NodeId>(rng.next_in(0, model.node_count() - 1));
        const VSet allowed = static_cast<VSet>(rng.next_in(1, 255));
        if (rng.next_in(0, 4) == 0 && watched.depth() > 0) {
          watched.pop_level();
          full.pop_level();
        } else {
          watched.push_level();
          full.push_level();
          const bool ok_w = watched.assign(n, allowed);
          const bool ok_f = full.assign(n, allowed);
          ASSERT_EQ(ok_w, ok_f) << "assign step " << step;
          if (!ok_w) {
            watched.backtrack_level();
            full.backtrack_level();
            watched.pop_level();
            full.pop_level();
          }
        }
        expect_equal("step");
      }
    }
  }
}

TEST_F(C17Engine, InitFromDonorMatchesFreshInit) {
  ASSERT_TRUE(engine_.assign(fault_.site, alg::vset_of(V8::RiseC)));
  // Seed a sibling from the (now mid-search) donor's init snapshot.
  ImplicationEngine seeded(model_, robust_algebra());
  ASSERT_TRUE(seeded.init_from(engine_, fault_));
  ImplicationEngine fresh(model_, robust_algebra());
  fresh.init(fault_);
  for (NodeId id = 0; id < model_.node_count(); ++id) {
    EXPECT_EQ(seeded.get(id), fresh.get(id)) << "node " << id;
  }
  // A donor over a different fault refuses.
  const alg::FaultSpec other{fault_.site, !fault_.slow_to_rise};
  ImplicationEngine refused(model_, robust_algebra());
  EXPECT_FALSE(refused.init_from(engine_, other));
}

TEST_F(C17Engine, CarrierPathBlockedIsSoundAtFixpoint) {
  // Whenever the dominator-chain cutoff fires, no observation point may
  // still admit a carrier — the equivalence the search's pruning rests on.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    ImplicationEngine engine(model_, robust_algebra());
    engine.init(fault_);
    for (int step = 0; step < 6 && !engine.conflict(); ++step) {
      const NodeId n =
          static_cast<NodeId>(rng.next_in(0, model_.node_count() - 1));
      if (!engine.assign(n, static_cast<VSet>(rng.next_in(1, 255)))) {
        break;
      }
      if (engine.carrier_path_blocked()) {
        for (const NodeId obs : model_.observation_points()) {
          EXPECT_EQ(static_cast<VSet>(engine.get(obs) & kCarrierSet), 0);
        }
      }
    }
  }
}

TEST(SiteOnBranch, BranchFaultIndependentOfStem) {
  // The stem N11 fans out to two branches; pinning the branch toward N16
  // to Rc must not force the sibling branch to a carrier.
  const net::Netlist nl =
      net::expand_fanout_branches(circuits::make_c17());
  const AtpgModel model(nl);
  const net::GateId b0 = nl.find("N11$b0");
  const net::GateId b1 = nl.find("N11$b1");
  ASSERT_NE(b0, net::kNoGate);
  ImplicationEngine engine(model, robust_algebra());
  engine.init({model.head_of(b0), true});
  ASSERT_TRUE(engine.assign(model.head_of(b0), alg::vset_of(V8::RiseC)));
  EXPECT_EQ(static_cast<VSet>(engine.get(model.head_of(b1)) & kCarrierSet),
            0);
  // But the shared stem must rise for the branch to rise.
  const VSet stem = engine.get(model.head_of(nl.find("N11")));
  EXPECT_EQ(stem, alg::vset_of(V8::Rise));
}

TEST(ConflictAnalysis, LearnedNogoodsReplayToConflictUnderFullFixpoint) {
  // Soundness of analyze(): the decision literals it extracts from a
  // conflict form a nogood — replaying just those constraints on a fresh
  // engine running the exhaustive reference schedule (GDF_FULL_FIXPOINT's
  // code path) must re-derive a conflict at fixpoint. Random decision
  // scripts over c17 faults provide the conflicts.
  const net::Netlist nl = net::expand_fanout_branches(circuits::make_c17());
  const AtpgModel model(nl);
  int analyzed = 0;
  for (NodeId site = 0; site < model.node_count(); site += 2) {
    const alg::FaultSpec spec{site, (site & 1u) == 0};
    Rng rng(42 + site);
    for (int trial = 0; trial < 30; ++trial) {
      ImplicationEngine engine(model, robust_algebra());
      engine.init(spec);
      if (engine.conflict()) {
        continue;
      }
      Analysis analysis;
      for (int step = 0; step < 10; ++step) {
        const NodeId n =
            static_cast<NodeId>(rng.next_in(0, model.node_count() - 1));
        const VSet allowed = static_cast<VSet>(rng.next_in(1, 255));
        engine.push_level();
        if (engine.assign(n, allowed)) {
          continue;
        }
        if (!engine.analyze(&analysis)) {
          break;
        }
        ++analyzed;
        // Replay the literals alone on the exhaustive schedule.
        ImplicationEngine replay(model, robust_algebra(), true);
        replay.init(spec);
        ASSERT_FALSE(replay.conflict());
        replay.push_level();
        for (const base::ClauseLit& lit : analysis.lits) {
          if (!replay.assign(lit.node, lit.allowed)) {
            break;
          }
        }
        EXPECT_TRUE(replay.conflict())
            << "nogood from site " << site << " trial " << trial
            << " does not re-derive its conflict";
        break;
      }
    }
  }
  // The scripts must actually exercise the analyzer.
  EXPECT_GT(analyzed, 20);
}

TEST(ConflictAnalysis, WatchedClauseFiresOnlyWhereFixpointConflicts) {
  // A learned clause is a shortcut, not new information: when the watch
  // scheme fires it, the same assignments on a clause-free engine must
  // conflict on their own at fixpoint.
  const net::Netlist nl = net::expand_fanout_branches(circuits::make_c17());
  const AtpgModel model(nl);
  const alg::FaultSpec spec{model.head_of(nl.find("N11")), true};
  int fired = 0;
  Rng rng(1995);
  for (int trial = 0; trial < 200; ++trial) {
    ImplicationEngine learner(model, robust_algebra());
    learner.init(spec);
    Analysis analysis;
    // Collect one nogood from a random conflict.
    std::vector<base::ClauseLit> clause;
    for (int step = 0; step < 10 && clause.empty(); ++step) {
      const NodeId n =
          static_cast<NodeId>(rng.next_in(0, model.node_count() - 1));
      learner.push_level();
      if (!learner.assign(n, static_cast<VSet>(rng.next_in(1, 255))) &&
          learner.analyze(&analysis)) {
        clause = analysis.lits;
      }
    }
    if (clause.empty()) {
      continue;
    }
    // Arm it on a fresh engine, then walk back into the nogood by
    // re-asserting its own literals one at a time: once the last literal
    // holds the watch scheme must fire — and at every step along the way
    // a clause-free engine given the same assignments must agree on
    // conflict-or-not, because the clause is a shortcut to a conflict the
    // rule fixpoint re-derives on its own.
    ImplicationEngine armed(model, robust_algebra());
    armed.init(spec);
    ImplicationEngine plain(model, robust_algebra());
    plain.init(spec);
    if (armed.add_clause(clause) == base::ClauseArena::kNone) {
      continue;
    }
    bool conflicted = false;
    for (const base::ClauseLit& lit : clause) {
      armed.push_level();
      plain.push_level();
      const bool ok_armed = armed.assign(lit.node, lit.allowed);
      const bool ok_plain = plain.assign(lit.node, lit.allowed);
      ASSERT_EQ(ok_armed, ok_plain)
          << "clause firing diverged from the fixpoint at trial " << trial;
      if (!ok_armed) {
        conflicted = true;
        if (armed.counters().clause_hits > 0) {
          ++fired;
        }
        break;
      }
    }
    // All literals held without a conflict would mean the nogood is not a
    // nogood at all.
    EXPECT_TRUE(conflicted) << "nogood satisfied without conflict, trial "
                            << trial;
  }
  // The exercise is vacuous unless some clause actually fired.
  EXPECT_GT(fired, 0);
}

TEST(ConflictAnalysis, MinimizedNogoodsReplayEquivalently) {
  // Replay-based minimization (minimize_nogood) must produce a clause
  // that is still a nogood: replaying the *surviving* literals on a fresh
  // full-fixpoint engine at the same root state must re-derive a
  // conflict, exactly like the unminimized original. Random decision
  // scripts over c17 faults provide nogoods of varying width.
  const net::Netlist nl = net::expand_fanout_branches(circuits::make_c17());
  const AtpgModel model(nl);
  int minimized = 0;
  int analyzed = 0;
  for (NodeId site = 0; site < model.node_count(); site += 2) {
    const alg::FaultSpec spec{site, (site & 1u) == 0};
    Rng rng(1337 + site);
    for (int trial = 0; trial < 30; ++trial) {
      ImplicationEngine engine(model, robust_algebra());
      engine.init(spec);
      if (engine.conflict()) {
        continue;
      }
      Analysis analysis;
      for (int step = 0; step < 10; ++step) {
        const NodeId n =
            static_cast<NodeId>(rng.next_in(0, model.node_count() - 1));
        const VSet allowed = static_cast<VSet>(rng.next_in(1, 255));
        engine.push_level();
        if (engine.assign(n, allowed)) {
          continue;
        }
        if (!engine.analyze(&analysis)) {
          break;
        }
        ++analyzed;
        // Minimize on a clause-free scratch engine at the root state —
        // the same protocol TdgenSearch uses.
        ImplicationEngine scratch(model, robust_algebra());
        scratch.init(spec);
        ASSERT_FALSE(scratch.conflict());
        std::vector<base::ClauseLit> lits = analysis.lits;
        const int removed = scratch.minimize_nogood(&lits);
        ASSERT_GE(removed, 0);
        ASSERT_EQ(lits.size() + static_cast<std::size_t>(removed),
                  analysis.lits.size());
        ASSERT_FALSE(lits.empty());
        if (removed > 0) {
          ++minimized;
        }
        // Minimization must leave the scratch engine at its root state:
        // a second pass over the unminimized clause sees the same engine.
        std::vector<base::ClauseLit> again = analysis.lits;
        EXPECT_EQ(scratch.minimize_nogood(&again), removed);
        EXPECT_EQ(again.size(), lits.size());
        // The survivors alone must re-derive the conflict under the
        // exhaustive reference schedule.
        ImplicationEngine replay(model, robust_algebra(), true);
        replay.init(spec);
        ASSERT_FALSE(replay.conflict());
        replay.push_level();
        for (const base::ClauseLit& lit : lits) {
          if (!replay.assign(lit.node, lit.allowed)) {
            break;
          }
        }
        EXPECT_TRUE(replay.conflict())
            << "minimized nogood from site " << site << " trial " << trial
            << " does not re-derive its conflict";
        break;
      }
    }
  }
  // The sweep is vacuous unless analysis ran and some literal was
  // actually dropped somewhere.
  EXPECT_GT(analyzed, 20);
  EXPECT_GT(minimized, 0);
}

}  // namespace
}  // namespace gdf::tdgen
