#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "circuits/catalog.hpp"
#include "circuits/embedded.hpp"
#include "fausim/fausim.hpp"
#include "netlist/bench_io.hpp"

namespace gdf::fausim {
namespace {

using sim::InputVec;
using sim::Lv;
using sim::StateVec;

TEST(FausimGood, FillsEveryX) {
  const net::Netlist nl = circuits::make_s27();
  Fausim fausim(nl);
  Rng rng(1);
  const std::vector<InputVec> frames = {
      InputVec(4, Lv::X),
      {Lv::One, Lv::X, Lv::Zero, Lv::X},
  };
  const auto trace = fausim.simulate_good(frames, rng);
  ASSERT_EQ(trace.filled.size(), 2u);
  for (const InputVec& pis : trace.filled) {
    for (const Lv v : pis) {
      EXPECT_TRUE(sim::is_binary(v));
    }
  }
  // Pre-assigned bits survive the fill.
  EXPECT_EQ(trace.filled[1][0], Lv::One);
  EXPECT_EQ(trace.filled[1][2], Lv::Zero);
  // states[k+1] is the next-state of frame k.
  ASSERT_EQ(trace.states.size(), 3u);
  EXPECT_EQ(trace.states[0], StateVec(3, Lv::X));
}

TEST(FausimGood, DeterministicInSeed) {
  const net::Netlist nl = circuits::make_s27();
  Fausim fausim(nl);
  const std::vector<InputVec> frames(3, InputVec(4, Lv::X));
  Rng a(7), b(7), c(8);
  const auto ta = fausim.simulate_good(frames, a);
  const auto tb = fausim.simulate_good(frames, b);
  const auto tc = fausim.simulate_good(frames, c);
  EXPECT_EQ(ta.filled, tb.filled);
  EXPECT_NE(ta.filled, tc.filled);
}

TEST(FausimObservability, S27SingleFrame) {
  // With G0=0, G3=1, G1=G2=0 and state (0,1,0): G17 follows G5, so a
  // difference captured at G5 is observable; one at G6 is masked by
  // G12 = 1.
  const net::Netlist nl = circuits::make_s27();
  Fausim fausim(nl);
  const StateVec after_fast = {Lv::Zero, Lv::One, Lv::Zero};
  const std::vector<InputVec> prop = {
      {Lv::Zero, Lv::Zero, Lv::Zero, Lv::One}};
  const auto observable = fausim.ppo_observability(after_fast, prop);
  ASSERT_EQ(observable.size(), 3u);
  EXPECT_TRUE(observable[0]);
  EXPECT_FALSE(observable[1]);
}

TEST(FausimObservability, UnknownGoodBitNeverObservable) {
  const net::Netlist nl = circuits::make_s27();
  Fausim fausim(nl);
  const StateVec after_fast = {Lv::X, Lv::One, Lv::Zero};
  const std::vector<InputVec> prop = {
      {Lv::Zero, Lv::Zero, Lv::Zero, Lv::One}};
  EXPECT_FALSE(fausim.ppo_observability(after_fast, prop)[0]);
}

TEST(FausimObservability, NoFramesNothingObservable) {
  const net::Netlist nl = circuits::make_s27();
  Fausim fausim(nl);
  const auto observable =
      fausim.ppo_observability({Lv::Zero, Lv::One, Lv::Zero}, {});
  EXPECT_EQ(observable, std::vector<bool>(3, false));
}

TEST(FausimObservability, MultiFramePath) {
  // Shift chain: difference at q0 needs two frames to reach the PO.
  const net::Netlist nl = net::parse_bench(R"(
INPUT(a)
OUTPUT(y)
q0 = DFF(d0)
q1 = DFF(d1)
d0 = BUF(a)
d1 = BUF(q0)
y = BUF(q1)
)",
                                           "shift2");
  Fausim fausim(nl);
  const StateVec after_fast = {Lv::One, Lv::Zero};
  const std::vector<InputVec> one = {{Lv::Zero}};
  EXPECT_FALSE(fausim.ppo_observability(after_fast, one)[0]);
  const std::vector<InputVec> two = {{Lv::Zero}, {Lv::Zero}};
  const auto observable = fausim.ppo_observability(after_fast, two);
  EXPECT_TRUE(observable[0]);
  EXPECT_TRUE(observable[1]);
}

TEST(FausimObservability, WorksOnLargerGeneratedCircuit) {
  // Smoke + width test: s838's 32 flip-flops exercise lane packing.
  const net::Netlist nl = circuits::load_circuit("s838");
  Fausim fausim(nl);
  Rng rng(42);
  StateVec after_fast(nl.dffs().size());
  for (Lv& v : after_fast) {
    v = rng.next_bool() ? Lv::One : Lv::Zero;
  }
  std::vector<InputVec> prop(4, InputVec(nl.inputs().size()));
  for (InputVec& pis : prop) {
    for (Lv& v : pis) {
      v = rng.next_bool() ? Lv::One : Lv::Zero;
    }
  }
  const auto observable = fausim.ppo_observability(after_fast, prop);
  EXPECT_EQ(observable.size(), nl.dffs().size());

  // Spot-check one observable claim against a scalar twin simulation.
  sim::SeqSimulator scalar(nl);
  for (std::size_t ff = 0; ff < observable.size(); ++ff) {
    if (!observable[ff]) {
      continue;
    }
    StateVec faulty = after_fast;
    faulty[ff] = faulty[ff] == Lv::One ? Lv::Zero : Lv::One;
    StateVec good = after_fast;
    std::vector<Lv> lg, lf;
    bool differs = false;
    for (const InputVec& pis : prop) {
      scalar.eval_frame(pis, good, lg);
      scalar.eval_frame(pis, faulty, lf);
      for (const net::GateId po : nl.outputs()) {
        differs = differs || (sim::is_binary(lg[po]) &&
                              sim::is_binary(lf[po]) && lg[po] != lf[po]);
      }
      good = scalar.next_state(lg);
      faulty = scalar.next_state(lf);
    }
    EXPECT_TRUE(differs) << "ff " << ff;
    break;
  }
}

}  // namespace
}  // namespace gdf::fausim
