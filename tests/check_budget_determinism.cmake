# --fault-budget determinism on the gdf_atpg binary: a budgeted sweep's
# bytes must be identical across --jobs 1/4 and --shard-faults off/4 (the
# budget counts per-fault implication-engine assignments, a pure function
# of the fault — unlike --per-fault-seconds, it must NOT turn sharding
# off). Registered by tests/CMakeLists.txt as `cli_budget_determinism`.
#
# Usage: cmake -DGDF_ATPG=<path> -P check_budget_determinism.cmake

set(sweep_args --circuit s298 --circuit s344 --csv --no-seconds
    --fault-budget 300)

set(reference "")
foreach(jobs 1 4)
  foreach(shard off 4)
    execute_process(
      COMMAND ${GDF_ATPG} ${sweep_args} --jobs ${jobs}
              --shard-faults ${shard}
      OUTPUT_VARIABLE out
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "--jobs ${jobs} --shard-faults ${shard} failed (rc=${rc})")
    endif()
    if(reference STREQUAL "")
      set(reference "${out}")
    elseif(NOT out STREQUAL reference)
      message(FATAL_ERROR
              "budgeted rows differ at --jobs ${jobs} --shard-faults "
              "${shard}:\n=== reference ===\n${reference}\n"
              "=== variant ===\n${out}")
    endif()
  endforeach()
endforeach()

# The cap must actually bite (else the invariance above proves nothing):
# an unbudgeted run classifies faults a 300-assignment budget aborts.
execute_process(
  COMMAND ${GDF_ATPG} --circuit s298 --circuit s344 --csv --no-seconds
  OUTPUT_VARIABLE unbudgeted_out
  RESULT_VARIABLE unbudgeted_rc)
if(NOT unbudgeted_rc EQUAL 0)
  message(FATAL_ERROR "unbudgeted run failed (rc=${unbudgeted_rc})")
endif()
if(unbudgeted_out STREQUAL reference)
  message(FATAL_ERROR "--fault-budget 300 changed nothing — the budget "
                      "never triggered, so the determinism check is vacuous")
endif()

string(LENGTH "${reference}" out_len)
message(STATUS "budgeted rows byte-identical across jobs x sharding "
               "(${out_len} bytes)")
