#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "algebra/frame_sim.hpp"
#include "base/rng.hpp"
#include "circuits/embedded.hpp"

namespace gdf::alg {
namespace {

TEST(PrimaryEncoding, FromFrameBits) {
  EXPECT_EQ(vset_primary_from_frames(0, 0), vset_of(V8::Zero));
  EXPECT_EQ(vset_primary_from_frames(0, 1), vset_of(V8::Rise));
  EXPECT_EQ(vset_primary_from_frames(1, 0), vset_of(V8::Fall));
  EXPECT_EQ(vset_primary_from_frames(1, 1), vset_of(V8::One));
  EXPECT_EQ(vset_primary_from_frames(-1, 1),
            static_cast<VSet>(vset_of(V8::One) | vset_of(V8::Rise)));
  EXPECT_EQ(vset_primary_from_frames(0, -1),
            static_cast<VSet>(vset_of(V8::Zero) | vset_of(V8::Rise)));
  EXPECT_EQ(vset_primary_from_frames(-1, -1), kPrimaryDomain);
}

class C17FrameSim : public ::testing::Test {
 protected:
  C17FrameSim()
      : nl_(circuits::make_c17()),
        model_(nl_),
        sim_(model_, robust_algebra()) {}

  VSet pi(int init, int fin) const {
    return vset_primary_from_frames(init, fin);
  }

  TwoFrameStimulus robust_stimulus() const {
    // N1=0, N2=1, N3=1 steady; N6 falls; N7=0. Slow-to-rise at N11 is
    // robustly observed at both POs (hand analysis in the test body).
    TwoFrameStimulus s;
    s.pi_sets = {pi(0, 0), pi(1, 1), pi(1, 1), pi(1, 0), pi(0, 0)};
    return s;
  }

  net::Netlist nl_;
  AtpgModel model_;
  TwoFrameSim sim_;
};

TEST_F(C17FrameSim, FaultFreePassHasNoCarriers) {
  std::vector<VSet> sets;
  sim_.run(robust_stimulus(), nullptr, sets);
  for (NodeId id = 0; id < model_.node_count(); ++id) {
    EXPECT_EQ(static_cast<VSet>(sets[id] & kCarrierSet), kEmptySet);
  }
  // N11 = NAND(N3=1, N6=F) must rise.
  EXPECT_EQ(sets[model_.head_of(nl_.find("N11"))], vset_of(V8::Rise));
}

TEST_F(C17FrameSim, InjectedFaultObservedAtBothOutputs) {
  const FaultSpec fault{model_.head_of(nl_.find("N11")), true};
  std::vector<VSet> sets;
  sim_.run(robust_stimulus(), &fault, sets);
  EXPECT_EQ(sets[fault.site], vset_of(V8::RiseC));
  // N16 = NAND(N2=1, Rc) = Fc; N22 = NAND(N10=1, Fc) = Rc.
  EXPECT_EQ(sets[model_.head_of(nl_.find("N16"))], vset_of(V8::FallC));
  EXPECT_EQ(sets[model_.head_of(nl_.find("N22"))], vset_of(V8::RiseC));
  EXPECT_EQ(sets[model_.head_of(nl_.find("N23"))], vset_of(V8::RiseC));

  std::vector<NodeId> where;
  EXPECT_TRUE(sim_.guaranteed_observation(robust_stimulus(), fault, &where));
  EXPECT_EQ(where.size(), 2u);
}

TEST_F(C17FrameSim, CarriersOnlyInsideFaultCone) {
  const FaultSpec fault{model_.head_of(nl_.find("N11")), true};
  std::vector<VSet> sets;
  sim_.run(robust_stimulus(), &fault, sets);
  const auto cone = model_.carrier_cone(fault.site);
  std::vector<bool> in_cone(model_.node_count(), false);
  for (const NodeId id : cone) {
    in_cone[id] = true;
  }
  for (NodeId id = 0; id < model_.node_count(); ++id) {
    if (!in_cone[id]) {
      EXPECT_EQ(static_cast<VSet>(sets[id] & kCarrierSet), kEmptySet);
    }
  }
}

TEST_F(C17FrameSim, UnknownInputWidensButKeepsGuarantee) {
  TwoFrameStimulus s = robust_stimulus();
  s.pi_sets[4] = kPrimaryDomain;  // N7 fully unknown
  const FaultSpec fault{model_.head_of(nl_.find("N11")), true};
  std::vector<VSet> sets;
  sim_.run(s, &fault, sets);
  // N23 may lose the carrier (N19 can glitch), but N22 stays guaranteed.
  EXPECT_EQ(sets[model_.head_of(nl_.find("N22"))], vset_of(V8::RiseC));
  EXPECT_NE(static_cast<VSet>(sets[model_.head_of(nl_.find("N23"))] &
                              ~kCarrierSet),
            kEmptySet);
  EXPECT_TRUE(sim_.guaranteed_observation(s, fault, nullptr));
}

TEST_F(C17FrameSim, NonRobustStimulusFailsRobustCheck) {
  // Make the off-path N2 fall: N16 = NAND(F, Rc) robustly dies.
  TwoFrameStimulus s = robust_stimulus();
  s.pi_sets[1] = pi(1, 0);  // N2 falls
  s.pi_sets[4] = pi(1, 1);  // N7 = 1 so N19 = NAND(Rc,1) = Fc path exists
  const FaultSpec fault{model_.head_of(nl_.find("N11")), true};
  std::vector<VSet> sets;
  sim_.run(s, &fault, sets);
  // N16 loses the carrier under the robust algebra.
  EXPECT_EQ(static_cast<VSet>(sets[model_.head_of(nl_.find("N16"))] &
                              kCarrierSet),
            kEmptySet);
}

TEST_F(C17FrameSim, RerunSourcesMatchesFreshRunUnderRandomFlips) {
  // The cone-scoped resettle must stay exactly equivalent to a fresh full
  // pass across an arbitrary sequence of source perturbations — the
  // guarantee the cached verification probes in TDgen rest on.
  const FaultSpec fault{model_.head_of(nl_.find("N11")), true};
  TwoFrameStimulus s = robust_stimulus();
  std::vector<VSet> incremental;
  sim_.run(s, &fault, incremental);
  Rng rng(42);
  for (int step = 0; step < 100; ++step) {
    std::vector<std::pair<NodeId, VSet>> diffs;
    const std::size_t n_changes = 1 + rng.next_below(3);
    for (std::size_t c = 0; c < n_changes; ++c) {
      const std::size_t i = rng.next_below(s.pi_sets.size());
      s.pi_sets[i] = static_cast<VSet>(
          rng.next_in(1, 255) & kPrimaryDomain);
      if (s.pi_sets[i] == kEmptySet) {
        s.pi_sets[i] = kPrimaryDomain;
      }
      diffs.emplace_back(model_.pis()[i], s.pi_sets[i]);
    }
    sim_.rerun_sources(diffs, &fault, incremental);
    std::vector<VSet> fresh;
    sim_.run(s, &fault, fresh);
    ASSERT_EQ(incremental, fresh) << "step " << step;
  }
}

TEST_F(C17FrameSim, ForcedSweepStopReportsConeValue) {
  // A truncated lane must report exactly the value a full forced replay
  // leaves at the stop node, and never touch POs.
  std::vector<VSet> baseline;
  sim_.run(robust_stimulus(), nullptr, baseline);
  const NodeId stem = model_.head_of(nl_.find("N11"));
  for (const NodeId stop :
       {model_.head_of(nl_.find("N16")), model_.head_of(nl_.find("N19")),
        model_.head_of(nl_.find("N22"))}) {
    for (const V8 pol : {V8::RiseC, V8::FallC}) {
      std::vector<VSet> reference;
      sim_.run_forced(robust_stimulus(), stem, vset_of(pol), reference);
      const TwoFrameSim::ForcedLane lane{stem, vset_of(pol), stop};
      VSet stop_value = kEmptySet;
      const std::uint64_t mask =
          sim_.forced_sweep(baseline, {&lane, 1}, {&stop_value, 1});
      EXPECT_EQ(stop_value, reference[stop]);
      EXPECT_EQ(mask, 0u);  // truncated lanes never report a PO verdict
    }
  }
}

TEST_F(C17FrameSim, ForcedSweepMaskMatchesRunForced) {
  std::vector<VSet> baseline;
  sim_.run(robust_stimulus(), nullptr, baseline);
  std::vector<TwoFrameSim::ForcedLane> lanes;
  for (const char* name : {"N11", "N10", "N16", "N19"}) {
    lanes.push_back({model_.head_of(nl_.find(name)), vset_of(V8::RiseC),
                     kNoNode});
    lanes.push_back({model_.head_of(nl_.find(name)), vset_of(V8::FallC),
                     kNoNode});
  }
  const std::uint64_t mask = sim_.forced_po_carrier_mask(baseline, lanes);
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    std::vector<VSet> forced;
    sim_.run_forced(robust_stimulus(), lanes[i].node, lanes[i].set, forced);
    bool po_carrier = false;
    for (const NodeId obs : model_.observation_points()) {
      if (!model_.node(obs).is_po) {
        continue;
      }
      const VSet s = forced[obs];
      if (s != kEmptySet && (s & ~kCarrierSet) == 0) {
        po_carrier = true;
      }
    }
    EXPECT_EQ((mask >> i & 1u) != 0, po_carrier) << "lane " << i;
  }
}

TEST_F(C17FrameSim, WideForcedSweepSpansPackedWords) {
  // A 64-lane sweep packs 8 bytes per node; twelve lanes cross three
  // packed words, and every lane's verdict must still match its own full
  // forced replay — the invariant that lets tdsim batch stems at any
  // width without changing verdicts.
  TwoFrameSim wide(model_, robust_algebra(), 64);
  EXPECT_EQ(wide.packed_lane_capacity(), 64u);
  std::vector<VSet> baseline;
  wide.run(robust_stimulus(), nullptr, baseline);
  std::vector<TwoFrameSim::ForcedLane> lanes;
  for (const char* name : {"N10", "N11", "N16", "N19", "N22", "N23"}) {
    lanes.push_back({model_.head_of(nl_.find(name)), vset_of(V8::RiseC),
                     kNoNode});
    lanes.push_back({model_.head_of(nl_.find(name)), vset_of(V8::FallC),
                     kNoNode});
  }
  ASSERT_GT(lanes.size(), 8u);  // must spill past one packed word
  const std::uint64_t wide_mask = wide.forced_po_carrier_mask(baseline, lanes);
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    std::vector<VSet> forced;
    wide.run_forced(robust_stimulus(), lanes[i].node, lanes[i].set, forced);
    bool po_carrier = false;
    for (const NodeId obs : model_.observation_points()) {
      if (!model_.node(obs).is_po) {
        continue;
      }
      const VSet s = forced[obs];
      if (s != kEmptySet && (s & ~kCarrierSet) == 0) {
        po_carrier = true;
      }
    }
    EXPECT_EQ((wide_mask >> i & 1u) != 0, po_carrier) << "lane " << i;
  }
  // Chunked through the default 8-lane engine the verdicts are identical.
  std::uint64_t chunked = 0;
  for (std::size_t begin = 0; begin < lanes.size(); begin += 8) {
    const std::size_t count = std::min<std::size_t>(8, lanes.size() - begin);
    chunked |= sim_.forced_po_carrier_mask(
                   baseline, {lanes.data() + begin, count})
               << begin;
  }
  EXPECT_EQ(wide_mask, chunked);
}

TEST_F(C17FrameSim, StimulusSizeMismatchIsFatal) {
  TwoFrameStimulus s;
  s.pi_sets = {kPrimaryDomain};  // wrong size
  std::vector<VSet> sets;
  EXPECT_DEATH(sim_.run(s, nullptr, sets), "PI stimulus size mismatch");
}

}  // namespace
}  // namespace gdf::alg
