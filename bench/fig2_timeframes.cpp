// Regenerates the time frame model of paper Figure 2 on real generated
// tests: initialization frames under the slow clock, the test frame under
// the fast clock, and propagation frames under the slow clock again
// (experiment F2 of DESIGN.md).
#include <cstdio>

#include "circuits/embedded.hpp"
#include "core/delay_atpg.hpp"

namespace {

void print_sequence(const gdf::net::Netlist& nl,
                    const gdf::core::TestSequence& t) {
  std::printf("fault %s — %zu patterns\n",
              gdf::tdgen::fault_name(nl, t.target).c_str(),
              t.pattern_count());
  const auto frames = t.all_frames();
  const auto clocks = t.clocks();
  for (std::size_t k = 0; k < frames.size(); ++k) {
    const char* role =
        k < t.init_frames.size()
            ? "init "
            : (k == t.fast_index() - 1
                   ? "V1   "
                   : (k == t.fast_index() ? "V2   " : "prop "));
    std::printf("  frame %2zu  %s clock=%s  PIs=", k, role,
                clocks[k] == gdf::core::ClockKind::Fast ? "FAST" : "slow");
    for (const gdf::sim::Lv v : frames[k]) {
      std::printf("%s", std::string(gdf::sim::lv_name(v)).c_str());
    }
    std::printf("\n");
  }
  std::printf("  observed at %s\n\n",
              t.observed_at_po ? "a primary output (fast frame)"
                               : "a PPO, carried to a PO by the "
                                 "propagation frames");
}

}  // namespace

int main() {
  std::printf("Figure 2 — the time frame model on generated s27 tests\n"
              "(slow ... slow | slow V1 | FAST V2 | slow ...)\n\n");
  const gdf::net::Netlist nl = gdf::circuits::make_s27();
  const gdf::core::FogbusterResult result = gdf::core::run_delay_atpg(nl);

  // Show one PO-observed test and one that needs propagation frames.
  bool shown_po = false, shown_ppo = false;
  const gdf::core::Fogbuster flow(nl);
  const gdf::net::Netlist& expanded = flow.working_netlist();
  for (const gdf::core::TestSequence& t : result.tests) {
    if (t.observed_at_po && !shown_po) {
      print_sequence(expanded, t);
      shown_po = true;
    }
    if (!t.observed_at_po && !t.prop_frames.empty() && !shown_ppo) {
      print_sequence(expanded, t);
      shown_ppo = true;
    }
    if (shown_po && shown_ppo) {
      break;
    }
  }
  std::printf("every fault occurs only in the fast frame; all other frames "
              "run the\ngood machine (the paper's slow-clock argument).\n");
  return 0;
}
