// Regenerates paper Table 3: robust gate delay fault test generation for
// the ISCAS'89 benchmark set (experiment T3 of DESIGN.md). Columns match
// the paper: tested faults, untestable faults, aborted faults, generated
// patterns (including initialization and propagation), and wall-clock
// seconds. Abort limits are the paper's (100 local / 100 sequential
// backtracks).
//
// Usage: table3_benchmarks [circuit ...]   (default: all twelve rows)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "circuits/catalog.hpp"
#include "circuits/profiles.hpp"
#include "core/delay_atpg.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> only(argv + 1, argv + argc);
  std::printf("Table 3 — benchmark results (robust gate delay faults, "
              "non-scan)\n%s\n",
              gdf::core::table3_header().c_str());
  gdf::core::StageStats total;
  for (const auto& profile : gdf::circuits::table3_profiles()) {
    if (!only.empty() &&
        std::find(only.begin(), only.end(), profile.name) == only.end()) {
      continue;
    }
    const gdf::net::Netlist circuit =
        gdf::circuits::load_circuit(profile.name);
    const gdf::core::FogbusterResult result =
        gdf::core::run_delay_atpg(circuit);
    std::printf("%s\n",
                gdf::core::format_table3_row(
                    gdf::core::make_table3_row(profile.name, result))
                    .c_str());
    std::fflush(stdout);
    total.targeted += result.stages.targeted;
    total.dropped += result.stages.dropped;
    total.local_solutions += result.stages.local_solutions;
    total.sync_attempts += result.stages.sync_attempts;
  }
  std::printf("\n(faults targeted %ld, additionally covered by fault "
              "simulation %ld)\n",
              total.targeted, total.dropped);
  std::printf("note: circuits other than s27 are synthetic ISCAS-like "
              "substitutes (see DESIGN.md); compare shapes, not absolute "
              "values.\n");
  return 0;
}
