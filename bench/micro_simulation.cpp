// Micro-benchmarks (M1): the sequential simulators behind SEMILET and
// FAUSIM — scalar five-valued frames vs the 64-lane dual-rail evaluator —
// plus the TDgen search-core primitives (ISSUE 5): the incremental
// trail-based implication engine and the cone-scoped verification probe.
#include <benchmark/benchmark.h>

#include "algebra/frame_sim.hpp"
#include "algebra/model.hpp"
#include "base/rng.hpp"
#include "circuits/catalog.hpp"
#include "netlist/fanout.hpp"
#include "sim/parallel3.hpp"
#include "sim/seq_sim.hpp"
#include "tdgen/implication.hpp"

namespace {

using namespace gdf;
using sim::Lv;

void BM_ScalarFrame(benchmark::State& state) {
  const net::Netlist nl = circuits::load_circuit("s838");
  const sim::SeqSimulator simulator(nl);
  Rng rng(7);
  sim::InputVec pis(nl.inputs().size());
  for (Lv& v : pis) {
    v = rng.next_bool() ? Lv::One : Lv::Zero;
  }
  sim::StateVec st(nl.dffs().size(), Lv::Zero);
  std::vector<Lv> lines;
  for (auto _ : state) {
    simulator.eval_frame(pis, st, lines);
    st = simulator.next_state(lines);
    benchmark::DoNotOptimize(st.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(nl.size()));
}
BENCHMARK(BM_ScalarFrame);

template <unsigned K>
void run_parallel_frame(benchmark::State& state) {
  const net::Netlist nl = circuits::load_circuit("s838");
  const sim::ParallelSimN<K> simulator(nl);
  Rng rng(7);
  const auto random_binary = [&rng](sim::WordN<K>& w) {
    for (unsigned p = 0; p < K; ++p) {
      w.ones[p] = rng.next();
      w.zeros[p] = ~w.ones[p];
    }
  };
  std::vector<sim::WordN<K>> pis(nl.inputs().size());
  for (auto& w : pis) {
    random_binary(w);
  }
  std::vector<sim::WordN<K>> st(nl.dffs().size());
  for (auto& w : st) {
    random_binary(w);
  }
  std::vector<sim::WordN<K>> lines;
  for (auto _ : state) {
    simulator.eval_frame(pis, st, lines);
    simulator.next_state(lines, st);
    benchmark::DoNotOptimize(st.data());
  }
  // 64*K machines per pass; gate-evals/s is items_per_second. The AVX2
  // flag lets run_benchmarks.sh gate its lane-ladder speedup assertion on
  // hosts actually built with wide vectors.
  state.SetItemsProcessed(state.iterations() * static_cast<long>(nl.size()) *
                          sim::WordN<K>::kLanes);
#ifdef __AVX2__
  state.counters["avx2_build"] = 1;
#else
  state.counters["avx2_build"] = 0;
#endif
}

void BM_ParallelFrame64Lanes(benchmark::State& state) {
  run_parallel_frame<1>(state);
}
BENCHMARK(BM_ParallelFrame64Lanes);

// The WordN<K> lane ladder: identical kernel, K planes per rail. On SIMD
// builds the per-plane loops vectorize, so gate-evals/s should scale well
// past the one-word baseline.
void BM_ParallelFrameLanes256(benchmark::State& state) {
  run_parallel_frame<4>(state);
}
BENCHMARK(BM_ParallelFrameLanes256);

void BM_ParallelFrameLanes512(benchmark::State& state) {
  run_parallel_frame<8>(state);
}
BENCHMARK(BM_ParallelFrameLanes512);

void BM_ImplicationFixpoint(benchmark::State& state) {
  // One decision/undo cycle of the incremental engine: push a level,
  // assign a primary and propagate to fixpoint, then unwind the trail.
  const net::Netlist nl =
      net::expand_fanout_branches(circuits::load_circuit("s838"));
  const alg::AtpgModel model(nl);
  tdgen::ImplicationEngine engine(model, alg::robust_algebra());
  // A mid-circuit fault site, chosen structurally (generated circuits use
  // synthetic names).
  const alg::FaultSpec fault{
      model.head_of(static_cast<net::GateId>(nl.size() / 2)), true};
  engine.init(fault);
  long narrowings = 0;
  for (auto _ : state) {
    engine.push_level();
    engine.assign(fault.site, alg::vset_of(alg::V8::RiseC));
    engine.assign(model.pis()[1], alg::vset_of(alg::V8::Zero));
    engine.assign(model.pis()[3], alg::vset_of(alg::V8::Rise));
    narrowings = engine.counters().trail_pushes;
    engine.pop_level();
    benchmark::DoNotOptimize(narrowings);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["narrowings"] = static_cast<double>(narrowings);
}
BENCHMARK(BM_ImplicationFixpoint);

void BM_ConeProbe(benchmark::State& state) {
  // One cone-scoped verification probe: a single stimulus bit changes and
  // only its fanout cone is resettled (the TDgen don't-care lifting
  // pattern), versus a full two-frame pass per probe before ISSUE 5.
  const net::Netlist nl =
      net::expand_fanout_branches(circuits::load_circuit("s838"));
  const alg::AtpgModel model(nl);
  const alg::TwoFrameSim sim(model, alg::robust_algebra());
  const alg::FaultSpec fault{
      model.head_of(static_cast<net::GateId>(nl.size() / 2)), true};
  alg::TwoFrameStimulus stimulus;
  stimulus.pi_sets.assign(model.pis().size(), alg::kPrimaryDomain);
  stimulus.ppi_sets.assign(model.ppis().size(), alg::kPrimaryDomain);
  std::vector<alg::VSet> sets;
  sim.run(stimulus, &fault, sets);
  bool flip = false;
  std::vector<std::pair<alg::NodeId, alg::VSet>> diffs(1);
  for (auto _ : state) {
    flip = !flip;
    diffs[0] = {model.pis()[2],
                flip ? alg::vset_of(alg::V8::Zero) : alg::kPrimaryDomain};
    sim.rerun_sources(diffs, &fault, sets);
    benchmark::DoNotOptimize(sets.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConeProbe);

}  // namespace

BENCHMARK_MAIN();
