// Micro-benchmarks (M1): the sequential simulators behind SEMILET and
// FAUSIM — scalar five-valued frames vs the 64-lane dual-rail evaluator.
#include <benchmark/benchmark.h>

#include "base/rng.hpp"
#include "circuits/catalog.hpp"
#include "sim/parallel3.hpp"
#include "sim/seq_sim.hpp"

namespace {

using namespace gdf;
using sim::Lv;

void BM_ScalarFrame(benchmark::State& state) {
  const net::Netlist nl = circuits::load_circuit("s838");
  const sim::SeqSimulator simulator(nl);
  Rng rng(7);
  sim::InputVec pis(nl.inputs().size());
  for (Lv& v : pis) {
    v = rng.next_bool() ? Lv::One : Lv::Zero;
  }
  sim::StateVec st(nl.dffs().size(), Lv::Zero);
  std::vector<Lv> lines;
  for (auto _ : state) {
    simulator.eval_frame(pis, st, lines);
    st = simulator.next_state(lines);
    benchmark::DoNotOptimize(st.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(nl.size()));
}
BENCHMARK(BM_ScalarFrame);

void BM_ParallelFrame64Lanes(benchmark::State& state) {
  const net::Netlist nl = circuits::load_circuit("s838");
  const sim::ParallelSim3 simulator(nl);
  Rng rng(7);
  std::vector<sim::Word3> pis(nl.inputs().size());
  for (auto& w : pis) {
    w.ones = rng.next();
    w.zeros = ~w.ones;
  }
  std::vector<sim::Word3> st(nl.dffs().size());
  for (auto& w : st) {
    w.ones = rng.next();
    w.zeros = ~w.ones;
  }
  std::vector<sim::Word3> lines;
  for (auto _ : state) {
    simulator.eval_frame(pis, st, lines);
    st = simulator.next_state(lines);
    benchmark::DoNotOptimize(st.data());
  }
  // 64 machines per pass.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(nl.size()) * 64);
}
BENCHMARK(BM_ParallelFrame64Lanes);

}  // namespace

BENCHMARK_MAIN();
