// Ablation A3 — value of the three-phase fault simulation (paper §5/§6:
// "faults that were additionally tested by the generated patterns were not
// explicitly targeted by the test pattern generator").
#include <cstdio>

#include "circuits/catalog.hpp"
#include "core/delay_atpg.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> circuits =
      argc > 1 ? std::vector<std::string>(argv + 1, argv + argc)
               : std::vector<std::string>{"s27", "s298", "s386"};
  std::printf("Ablation A3 — fault dropping by FAUSIM + TDsim\n");
  std::printf("%-8s %9s | %9s %8s %8s | %9s %8s\n", "circuit", "faults",
              "targeted", "dropped", "time[s]", "targeted", "time[s]");
  std::printf("%-8s %9s | %28s | %18s\n", "", "", "with dropping",
              "without dropping");
  for (const std::string& name : circuits) {
    const gdf::net::Netlist circuit = gdf::circuits::load_circuit(name);

    const gdf::core::FogbusterResult with =
        gdf::core::run_delay_atpg(circuit);

    gdf::core::AtpgOptions off;
    off.fault_dropping = false;
    const gdf::core::FogbusterResult without =
        gdf::core::run_delay_atpg(circuit, off);

    std::printf("%-8s %9zu | %9ld %8ld %8.1f | %9ld %8.1f\n", name.c_str(),
                with.faults.size(), with.stages.targeted,
                with.stages.dropped, with.seconds, without.stages.targeted,
                without.seconds);
    std::fflush(stdout);
  }
  return 0;
}
