// Ablation A3 — value of the three-phase fault simulation (paper §5/§6:
// "faults that were additionally tested by the generated patterns were not
// explicitly targeted by the test pattern generator").
//
// One declarative sweep: circuits × dropping {on, off}. Reproducible
// without this binary:
//
//   gdf_atpg --csv -c s27 -c s298 -c s386 --dropping on,off --stages
//
// (the dropped/targeted split lives in the Figure-4 stage counters; this
// harness prints the two of interest next to each CSV row).
#include <cstdio>

#include "run/sweep.hpp"

int main(int argc, char** argv) {
  gdf::run::SweepSpec spec;
  spec.circuits =
      gdf::run::catalog_sources(argc, argv, {"s27", "s298", "s386"});
  spec.fault_dropping = {true, false};

  std::printf("Ablation A3 — fault dropping by FAUSIM + TDsim\n");
  std::printf("(gdf_atpg --csv --dropping on,off ...)\n");
  std::printf("%s,targeted,dropped\n",
              gdf::run::sweep_csv_header(spec).c_str());
  gdf::run::run_sweep(spec, [&](const gdf::run::SweepRow& row) {
    std::printf("%s,%ld,%ld\n",
                gdf::run::format_sweep_csv_row(spec, row).c_str(),
                row.stages.targeted, row.stages.dropped);
    std::fflush(stdout);
  });
  std::printf("\nwith dropping on, most faults are covered as a side "
              "effect of other faults'\nsequences; with it off every "
              "fault is targeted explicitly.\n");
  return 0;
}
