#!/usr/bin/env bash
# Perf-trajectory tracker: runs the full-catalog ATPG sweep through the
# gdf_atpg CLI (serial and parallel) plus the simulation micro-benchmarks
# and emits BENCH_simulation.json with per-circuit wall times. Run from
# the repo root after building:
#
#   bench/run_benchmarks.sh [BUILD_DIR] [OUTPUT_JSON] [JOBS]
#
# JOBS defaults to the machine's core count. The sweep runs twice — at
# --jobs 1 and at --jobs N — and the script asserts the two produce
# byte-identical rows (sans the wall-time column) before recording the
# speedup; perf rows across PRs are only comparable at the same jobs
# value, which is why the JSON records it.
#
# Wired into CI as a non-gating job so every PR records where the hot path
# stands; compare the JSON against the previous run to see the trend.
set -euo pipefail

BUILD_DIR=${1:-build}
OUTPUT=${2:-BENCH_simulation.json}
JOBS=${3:-$(nproc 2>/dev/null || echo 1)}

GDF_ATPG="$BUILD_DIR/src/gdf_atpg"
MICRO_SIM="$BUILD_DIR/bench/micro_simulation"

if [[ ! -x "$GDF_ATPG" ]]; then
  echo "run_benchmarks: $GDF_ATPG not built (cmake --build $BUILD_DIR)" >&2
  exit 1
fi

echo "run_benchmarks: catalog sweep at --jobs 1 ..." >&2
T0=$(date +%s.%N)
CSV_J1=$("$GDF_ATPG" --all --csv --jobs 1)
T1=$(date +%s.%N)
echo "run_benchmarks: catalog sweep at --jobs $JOBS ..." >&2
CSV_JN=$("$GDF_ATPG" --all --csv --jobs "$JOBS")
T2=$(date +%s.%N)
WALL_J1=$(echo "$T1 $T0" | awk '{printf "%.3f", $1 - $2}')
WALL_JN=$(echo "$T2 $T1" | awk '{printf "%.3f", $1 - $2}')

# Determinism gate: identical rows up to the nondeterministic seconds
# column, whatever the worker count.
if [[ "$(echo "$CSV_J1" | cut -d, -f1-5)" != \
      "$(echo "$CSV_JN" | cut -d, -f1-5)" ]]; then
  echo "run_benchmarks: --jobs 1 and --jobs $JOBS rows differ!" >&2
  exit 1
fi

MICRO_JSON="null"
if [[ -x "$MICRO_SIM" ]]; then
  echo "run_benchmarks: running micro_simulation ..." >&2
  MICRO_JSON=$("$MICRO_SIM" --benchmark_format=json 2>/dev/null |
    python3 -c 'import json,sys; d=json.load(sys.stdin); print(json.dumps(d.get("benchmarks", [])))')
else
  echo "run_benchmarks: micro_simulation not built (Google Benchmark" \
       "missing) — skipping" >&2
fi

CSV_J1="$CSV_J1" CSV_JN="$CSV_JN" JOBS="$JOBS" \
  WALL_J1="$WALL_J1" WALL_JN="$WALL_JN" \
  python3 - "$OUTPUT" "$MICRO_JSON" <<'EOF'
import json
import os
import sys

output_path = sys.argv[1]
micro = json.loads(sys.argv[2])
jobs = int(os.environ["JOBS"])


def parse(csv_text):
    lines = [l for l in csv_text.splitlines() if l.strip()]
    header = lines[0].split(",")
    circuits = []
    total = 0.0
    for line in lines[1:]:
        row = dict(zip(header, line.split(",")))
        seconds = float(row["seconds"])
        total += seconds
        circuits.append({
            "circuit": row["circuit"],
            "tested": int(row["tested"]),
            "untestable": int(row["untestable"]),
            "aborted": int(row["aborted"]),
            "patterns": int(row["patterns"]),
            "seconds": seconds,
        })
    return circuits, total


# Per-circuit seconds come from the serial run: under --jobs N the
# workers contend for cores and each circuit's own time inflates, which
# would read as a phantom regression when diffing across PRs.
circuits, serial_total = parse(os.environ["CSV_J1"])
wall_j1 = float(os.environ["WALL_J1"])
wall_jn = float(os.environ["WALL_JN"])

report = {
    "benchmark": "gdf_atpg --all --csv",
    "jobs": jobs,
    # Elapsed process wall time of the whole sweep — what --jobs shrinks.
    "wall_seconds_jobs1": round(wall_j1, 3),
    "wall_seconds_jobsN": round(wall_jn, 3),
    "parallel_speedup": round(wall_j1 / wall_jn, 2) if wall_jn > 0 else None,
    # Sum of per-circuit times at --jobs 1: the work metric comparable
    # with pre-parallelism PRs (their total_seconds).
    "total_seconds": round(serial_total, 3),
    "circuits": circuits,
    "micro_simulation": micro,
}
with open(output_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"run_benchmarks: wrote {output_path} "
      f"(serial {wall_j1:.1f}s, jobs={jobs} {wall_jn:.1f}s)",
      file=sys.stderr)
EOF
