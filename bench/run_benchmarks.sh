#!/usr/bin/env bash
# Perf-trajectory tracker: runs the full-catalog ATPG sweep plus the
# simulation micro-benchmarks and emits BENCH_simulation.json with
# per-circuit wall times. Run from the repo root after building:
#
#   bench/run_benchmarks.sh [BUILD_DIR] [OUTPUT_JSON]
#
# Wired into CI as a non-gating job so every PR records where the hot path
# stands; compare the JSON against the previous run to see the trend.
set -euo pipefail

BUILD_DIR=${1:-build}
OUTPUT=${2:-BENCH_simulation.json}

GDF_ATPG="$BUILD_DIR/src/gdf_atpg"
MICRO_SIM="$BUILD_DIR/bench/micro_simulation"

if [[ ! -x "$GDF_ATPG" ]]; then
  echo "run_benchmarks: $GDF_ATPG not built (cmake --build $BUILD_DIR)" >&2
  exit 1
fi

echo "run_benchmarks: sweeping the catalog with $GDF_ATPG ..." >&2
CSV=$("$GDF_ATPG" --all --csv)

MICRO_JSON="null"
if [[ -x "$MICRO_SIM" ]]; then
  echo "run_benchmarks: running micro_simulation ..." >&2
  MICRO_JSON=$("$MICRO_SIM" --benchmark_format=json 2>/dev/null |
    python3 -c 'import json,sys; d=json.load(sys.stdin); print(json.dumps(d.get("benchmarks", [])))')
else
  echo "run_benchmarks: micro_simulation not built (Google Benchmark" \
       "missing) — skipping" >&2
fi

CSV="$CSV" python3 - "$OUTPUT" "$MICRO_JSON" <<'EOF'
import json
import os
import sys

output_path = sys.argv[1]
micro = json.loads(sys.argv[2])

lines = [l for l in os.environ["CSV"].splitlines() if l.strip()]
header = lines[0].split(",")
circuits = []
total = 0.0
for line in lines[1:]:
    row = dict(zip(header, line.split(",")))
    seconds = float(row["seconds"])
    total += seconds
    circuits.append({
        "circuit": row["circuit"],
        "tested": int(row["tested"]),
        "untestable": int(row["untestable"]),
        "aborted": int(row["aborted"]),
        "patterns": int(row["patterns"]),
        "seconds": seconds,
    })

report = {
    "benchmark": "gdf_atpg --all --csv",
    "total_seconds": round(total, 3),
    "circuits": circuits,
    "micro_simulation": micro,
}
with open(output_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"run_benchmarks: wrote {output_path} "
      f"(catalog total {total:.1f}s)", file=sys.stderr)
EOF
