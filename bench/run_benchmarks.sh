#!/usr/bin/env bash
# Perf-trajectory tracker: runs the full-catalog ATPG sweep through the
# gdf_atpg CLI (serial and parallel), the s1196+s1238 intra-circuit
# sharding benchmark, and the simulation micro-benchmarks, and emits
# BENCH_simulation.json with per-circuit wall times. Run from the repo
# root after building:
#
#   bench/run_benchmarks.sh [BUILD_DIR] [OUTPUT_JSON] [JOBS]
#
# JOBS defaults to the machine's core count. The sweep runs twice — at
# --jobs 1 and at --jobs N — and the script asserts the two produce
# byte-identical rows (sans the wall-time column) before recording the
# speedup. Perf rows across PRs are only comparable at the same jobs
# value AND on comparable hardware, which is why the JSON records both
# the jobs value and hardware_concurrency: a parallel_speedup of ~1 on a
# single-core runner is expected, not a regression, so the speedup floor
# below is only asserted when the hardware can actually parallelize.
#
# Wired into CI as a non-gating job so every PR records where the hot path
# stands; compare the JSON against the previous run to see the trend.
set -euo pipefail

BUILD_DIR=${1:-build}
OUTPUT=${2:-BENCH_simulation.json}
HW=$(nproc 2>/dev/null || echo 1)
JOBS=${3:-$HW}

GDF_ATPG="$BUILD_DIR/src/gdf_atpg"
MICRO_SIM="$BUILD_DIR/bench/micro_simulation"

if [[ ! -x "$GDF_ATPG" ]]; then
  echo "run_benchmarks: $GDF_ATPG not built (cmake --build $BUILD_DIR)" >&2
  exit 1
fi

echo "run_benchmarks: catalog sweep at --jobs 1 ..." >&2
T0=$(date +%s.%N)
CSV_J1=$("$GDF_ATPG" --all --csv --jobs 1)
T1=$(date +%s.%N)
echo "run_benchmarks: catalog sweep at --jobs $JOBS ..." >&2
CSV_JN=$("$GDF_ATPG" --all --csv --jobs "$JOBS")
T2=$(date +%s.%N)
WALL_J1=$(echo "$T1 $T0" | awk '{printf "%.3f", $1 - $2}')
WALL_JN=$(echo "$T2 $T1" | awk '{printf "%.3f", $1 - $2}')

# Determinism gate: identical rows up to the nondeterministic seconds
# column, whatever the worker count.
if [[ "$(echo "$CSV_J1" | cut -d, -f1-5)" != \
      "$(echo "$CSV_JN" | cut -d, -f1-5)" ]]; then
  echo "run_benchmarks: --jobs 1 and --jobs $JOBS rows differ!" >&2
  exit 1
fi

# Intra-circuit fault sharding on the two catalog tails (ISSUE 4): the
# same two big circuits, sequential versus epoch-sharded generation. The
# rows must match byte-for-byte; the wall-time ratio is the shard
# speedup. On a single core JOBS is 1, a forced width of 1 is gated down
# to the plain sequential loop (no epoch machinery), and the ratio
# records ~1 by construction.
BIG="--circuit s1196 --circuit s1238"
echo "run_benchmarks: s1196+s1238 with --shard-faults off ..." >&2
T3=$(date +%s.%N)
# --stages rides along so the search-core counters (ISSUE 5) land in the
# JSON; stage lines are indented and filtered back out of the CSV stream.
CSV_BIG_OFF_RAW=$("$GDF_ATPG" $BIG --csv --jobs "$JOBS" --shard-faults off \
  --stages)
T4=$(date +%s.%N)
CSV_BIG_OFF=$(echo "$CSV_BIG_OFF_RAW" | grep -v '^ ')
STAGES_BIG=$(echo "$CSV_BIG_OFF_RAW" | grep '^ ' || true)
echo "run_benchmarks: s1196+s1238 with --shard-faults $JOBS ..." >&2
# --stages on this leg too, so both sides of the shard-speedup ratio run
# under identical flags.
CSV_BIG_SHARD_RAW=$("$GDF_ATPG" $BIG --csv --jobs "$JOBS" \
  --shard-faults "$JOBS" --stages)
T5=$(date +%s.%N)
CSV_BIG_SHARD=$(echo "$CSV_BIG_SHARD_RAW" | grep -v '^ ')
WALL_BIG_OFF=$(echo "$T4 $T3" | awk '{printf "%.3f", $1 - $2}')
WALL_BIG_SHARD=$(echo "$T5 $T4" | awk '{printf "%.3f", $1 - $2}')

if [[ "$(echo "$CSV_BIG_OFF" | cut -d, -f1-5)" != \
      "$(echo "$CSV_BIG_SHARD" | cut -d, -f1-5)" ]]; then
  echo "run_benchmarks: --shard-faults off and $JOBS rows differ!" >&2
  exit 1
fi

# Learning ablation on the same two tails (the clause-quality PR): the
# three --learn modes at identical flags otherwise, recording wall time
# and the aborted totals. 'off' is the pre-learning baseline, 'on' the
# deterministic per-fault learner (tiered clauses + activity ordering +
# luby restarts), 'shared' adds cross-fault clause exchange.
for mode in off on shared; do
  echo "run_benchmarks: s1196+s1238 with --learn $mode ..." >&2
  TA=$(date +%s.%N)
  # --stages rides along (filtered back out of the CSV) so the shared
  # leg's clause-store footprint lands in the JSON.
  raw=$("$GDF_ATPG" $BIG --csv --jobs "$JOBS" --learn "$mode" --stages)
  TB=$(date +%s.%N)
  declare "LEARN_CSV_$mode=$(echo "$raw" | grep -v '^ ')"
  declare "LEARN_STAGES_$mode=$(echo "$raw" | grep '^ ' || true)"
  declare "LEARN_WALL_$mode=$(echo "$TB $TA" | awk '{printf "%.3f", $1 - $2}')"
done

# Deterministic budget leg (the robustness PR): the same two tails under
# --fault-budget, recording how many faults the assignment cap aborts and
# what the capped sweep costs. Unlike --per-fault-seconds this keeps
# sharding on and produces identical bytes at any jobs value, so the
# abort count is comparable across PRs on any hardware.
FAULT_BUDGET=5000
echo "run_benchmarks: s1196+s1238 with --fault-budget $FAULT_BUDGET ..." >&2
T6=$(date +%s.%N)
CSV_BUDGET_RAW=$("$GDF_ATPG" $BIG --csv --jobs "$JOBS" \
  --fault-budget "$FAULT_BUDGET" --stages)
T7=$(date +%s.%N)
CSV_BUDGET=$(echo "$CSV_BUDGET_RAW" | grep -v '^ ')
STAGES_BUDGET=$(echo "$CSV_BUDGET_RAW" | grep '^ ' || true)
WALL_BUDGET=$(echo "$T7 $T6" | awk '{printf "%.3f", $1 - $2}')

# ADI ordering budget trade-off (satellite of the backend PR): the
# sampling-based fault order spends adi_sequences random sequences per
# estimate. Sweep the budget on two mid-size circuits and record how
# coverage and runtime move with the sample count — the first data point
# for picking a default.
ADI_CIRCUITS="--circuit s298 --circuit s386"
for budget in 2 8 16; do
  echo "run_benchmarks: --fault-order adi --adi-sequences $budget ..." >&2
  TA=$(date +%s.%N)
  csv=$("$GDF_ATPG" $ADI_CIRCUITS --csv --fault-order adi \
    --adi-sequences "$budget")
  TB=$(date +%s.%N)
  declare "ADI_CSV_$budget=$csv"
  declare "ADI_WALL_$budget=$(echo "$TB $TA" | awk '{printf "%.3f", $1 - $2}')"
done

MICRO_JSON="null"
if [[ -x "$MICRO_SIM" ]]; then
  echo "run_benchmarks: running micro_simulation ..." >&2
  MICRO_JSON=$("$MICRO_SIM" --benchmark_format=json 2>/dev/null |
    python3 -c 'import json,sys; d=json.load(sys.stdin); print(json.dumps(d.get("benchmarks", [])))')
else
  echo "run_benchmarks: micro_simulation not built (Google Benchmark" \
       "missing) — skipping" >&2
fi

CSV_J1="$CSV_J1" CSV_JN="$CSV_JN" JOBS="$JOBS" HW="$HW" \
  WALL_J1="$WALL_J1" WALL_JN="$WALL_JN" \
  WALL_BIG_OFF="$WALL_BIG_OFF" WALL_BIG_SHARD="$WALL_BIG_SHARD" \
  STAGES_BIG="$STAGES_BIG" \
  FAULT_BUDGET="$FAULT_BUDGET" CSV_BUDGET="$CSV_BUDGET" \
  STAGES_BUDGET="$STAGES_BUDGET" WALL_BUDGET="$WALL_BUDGET" \
  LEARN_CSV_off="$LEARN_CSV_off" LEARN_WALL_off="$LEARN_WALL_off" \
  LEARN_CSV_on="$LEARN_CSV_on" LEARN_WALL_on="$LEARN_WALL_on" \
  LEARN_CSV_shared="$LEARN_CSV_shared" LEARN_WALL_shared="$LEARN_WALL_shared" \
  LEARN_STAGES_shared="$LEARN_STAGES_shared" \
  ADI_CSV_2="$ADI_CSV_2" ADI_WALL_2="$ADI_WALL_2" \
  ADI_CSV_8="$ADI_CSV_8" ADI_WALL_8="$ADI_WALL_8" \
  ADI_CSV_16="$ADI_CSV_16" ADI_WALL_16="$ADI_WALL_16" \
  python3 - "$OUTPUT" "$MICRO_JSON" <<'EOF'
import json
import os
import sys

output_path = sys.argv[1]
micro = json.loads(sys.argv[2])
jobs = int(os.environ["JOBS"])
hardware = int(os.environ["HW"])


def parse(csv_text):
    lines = [l for l in csv_text.splitlines() if l.strip()]
    header = lines[0].split(",")
    rows = []
    for line in lines[1:]:
        row = dict(zip(header, line.split(",")))
        rows.append({
            "circuit": row["circuit"],
            "tested": int(row["tested"]),
            "untestable": int(row["untestable"]),
            "aborted": int(row["aborted"]),
            "patterns": int(row["patterns"]),
            "seconds": float(row["seconds"]),
        })
    return rows


# Per-circuit seconds come from the serial run: under --jobs N the
# workers contend for cores and each circuit's own time inflates, which
# would read as a phantom regression when diffing across PRs. The
# parallel run's per-circuit seconds ride along as seconds_jobsN so the
# contention itself stays visible.
circuits = parse(os.environ["CSV_J1"])
jobsn = {row["circuit"]: row["seconds"] for row in parse(os.environ["CSV_JN"])}
for row in circuits:
    row["seconds_jobsN"] = jobsn[row["circuit"]]
serial_total = sum(row["seconds"] for row in circuits)

wall_j1 = float(os.environ["WALL_J1"])
wall_jn = float(os.environ["WALL_JN"])
big_off = float(os.environ["WALL_BIG_OFF"])
big_shard = float(os.environ["WALL_BIG_SHARD"])

# Search-core counters (ISSUE 5), summed over the s1196+s1238 --stages
# blocks, so the hot-path speedup stays attributable across PRs.
import re

stages_text = os.environ.get("STAGES_BIG", "")
search_core = {
    "implications": 0,
    "trail_pushes": 0,
    "trail_pops": 0,
    "probe_runs": 0,
    "probe_cone": 0,
    "probe_full": 0,
    "conflicts": 0,
    "learned_clauses": 0,
    "clause_hits": 0,
    "backjump_levels_skipped": 0,
    "probe_memo_hits": 0,
    "restarts": 0,
    "clause_reductions": 0,
    "minimized_lits": 0,
    "clause_db_core": 0,
    "clause_db_mid": 0,
    "clause_db_local": 0,
    "lbd_le2": 0,
    "lbd_3_6": 0,
    "lbd_gt6": 0,
}
for m in re.finditer(
        r"search core\s+implications (\d+), trail pushes (\d+), pops (\d+)",
        stages_text):
    search_core["implications"] += int(m.group(1))
    search_core["trail_pushes"] += int(m.group(2))
    search_core["trail_pops"] += int(m.group(3))
for m in re.finditer(
        r"verification probes\s+(\d+) \(cone-scoped (\d+), full (\d+)\)",
        stages_text):
    search_core["probe_runs"] += int(m.group(1))
    search_core["probe_cone"] += int(m.group(2))
    search_core["probe_full"] += int(m.group(3))
# Conflict-driven-search counters (the learning PR): how often the engine
# conflicted, what it learned, and what the learning saved.
for m in re.finditer(
        r"conflict learning\s+conflicts (\d+), learned (\d+), "
        r"clause hits (\d+), backjump levels skipped (\d+)",
        stages_text):
    search_core["conflicts"] += int(m.group(1))
    search_core["learned_clauses"] += int(m.group(2))
    search_core["clause_hits"] += int(m.group(3))
    search_core["backjump_levels_skipped"] += int(m.group(4))
for m in re.finditer(r"probe memo\s+hits (\d+)", stages_text):
    search_core["probe_memo_hits"] += int(m.group(1))
# Clause-quality scheduling counters (the clause-quality PR): restart and
# reduction cadence, minimization yield, and the tier/LBD composition of
# the learned databases at end of search.
for m in re.finditer(
        r"restart policy\s+restarts (\d+), clause reductions (\d+), "
        r"minimized lits (\d+)",
        stages_text):
    search_core["restarts"] += int(m.group(1))
    search_core["clause_reductions"] += int(m.group(2))
    search_core["minimized_lits"] += int(m.group(3))
for m in re.finditer(
        r"clause tiers\s+core (\d+), mid (\d+), local (\d+); "
        r"LBD<=2 (\d+), 3-6 (\d+), >6 (\d+)",
        stages_text):
    search_core["clause_db_core"] += int(m.group(1))
    search_core["clause_db_mid"] += int(m.group(2))
    search_core["clause_db_local"] += int(m.group(3))
    search_core["lbd_le2"] += int(m.group(4))
    search_core["lbd_3_6"] += int(m.group(5))
    search_core["lbd_gt6"] += int(m.group(6))
# The store footprint only exists on the --learn shared ablation leg —
# the main sweeps run the per-fault learner, whose gauge is zero.
clause_store_bytes = 0
for m in re.finditer(r"shared clause store\s+(\d+) bytes",
                     os.environ.get("LEARN_STAGES_shared", "")):
    clause_store_bytes += int(m.group(1))

# Simulation-kernel counters (the backend PR): which backend ran and how
# many gate evaluations each lane width performed over the tail circuits.
sim_kernel = {"scalar": 0, "w64": 0, "w256": 0, "w512": 0}
for m in re.finditer(
        r"sim kernel evals\s+scalar (\d+), w64 (\d+), w256 (\d+), "
        r"w512 (\d+)", stages_text):
    sim_kernel["scalar"] += int(m.group(1))
    sim_kernel["w64"] += int(m.group(2))
    sim_kernel["w256"] += int(m.group(3))
    sim_kernel["w512"] += int(m.group(4))
backend_m = re.search(r"sim backend\s+(\S+) \((\d+) lanes\)", stages_text)

# The WordN<K> lane ladder from the micro benchmarks: gate-evals/s per
# width plus the relative speedup over the one-word baseline. avx2_build
# says whether the binary was compiled with wide vectors — the CI AVX2 job
# asserts the >=1.5x floor on it; scalar builds just record the ratios.
lane_ladder = None
by_name = {b.get("name"): b for b in micro}
base = by_name.get("BM_ParallelFrame64Lanes")
if base and "items_per_second" in base:
    lane_ladder = {
        "avx2_build": bool(base.get("avx2_build", 0)),
        "gate_evals_per_second": {"64": base["items_per_second"]},
        "speedup_vs_64": {},
    }
    for lanes, name in (("256", "BM_ParallelFrameLanes256"),
                        ("512", "BM_ParallelFrameLanes512")):
        entry = by_name.get(name)
        if entry and "items_per_second" in entry:
            ips = entry["items_per_second"]
            lane_ladder["gate_evals_per_second"][lanes] = ips
            lane_ladder["speedup_vs_64"][lanes] = round(
                ips / base["items_per_second"], 2)

# The learning ablation over the s1196+s1238 tails: wall seconds and
# verdict mix per --learn mode at otherwise identical flags.
learning_ablation = []
for mode in ("off", "on", "shared"):
    rows = parse(os.environ[f"LEARN_CSV_{mode}"])
    learning_ablation.append({
        "learn": mode,
        "wall_seconds": float(os.environ[f"LEARN_WALL_{mode}"]),
        "tested": sum(r["tested"] for r in rows),
        "untestable": sum(r["untestable"] for r in rows),
        "aborted": sum(r["aborted"] for r in rows),
        "patterns": sum(r["patterns"] for r in rows),
    })

# The fault-budget leg (the robustness PR): the abort-attribution line
# from --stages splits aborts by cause; the budget column counts faults
# the deterministic assignment cap cut off. Byte-identical at any jobs
# or sharding value, so the counts diff cleanly across PRs.
budget_rows = parse(os.environ["CSV_BUDGET"])
budget_aborts = {"local": 0, "sequential": 0, "time": 0, "budget": 0}
for m in re.finditer(
        r"aborts\s+local (\d+), sequential (\d+), time (\d+), budget (\d+)",
        os.environ.get("STAGES_BUDGET", "")):
    budget_aborts["local"] += int(m.group(1))
    budget_aborts["sequential"] += int(m.group(2))
    budget_aborts["time"] += int(m.group(3))
    budget_aborts["budget"] += int(m.group(4))
fault_budget = {
    "budget_assignments": int(os.environ["FAULT_BUDGET"]),
    "wall_seconds": float(os.environ["WALL_BUDGET"]),
    "tested": sum(r["tested"] for r in budget_rows),
    "untestable": sum(r["untestable"] for r in budget_rows),
    "aborted": sum(r["aborted"] for r in budget_rows),
    "aborted_by_cause": budget_aborts,
}

# The ADI budget sweep: coverage/runtime versus sample count.
adi_budget = []
for budget in (2, 8, 16):
    rows = parse(os.environ[f"ADI_CSV_{budget}"])
    adi_budget.append({
        "adi_sequences": budget,
        "circuits": [r["circuit"] for r in rows],
        "tested": sum(r["tested"] for r in rows),
        "aborted": sum(r["aborted"] for r in rows),
        "patterns": sum(r["patterns"] for r in rows),
        "wall_seconds": float(os.environ[f"ADI_WALL_{budget}"]),
    })

report = {
    "benchmark": "gdf_atpg --all --csv",
    "jobs": jobs,
    # The speedups below are only meaningful relative to this: a
    # parallel_speedup of ~1 on hardware_concurrency 1 is expected.
    "hardware_concurrency": hardware,
    # Elapsed process wall time of the whole sweep — what --jobs shrinks.
    "wall_seconds_jobs1": round(wall_j1, 3),
    "wall_seconds_jobsN": round(wall_jn, 3),
    "parallel_speedup": round(wall_j1 / wall_jn, 2) if wall_jn > 0 else None,
    # The ISSUE-4 tail benchmark: s1196+s1238 combined wall time,
    # --shard-faults off versus epoch-sharded at the jobs count.
    "shard_seconds_s1196_s1238_off": round(big_off, 3),
    "shard_seconds_s1196_s1238_sharded": round(big_shard, 3),
    "shard_speedup_s1196_s1238":
        round(big_off / big_shard, 2) if big_shard > 0 else None,
    # ISSUE-5 search-core counters over the s1196+s1238 sequential run.
    "search_core_s1196_s1238": search_core,
    # Shared clause store footprint of that run (0 unless --learn shared).
    "clause_store_bytes_s1196_s1238": clause_store_bytes,
    # The clause-quality PR's ablation: --learn off/on/shared over the
    # same two tails (wall seconds + verdict mix).
    "learning_ablation": learning_ablation,
    # Aborted faults per circuit plus the catalog total (the learning PR's
    # effectiveness metric: learning may only shrink these).
    "aborted_faults": {
        **{row["circuit"]: row["aborted"] for row in circuits},
        "total": sum(row["aborted"] for row in circuits),
    },
    # The backend PR: active backend plus per-width kernel eval counts
    # over the same run, the WordN<K> micro ladder, and the ADI ordering
    # sampling-budget trade-off.
    "sim_backend": backend_m.group(1) if backend_m else None,
    "sim_lanes": int(backend_m.group(2)) if backend_m else None,
    "sim_kernel_evals_s1196_s1238": sim_kernel,
    "lane_ladder": lane_ladder,
    # The robustness PR: the same tails under a deterministic per-fault
    # assignment cap, with aborts attributed by cause.
    "fault_budget_s1196_s1238": fault_budget,
    "adi_budget": adi_budget,
    # Sum of per-circuit times at --jobs 1: the work metric comparable
    # with pre-parallelism PRs (their total_seconds).
    "total_seconds": round(serial_total, 3),
    "circuits": circuits,
    "micro_simulation": micro,
}
with open(output_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"run_benchmarks: wrote {output_path} "
      f"(serial {wall_j1:.1f}s, jobs={jobs} {wall_jn:.1f}s, "
      f"shard tails {big_off:.1f}s -> {big_shard:.1f}s)",
      file=sys.stderr)
EOF

# Speedup floor: only asserted where the hardware can parallelize at all.
# Single-core runners (this includes some CI shapes) skip it — their
# ratios hover at 1 by construction and asserting on them is noise.
if [[ "$HW" -gt 1 && "$JOBS" -gt 1 ]]; then
  python3 - "$OUTPUT" <<'EOF'
import json
import sys

report = json.load(open(sys.argv[1]))
speedup = report["parallel_speedup"]
if speedup is not None and speedup < 1.05:
    sys.exit(f"run_benchmarks: parallel_speedup {speedup} < 1.05 on "
             f"{report['hardware_concurrency']} cores — the sweep no "
             f"longer scales")
EOF
else
  echo "run_benchmarks: single-core runner — skipping the speedup floor" >&2
fi

# Lane-ladder floor: on builds with wide vectors (the CI AVX2 job) the
# WordN<K> rungs must actually pay — at least one of 256/512 lanes has to
# clear 1.5x the 64-lane baseline in gate-evals/s. Scalar builds record
# the ratios without asserting: without SIMD the extra planes are just
# more sequential work per pass.
python3 - "$OUTPUT" <<'EOF'
import json
import sys

report = json.load(open(sys.argv[1]))
ladder = report.get("lane_ladder")
if not ladder:
    print("run_benchmarks: no lane ladder recorded (micro bench missing)",
          file=sys.stderr)
elif not ladder["avx2_build"]:
    print("run_benchmarks: non-AVX2 build — lane-ladder floor not asserted",
          file=sys.stderr)
else:
    speedups = list(ladder["speedup_vs_64"].values())
    if speedups and max(speedups) < 1.5:
        sys.exit(f"run_benchmarks: lane ladder speedups {speedups} never "
                 f"reach 1.5x over 64 lanes on an AVX2 build")
EOF
