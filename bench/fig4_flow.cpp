// Regenerates the extended FOGBUSTER algorithm view of paper Figure 4 as
// per-stage outcome statistics: local generation, fault-effect propagation,
// propagation justification (TDgen re-entry), synchronization, and the
// final verdicts (experiment F4; the local-flow Figure 3 counters are the
// po/ppo split below).
#include <cstdio>

#include "circuits/catalog.hpp"
#include "core/delay_atpg.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> circuits =
      argc > 1 ? std::vector<std::string>(argv + 1, argv + argc)
               : std::vector<std::string>{"s27", "s298", "s386", "s208"};
  std::printf("Figure 4 — extended FOGBUSTER stage outcomes\n\n");
  for (const std::string& name : circuits) {
    const gdf::net::Netlist circuit = gdf::circuits::load_circuit(name);
    const gdf::core::FogbusterResult r = gdf::core::run_delay_atpg(circuit);
    std::printf("%s: tested %d, untestable %d, aborted %d\n", name.c_str(),
                r.tested(), r.untestable(), r.aborted());
    std::printf("%s\n\n",
                gdf::core::format_stage_stats(r.stages).c_str());
    std::fflush(stdout);
  }
  return 0;
}
