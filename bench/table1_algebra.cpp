// Regenerates paper Table 1 (the eight-valued AND truth table) and Table 2
// (the inverter), plus the non-robust relaxation cells — experiment T1/T2
// of DESIGN.md.
#include <cstdio>

#include "algebra/tables.hpp"

using gdf::alg::DelayAlgebra;
using gdf::alg::Mode;
using gdf::alg::V8;

namespace {

constexpr V8 kAll[] = {V8::Zero, V8::One,  V8::Rise,  V8::Fall,
                       V8::ZeroH, V8::OneH, V8::RiseC, V8::FallC};

void print_and_table(const DelayAlgebra& algebra, const char* title) {
  std::printf("%s\n      ", title);
  for (const V8 col : kAll) {
    std::printf("%4s", std::string(gdf::alg::v8_name(col)).c_str());
  }
  std::printf("\n");
  for (const V8 row : kAll) {
    std::printf("%4s |", std::string(gdf::alg::v8_name(row)).c_str());
    for (const V8 col : kAll) {
      std::printf("%4s",
                  std::string(gdf::alg::v8_name(algebra.v_and(row, col)))
                      .c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Paper Table 1: truth table for the AND gate "
              "(robust gate delay fault algebra) ==\n");
  print_and_table(gdf::alg::robust_algebra(), "");

  std::printf("== Paper Table 2: truth table for the inverter ==\n  in  |");
  for (const V8 v : kAll) {
    std::printf("%4s", std::string(gdf::alg::v8_name(v)).c_str());
  }
  std::printf("\n  out |");
  for (const V8 v : kAll) {
    std::printf("%4s", std::string(gdf::alg::v8_name(
                                       gdf::alg::robust_algebra().v_not(v)))
                           .c_str());
  }
  std::printf("\n\n");

  std::printf("== Non-robust (hazard-relaxed) AND table — the §7 outlook "
              "==\n");
  print_and_table(gdf::alg::nonrobust_algebra(), "");
  std::printf("cells differing from Table 1:\n");
  for (const V8 a : kAll) {
    for (const V8 b : kAll) {
      const V8 r = gdf::alg::robust_algebra().v_and(a, b);
      const V8 n = gdf::alg::nonrobust_algebra().v_and(a, b);
      if (r != n) {
        std::printf("  %s AND %s : %s -> %s\n",
                    std::string(gdf::alg::v8_name(a)).c_str(),
                    std::string(gdf::alg::v8_name(b)).c_str(),
                    std::string(gdf::alg::v8_name(r)).c_str(),
                    std::string(gdf::alg::v8_name(n)).c_str());
      }
    }
  }
  return 0;
}
