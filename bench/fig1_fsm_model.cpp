// Regenerates the structural view of paper Figure 1 (the finite state
// machine model): every circuit decomposed into its combinational block
// with PIs/PPIs on the input side and POs/PPOs on the output side
// (experiment F1 of DESIGN.md).
#include <cstdio>

#include "circuits/catalog.hpp"
#include "netlist/fanout.hpp"
#include "netlist/stats.hpp"

int main() {
  std::printf("Figure 1 — the finite state machine model per circuit\n");
  std::printf("%-8s %4s %4s %4s %6s %6s %7s %8s\n", "circuit", "PI", "PO",
              "FF", "gates", "depth", "stems", "branches");
  for (const std::string& name : gdf::circuits::catalog_names()) {
    const gdf::net::Netlist raw = gdf::circuits::load_circuit(name);
    const gdf::net::Netlist expanded =
        gdf::net::expand_fanout_branches(raw);
    const gdf::net::NetlistStats s = gdf::net::compute_stats(expanded);
    std::printf("%-8s %4zu %4zu %4zu %6zu %6d %7zu %8zu\n", name.c_str(),
                s.primary_inputs, s.primary_outputs, s.flip_flops,
                s.logic_gates - s.branch_buffers, s.depth, s.fanout_stems,
                s.branch_buffers);
  }
  std::printf("\nPPIs = FF count (flip-flop outputs feed the combinational "
              "block);\nPPOs = FF count (each flip-flop data pin observes "
              "it). Fault sites are\nall lines: stems plus explicit fanout "
              "branches.\n");
  return 0;
}
