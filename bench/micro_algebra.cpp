// Micro-benchmarks (M1): throughput of the eight-valued algebra kernels
// that dominate TDgen's implication fixpoint and TDsim's injections.
#include <benchmark/benchmark.h>

#include "algebra/frame_sim.hpp"
#include "algebra/model.hpp"
#include "algebra/tables.hpp"
#include "circuits/catalog.hpp"
#include "netlist/fanout.hpp"

namespace {

using namespace gdf;

void BM_ValueAnd(benchmark::State& state) {
  const alg::DelayAlgebra& a = alg::robust_algebra();
  int i = 0;
  for (auto _ : state) {
    const auto x = static_cast<alg::V8>(i & 7);
    const auto y = static_cast<alg::V8>((i >> 3) & 7);
    benchmark::DoNotOptimize(a.v_and(x, y));
    ++i;
  }
}
BENCHMARK(BM_ValueAnd);

void BM_SetForward(benchmark::State& state) {
  const alg::DelayAlgebra& a = alg::robust_algebra();
  std::uint8_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        a.set_fwd(alg::Op2::And, i, static_cast<alg::VSet>(~i)));
    ++i;
    if (i == 0) {
      i = 1;
    }
  }
}
BENCHMARK(BM_SetForward);

void BM_SetBackward(benchmark::State& state) {
  const alg::DelayAlgebra& a = alg::robust_algebra();
  std::uint8_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.set_bwd_first(
        alg::Op2::Or, alg::kFullSet, i, static_cast<alg::VSet>(i | 1)));
    ++i;
    if (i == 0) {
      i = 1;
    }
  }
}
BENCHMARK(BM_SetBackward);

void BM_TwoFrameSim(benchmark::State& state) {
  const net::Netlist nl = net::expand_fanout_branches(
      circuits::load_circuit(state.range(0) == 0 ? "s298" : "s1196"));
  const alg::AtpgModel model(nl);
  const alg::TwoFrameSim sim(model, alg::robust_algebra());
  alg::TwoFrameStimulus stimulus;
  stimulus.pi_sets.assign(nl.inputs().size(), alg::kPrimaryDomain);
  stimulus.ppi_sets.assign(nl.dffs().size(), alg::kPrimaryDomain);
  std::vector<alg::VSet> sets;
  for (auto _ : state) {
    sim.run(stimulus, nullptr, sets);
    benchmark::DoNotOptimize(sets.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(model.node_count()));
}
BENCHMARK(BM_TwoFrameSim)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
