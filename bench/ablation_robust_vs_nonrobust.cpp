// Ablation A1 — the paper's closing claim: "the number of untestable
// faults ... is expected to be significantly decreased by using a
// non-robust fault model".
//
// Three models per circuit:
//  * robust            — the paper's strong robust algebra;
//  * hazard-relaxed    — the sound non-robust relaxation expressible in
//                        the eight-valued framework (Fc survives 1h);
//  * enhanced-scan TF  — transition-fault testability with freely loadable
//                        and directly observable state: the upper bound a
//                        fully non-robust sequential model could reach.
#include <cstdio>

#include "circuits/catalog.hpp"
#include "core/delay_atpg.hpp"
#include "netlist/fanout.hpp"
#include "semilet/semilet.hpp"

namespace {

/// Enhanced-scan transition-fault check: frame 1 must set the site to the
/// pre-transition value, frame 2 must statically detect the matching
/// stuck-at fault — with all flip-flops treated as free inputs.
int enhanced_scan_testable(const gdf::net::Netlist& nl) {
  using gdf::semilet::Budget;
  using gdf::semilet::FramePodem;
  using gdf::semilet::PodemMode;
  using gdf::semilet::PodemRequest;
  using gdf::semilet::PodemStatus;
  using gdf::sim::Lv;

  gdf::sim::SeqSimulator sim(nl);
  gdf::semilet::SemiletOptions options;
  options.backtrack_limit = 100;
  int testable = 0;
  for (const auto& fault : gdf::tdgen::enumerate_faults(nl)) {
    const Lv pre = fault.slow_to_rise ? Lv::Zero : Lv::One;
    Budget budget_a(options);
    PodemRequest launch;
    launch.mode = PodemMode::JustifyValues;
    launch.in_state.assign(nl.dffs().size(), Lv::X);
    launch.assignable_ppi.assign(nl.dffs().size(), true);
    launch.objectives = {{fault.line, pre}};
    FramePodem first(sim, budget_a, std::move(launch));
    if (first.next(nullptr) != PodemStatus::Solution) {
      continue;
    }
    Budget budget_b(options);
    PodemRequest detect;
    detect.mode = PodemMode::ObserveFault;
    detect.in_state.assign(nl.dffs().size(), Lv::X);
    detect.assignable_ppi.assign(nl.dffs().size(), true);
    detect.injection = {fault.line, pre};  // stuck at the slow value
    detect.activation_line = fault.line;
    detect.activation_value = pre == Lv::Zero ? Lv::One : Lv::Zero;
    FramePodem second(sim, budget_b, std::move(detect));
    if (second.next(nullptr) == PodemStatus::Solution) {
      ++testable;
    }
  }
  return testable;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> circuits =
      argc > 1 ? std::vector<std::string>(argv + 1, argv + argc)
               : std::vector<std::string>{"s27", "s298", "s386"};
  std::printf("Ablation A1 — fault model strength (paper §7 outlook)\n");
  std::printf("%-8s %7s | %7s %7s %7s | %7s %7s %7s | %10s\n", "circuit",
              "faults", "R:tst", "R:unt", "R:abt", "HR:tst", "HR:unt",
              "HR:abt", "scan-TF:tst");
  for (const std::string& name : circuits) {
    const gdf::net::Netlist circuit = gdf::circuits::load_circuit(name);

    gdf::core::AtpgOptions robust;
    const gdf::core::FogbusterResult r =
        gdf::core::run_delay_atpg(circuit, robust);

    gdf::core::AtpgOptions relaxed;
    relaxed.mode = gdf::alg::Mode::NonRobust;
    const gdf::core::FogbusterResult h =
        gdf::core::run_delay_atpg(circuit, relaxed);

    const gdf::net::Netlist expanded =
        gdf::net::expand_fanout_branches(circuit);
    const int scan_tf = enhanced_scan_testable(expanded);

    std::printf("%-8s %7zu | %7d %7d %7d | %7d %7d %7d | %10d\n",
                name.c_str(), r.faults.size(), r.tested(), r.untestable(),
                r.aborted(), h.tested(), h.untestable(), h.aborted(),
                scan_tf);
    std::fflush(stdout);
  }
  std::printf("\nR = robust (paper), HR = hazard-relaxed non-robust, "
              "scan-TF = enhanced-scan\ntransition-fault upper bound. The "
              "gap R:unt vs scan-TF:tst quantifies the\npaper's claim.\n");
  return 0;
}
