// Ablation A1 — the paper's closing claim: "the number of untestable
// faults ... is expected to be significantly decreased by using a
// non-robust fault model".
//
// The robust vs hazard-relaxed comparison is one declarative sweep over
// the mode axis, reproducible without this binary:
//
//   gdf_atpg --csv -c s27 -c s298 -c s386 --modes robust,nonrobust
//
// The third model — the enhanced-scan transition-fault upper bound a fully
// non-robust sequential model could reach — is not a FOGBUSTER run (state
// is freely loadable and directly observable), so this harness appends it
// per circuit after the sweep.
#include <cstdio>
#include <vector>

#include "circuits/catalog.hpp"
#include "netlist/fanout.hpp"
#include "run/sweep.hpp"
#include "semilet/semilet.hpp"
#include "tdgen/fault.hpp"

namespace {

/// Enhanced-scan transition-fault check: frame 1 must set the site to the
/// pre-transition value, frame 2 must statically detect the matching
/// stuck-at fault — with all flip-flops treated as free inputs.
int enhanced_scan_testable(const gdf::net::Netlist& nl) {
  using gdf::semilet::Budget;
  using gdf::semilet::FramePodem;
  using gdf::semilet::PodemMode;
  using gdf::semilet::PodemRequest;
  using gdf::semilet::PodemStatus;
  using gdf::sim::Lv;

  gdf::sim::SeqSimulator sim(nl);
  gdf::semilet::SemiletOptions options;
  options.backtrack_limit = 100;
  int testable = 0;
  for (const auto& fault : gdf::tdgen::enumerate_faults(nl)) {
    const Lv pre = fault.slow_to_rise ? Lv::Zero : Lv::One;
    Budget budget_a(options);
    PodemRequest launch;
    launch.mode = PodemMode::JustifyValues;
    launch.in_state.assign(nl.dffs().size(), Lv::X);
    launch.assignable_ppi.assign(nl.dffs().size(), true);
    launch.objectives = {{fault.line, pre}};
    FramePodem first(sim, budget_a, std::move(launch));
    if (first.next(nullptr) != PodemStatus::Solution) {
      continue;
    }
    Budget budget_b(options);
    PodemRequest detect;
    detect.mode = PodemMode::ObserveFault;
    detect.in_state.assign(nl.dffs().size(), Lv::X);
    detect.assignable_ppi.assign(nl.dffs().size(), true);
    detect.injection = {fault.line, pre};  // stuck at the slow value
    detect.activation_line = fault.line;
    detect.activation_value = pre == Lv::Zero ? Lv::One : Lv::Zero;
    FramePodem second(sim, budget_b, std::move(detect));
    if (second.next(nullptr) == PodemStatus::Solution) {
      ++testable;
    }
  }
  return testable;
}

}  // namespace

int main(int argc, char** argv) {
  gdf::run::SweepSpec spec;
  spec.circuits =
      gdf::run::catalog_sources(argc, argv, {"s27", "s298", "s386"});
  spec.modes = {gdf::alg::Mode::Robust, gdf::alg::Mode::NonRobust};

  std::printf("Ablation A1 — fault model strength (paper §7 outlook)\n");
  std::printf("(gdf_atpg --csv --modes robust,nonrobust ...)\n");
  std::printf("%s\n", gdf::run::sweep_csv_header(spec).c_str());
  gdf::run::run_sweep(spec, [&](const gdf::run::SweepRow& row) {
    std::printf("%s\n", gdf::run::format_sweep_csv_row(spec, row).c_str());
    std::fflush(stdout);
  });

  std::printf("\nenhanced-scan transition-fault upper bound "
              "(state freely loadable/observable):\n");
  // Same file-backed catalog resolution as the sweep above, so the
  // appendix rows describe the same netlists as the CSV rows.
  const std::string bench_dir = gdf::circuits::resolve_bench_dir();
  for (const gdf::run::CircuitSource& source : spec.circuits) {
    const gdf::net::Netlist expanded = gdf::net::expand_fanout_branches(
        gdf::circuits::load_circuit(source.name, bench_dir));
    std::printf("%s,scan_tf_testable,%d\n", source.label.c_str(),
                enhanced_scan_testable(expanded));
    std::fflush(stdout);
  }
  std::printf("\nthe gap between robust-untestable and scan-TF-testable "
              "quantifies the paper's\nclosing claim.\n");
  return 0;
}
