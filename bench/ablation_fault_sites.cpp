// Ablation A4 — the fault model's site list (paper §3: "each gate output
// and each fan out branch"): how much of the fault population and the
// result mix the branch faults account for.
#include <cstdio>

#include "circuits/catalog.hpp"
#include "core/delay_atpg.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> circuits =
      argc > 1 ? std::vector<std::string>(argv + 1, argv + argc)
               : std::vector<std::string>{"s27", "s298"};
  std::printf("Ablation A4 — stem-only vs stem+branch fault sites\n");
  std::printf("%-8s | %7s %7s %7s %7s | %7s %7s %7s %7s\n", "circuit",
              "faults", "tested", "untstb", "abort", "faults", "tested",
              "untstb", "abort");
  std::printf("%-8s | %31s | %31s\n", "", "stems + branches (paper)",
              "stems only");
  for (const std::string& name : circuits) {
    const gdf::net::Netlist circuit = gdf::circuits::load_circuit(name);

    const gdf::core::FogbusterResult full =
        gdf::core::run_delay_atpg(circuit);

    gdf::core::AtpgOptions stems;
    stems.fault_sites.include_branches = false;
    const gdf::core::FogbusterResult stem_only =
        gdf::core::run_delay_atpg(circuit, stems);

    std::printf("%-8s | %7zu %7d %7d %7d | %7zu %7d %7d %7d\n",
                name.c_str(), full.faults.size(), full.tested(),
                full.untestable(), full.aborted(), stem_only.faults.size(),
                stem_only.tested(), stem_only.untestable(),
                stem_only.aborted());
    std::fflush(stdout);
  }
  return 0;
}
