// Ablation A4 — the fault model's site list (paper §3: "each gate output
// and each fan out branch"): how much of the fault population and the
// result mix the branch faults account for.
//
// One declarative sweep: circuits × sites {full, stems}. Reproducible
// without this binary:
//
//   gdf_atpg --csv -c s27 -c s298 --fault-sites full,stems
#include <cstdio>

#include "run/sweep.hpp"

int main(int argc, char** argv) {
  gdf::run::SweepSpec spec;
  spec.circuits = gdf::run::catalog_sources(argc, argv, {"s27", "s298"});
  spec.full_sites = {true, false};

  std::printf("Ablation A4 — stem-only vs stem+branch fault sites\n");
  std::printf("(gdf_atpg --csv --fault-sites full,stems ...)\n");
  std::printf("%s,faults\n", gdf::run::sweep_csv_header(spec).c_str());
  gdf::run::run_sweep(spec, [&](const gdf::run::SweepRow& row) {
    std::printf("%s,%d\n",
                gdf::run::format_sweep_csv_row(spec, row).c_str(),
                row.table.tested + row.table.untestable +
                    row.table.aborted);
    std::fflush(stdout);
  });
  std::printf("\n'full' is the paper's fault model; 'stems' drops the "
              "fanout-branch faults\n(and the branch expansion) from the "
              "population.\n");
  return 0;
}
