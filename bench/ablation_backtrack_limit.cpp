// Ablation A2 — sensitivity to the paper's abort policy (§6: "test pattern
// generation was aborted after either 100 backtracks for the local test
// pattern generator, or 100 backtracks for the sequential one").
#include <cstdio>

#include "circuits/catalog.hpp"
#include "core/delay_atpg.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> circuits =
      argc > 1 ? std::vector<std::string>(argv + 1, argv + argc)
               : std::vector<std::string>{"s27", "s298"};
  std::printf("Ablation A2 — backtrack limit sweep\n");
  std::printf("%-8s %8s | %7s %7s %7s | %8s\n", "circuit", "limit", "tested",
              "untstbl", "aborted", "time[s]");
  for (const std::string& name : circuits) {
    const gdf::net::Netlist circuit = gdf::circuits::load_circuit(name);
    for (const int limit : {10, 100, 1000}) {
      gdf::core::AtpgOptions options;
      options.local.backtrack_limit = limit;
      options.sequential.backtrack_limit = limit;
      const gdf::core::FogbusterResult r =
          gdf::core::run_delay_atpg(circuit, options);
      std::printf("%-8s %8d | %7d %7d %7d | %8.1f\n", name.c_str(), limit,
                  r.tested(), r.untestable(), r.aborted(), r.seconds);
      std::fflush(stdout);
    }
  }
  std::printf("\nlarger limits convert aborted faults into tested or "
              "proven-untestable ones\nat a time cost — the trade the "
              "paper fixes at 100/100.\n");
  return 0;
}
