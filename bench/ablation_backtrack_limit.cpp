// Ablation A2 — sensitivity to the paper's abort policy (§6: "test pattern
// generation was aborted after either 100 backtracks for the local test
// pattern generator, or 100 backtracks for the sequential one").
//
// One declarative sweep: circuits × backtrack limits {10, 100, 1000},
// executed by the shared orchestrator. Reproducible without this binary:
//
//   gdf_atpg --csv -c s27 -c s298 --backtracks 10,100,1000
#include <cstdio>

#include "run/sweep.hpp"

int main(int argc, char** argv) {
  gdf::run::SweepSpec spec;
  spec.circuits = gdf::run::catalog_sources(argc, argv, {"s27", "s298"});
  spec.backtrack_limits = {10, 100, 1000};

  std::printf("Ablation A2 — backtrack limit sweep\n");
  std::printf("(gdf_atpg --csv --backtracks 10,100,1000 ...)\n");
  std::printf("%s\n", gdf::run::sweep_csv_header(spec).c_str());
  gdf::run::run_sweep(spec, [&](const gdf::run::SweepRow& row) {
    std::printf("%s\n", gdf::run::format_sweep_csv_row(spec, row).c_str());
    std::fflush(stdout);
  });
  std::printf("\nlarger limits convert aborted faults into tested or "
              "proven-untestable ones\nat a time cost — the trade the "
              "paper fixes at 100/100.\n");
  return 0;
}
